"""Table 2 — summaries of the five (synthetic) traces.

Regenerates the paper's trace-summary table from the calibrated
generators and checks each column against the paper's values.
"""

import pytest
from conftest import bench_scale, write_results

from repro import PROFILES, RngRegistry, generate_trace, summarize
from repro.traces import TraceSummary

ORDER = ["EPA", "SDSC", "ClarkNet", "NASA", "SASK"]

#: Paper Table 2 targets: (requests, avg KB, popularity max, popularity mean).
PAPER_TABLE2 = {
    "EPA": (40658, 21, 1642, 8.2),
    "SDSC": (25430, 14, 1020, 12.0),
    "ClarkNet": (61703, 13, 680, 8.0),
    "NASA": (61823, 44, 3138, 31.0),
    "SASK": (51471, 12, 1155, 14.0),
}


def render(summaries) -> str:
    lines = ["Table 2: trace summaries (synthetic, calibrated to the paper)"]
    header = (f"{'Item':16s}" + "".join(f"{name:>12s}" for name in ORDER))
    lines.append(header)
    rows = [
        ("Duration (d)", [f"{s.duration / 86400:.2f}" for s in summaries]),
        ("Total Requests", [s.total_requests for s in summaries]),
        ("Number of Files", [s.num_files for s in summaries]),
        ("Avg. File Size", [f"{s.avg_file_size / 1024:.0f}KB" for s in summaries]),
        (
            "File Popularity",
            [f"{s.popularity_max} ({s.popularity_mean:.1f})" for s in summaries],
        ),
        ("Client Sites", [s.num_clients for s in summaries]),
    ]
    for label, cells in rows:
        lines.append(f"{label:16s}" + "".join(f"{str(c):>12s}" for c in cells))
    return "\n".join(lines)


@pytest.fixture(scope="module")
def summaries(harness):
    return {name: summarize(harness.get_trace(name)) for name in ORDER}


def test_table2_generation_benchmark(benchmark):
    """Benchmark the generator itself on the largest trace (NASA)."""

    def generate():
        profile = PROFILES["NASA"]
        if bench_scale() != 1.0:
            profile = profile.scaled(bench_scale())
        return generate_trace(profile, RngRegistry(seed=7))

    trace = benchmark.pedantic(generate, rounds=1, iterations=1)
    assert len(trace) > 0


def test_table2_rows(summaries):
    scale = bench_scale()
    text = render([summaries[name] for name in ORDER])
    write_results("table2_trace_summaries", text)
    for name in ORDER:
        summary: TraceSummary = summaries[name]
        requests, avg_kb, pop_max, pop_mean = PAPER_TABLE2[name]
        if scale == 1.0:
            assert summary.total_requests == requests
            assert summary.avg_file_size / 1024 == pytest.approx(avg_kb, rel=0.05)
            assert summary.popularity_max == pytest.approx(pop_max, rel=0.15)
            assert summary.popularity_mean == pytest.approx(pop_mean, rel=0.15)
        else:
            assert summary.total_requests == pytest.approx(
                requests * scale, rel=0.02
            )


def test_table2_derived_file_counts(summaries):
    """File counts recovered from the Tables 3-4 modification headers."""
    if bench_scale() != 1.0:
        pytest.skip("file-count identities hold at paper scale")
    assert summaries["EPA"].num_files == 3600
    assert summaries["SASK"].num_files == 2009
    assert summaries["ClarkNet"].num_files == 4800
    assert summaries["NASA"].num_files == 1008
    assert summaries["SDSC"].num_files == 1430
