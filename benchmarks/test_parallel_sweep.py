"""Acceptance benchmarks for the parallel sweep runner.

Three properties from the issue, asserted at benchmark scale:

1. A six-point sweep under ``ParallelSweepRunner(workers=4)`` is
   metric-for-metric identical to the serial ``sweep()``.
2. On a 4-core runner the parallel sweep is at least 1.5x faster.
3. A sweep killed mid-run (SIGKILL, no cleanup) resumes from its
   checkpoints: completed points are not recomputed and the final
   results match an uninterrupted run.

The wall-clock assertions are gated on core count so laptops and
single-core CI shards skip rather than flake.
"""

from __future__ import annotations

import json
import os
import signal
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro import DAYS, ExperimentConfig, RngRegistry, generate_trace, invalidation
from repro.replay import ParallelSweepRunner, result_to_dict, sweep
from repro.replay.parallel import checkpoint_filename
from repro.traces import PROFILES

SWEEP_SCALE = float(os.environ.get("REPRO_BENCH_SWEEP_SCALE", "0.1"))

#: Six points, mirroring the paper's six trace/lifetime rows but on one
#: trace so the per-point cost is roughly uniform.
POINTS = [
    (f"lifetime-{days:g}d", {"mean_lifetime": days * DAYS})
    for days in (2.5, 7.0, 14.0, 25.0, 50.0, 100.0)
]


@pytest.fixture(scope="module")
def base_config():
    trace = generate_trace(
        PROFILES["SDSC"].scaled(SWEEP_SCALE), RngRegistry(seed=42)
    )
    return ExperimentConfig(
        trace=trace, protocol=invalidation(), mean_lifetime=25 * DAYS
    )


@pytest.mark.parallel_sweep
@pytest.mark.skipif(
    (os.cpu_count() or 1) < 4, reason="speedup assertion needs >= 4 cores"
)
def test_parallel_identical_and_faster(base_config):
    started = time.monotonic()
    serial = sweep(base_config, POINTS)
    serial_wall = time.monotonic() - started

    started = time.monotonic()
    parallel = sweep(
        base_config, POINTS, runner=ParallelSweepRunner(workers=4)
    )
    parallel_wall = time.monotonic() - started

    assert [r.label for r in parallel] == [r.label for r in serial]
    for s, p in zip(serial, parallel):
        assert result_to_dict(p.result) == result_to_dict(s.result)
    speedup = serial_wall / parallel_wall
    print(f"serial {serial_wall:.2f}s, parallel {parallel_wall:.2f}s, "
          f"speedup {speedup:.2f}x")
    assert speedup >= 1.5


_SWEEP_SCRIPT = """\
import sys
from repro import DAYS, ExperimentConfig, RngRegistry, generate_trace, invalidation
from repro.replay import ParallelSweepRunner, result_to_dict, sweep
from repro.traces import PROFILES

scale, ckpt = float(sys.argv[1]), sys.argv[2]
trace = generate_trace(PROFILES["SDSC"].scaled(scale), RngRegistry(seed=42))
base = ExperimentConfig(trace=trace, protocol=invalidation(),
                        mean_lifetime=25 * DAYS)
points = [(f"lifetime-{d:g}d", {"mean_lifetime": d * DAYS})
          for d in (2.5, 7.0, 14.0, 25.0, 50.0, 100.0)]
runner = ParallelSweepRunner(workers=2, checkpoint_dir=ckpt, resume=True,
                             progress=lambda line: print(line, flush=True))
results = sweep(base, points, runner=runner)
import json
print("RESULTS " + json.dumps([result_to_dict(r.result) for r in results]),
      flush=True)
"""


def _spawn_sweep(checkpoint_dir: Path) -> subprocess.Popen:
    env = dict(os.environ)
    src = str(Path(__file__).resolve().parents[1] / "src")
    existing = env.get("PYTHONPATH")
    env["PYTHONPATH"] = src + (os.pathsep + existing if existing else "")
    return subprocess.Popen(
        [sys.executable, "-u", "-c", _SWEEP_SCRIPT, str(SWEEP_SCALE),
         str(checkpoint_dir)],
        stdout=subprocess.PIPE,
        env=env,
        text=True,
    )


@pytest.mark.parallel_sweep
def test_kill_mid_sweep_resumes_from_checkpoints(base_config, tmp_path):
    checkpoint_dir = tmp_path / "ckpt"

    # Start a sweep and SIGKILL it once at least two points checkpointed.
    victim = _spawn_sweep(checkpoint_dir)
    deadline = time.monotonic() + 120.0
    try:
        while time.monotonic() < deadline:
            done = list(checkpoint_dir.glob("point-*.json"))
            if len(done) >= 2:
                break
            if victim.poll() is not None:
                pytest.fail("sweep finished before it could be killed; "
                            "raise REPRO_BENCH_SWEEP_SCALE")
            time.sleep(0.01)
        else:
            pytest.fail("no checkpoints appeared within 120s")
        os.kill(victim.pid, signal.SIGKILL)
    finally:
        victim.wait()
        victim.stdout.close()
    survivors = {p.name: p.stat().st_mtime_ns
                 for p in checkpoint_dir.glob("point-*.json")}
    assert len(survivors) >= 2
    assert len(survivors) < len(POINTS)  # it really was interrupted

    # Resume: the surviving checkpoints are loaded, not recomputed.
    resumed = _spawn_sweep(checkpoint_dir)
    output, _ = resumed.communicate(timeout=600)
    assert resumed.returncode == 0, output
    resumed_lines = [line for line in output.splitlines()
                     if "resumed from checkpoint" in line]
    assert len(resumed_lines) >= len(survivors)
    for name, mtime in survivors.items():
        path = checkpoint_dir / name
        assert path.stat().st_mtime_ns == mtime  # untouched on resume

    # And the stitched-together results match an uninterrupted serial run.
    payload = json.loads(
        [line for line in output.splitlines()
         if line.startswith("RESULTS ")][0][len("RESULTS "):]
    )
    serial = sweep(base_config, POINTS)
    assert payload == [result_to_dict(r.result) for r in serial]
