"""Extension — invalidation with a caching hierarchy (Worrell [14]).

Related work (Section 2): Worrell found invalidation superior in
*hierarchical* caches, where the hierarchy "significantly reduces the
overhead for invalidation"; the paper studies the no-hierarchy case
because hierarchies were not yet deployed.  This extension inserts one
upper-level cache per pair of leaf proxies and measures how the server's
invalidation burden collapses:

* the server tracks parent caches, not client sites, so its site lists
  shrink by orders of magnitude;
* the server sends at most one INVALIDATE per parent per modification;
* strong consistency holds end-to-end (children hear through parents).
"""

import pytest
from conftest import write_results

from repro import DAYS, ExperimentConfig, invalidation, run_experiment


@pytest.fixture(scope="module")
def runs(harness, result_cache):
    flat = harness("SASK", 14.0, "invalidation")
    key = ("SASK", 14.0, "invalidation-hierarchy", ())
    hier = result_cache.get(key)
    if hier is None:
        hier = run_experiment(
            ExperimentConfig(
                trace=harness.get_trace("SASK"),
                protocol=invalidation(),
                mean_lifetime=14.0 * DAYS,
                hierarchy_parents=2,
            )
        )
        result_cache[key] = hier
    return {"flat": flat, "hierarchical": hier}


def render(runs) -> str:
    flat, hier = runs["flat"], runs["hierarchical"]
    lines = ["Extension: flat vs hierarchical invalidation (SASK, 14d)"]
    lines.append(f"{'metric':34s}{'flat':>12s}{'hierarchical':>14s}")
    rows = [
        ("server site-list entries (end)", flat.sitelist_entries,
         hier.sitelist_entries),
        ("server site-list storage (B)", flat.sitelist_storage_bytes,
         hier.sitelist_storage_bytes),
        ("server invalidations sent", flat.invalidations_sent,
         hier.invalidations_sent),
        ("parent-forwarded invalidations", 0,
         hier.parent_invalidations_forwarded),
        ("max server fan-out time (s)", f"{flat.invalidation_time_max:.3f}",
         f"{hier.invalidation_time_max:.3f}"),
        ("origin 200 replies", flat.origin_replies_200,
         hier.origin_replies_200),
        ("consistency violations", flat.violations, hier.violations),
    ]
    for label, a, b in rows:
        lines.append(f"{label:34s}{str(a):>12s}{str(b):>14s}")
    return "\n".join(lines)


def test_extension_benchmark(benchmark, runs):
    block = benchmark.pedantic(lambda: render(runs), rounds=1, iterations=1)
    write_results("extension_hierarchy", block)
    assert "hierarchical" in block


def test_server_sitelists_collapse(runs):
    """The server only remembers parents: entries ~ #documents x #parents."""
    flat, hier = runs["flat"], runs["hierarchical"]
    assert hier.sitelist_entries < 0.2 * flat.sitelist_entries


def test_server_sends_far_fewer_invalidations(runs):
    flat, hier = runs["flat"], runs["hierarchical"]
    assert hier.invalidations_sent < 0.5 * flat.invalidations_sent
    # Parents carry the fan-out instead.
    assert hier.parent_invalidations_forwarded > 0


def test_origin_load_reduced_by_shared_parent_cache(runs):
    """Shared parent copies absorb sibling misses at the origin."""
    flat, hier = runs["flat"], runs["hierarchical"]
    assert hier.origin_replies_200 < flat.origin_replies_200
    assert hier.origin_requests < flat.origin_requests


def test_hierarchy_preserves_strong_consistency(runs):
    assert runs["hierarchical"].violations == 0