"""Table 5 — invalidation costs across all six replay experiments.

Site-list storage, average/maximum site-list length among modified
documents, and the wall time to send all INVALIDATEs per modification.
Reuses the invalidation runs of Tables 3-4 (session cache), exactly as
the paper derives Table 5 from the same replays.

Paper shapes asserted:

* storage is small — tens of bytes per request (entries x 28 bytes);
* the high-modification SDSC run (2.5-day lifetimes) has larger
  average/maximum invalidation times than the 25-day run ("when more
  files are modified, the chance that a file with a very long site list
  is modified increases");
* sending many invalidations serially over TCP takes real time (the
  scalability motivation for Section 6).
"""

import pytest
from conftest import PAPER_EXPERIMENTS, write_results

from repro import format_invalidation_costs


@pytest.fixture(scope="module")
def invalidation_results(harness):
    results = []
    for trace_name, lifetime in PAPER_EXPERIMENTS:
        result = harness(trace_name, lifetime, "invalidation")
        # Distinguish the two SDSC rows the way the paper does.
        result.trace_name = f"{trace_name}({result.files_modified})"
        results.append(result)
    return results


def test_table5_benchmark(benchmark, invalidation_results):
    def render():
        block = format_invalidation_costs(invalidation_results)
        write_results("table5_invalidation_costs", block)
        return block

    block = benchmark.pedantic(render, rounds=1, iterations=1)
    assert "Max. SiteList" in block


def test_storage_is_small(invalidation_results):
    """Tens of bytes per request, well under a couple of MB per trace."""
    for result in invalidation_results:
        per_request = result.sitelist_storage_bytes / result.total_requests
        assert per_request < 40.0
        assert result.sitelist_storage_bytes < 4 * 1024 * 1024


def test_sitelist_lengths_sane(invalidation_results):
    for result in invalidation_results:
        assert result.sitelist_max_len >= result.sitelist_avg_len >= 0
        # A site list can never exceed the trace's client population.
        assert result.sitelist_max_len <= result.total_requests


def test_invalidation_times_measured(invalidation_results):
    for result in invalidation_results:
        if result.invalidations_sent:
            assert result.invalidation_time_max >= result.invalidation_time_avg
            assert result.invalidation_time_avg >= 0.0


def test_sdsc_modification_rate_raises_invalidation_time(invalidation_results):
    sdsc = [r for r in invalidation_results if r.trace_name.startswith("SDSC")]
    fast = max(sdsc, key=lambda r: r.files_modified)
    slow = min(sdsc, key=lambda r: r.files_modified)
    # The 2.5-day run modifies ~10x more files...
    assert fast.files_modified > 5 * slow.files_modified
    # ...and its worst-case fan-out is at least as long.
    assert fast.invalidation_time_max >= slow.invalidation_time_max * 0.8
