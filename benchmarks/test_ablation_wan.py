"""Ablation E — the real-Internet extrapolation (paper Section 5.2).

"How would the relative comparison of the response times change in the
real Internet?  ...  we expect polling-every-time to have a much worse
average response time in real life.  Conversely, invalidation will have
similar or even lower response time than adaptive TTL."

We rerun one experiment with a WAN latency model (50 ms one-way base +
jitter, T1-class bottleneck) in place of the testbed Ethernet and
compare the protocols' response times.
"""

import pytest
from conftest import write_results

from repro import (
    DAYS,
    ExperimentConfig,
    PROFILES,
    RngRegistry,
    adaptive_ttl,
    generate_trace,
    invalidation,
    poll_every_time,
    run_experiment,
)
from repro.net import WanModel
from repro.sim import RngRegistry as Registry

WAN_SCALE = 0.15
PROTOS = {
    "polling": poll_every_time,
    "invalidation": invalidation,
    "ttl": adaptive_ttl,
}


@pytest.fixture(scope="module")
def runs():
    trace = generate_trace(PROFILES["SDSC"].scaled(WAN_SCALE), RngRegistry(seed=42))
    out = {}
    for name, factory in PROTOS.items():
        for net_name in ("lan", "wan"):
            latency = None
            if net_name == "wan":
                latency = WanModel(
                    base_delay=0.05,
                    jitter=0.02,
                    bandwidth_bps=1.5e6,
                    rng=Registry(seed=42).stream(f"wan-{name}"),
                    size_scale=100.0,
                )
            out[(name, net_name)] = run_experiment(
                ExperimentConfig(
                    trace=trace,
                    protocol=factory(),
                    mean_lifetime=25 * DAYS,
                    latency_model=latency,
                )
            )
    return out


def render(runs) -> str:
    lines = ["Ablation E: LAN testbed vs WAN extrapolation (SDSC-like, 25d)"]
    lines.append(
        f"{'protocol':16s}{'LAN avg (s)':>13s}{'WAN avg (s)':>13s}"
        f"{'LAN min':>10s}{'WAN min':>10s}"
    )
    for name in PROTOS:
        lan, wan = runs[(name, "lan")], runs[(name, "wan")]
        lines.append(
            f"{name:16s}{lan.avg_latency:>13.3f}{wan.avg_latency:>13.3f}"
            f"{lan.min_latency:>10.3f}{wan.min_latency:>10.3f}"
        )
    return "\n".join(lines)


def test_ablation_benchmark(benchmark, runs):
    block = benchmark.pedantic(lambda: render(runs), rounds=1, iterations=1)
    write_results("ablation_wan", block)
    assert "WAN" in block


def test_polling_suffers_most_on_wan(runs):
    """Polling pays a WAN round trip on *every* request."""
    penalties = {
        name: runs[(name, "wan")].avg_latency - runs[(name, "lan")].avg_latency
        for name in PROTOS
    }
    assert penalties["polling"] > penalties["invalidation"]
    assert penalties["polling"] > penalties["ttl"]


def test_invalidation_not_worse_than_ttl_on_wan(runs):
    assert runs[("invalidation", "wan")].avg_latency <= (
        1.05 * runs[("ttl", "wan")].avg_latency
    )


def test_wan_message_counts_unchanged(runs):
    """Latency model must not change protocol behaviour, only timing."""
    for name in PROTOS:
        lan, wan = runs[(name, "lan")], runs[(name, "wan")]
        assert lan.replies_200 == pytest.approx(wan.replies_200, rel=0.02)