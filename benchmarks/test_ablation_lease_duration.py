"""Ablation C — lease duration: site-list storage vs. validation traffic.

Section 6's core trade-off: "if the lease is three days, the total size
of site lists is bounded by the total number of requests seen by the
server for the last three days", while shorter leases make clients send
more If-Modified-Since requests after expiry.

We sweep the (wall-clock) lease duration on a scaled SASK workload and
record end-of-run site-list storage and IMS counts: storage grows and
IMS shrinks with the lease.
"""

import math

import pytest
from conftest import write_results

from repro import (
    DAYS,
    ExperimentConfig,
    PROFILES,
    RngRegistry,
    generate_trace,
    invalidation,
    lease_invalidation,
    run_experiment,
)

SWEEP_SCALE = 0.15
#: Wall-clock lease durations (seconds); the scaled replay's wall length
#: is a few thousand seconds, so this spans "tiny" to "whole trace".
LEASES = [30.0, 120.0, 600.0, 3600.0]


@pytest.fixture(scope="module")
def sweep():
    profile = PROFILES["SASK"].scaled(SWEEP_SCALE)
    trace = generate_trace(profile, RngRegistry(seed=42))
    lifetime = 14 * DAYS * SWEEP_SCALE
    rows = []
    for lease in LEASES:
        result = run_experiment(
            ExperimentConfig(
                trace=trace,
                protocol=lease_invalidation(lease_duration=lease),
                mean_lifetime=lifetime,
            )
        )
        rows.append((lease, result))
    unbounded = run_experiment(
        ExperimentConfig(
            trace=trace, protocol=invalidation(), mean_lifetime=lifetime
        )
    )
    return rows, unbounded


def render(rows, unbounded) -> str:
    lines = ["Ablation C: lease duration vs site-list storage / IMS (SASK-like)"]
    lines.append(
        f"{'lease (s)':>10s}{'entries':>10s}{'storage B':>11s}{'IMS':>8s}"
        f"{'invalidations':>15s}{'stale':>7s}"
    )
    for lease, result in rows:
        lines.append(
            f"{lease:>10.0f}{result.sitelist_entries:>10d}"
            f"{result.sitelist_storage_bytes:>11d}{result.ims:>8d}"
            f"{result.invalidations:>15d}{result.stale_serves:>7d}"
        )
    lines.append(
        f"{'infinite':>10s}{unbounded.sitelist_entries:>10d}"
        f"{unbounded.sitelist_storage_bytes:>11d}{unbounded.ims:>8d}"
        f"{unbounded.invalidations:>15d}{unbounded.stale_serves:>7d}"
    )
    return "\n".join(lines)


def test_sweep_benchmark(benchmark, sweep):
    rows, unbounded = sweep
    block = benchmark.pedantic(
        lambda: render(rows, unbounded), rounds=1, iterations=1
    )
    write_results("ablation_lease_duration", block)
    assert "lease" in block


def test_longer_leases_store_more(sweep):
    rows, unbounded = sweep
    entries = [result.sitelist_entries for _, result in rows]
    # Monotone non-decreasing within noise; endpoints strictly ordered.
    assert entries[0] <= entries[-1]
    assert entries[-1] <= unbounded.sitelist_entries


def test_shorter_leases_validate_more(sweep):
    rows, unbounded = sweep
    ims = [result.ims for _, result in rows]
    assert ims[0] >= ims[-1]
    assert ims[0] > unbounded.ims


def test_all_leases_remain_strongly_consistent(sweep):
    rows, unbounded = sweep
    for _, result in rows:
        assert result.violations == 0
    assert unbounded.violations == 0


def test_short_lease_storage_bound(sweep):
    """A lease bounds storage by the last lease-window's request volume."""
    rows, _ = sweep
    lease, result = rows[0]
    # Requests arrive at ~wall rate; a 30s lease cannot retain more
    # registrations than the whole run's, and should retain far fewer.
    assert result.sitelist_entries < rows[-1][1].sitelist_entries or (
        math.isclose(result.sitelist_entries, rows[-1][1].sitelist_entries)
    )
