"""Validation — the Section 3 model predicts the Section 5 measurements.

The per-pair analytical state machines (Table 1), summed over every
(client, document) pair of a trace, predict the replay's wire-level
message rows.  With unbounded proxy caches (the model's "cache always
has space" assumption) the polling prediction matches the replay to
within the lock-step's intra-interval reordering (a few messages out of
thousands), and invalidation is equally tight.

This cross-check ties the paper's analysis to its testbed numbers — a
correctness argument the paper itself only makes qualitatively.
"""

import pytest
from conftest import write_results

from repro import (
    DAYS,
    ExperimentConfig,
    PROFILES,
    RngRegistry,
    generate_trace,
    invalidation,
    poll_every_time,
    run_experiment,
)
from repro.core import predict_message_counts
from repro.workload import generate_schedule

VALIDATION_SCALE = 0.15
LIFETIME = 2.5 * DAYS


@pytest.fixture(scope="module")
def workload():
    trace = generate_trace(
        PROFILES["SDSC"].scaled(VALIDATION_SCALE), RngRegistry(seed=42)
    )
    # The experiment runner derives its schedule from the same seed and
    # stream name, so prediction and replay see identical modifications.
    schedule = generate_schedule(
        sorted(trace.documents),
        trace.duration,
        LIFETIME,
        RngRegistry(42).stream("modifications"),
    )
    return trace, schedule


@pytest.fixture(scope="module")
def comparison(workload):
    trace, schedule = workload
    rows = {}
    for name, factory in (
        ("polling", poll_every_time),
        ("invalidation", invalidation),
    ):
        predicted = predict_message_counts(trace, schedule, name)
        measured = run_experiment(
            ExperimentConfig(
                trace=trace,
                protocol=factory(),
                mean_lifetime=LIFETIME,
                proxy_cache_bytes=None,  # the model's unbounded cache
            )
        )
        rows[name] = (predicted, measured)
    return rows


def render(rows) -> str:
    lines = ["Validation: analytical model vs full replay (SDSC-like, 2.5d)"]
    lines.append(
        f"{'protocol':14s}{'':10s}{'GETs':>8s}{'IMS':>8s}{'304s':>8s}"
        f"{'invals':>8s}{'xfers':>8s}"
    )
    for name, (predicted, measured) in rows.items():
        p = predicted.counts
        lines.append(
            f"{name:14s}{'model':>10s}{p.gets:>8d}{p.ims:>8d}"
            f"{p.replies_304:>8d}{p.invalidations:>8d}{p.file_transfers:>8d}"
        )
        lines.append(
            f"{'':14s}{'replay':>10s}{measured.gets:>8d}{measured.ims:>8d}"
            f"{measured.replies_304:>8d}{measured.invalidations:>8d}"
            f"{measured.replies_200:>8d}"
        )
    return "\n".join(lines)


def test_validation_benchmark(benchmark, comparison):
    block = benchmark.pedantic(lambda: render(comparison), rounds=1, iterations=1)
    write_results("validation_model_vs_replay", block)
    assert "model" in block


def test_polling_prediction_near_exact(comparison):
    """Exact up to intra-interval reordering: the 5-minute lock step may
    execute a request and a same-interval modification in either order,
    so a request on the boundary can validate against the other version
    (one 304/200 swap per boundary collision at most)."""
    predicted, measured = comparison["polling"]
    assert predicted.counts.gets == measured.gets
    assert predicted.counts.ims == measured.ims
    assert predicted.counts.replies_304 == pytest.approx(
        measured.replies_304, abs=3
    )
    assert predicted.counts.file_transfers == pytest.approx(
        measured.replies_200, abs=3
    )


def test_invalidation_prediction_tight(comparison):
    predicted, measured = comparison["invalidation"]
    assert predicted.counts.gets == pytest.approx(measured.gets, abs=5)
    assert predicted.counts.file_transfers == pytest.approx(
        measured.replies_200, abs=5
    )
    assert predicted.counts.invalidations == pytest.approx(
        measured.invalidations, abs=max(5, 0.02 * measured.invalidations)
    )


def test_model_confirms_protocol_ordering(comparison):
    """Even the pure model reproduces the headline comparison."""
    polling_pred = comparison["polling"][0]
    inval_pred = comparison["invalidation"][0]
    assert polling_pred.total_messages > inval_pred.total_messages