"""Ablation H — modification-detection mechanisms (paper Section 4).

The paper implements two ways for the accelerator to learn of changes:
the "notify" check-in utility (immediate) and the browser-based approach
(detection happens when the author next views the page).  The
experiments use notify; this ablation quantifies what browser-based
detection costs: invalidation inherits a staleness window equal to the
detection delay, though it still never *violates* (the write is not
complete until invalidations go out, which cannot happen before
detection).
"""

import pytest
from conftest import write_results

from repro import (
    DAYS,
    ExperimentConfig,
    PROFILES,
    RngRegistry,
    generate_trace,
    invalidation,
    run_experiment,
)

SWEEP_SCALE = 0.15
#: Mean wall seconds until the author's view triggers detection.
VIEW_DELAYS = [30.0, 300.0, 1800.0]


@pytest.fixture(scope="module")
def sweep():
    trace = generate_trace(PROFILES["SDSC"].scaled(SWEEP_SCALE), RngRegistry(seed=42))
    lifetime = 2.5 * DAYS
    notify = run_experiment(
        ExperimentConfig(
            trace=trace, protocol=invalidation(), mean_lifetime=lifetime
        )
    )
    rows = []
    for delay in VIEW_DELAYS:
        rows.append(
            (
                delay,
                run_experiment(
                    ExperimentConfig(
                        trace=trace,
                        protocol=invalidation(),
                        mean_lifetime=lifetime,
                        detection="browser",
                        browser_view_delay=delay,
                    )
                ),
            )
        )
    return notify, rows


def render(notify, rows) -> str:
    lines = ["Ablation H: notify vs browser-based change detection (SDSC, 2.5d)"]
    lines.append(
        f"{'detection':>16s}{'stale serves':>14s}{'mean staleness':>16s}"
        f"{'invalidations':>15s}{'violations':>12s}"
    )
    lines.append(
        f"{'notify':>16s}{notify.stale_serves:>14d}"
        f"{notify.counters.staleness.mean:>16.1f}{notify.invalidations:>15d}"
        f"{notify.violations:>12d}"
    )
    for delay, result in rows:
        lines.append(
            f"{f'browser {delay:.0f}s':>16s}{result.stale_serves:>14d}"
            f"{result.counters.staleness.mean:>16.1f}"
            f"{result.invalidations:>15d}{result.violations:>12d}"
        )
    return "\n".join(lines)


def test_ablation_benchmark(benchmark, sweep):
    notify, rows = sweep
    block = benchmark.pedantic(
        lambda: render(notify, rows), rounds=1, iterations=1
    )
    write_results("ablation_detection", block)
    assert "browser" in block


def test_notify_detection_near_zero_staleness(sweep):
    notify, _rows = sweep
    assert notify.stale_serves <= max(5, 0.01 * notify.total_requests)


def test_staleness_grows_with_detection_delay(sweep):
    _notify, rows = sweep
    stales = [result.stale_serves for _, result in rows]
    assert stales[0] <= stales[-1]
    assert stales[-1] > 0  # long delays visibly leak stale serves


def test_browser_detection_never_violates(sweep):
    """No INVALIDATE delivered means the write is incomplete: stale
    reads are permitted, violations are not."""
    notify, rows = sweep
    assert notify.violations == 0
    for _, result in rows:
        assert result.violations == 0


def test_invalidations_still_flow(sweep):
    _notify, rows = sweep
    for _, result in rows:
        assert result.invalidations > 0