"""Ablation B — the polling vs. invalidation crossover in lifetime.

Section 3: "The comparison of polling-every-time and invalidation
depends on the relative frequency of requests and modifications", and
Section 5.2: "Except in the extreme case of file lifetime on the order
of minutes, cache hits occur much more often than file modifications.
Thus, invalidation incurs much fewer network transactions than
polling-every-time."

We sweep the mean file lifetime across three orders of magnitude on a
scaled SDSC workload and chart both protocols' message totals: the gap
narrows monotonically as lifetimes shrink.
"""

import pytest
from conftest import write_results

from repro import (
    DAYS,
    ExperimentConfig,
    PROFILES,
    RngRegistry,
    generate_trace,
    invalidation,
    poll_every_time,
    run_experiment,
)

#: Sweep uses a fixed small scale regardless of REPRO_BENCH_SCALE: it is
#: a shape experiment, and five lifetimes x two protocols at full scale
#: would dominate the whole benchmark suite's runtime.
SWEEP_SCALE = 0.15
#: Mean lifetimes in (scaled) days, from "order of minutes" upwards.
LIFETIMES_DAYS = [0.01, 0.05, 0.25, 2.5, 25.0]


@pytest.fixture(scope="module")
def sweep():
    profile = PROFILES["SDSC"].scaled(SWEEP_SCALE)
    trace = generate_trace(profile, RngRegistry(seed=42))
    rows = []
    for lifetime in LIFETIMES_DAYS:
        per_protocol = {}
        for name, factory in (
            ("polling", poll_every_time),
            ("invalidation", invalidation),
        ):
            result = run_experiment(
                ExperimentConfig(
                    trace=trace,
                    protocol=factory(),
                    mean_lifetime=lifetime * DAYS * SWEEP_SCALE,
                )
            )
            per_protocol[name] = result
        rows.append((lifetime, per_protocol))
    return rows


def render(rows) -> str:
    lines = ["Ablation B: lifetime sweep, polling vs invalidation (SDSC-like)"]
    lines.append(
        f"{'lifetime':>10s}{'mods':>8s}{'polling msgs':>14s}"
        f"{'invalidation msgs':>19s}{'ratio':>8s}"
    )
    for lifetime, results in rows:
        polling = results["polling"].total_messages
        inval = results["invalidation"].total_messages
        lines.append(
            f"{lifetime:>9.2f}d{results['invalidation'].files_modified:>8d}"
            f"{polling:>14d}{inval:>19d}{polling / inval:>8.2f}"
        )
    return "\n".join(lines)


def test_sweep_benchmark(benchmark, sweep):
    block = benchmark.pedantic(lambda: render(sweep), rounds=1, iterations=1)
    write_results("ablation_lifetime_sweep", block)
    assert "ratio" in block


def test_invalidation_wins_at_realistic_lifetimes(sweep):
    """At day-scale lifetimes invalidation sends far fewer messages."""
    for lifetime, results in sweep:
        if lifetime >= 2.5:
            assert (
                results["invalidation"].total_messages
                < results["polling"].total_messages
            )


def test_advantage_shrinks_as_lifetime_drops(sweep):
    """The polling/invalidation ratio narrows monotonically-ish."""
    ratios = [
        results["polling"].total_messages
        / results["invalidation"].total_messages
        for _, results in sweep
    ]
    # Longest lifetime -> biggest advantage; shortest -> smallest.
    assert ratios[-1] > ratios[0]
    assert ratios[-1] > 1.2


def test_modification_counts_span_orders_of_magnitude(sweep):
    mods = [results["invalidation"].files_modified for _, results in sweep]
    assert mods[0] > 100 * mods[-1]
