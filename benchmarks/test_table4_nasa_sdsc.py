"""Table 4 — NASA and the two SDSC lifetime runs.

Same columns and assertions as Table 3, plus the SDSC-specific
observation the paper makes: with a 2.5-day mean lifetime (576
modifications) the invalidation traffic and fan-out times rise sharply
relative to the 25-day run (57 modifications).
"""

import pytest
from conftest import write_results

from repro import format_comparison_table

EXPERIMENTS = [
    ("NASA", 7.0),
    ("SDSC", 25.0),
    ("SDSC", 2.5),
]

PROTOCOL_ORDER = ["polling", "invalidation", "ttl"]


@pytest.fixture(scope="module", params=EXPERIMENTS, ids=lambda e: f"{e[0]}-{e[1]:g}d")
def experiment(request, harness):
    trace_name, lifetime = request.param
    results = {key: harness(trace_name, lifetime, key) for key in PROTOCOL_ORDER}
    return trace_name, lifetime, results


def test_replay_benchmark(benchmark, experiment):
    trace_name, lifetime, results = experiment

    def render():
        block = format_comparison_table(
            [results[k] for k in PROTOCOL_ORDER],
            title=(
                f"Trace {trace_name}, {results['polling'].total_requests} "
                f"requests, {results['polling'].files_modified} files modified "
                f"(mean lifetime {lifetime:g} days)"
            ),
        )
        write_results(f"table4_{trace_name.lower()}_{lifetime:g}d", block)
        return block

    block = benchmark.pedantic(render, rounds=1, iterations=1)
    assert trace_name in block


def test_modification_counts_match_paper(experiment, scale):
    """Table 4 headers: NASA 144, SDSC 57 / 576 files modified."""
    trace_name, lifetime, results = experiment
    expected = {("NASA", 7.0): 144, ("SDSC", 25.0): 57, ("SDSC", 2.5): 576}[
        (trace_name, lifetime)
    ] * scale
    assert results["invalidation"].files_modified == pytest.approx(
        expected, rel=0.08, abs=2
    )


def test_strong_consistency(experiment):
    _, _, results = experiment
    assert results["polling"].stale_serves == 0
    inval = results["invalidation"]
    assert inval.violations == 0
    assert results["polling"].violations == 0
    assert inval.stale_serves <= max(5, 0.01 * inval.total_requests)


def test_polling_message_overhead(experiment):
    _, _, results = experiment
    ratio = (
        results["polling"].total_messages
        / results["invalidation"].total_messages
    )
    assert ratio > 1.05


def test_invalidation_vs_ttl_messages(experiment):
    _, _, results = experiment
    assert results["invalidation"].total_messages <= (
        1.06 * results["ttl"].total_messages
    )


def test_bytes_nearly_identical(experiment):
    _, _, results = experiment
    sizes = [results[k].message_bytes for k in PROTOCOL_ORDER]
    assert max(sizes) <= min(sizes) * 1.05


def test_polling_latency_floor(experiment):
    _, _, results = experiment
    assert results["polling"].min_latency > results["invalidation"].min_latency
    assert results["polling"].min_latency > results["ttl"].min_latency


def test_server_cpu_ordering(experiment):
    _, _, results = experiment
    polling_cpu = results["polling"].cpu_utilization
    assert polling_cpu >= results["invalidation"].cpu_utilization
    assert polling_cpu >= results["ttl"].cpu_utilization


def test_sdsc_lifetime_contrast(harness):
    """More modifications -> more invalidations and longer fan-outs."""
    fast = harness("SDSC", 2.5, "invalidation")
    slow = harness("SDSC", 25.0, "invalidation")
    assert fast.files_modified > 5 * slow.files_modified
    assert fast.invalidations > slow.invalidations
    assert fast.invalidation_time_avg >= 0
    # The 2.5-day run does strictly more consistency work.
    assert fast.invalidations_sent >= slow.invalidations_sent
