"""Shared fixtures for the paper-reproduction benchmarks.

Every benchmark replays traces at ``REPRO_BENCH_SCALE`` (default 1.0 =
paper scale; set e.g. ``REPRO_BENCH_SCALE=0.1`` for a quick smoke pass).
Experiment results are cached per session so Table 5 reuses the
invalidation runs of Tables 3-4 instead of recomputing them, exactly as
the paper derives Table 5 from the same replays.

Each benchmark writes its paper-style table to ``benchmarks/results/``.
"""

from __future__ import annotations

import os
from pathlib import Path
from typing import Dict

import pytest

from repro import (
    DAYS,
    ExperimentConfig,
    ExperimentResult,
    RngRegistry,
    Trace,
    adaptive_ttl,
    generate_trace,
    invalidation,
    lease_invalidation,
    poll_every_time,
    run_experiment,
    two_tier_lease,
)
from repro.replay import ParallelSweepRunner, audit_result, sweep
from repro.traces import PROFILES

RESULTS_DIR = Path(__file__).parent / "results"

#: Protocol factories by short name, used in cache keys.
PROTOCOLS = {
    "polling": poll_every_time,
    "invalidation": invalidation,
    "invalidation-decoupled": lambda: invalidation(blocking=False),
    "ttl": adaptive_ttl,
    "two-tier": lambda: two_tier_lease(lease_duration=1e9),
}

#: The paper's six replay experiments: (trace, mean lifetime in days).
PAPER_EXPERIMENTS = [
    ("EPA", 50.0),
    ("SASK", 14.0),
    ("ClarkNet", 50.0),
    ("NASA", 7.0),
    ("SDSC", 25.0),
    ("SDSC", 2.5),
]


def bench_scale() -> float:
    """Workload scale factor from the environment (1.0 = paper scale)."""
    return float(os.environ.get("REPRO_BENCH_SCALE", "1.0"))


@pytest.fixture(scope="session")
def scale() -> float:
    return bench_scale()


@pytest.fixture(scope="session")
def trace_cache() -> Dict[str, Trace]:
    """Traces generated once per session, keyed by profile name."""
    return {}


@pytest.fixture(scope="session")
def result_cache() -> Dict[tuple, ExperimentResult]:
    """Experiment results shared across benchmark modules."""
    return {}


@pytest.fixture(scope="session")
def harness(scale, trace_cache, result_cache):
    """Callable running (and caching) one replay experiment."""

    def get_trace(trace_name: str) -> Trace:
        trace = trace_cache.get(trace_name)
        if trace is None:
            profile = PROFILES[trace_name]
            if scale != 1.0:
                profile = profile.scaled(scale)
            trace = generate_trace(profile, RngRegistry(seed=42))
            trace_cache[trace_name] = trace
        return trace

    def run(trace_name: str, lifetime_days: float, protocol_key: str,
            **overrides) -> ExperimentResult:
        key = (trace_name, lifetime_days, protocol_key, tuple(sorted(overrides.items())))
        result = result_cache.get(key)
        if result is None:
            config = ExperimentConfig(
                trace=get_trace(trace_name),
                protocol=PROTOCOLS[protocol_key](),
                # The lifetime is NOT scaled: with files scaled by s the
                # modification count becomes s * the paper's count, which
                # preserves the modification/request ratio the protocol
                # comparison is sensitive to.  At scale 1.0 the counts
                # match the paper's headers (72, 1148, 40, 144, 57, 576)
                # to within interval rounding (we observe 71/1147/39/143/
                # 57/571; SDSC-2.5d differs because one file count must
                # serve both SDSC lifetimes, see DESIGN.md §3).
                mean_lifetime=lifetime_days * DAYS,
                **overrides,
            )
            result = run_experiment(config)
            # Cross-check the run's accounting layers before anything
            # consumes it (see repro.replay.audit).
            audit_result(result)
            result_cache[key] = result
        return result

    def prewarm(workers: int) -> None:
        """Fill the result cache by running the paper grid in parallel.

        The 18 points (six trace/lifetime rows x three protocols) are
        exactly the runs Tables 3-5 consume; warming them through
        ``ParallelSweepRunner`` gives the table benchmarks a wall-clock
        speedup without changing a single metric (each point is the same
        hermetic ``run_experiment`` the serial path uses).  Checkpoints
        land under ``benchmarks/results/checkpoints`` so an interrupted
        benchmark session resumes instead of recomputing.
        """
        grid = [
            (trace_name, days, proto)
            for trace_name, days in PAPER_EXPERIMENTS
            for proto in ("polling", "invalidation", "ttl")
        ]
        base = ExperimentConfig(
            trace=get_trace(grid[0][0]),
            protocol=PROTOCOLS[grid[0][2]](),
            mean_lifetime=grid[0][1] * DAYS,
        )
        points = [
            (
                f"{trace_name}-{days:g}d-{proto}",
                {
                    "trace": get_trace(trace_name),
                    "mean_lifetime": days * DAYS,
                    "protocol": PROTOCOLS[proto](),
                },
            )
            for trace_name, days, proto in grid
        ]
        checkpoint_dir = RESULTS_DIR / "checkpoints" / f"scale-{scale:g}"
        runner = ParallelSweepRunner(
            workers=workers,
            checkpoint_dir=str(checkpoint_dir),
            resume=True,
            progress=print,
        )
        for (trace_name, days, proto), point in zip(
            grid, sweep(base, points, runner=runner)
        ):
            audit_result(point.result)
            result_cache[(trace_name, days, proto, ())] = point.result

    workers = int(os.environ.get("REPRO_BENCH_PARALLEL", "0"))
    if workers:
        prewarm(workers)

    run.get_trace = get_trace
    run.prewarm = prewarm
    return run


def write_results(name: str, text: str) -> Path:
    """Persist a benchmark's paper-style table under benchmarks/results."""
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / f"{name}.txt"
    path.write_text(text + "\n")
    return path
