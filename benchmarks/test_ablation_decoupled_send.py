"""Ablation A — blocking vs. decoupled invalidation sends.

Section 5.2: invalidation's large worst-case latency "is mainly due to
the fact that, in our current implementation, the accelerator does not
accept new requests until all invalidation messages for a document have
been sent via TCP.  A more fine-tuned implementation would have a
separate process sending the invalidation messages, thus avoiding the
maximum latency problem."

We run the high-modification SDSC experiment (576 modifications) both
ways and show the worst-case latency collapse while everything else
stays put.
"""

import pytest
from conftest import write_results


@pytest.fixture(scope="module")
def runs(harness):
    return {
        "blocking": harness("SDSC", 2.5, "invalidation"),
        "decoupled": harness("SDSC", 2.5, "invalidation-decoupled"),
    }


def render(runs) -> str:
    lines = ["Ablation A: blocking vs decoupled invalidation send (SDSC, 2.5d)"]
    lines.append(f"{'metric':26s}{'blocking':>14s}{'decoupled':>14s}")
    for label, attr, fmt in [
        ("max latency (s)", "max_latency", "{:.3f}"),
        ("avg latency (s)", "avg_latency", "{:.3f}"),
        ("total messages", "total_messages", "{}"),
        ("invalidations", "invalidations", "{}"),
        ("avg fan-out time (s)", "invalidation_time_avg", "{:.3f}"),
    ]:
        lines.append(
            f"{label:26s}"
            f"{fmt.format(getattr(runs['blocking'], attr)):>14s}"
            f"{fmt.format(getattr(runs['decoupled'], attr)):>14s}"
        )
    return "\n".join(lines)


def test_ablation_benchmark(benchmark, runs):
    block = benchmark.pedantic(lambda: render(runs), rounds=1, iterations=1)
    write_results("ablation_decoupled_send", block)
    assert "blocking" in block


def test_decoupling_cuts_worst_case_latency(runs):
    assert runs["decoupled"].max_latency < runs["blocking"].max_latency


def test_decoupling_preserves_message_counts(runs):
    assert runs["decoupled"].invalidations == runs["blocking"].invalidations
    assert runs["decoupled"].total_messages == pytest.approx(
        runs["blocking"].total_messages, rel=0.02
    )


def test_decoupling_preserves_strong_consistency(runs):
    assert runs["decoupled"].violations == 0
    assert runs["blocking"].violations == 0
