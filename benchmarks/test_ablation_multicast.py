"""Ablation D — multicast invalidation (paper Section 5.2 suggestion).

"Sending a large number of invalidation messages via TCP can lead to
long delays ... invalidation needs to either limit the number of
invalidation messages for each document (see Section 6), or use
multicast schemes."

We run the worst fan-out experiment (SASK, 1148 modifications, site
lists up to ~700) with per-client unicast vs. one-message-per-proxy
multicast and measure the fan-out times and message counts.
"""

import pytest
from conftest import write_results

from repro import DAYS, ExperimentConfig, invalidation, run_experiment


@pytest.fixture(scope="module")
def runs(harness, result_cache, scale):
    unicast = harness("SASK", 14.0, "invalidation")
    key = ("SASK", 14.0, "invalidation-multicast", ())
    multicast = result_cache.get(key)
    if multicast is None:
        multicast = run_experiment(
            ExperimentConfig(
                trace=harness.get_trace("SASK"),
                protocol=invalidation(multicast=True),
                mean_lifetime=14.0 * DAYS,
            )
        )
        result_cache[key] = multicast
    return {"unicast": unicast, "multicast": multicast}


def render(runs) -> str:
    lines = ["Ablation D: unicast vs multicast invalidation (SASK, 14d)"]
    lines.append(f"{'metric':28s}{'unicast':>14s}{'multicast':>14s}")
    for label, attr, fmt in [
        ("invalidation messages", "invalidations", "{}"),
        ("avg fan-out time (s)", "invalidation_time_avg", "{:.3f}"),
        ("max fan-out time (s)", "invalidation_time_max", "{:.3f}"),
        ("max request latency (s)", "max_latency", "{:.3f}"),
        ("total messages", "total_messages", "{}"),
        ("message bytes", "message_bytes", "{}"),
    ]:
        lines.append(
            f"{label:28s}"
            f"{fmt.format(getattr(runs['unicast'], attr)):>14s}"
            f"{fmt.format(getattr(runs['multicast'], attr)):>14s}"
        )
    return "\n".join(lines)


def test_ablation_benchmark(benchmark, runs):
    block = benchmark.pedantic(lambda: render(runs), rounds=1, iterations=1)
    write_results("ablation_multicast", block)
    assert "multicast" in block


def test_multicast_sends_far_fewer_messages(runs):
    # At most one message per proxy (4) per modification.
    assert runs["multicast"].invalidations <= 4 * runs["unicast"].files_modified
    assert runs["multicast"].invalidations < 0.5 * runs["unicast"].invalidations


def test_multicast_shrinks_fanout_times(runs):
    assert (
        runs["multicast"].invalidation_time_max
        < runs["unicast"].invalidation_time_max
    )
    assert (
        runs["multicast"].invalidation_time_avg
        <= runs["unicast"].invalidation_time_avg
    )


def test_multicast_cuts_blocking_latency_spike(runs):
    assert runs["multicast"].max_latency < runs["unicast"].max_latency


def test_multicast_preserves_consistency(runs):
    assert runs["multicast"].violations == 0