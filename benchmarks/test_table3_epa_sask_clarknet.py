"""Table 3 — EPA, SASK and ClarkNet replays under all three protocols.

Regenerates the paper's per-trace comparison blocks (hits, message rows,
latencies, server load) and asserts the qualitative results of
Section 5.2:

* invalidation's message count is within a few percent of (or below)
  adaptive TTL's; polling's is substantially higher;
* message bytes are nearly identical across approaches;
* polling has the highest minimum latency and server CPU;
* blocking invalidation produces the worst-case latency spikes;
* only adaptive TTL serves stale documents.
"""

import pytest
from conftest import write_results

from repro import format_comparison_table

EXPERIMENTS = [
    ("EPA", 50.0),
    ("SASK", 14.0),
    ("ClarkNet", 50.0),
]

PROTOCOL_ORDER = ["polling", "invalidation", "ttl"]


@pytest.fixture(scope="module", params=EXPERIMENTS, ids=lambda e: f"{e[0]}-{e[1]:g}d")
def experiment(request, harness):
    trace_name, lifetime = request.param
    results = {
        key: harness(trace_name, lifetime, key) for key in PROTOCOL_ORDER
    }
    return trace_name, lifetime, results


def test_replay_benchmark(benchmark, experiment):
    """One benchmark sample per trace: the three-protocol replay block."""
    trace_name, lifetime, results = experiment

    def render():
        block = format_comparison_table(
            [results[k] for k in PROTOCOL_ORDER],
            title=(
                f"Trace {trace_name}, {results['polling'].total_requests} "
                f"requests, {results['polling'].files_modified} files modified "
                f"(mean lifetime {lifetime:g} days)"
            ),
        )
        write_results(f"table3_{trace_name.lower()}_{lifetime:g}d", block)
        return block

    block = benchmark.pedantic(render, rounds=1, iterations=1)
    assert "Total Messages" in block


def test_modification_counts_match_paper(experiment, scale):
    """Table 3 headers: EPA 72, SASK 1148, ClarkNet 40 files modified."""
    trace_name, lifetime, results = experiment
    expected = {"EPA": 72, "SASK": 1148, "ClarkNet": 40}[trace_name] * scale
    mods = results["invalidation"].files_modified
    # Scales with the file count (see conftest); exact at scale 1.0 up to
    # the modifier-interval rounding.
    assert mods == pytest.approx(expected, rel=0.08, abs=2)


def test_strong_consistency(experiment):
    _, _, results = experiment
    # Polling validates every serve: structurally no stale data.
    assert results["polling"].stale_serves == 0
    # Invalidation: no serve after a delivered invalidation, and only a
    # negligible number of reads concurrent with in-flight fan-outs.
    inval = results["invalidation"]
    assert inval.violations == 0
    assert results["polling"].violations == 0
    assert inval.stale_serves <= max(5, 0.01 * inval.total_requests)


def test_polling_message_overhead(experiment):
    """Polling generates ~10-50% more messages (paper Section 5.2)."""
    _, _, results = experiment
    ratio = (
        results["polling"].total_messages
        / results["invalidation"].total_messages
    )
    assert 1.05 < ratio < 1.8


def test_invalidation_vs_ttl_messages(experiment):
    """Invalidation: similar (within 6%) or fewer messages than TTL."""
    _, _, results = experiment
    assert results["invalidation"].total_messages <= (
        1.06 * results["ttl"].total_messages
    )


def test_bytes_nearly_identical(experiment):
    _, _, results = experiment
    sizes = [results[k].message_bytes for k in PROTOCOL_ORDER]
    assert max(sizes) <= min(sizes) * 1.05


def test_polling_latency_floor(experiment):
    """Contacting the server on every hit: high minimum latency."""
    _, _, results = experiment
    assert results["polling"].min_latency > results["invalidation"].min_latency
    assert results["polling"].min_latency > results["ttl"].min_latency
    assert results["polling"].avg_latency >= results["invalidation"].avg_latency


def test_invalidation_worst_case_latency(experiment):
    """Blocking fan-out: invalidation's max latency dominates."""
    _, _, results = experiment
    assert (
        results["invalidation"].max_latency
        >= results["ttl"].max_latency
    )


def test_server_cpu_ordering(experiment):
    """Polling has the highest server CPU utilisation."""
    _, _, results = experiment
    polling_cpu = results["polling"].cpu_utilization
    assert polling_cpu >= results["invalidation"].cpu_utilization
    assert polling_cpu >= results["ttl"].cpu_utilization
    # Sanity: utilisations in a server-shaped band, not ~0 or saturated.
    for key in PROTOCOL_ORDER:
        assert 0.02 < results[key].cpu_utilization < 0.95


def test_ttl_stale_hits_bounded_but_nonzero_overall(experiment):
    """TTL's stale serves exist and stay a small fraction of transfers."""
    trace_name, _, results = experiment
    ttl = results["ttl"]
    transfer_gap = results["polling"].replies_200 - ttl.replies_200
    assert transfer_gap >= 0
    # Paper: stale hits up to ~1% of file transfers (SASK worst).
    assert transfer_gap <= 0.05 * results["polling"].replies_200
