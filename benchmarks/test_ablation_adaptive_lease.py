"""Ablation G — adaptive leases: server state budget vs validation load.

The adaptive-leases follow-up to Section 6: the server tunes the lease
duration itself, shrinking it when site-list storage exceeds a budget
and growing it when state is cheap.  We sweep the budget on a SASK-like
workload and check that (a) end-of-run storage tracks the budget and
(b) tighter budgets cost proportionally more If-Modified-Since traffic
— automation of the Ablation C trade-off.
"""

import pytest
from conftest import write_results

from repro import (
    DAYS,
    ExperimentConfig,
    PROFILES,
    RngRegistry,
    generate_trace,
    invalidation,
    run_experiment,
)
from repro.core import adaptive_lease

SWEEP_SCALE = 0.15
BUDGETS = [2 * 1024, 8 * 1024, 32 * 1024]


@pytest.fixture(scope="module")
def sweep():
    trace = generate_trace(PROFILES["SASK"].scaled(SWEEP_SCALE), RngRegistry(seed=42))
    lifetime = 14 * DAYS
    rows = []
    for budget in BUDGETS:
        result = run_experiment(
            ExperimentConfig(
                trace=trace,
                protocol=adaptive_lease(state_budget_bytes=budget),
                mean_lifetime=lifetime,
            )
        )
        rows.append((budget, result))
    unbounded = run_experiment(
        ExperimentConfig(
            trace=trace, protocol=invalidation(), mean_lifetime=lifetime
        )
    )
    return rows, unbounded


def render(rows, unbounded) -> str:
    lines = ["Ablation G: adaptive leases, state budget sweep (SASK-like)"]
    lines.append(
        f"{'budget B':>10s}{'storage B':>11s}{'entries':>9s}{'IMS':>8s}"
        f"{'invalidations':>15s}{'violations':>12s}"
    )
    for budget, result in rows:
        lines.append(
            f"{budget:>10d}{result.sitelist_storage_bytes:>11d}"
            f"{result.sitelist_entries:>9d}{result.ims:>8d}"
            f"{result.invalidations:>15d}{result.violations:>12d}"
        )
    lines.append(
        f"{'unbounded':>10s}{unbounded.sitelist_storage_bytes:>11d}"
        f"{unbounded.sitelist_entries:>9d}{unbounded.ims:>8d}"
        f"{unbounded.invalidations:>15d}{unbounded.violations:>12d}"
    )
    return "\n".join(lines)


def test_ablation_benchmark(benchmark, sweep):
    rows, unbounded = sweep
    block = benchmark.pedantic(
        lambda: render(rows, unbounded), rounds=1, iterations=1
    )
    write_results("ablation_adaptive_lease", block)
    assert "budget" in block


def test_storage_tracks_budget(sweep):
    rows, _ = sweep
    for budget, result in rows:
        # The controller reacts within one period; allow 2x headroom.
        assert result.sitelist_storage_bytes <= 2 * budget


def test_tighter_budget_more_validations(sweep):
    rows, unbounded = sweep
    ims = [result.ims for _, result in rows]
    assert ims[0] >= ims[-1]
    assert ims[0] > unbounded.ims


def test_still_strongly_consistent(sweep):
    rows, unbounded = sweep
    for _, result in rows:
        assert result.violations == 0
    assert unbounded.violations == 0