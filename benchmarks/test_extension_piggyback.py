"""Extension — piggyback server invalidation (PSI) vs the paper's three.

The Krishnamurthy/Wills follow-up to this paper: attach the list of
documents modified since a proxy's last contact to every reply.  PSI
keeps adaptive TTL's message economy (no separate invalidation traffic,
no site lists, no fan-out stalls) while shrinking the stale window to
the proxy's inter-contact gap.

Expected shape: stale serves land between adaptive TTL's and
invalidation's zero, total messages stay at TTL levels, and no
worst-case latency spike appears.
"""

import pytest
from conftest import write_results

from repro import DAYS, ExperimentConfig, run_experiment
from repro.core import piggyback_invalidation


@pytest.fixture(scope="module")
def runs(harness, result_cache):
    # SDSC at 2.5-day lifetimes: the highest modification pressure, so
    # staleness differences are visible.
    ttl = harness("SDSC", 2.5, "ttl")
    inval = harness("SDSC", 2.5, "invalidation")
    key = ("SDSC", 2.5, "psi", ())
    psi = result_cache.get(key)
    if psi is None:
        psi = run_experiment(
            ExperimentConfig(
                trace=harness.get_trace("SDSC"),
                protocol=piggyback_invalidation(),
                mean_lifetime=2.5 * DAYS,
            )
        )
        result_cache[key] = psi
    return {"ttl": ttl, "psi": psi, "invalidation": inval}


def render(runs) -> str:
    lines = ["Extension: piggyback server invalidation (SDSC, 2.5d)"]
    lines.append(
        f"{'metric':24s}{'adaptive-ttl':>14s}{'psi':>12s}{'invalidation':>14s}"
    )
    rows = [
        ("total messages", "total_messages", "{}"),
        ("message bytes", "message_bytes", "{}"),
        ("stale serves", "stale_serves", "{}"),
        ("avg latency (s)", "avg_latency", "{:.3f}"),
        ("max latency (s)", "max_latency", "{:.3f}"),
        ("server CPU", "cpu_utilization", "{:.1%}"),
        ("sitelist entries", "sitelist_entries", "{}"),
    ]
    for label, attr, fmt in rows:
        lines.append(
            f"{label:24s}"
            f"{fmt.format(getattr(runs['ttl'], attr)):>14s}"
            f"{fmt.format(getattr(runs['psi'], attr)):>12s}"
            f"{fmt.format(getattr(runs['invalidation'], attr)):>14s}"
        )
    return "\n".join(lines)


def test_extension_benchmark(benchmark, runs):
    block = benchmark.pedantic(lambda: render(runs), rounds=1, iterations=1)
    write_results("extension_piggyback", block)
    assert "psi" in block


def test_psi_reduces_staleness_vs_ttl(runs):
    assert runs["psi"].stale_serves < runs["ttl"].stale_serves


def test_psi_keeps_ttl_message_economy(runs):
    """No separate invalidation traffic; totals stay near TTL's."""
    assert runs["psi"].invalidations == 0
    assert runs["psi"].total_messages <= 1.10 * runs["ttl"].total_messages


def test_psi_needs_no_site_lists(runs):
    assert runs["psi"].sitelist_entries == 0


def test_psi_avoids_fanout_latency_spike(runs):
    assert runs["psi"].max_latency < 0.5 * runs["invalidation"].max_latency