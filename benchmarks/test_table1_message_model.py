"""Table 1 — analytical message counts for the three approaches.

Regenerates the paper's Section 3 table by evaluating the symbolic
formulas and cross-validating them against exact protocol state machines
on randomized request/modification streams.
"""

import random

from conftest import write_results

from repro import simulate_stream, symbolic_counts
from repro.core import AdaptiveTtlPolicy, timed_stream_from_ops
from repro.workload import count_r_ri, parse_stream

PAPER_STREAM = "r r r m m m r r m r r r m m r"


def render_table1(reads: int, intervals: int) -> str:
    polling = symbolic_counts("polling", reads, intervals)
    inval = symbolic_counts("invalidation", reads, intervals)
    lines = [
        f"Table 1 instantiated on the paper's example stream "
        f"(R={reads}, RI={intervals})",
        f"{'Message':22s}{'Polling-Every-Time':>20s}{'Invalidation':>14s}"
        f"{'Adaptive TTL':>16s}",
        f"{'GET requests':22s}{polling.gets:>20d}{inval.gets:>14d}"
        f"{'0':>16s}",
        f"{'If-Modified-Since':22s}{polling.ims:>20d}{inval.ims:>14d}"
        f"{'TTL-missed':>16s}",
        f"{'304 replies':22s}{polling.replies_304:>20d}{inval.replies_304:>14d}"
        f"{'TTLm - TTLm-new':>16s}",
        f"{'Invalidations':22s}{polling.invalidations:>20d}"
        f"{inval.invalidations:>14d}{'0':>16s}",
        f"{'Total control':22s}{polling.control_messages:>20d}"
        f"{inval.control_messages:>14d}{'2*TTLm - TTLm-new':>16s}",
        f"{'File transfers':22s}{polling.file_transfers:>20d}"
        f"{inval.file_transfers:>14d}{'RI - stale hits':>16s}",
    ]
    return "\n".join(lines)


def test_table1_formulas_on_paper_stream(benchmark):
    ops = parse_stream(PAPER_STREAM)
    counts = count_r_ri(ops)

    def evaluate():
        return (
            symbolic_counts("polling", counts.reads, counts.intervals),
            symbolic_counts("invalidation", counts.reads, counts.intervals),
        )

    polling, inval = benchmark(evaluate)
    # Table 1 row checks: R=9, RI=4.
    assert counts.reads == 9 and counts.intervals == 4
    assert polling.ims == 9
    assert polling.replies_304 == 5
    assert polling.control_messages == 14  # 2R - RI
    assert inval.gets == 4 and inval.invalidations == 4
    assert inval.control_messages == 8  # 2 RI
    assert polling.file_transfers == inval.file_transfers == 4

    write_results("table1_message_model", render_table1(9, 4))


def test_table1_validated_against_state_machines(benchmark):
    """Exact simulation agrees with the formulas on random streams."""
    rng = random.Random(2024)
    streams = []
    for _ in range(200):
        ops = [rng.choice("rrm") for _ in range(rng.randint(1, 80))]
        times = sorted(rng.uniform(0, 10_000) for _ in ops)
        streams.append((ops, list(zip(times, ops))))

    def validate():
        ttl_policy = AdaptiveTtlPolicy(factor=0.3, min_ttl=0.0)
        checked = 0
        for ops, events in streams:
            counts = count_r_ri(ops)
            polling = simulate_stream(events, "polling")
            inval = simulate_stream(events, "invalidation")
            ttl = simulate_stream(events, "ttl", ttl_policy=ttl_policy,
                                  initial_age=5_000.0)
            # Strong protocols: minimum transfers, no stale data.
            assert polling.file_transfers == counts.intervals
            assert inval.file_transfers == counts.intervals
            assert polling.stale_serves == inval.stale_serves == 0
            # Polling control: 2R - RI (GET/IMS split differs on the
            # first access but the total matches the formula).
            assert polling.control_messages == max(
                0, 2 * counts.reads - counts.intervals
            )
            # Invalidation: at most twice the minimum.
            assert inval.control_messages <= 2 * counts.intervals
            # TTL: transfer savings == stale intervals.
            assert ttl.file_transfers == counts.intervals - ttl.stale_hits
            checked += 1
        return checked

    checked = benchmark.pedantic(validate, rounds=1, iterations=1)
    assert checked == 200


def test_ttl_message_rows_from_state_machine(benchmark):
    """TTL-missed accounting: IMS == TTL-missed, 304s == missed - new."""
    policy = AdaptiveTtlPolicy(factor=0.5, min_ttl=0.0)
    ops = parse_stream("r r m r r r m r")
    events = timed_stream_from_ops(ops, spacing=1000.0)

    def run():
        return simulate_stream(events, "ttl", ttl_policy=policy,
                               initial_age=500.0)

    counts = benchmark(run)
    assert counts.ims == counts.replies_304 + (
        counts.file_transfers - counts.gets
    )
