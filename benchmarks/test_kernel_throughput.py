"""Simulation-kernel throughput benchmarks.

Not a paper table — engineering due diligence for the substrate: the
replay experiments push ~10^6 events per run, so the kernel's events/
second figure bounds the whole suite's runtime.  These run with real
statistical rounds (unlike the one-shot replay benchmarks).
"""

from repro.sim import AllOf, Resource, Simulator, Store


def test_timeout_event_throughput(benchmark):
    """Schedule-and-process rate for bare timeouts."""

    def run():
        sim = Simulator()
        fired = [0]

        def bump():
            fired[0] += 1

        for i in range(10_000):
            sim.schedule_callback(float(i % 97), bump)
        sim.run()
        return fired[0]

    assert benchmark(run) == 10_000


def test_process_switch_throughput(benchmark):
    """Generator-process resume rate (ping-pong via a store)."""

    def run():
        sim = Simulator()
        ping, pong = Store(sim), Store(sim)
        rounds = 2_000

        def left(sim):
            for _ in range(rounds):
                ping.put(1)
                yield pong.get()

        def right(sim):
            for _ in range(rounds):
                yield ping.get()
                pong.put(1)

        sim.process(left(sim))
        sim.process(right(sim))
        sim.run()
        return rounds

    assert benchmark(run) == 2_000


def test_resource_contention_throughput(benchmark):
    """FIFO resource grant/release rate under contention."""

    def run():
        sim = Simulator()
        cpu = Resource(sim, capacity=2)
        done = [0]

        def worker(sim):
            for _ in range(50):
                with cpu.request() as req:
                    yield req
                    yield sim.timeout(0.001)
            done[0] += 1

        for _ in range(40):
            sim.process(worker(sim))
        sim.run()
        return done[0]

    assert benchmark(run) == 40


def test_condition_fanin_throughput(benchmark):
    """AllOf over many events (the coordinator's barrier pattern)."""

    def run():
        sim = Simulator()
        finished = [False]

        def waiter(sim):
            yield AllOf(sim, [sim.timeout(float(i % 13)) for i in range(2_000)])
            finished[0] = True

        sim.process(waiter(sim))
        sim.run()
        return finished[0]

    assert benchmark(run)

def test_hit_path_callback_throughput(benchmark):
    """Zero-allocation hit flow: chained ``call_later`` ping-pong.

    Mirrors ``ProxyCache.request_fast`` per cache hit — lookup callback,
    serve callback, next request — with no Event, Timeout or generator
    anywhere in the loop.
    """

    def run():
        sim = Simulator()
        fired = [0]
        rounds = 5_000

        def lookup():
            sim.call_later(0.0002, serve)

        def serve():
            fired[0] += 1
            if fired[0] < rounds:
                sim.call_later(0.0008, lookup)

        sim.call_later(0.0008, lookup)
        sim.run()
        return fired[0]

    assert benchmark(run) == 5_000


def test_bucketed_timeout_storm_throughput(benchmark):
    """Timers landing beyond the calendar horizon (far-heap traffic).

    Delays up to ~1000 s overflow the near-future window, so entries
    migrate far heap -> calendar bucket -> current run as the clock
    advances — the full two-level scheduler machinery.
    """

    def run():
        sim = Simulator()
        fired = [0]

        def bump():
            fired[0] += 1

        for i in range(10_000):
            sim.schedule_callback(float((i * 37) % 1009), bump)
        sim.run()
        return fired[0]

    assert benchmark(run) == 10_000


def test_sleep_pool_throughput(benchmark):
    """Pooled one-shot timers: one process sleeping in a tight loop."""

    def run():
        sim = Simulator()
        done = [0]
        rounds = 10_000

        def proc(sim):
            for _ in range(rounds):
                yield sim.sleep(0.001)
                done[0] += 1

        sim.process(proc(sim))
        sim.run()
        return done[0]

    assert benchmark(run) == 10_000
