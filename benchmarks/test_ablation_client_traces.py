"""Ablation F — server traces vs. client-trace-like hit ratios.

Section 7: "Since the requests seen by the server are probably already
filtered by the client caches, using server traces leads to lower hit
ratios at the client sites.  This means that, in reality,
polling-every-time would probably perform even worse than the results
shown here.  However, we expect the relative comparison between
invalidation and adaptive TTL to stay the same."

We emulate client-trace workloads by raising the revisit probability
(more temporal locality -> higher proxy hit ratios) and check both
predictions: polling's overhead grows with the hit ratio, and the
invalidation-vs-TTL comparison is insensitive to it.
"""

from dataclasses import replace

import pytest
from conftest import write_results

from repro import (
    DAYS,
    ExperimentConfig,
    PROFILES,
    RngRegistry,
    adaptive_ttl,
    generate_trace,
    invalidation,
    poll_every_time,
    run_experiment,
)

SWEEP_SCALE = 0.15
REVISIT_LEVELS = [0.24, 0.50, 0.75]  # server-trace-like -> client-trace-like


@pytest.fixture(scope="module")
def sweep():
    rows = []
    for revisit in REVISIT_LEVELS:
        profile = replace(
            PROFILES["SDSC"].scaled(SWEEP_SCALE), revisit_prob=revisit
        )
        trace = generate_trace(profile, RngRegistry(seed=42))
        per_protocol = {}
        for name, factory in (
            ("polling", poll_every_time),
            ("invalidation", invalidation),
            ("ttl", adaptive_ttl),
        ):
            per_protocol[name] = run_experiment(
                ExperimentConfig(
                    trace=trace, protocol=factory(), mean_lifetime=25 * DAYS
                )
            )
        rows.append((revisit, per_protocol))
    return rows


def render(rows) -> str:
    lines = [
        "Ablation F: hit-ratio sensitivity (server-trace vs client-trace)"
    ]
    lines.append(
        f"{'revisit':>9s}{'hit ratio':>11s}{'poll/inval msgs':>17s}"
        f"{'inval/ttl msgs':>16s}{'poll CPU':>10s}{'inval CPU':>11s}"
    )
    for revisit, results in rows:
        hit_ratio = results["invalidation"].counters.hit_ratio
        poll_ratio = (
            results["polling"].total_messages
            / results["invalidation"].total_messages
        )
        ttl_ratio = (
            results["invalidation"].total_messages
            / results["ttl"].total_messages
        )
        lines.append(
            f"{revisit:>9.2f}{hit_ratio:>11.2f}{poll_ratio:>17.2f}"
            f"{ttl_ratio:>16.2f}"
            f"{results['polling'].cpu_utilization:>10.1%}"
            f"{results['invalidation'].cpu_utilization:>11.1%}"
        )
    return "\n".join(lines)


def test_ablation_benchmark(benchmark, sweep):
    block = benchmark.pedantic(lambda: render(sweep), rounds=1, iterations=1)
    write_results("ablation_client_traces", block)
    assert "revisit" in block


def test_hit_ratio_rises_with_revisit_prob(sweep):
    ratios = [results["invalidation"].counters.hit_ratio for _, results in sweep]
    assert ratios[0] < ratios[-1]


def test_polling_overhead_grows_with_hit_ratio(sweep):
    """More hits -> more validations polling does that others skip."""
    overheads = [
        results["polling"].total_messages
        / results["invalidation"].total_messages
        for _, results in sweep
    ]
    assert overheads[-1] > overheads[0]


def test_invalidation_vs_ttl_stable(sweep):
    """The invalidation/TTL comparison stays the same (paper Section 7)."""
    ratios = [
        results["invalidation"].total_messages
        / results["ttl"].total_messages
        for _, results in sweep
    ]
    # Always "similar or fewer", at every hit-ratio level.
    assert all(r <= 1.06 for r in ratios)
