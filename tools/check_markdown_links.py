#!/usr/bin/env python3
"""Check relative markdown links, stdlib-only.

Scans the given markdown files (or every ``*.md`` under given
directories) for inline links and validates that relative targets exist
on disk.  External schemes (``http(s)://``, ``mailto:``) and bare
in-page anchors (``#section``) are skipped; a relative target's own
``#fragment`` is stripped before the existence check.

Usage::

    python tools/check_markdown_links.py README.md docs/

Exits 0 when every relative link resolves, 1 otherwise (one line per
broken link), 2 on bad invocation.
"""

from __future__ import annotations

import os
import re
import sys
from typing import Iterator, List, Tuple

#: Inline markdown links: [text](target).  Images share the syntax.
_LINK = re.compile(r"\[[^\]]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")

#: Schemes that point outside the repository; not checked.
_EXTERNAL = ("http://", "https://", "mailto:", "ftp://")


def iter_markdown_files(paths: List[str]) -> Iterator[str]:
    """Yield every markdown file named by ``paths`` (dirs recurse)."""
    for path in paths:
        if os.path.isdir(path):
            for root, _dirs, files in os.walk(path):
                for name in sorted(files):
                    if name.endswith(".md"):
                        yield os.path.join(root, name)
        else:
            yield path


def iter_links(path: str) -> Iterator[Tuple[int, str]]:
    """Yield ``(line_number, target)`` for each inline link in a file.

    Fenced code blocks are skipped — CLI examples routinely contain
    bracketed text that only looks like a link.
    """
    in_fence = False
    with open(path, "r", encoding="utf-8", errors="replace") as handle:
        for lineno, line in enumerate(handle, start=1):
            if line.lstrip().startswith("```"):
                in_fence = not in_fence
                continue
            if in_fence:
                continue
            for match in _LINK.finditer(line):
                yield lineno, match.group(1)


def broken_links(path: str) -> List[str]:
    """Return ``file:line: target`` strings for unresolved relative links."""
    problems: List[str] = []
    base = os.path.dirname(os.path.abspath(path))
    for lineno, target in iter_links(path):
        if target.startswith(_EXTERNAL) or target.startswith("#"):
            continue
        relative = target.split("#", 1)[0]
        if not relative:
            continue
        resolved = os.path.normpath(os.path.join(base, relative))
        if not os.path.exists(resolved):
            problems.append(f"{path}:{lineno}: broken link -> {target}")
    return problems


def main(argv: List[str]) -> int:
    """CLI entry point; returns the process exit code."""
    if not argv:
        print(__doc__.strip().splitlines()[0], file=sys.stderr)
        print("usage: check_markdown_links.py FILE_OR_DIR ...", file=sys.stderr)
        return 2
    checked = 0
    problems: List[str] = []
    for path in iter_markdown_files(argv):
        checked += 1
        problems.extend(broken_links(path))
    for problem in problems:
        print(problem)
    print(
        f"checked {checked} markdown file(s): "
        f"{len(problems)} broken link(s)",
        file=sys.stderr,
    )
    return 1 if problems else 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
