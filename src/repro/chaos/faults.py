"""Seeded, serializable fault schedules.

A :class:`FaultSchedule` is plain data: a list of :class:`Fault` records
(kind, window, target, parameters), a seed, and the horizon it was
sampled against.  Everything round-trips through JSON, so a violating
schedule can be archived, shipped in a bug report, and replayed
bit-identically — including its probabilistic link faults, whose per-fault
RNG seed travels in the fault's parameters rather than deriving from
global state.

Fault kinds:

``proxy_crash``
    A proxy host dies at ``at`` and restarts at ``until``; ``cold=True``
    wipes the cache on restart, otherwise the surviving entries come back
    marked questionable (Section 4).
``server_crash``
    The server site dies and recovers with the INVALIDATE-by-server
    fan-out; ``lose_sitelog=True`` additionally destroys the persistent
    known-sites log, forcing recovery via the operator's proxy roster.
``partition``
    ``group_a`` and ``group_b`` cannot exchange messages during the
    window; reliable channels retry across it.
``link_fault``
    Probabilistic loss/duplication plus latency spike/jitter on one
    directed link (``"*"`` wildcards allowed).
``clock_skew``
    A proxy host's clock runs ``skew`` seconds off during the window
    (negative = behind, the direction lease expiry must tolerate).
``shard_crash``
    One accelerator shard of a sharded cluster (``shards > 1``) dies and
    recovers with the INVALIDATE-by-server fan-out plus a site-list
    handoff back from its failover shards; ``lose_sitelog=True`` also
    destroys that shard's persistent known-sites log.
``shard_rebalance``
    A planned drain: the shard's ring segment (and its site lists) move
    to the other shards at ``at`` and move back at ``until`` — no crash,
    no lost state, just live ownership churn.

The shard kinds are only sampled when :func:`random_schedule` is given a
``shards`` sequence; without it the sampling stream is bit-identical to
the pre-cluster harness, so archived schedule seeds replay unchanged.
"""

from __future__ import annotations

import json
import random
from dataclasses import dataclass, field
from typing import Any, Dict, List, Sequence, Tuple

__all__ = [
    "Fault",
    "FaultSchedule",
    "FAULT_KINDS",
    "MAX_CLOCK_SKEW",
    "random_schedule",
    "apply_schedule",
]

FAULT_KINDS = (
    "proxy_crash",
    "server_crash",
    "partition",
    "link_fault",
    "clock_skew",
    "shard_crash",
    "shard_rebalance",
)

#: Bound on sampled clock skew, seconds.  Campaigns configure the lease
#: grace above this so skewed-but-bounded clocks stay inside the strong
#: guarantee (unbounded skew is unrecoverable for any lease scheme).
MAX_CLOCK_SKEW = 30.0

#: Relative sampling weights per fault kind (link faults are the most
#: interaction-rich, so they are drawn most often).  The shard kinds are
#: appended only when a cluster is present — keeping this base dict (and
#: its order) untouched preserves the RNG stream of shard-less
#: schedules, so archived seeds replay bit-identically.
_KIND_WEIGHTS = {
    "proxy_crash": 2.0,
    "server_crash": 1.5,
    "partition": 2.0,
    "link_fault": 3.0,
    "clock_skew": 1.5,
}

#: Extra weights appended when sampling against a sharded cluster.
_SHARD_KIND_WEIGHTS = {
    "shard_crash": 2.0,
    "shard_rebalance": 1.5,
}


@dataclass(frozen=True)
class Fault:
    """One fault: a kind, an active window, a target, and parameters."""

    kind: str
    at: float
    until: float
    target: str = ""
    params: Dict[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise ValueError(f"unknown fault kind {self.kind!r}")
        if self.until <= self.at:
            raise ValueError(f"fault window [{self.at}, {self.until}] is empty")
        if self.at < 0:
            raise ValueError("fault cannot start before the run")

    def to_dict(self) -> Dict[str, Any]:
        """JSON-compatible form (inverse of :meth:`from_dict`)."""
        return {
            "kind": self.kind,
            "at": self.at,
            "until": self.until,
            "target": self.target,
            "params": dict(self.params),
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "Fault":
        """Rebuild a fault from its :meth:`to_dict` form."""
        return cls(
            kind=data["kind"],
            at=float(data["at"]),
            until=float(data["until"]),
            target=data.get("target", ""),
            params=dict(data.get("params", {})),
        )

    def describe(self) -> str:
        """One-line human summary for reports."""
        extra = ""
        if self.params:
            extra = " " + ",".join(f"{k}={v}" for k, v in sorted(self.params.items()))
        return (
            f"{self.kind}[{self.at:.1f}s..{self.until:.1f}s]"
            f" {self.target}{extra}"
        )


@dataclass(frozen=True)
class FaultSchedule:
    """An ordered collection of faults, sampled from one seed."""

    seed: int
    horizon: float
    faults: Tuple[Fault, ...] = ()

    def __len__(self) -> int:
        return len(self.faults)

    def without(self, index: int) -> "FaultSchedule":
        """A copy with fault ``index`` removed (the shrinking step)."""
        faults = self.faults[:index] + self.faults[index + 1:]
        return FaultSchedule(seed=self.seed, horizon=self.horizon, faults=faults)

    def to_dict(self) -> Dict[str, Any]:
        """JSON-compatible form (inverse of :meth:`from_dict`)."""
        return {
            "seed": self.seed,
            "horizon": self.horizon,
            "faults": [f.to_dict() for f in self.faults],
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "FaultSchedule":
        """Rebuild a schedule from its :meth:`to_dict` form."""
        return cls(
            seed=int(data["seed"]),
            horizon=float(data["horizon"]),
            faults=tuple(Fault.from_dict(f) for f in data.get("faults", [])),
        )

    def to_json(self) -> str:
        """Canonical JSON encoding (sorted keys, reproducer-friendly)."""
        return json.dumps(self.to_dict(), sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "FaultSchedule":
        """Parse a schedule from :meth:`to_json` output."""
        return cls.from_dict(json.loads(text))

    def describe(self) -> List[str]:
        """One human-readable line per fault, in schedule order."""
        return [f.describe() for f in self.faults]


def _sample_fault(
    rng: random.Random,
    horizon: float,
    proxies: Sequence[str],
    shards: Sequence[str] = (),
) -> Fault:
    weights = dict(_KIND_WEIGHTS)
    if shards:
        weights.update(_SHARD_KIND_WEIGHTS)
    kinds = list(weights)
    kind = rng.choices(kinds, weights=[weights[k] for k in kinds])[0]
    # Start inside the first 60% of the run, heal by 95% of it: every
    # fault leaves room for the recovery machinery to finish inside the
    # horizon, so retry loops always terminate.
    at = rng.uniform(0.05, 0.60) * horizon
    until = min(at + rng.uniform(0.05, 0.30) * horizon, 0.95 * horizon)
    if until <= at:
        until = at + 0.01 * horizon

    if kind == "proxy_crash":
        return Fault(
            kind, at, until,
            target=rng.choice(list(proxies)),
            params={"cold": rng.random() < 0.3},
        )
    if kind == "server_crash":
        return Fault(
            kind, at, until,
            target="server",
            params={"lose_sitelog": rng.random() < 0.3},
        )
    if kind == "partition":
        cut = rng.sample(list(proxies), rng.randint(1, len(proxies)))
        return Fault(
            kind, at, until,
            target="|".join(sorted(cut)),
            params={"group_a": ["server"], "group_b": sorted(cut)},
        )
    if kind == "link_fault":
        proxy = rng.choice(list(proxies))
        src, dst = rng.choice(
            [("server", proxy), (proxy, "server"), ("server", "*"), ("*", "server")]
        )
        return Fault(
            kind, at, until,
            target=f"{src}->{dst}",
            params={
                "src": src,
                "dst": dst,
                "drop_prob": round(rng.uniform(0.1, 0.9), 3),
                "dup_prob": round(rng.uniform(0.0, 0.5), 3),
                "extra_delay": round(rng.uniform(0.0, 1.0), 3),
                "jitter": round(rng.uniform(0.0, 0.5), 3),
                "rng_seed": rng.randrange(2**32),
            },
        )
    if kind == "shard_crash":
        return Fault(
            kind, at, until,
            target=rng.choice(list(shards)),
            params={"lose_sitelog": rng.random() < 0.3},
        )
    if kind == "shard_rebalance":
        return Fault(kind, at, until, target=rng.choice(list(shards)))
    # clock_skew
    return Fault(
        kind, at, until,
        target=rng.choice(list(proxies)),
        params={"skew": round(rng.uniform(-MAX_CLOCK_SKEW, MAX_CLOCK_SKEW), 3)},
    )


def random_schedule(
    seed: int,
    horizon: float,
    proxies: Sequence[str],
    max_faults: int = 5,
    min_faults: int = 1,
    shards: Sequence[str] = (),
) -> FaultSchedule:
    """Sample a schedule of 1..``max_faults`` faults over ``horizon``.

    Deterministic in ``seed``: the same seed, horizon, proxy list and
    shard list always produce the identical schedule, in any process.
    With an empty ``shards`` (the default) the sampling is bit-identical
    to the pre-cluster harness; passing shard addresses adds
    ``shard_crash`` / ``shard_rebalance`` to the draw.
    """
    if horizon <= 0:
        raise ValueError("horizon must be positive")
    if not proxies:
        raise ValueError("need at least one proxy to fault")
    if not 1 <= min_faults <= max_faults:
        raise ValueError("need 1 <= min_faults <= max_faults")
    rng = random.Random(seed)
    count = rng.randint(min_faults, max_faults)
    faults = tuple(
        sorted(
            (_sample_fault(rng, horizon, proxies, shards) for _ in range(count)),
            key=lambda f: (f.at, f.kind, f.target),
        )
    )
    return FaultSchedule(seed=seed, horizon=horizon, faults=faults)


def apply_schedule(
    schedule: FaultSchedule, injector, server, proxies, cluster=None
) -> None:
    """Arm every fault in ``schedule`` against a built testbed.

    Args:
        injector: a :class:`repro.failures.FailureInjector`.
        server: the :class:`repro.server.ServerSite` (or the
            :class:`repro.server.AcceleratorCluster` facade).
        proxies: ``{address: ProxyCache}`` for the leaf proxies.
        cluster: the :class:`repro.server.AcceleratorCluster` when the
            run is sharded; required for ``shard_*`` faults.  Partitions
            and link faults naming ``server`` are widened to cover the
            shard addresses too, so the "server side of the cut" keeps
            meaning the whole origin tier.
    """

    def origin_side(group):
        expanded = []
        for address in group:
            expanded.append(address)
            if cluster is not None and address == "server":
                expanded.extend(s.address for s in cluster.shards)
        return expanded

    for fault in schedule.faults:
        params = fault.params
        if fault.kind == "proxy_crash":
            injector.schedule_proxy_crash(
                proxies[fault.target], at=fault.at, recover_at=fault.until,
                cold=bool(params.get("cold", False)),
            )
        elif fault.kind == "server_crash":
            injector.schedule_server_crash(
                server, at=fault.at, recover_at=fault.until,
                lose_sitelog=bool(params.get("lose_sitelog", False)),
            )
        elif fault.kind == "partition":
            injector.schedule_partition(
                origin_side(params["group_a"]),
                origin_side(params["group_b"]),
                at=fault.at, heal_at=fault.until,
            )
        elif fault.kind == "link_fault":
            seed = int(params.get("rng_seed", 0))
            endpoints = [(params["src"], params["dst"])]
            if cluster is not None:
                endpoints = [
                    (src, dst)
                    for src in origin_side([params["src"]])
                    for dst in origin_side([params["dst"]])
                ]
            for offset, (src, dst) in enumerate(endpoints):
                injector.schedule_link_fault(
                    src, dst, at=fault.at, until=fault.until,
                    drop_prob=float(params.get("drop_prob", 0.0)),
                    dup_prob=float(params.get("dup_prob", 0.0)),
                    extra_delay=float(params.get("extra_delay", 0.0)),
                    jitter=float(params.get("jitter", 0.0)),
                    rng=random.Random(seed + offset),
                )
        elif fault.kind == "clock_skew":
            injector.schedule_clock_skew(
                proxies[fault.target], at=fault.at, until=fault.until,
                skew=float(params["skew"]),
            )
        elif fault.kind == "shard_crash":
            if cluster is None:
                raise ValueError(
                    "schedule contains shard_crash but the run has no "
                    "accelerator cluster (shards=1)"
                )
            injector.schedule_shard_crash(
                cluster, fault.target, at=fault.at, recover_at=fault.until,
                lose_sitelog=bool(params.get("lose_sitelog", False)),
            )
        elif fault.kind == "shard_rebalance":
            if cluster is None:
                raise ValueError(
                    "schedule contains shard_rebalance but the run has no "
                    "accelerator cluster (shards=1)"
                )
            injector.schedule_shard_rebalance(
                cluster, fault.target, at=fault.at, until=fault.until,
            )
        else:  # pragma: no cover - Fault.__post_init__ rejects these
            raise ValueError(f"unknown fault kind {fault.kind!r}")
