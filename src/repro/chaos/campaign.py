"""Chaos campaigns: sample N schedules, audit each, shrink what breaks.

``run_campaign`` is the one-command answer to "did this change break
strong consistency under faults?":

1. run the configuration once fault-free (the *baseline*) to measure the
   replay horizon faults are sampled within — and to confirm the
   protocol is clean before any fault is thrown at it;
2. derive one deterministic schedule per campaign slot via the
   :func:`repro.replay.sweep.derive_point_seed` convention (so a
   campaign re-run, resumed run, or parallel run sees bit-identical
   schedules);
3. run every schedule — serially or through a
   :class:`repro.replay.ParallelSweepRunner` (atomic JSON checkpoints,
   resume, per-point timeout) — with the
   :class:`~repro.chaos.auditor.ConsistencyAuditor` attached;
4. **shrink** every violating schedule to a minimal reproducer with a
   greedy fault-removal loop: repeatedly drop the first fault whose
   removal keeps the violation alive, until no single removal does.

For lease-granting protocols the campaign raises the accelerator's
``lease_grace`` above :data:`~repro.chaos.faults.MAX_CLOCK_SKEW`, the
deployment rule that makes bounded clock skew survivable.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Tuple

from ..api import run_experiment, run_sweep
from ..replay.experiment import ExperimentConfig, ExperimentResult
from ..replay.sweep import derive_point_seed
from .faults import MAX_CLOCK_SKEW, FaultSchedule, random_schedule

__all__ = [
    "ScheduleVerdict",
    "CampaignReport",
    "run_campaign",
    "shrink_schedule",
]


@dataclass(frozen=True)
class ScheduleVerdict:
    """The audited outcome of one schedule's replay."""

    label: str
    ok: bool
    fault_count: int
    violation_count: int
    stale_serves: int
    allowed_staleness: Dict[str, int]
    messages_sent: int
    messages_lost: int
    duplicates_delivered: int
    invalidations_abandoned: int
    failed_requests: int
    wall_time: float
    schedule: Dict[str, Any]
    violations: List[Dict[str, Any]] = field(default_factory=list)

    def to_dict(self) -> Dict[str, Any]:
        """JSON-compatible form for campaign reports."""
        return dataclasses.asdict(self)


@dataclass(frozen=True)
class CampaignReport:
    """Everything one campaign produced."""

    protocol: str
    trace_name: str
    strong: bool
    seed: int
    num_schedules: int
    verdicts: Tuple[ScheduleVerdict, ...]
    #: Minimal reproducers for violating schedules: label -> shrunk
    #: schedule dict (empty when the campaign is clean).
    reproducers: Dict[str, Dict[str, Any]] = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        """True when no schedule produced a violation."""
        return all(v.ok for v in self.verdicts)

    @property
    def total_violations(self) -> int:
        """Strong-consistency violations summed across all schedules."""
        return sum(v.violation_count for v in self.verdicts)

    @property
    def total_stale_serves(self) -> int:
        """Stale serves summed across all schedules."""
        return sum(v.stale_serves for v in self.verdicts)

    def allowed_staleness(self) -> Dict[str, int]:
        """Allowed-staleness totals by reason, across all schedules."""
        totals: Dict[str, int] = {}
        for verdict in self.verdicts:
            for reason, count in verdict.allowed_staleness.items():
                totals[reason] = totals.get(reason, 0) + count
        return totals

    def to_dict(self) -> Dict[str, Any]:
        """JSON-compatible form (the ``repro chaos --json`` payload)."""
        return {
            "protocol": self.protocol,
            "trace": self.trace_name,
            "strong": self.strong,
            "seed": self.seed,
            "num_schedules": self.num_schedules,
            "ok": self.ok,
            "total_violations": self.total_violations,
            "total_stale_serves": self.total_stale_serves,
            "allowed_staleness": self.allowed_staleness(),
            "verdicts": [v.to_dict() for v in self.verdicts],
            "reproducers": dict(self.reproducers),
        }


def _with_lease_grace(config: ExperimentConfig) -> ExperimentConfig:
    """Apply the clock-skew deployment rule for lease-granting protocols.

    Bounded skew (``|skew| <= MAX_CLOCK_SKEW``) is survivable iff the
    server keeps invalidating entries for a grace at least that long
    after lease expiry; plain invalidation has infinite leases, so skew
    cannot touch it and the config is returned unchanged.
    """
    accel = config.protocol.accelerator
    if not accel.grant_leases or accel.lease_grace > MAX_CLOCK_SKEW:
        return config
    protocol = dataclasses.replace(
        config.protocol,
        accelerator=dataclasses.replace(accel, lease_grace=MAX_CLOCK_SKEW + 2.0),
    )
    return dataclasses.replace(config, protocol=protocol)


def _verdict(
    label: str, schedule: FaultSchedule, result: ExperimentResult
) -> ScheduleVerdict:
    chaos = result.chaos or {}
    network = chaos.get("network", {})
    violation_count = int(chaos.get("violation_count", 0))
    return ScheduleVerdict(
        label=label,
        ok=violation_count == 0,
        fault_count=len(schedule),
        violation_count=violation_count,
        stale_serves=int(chaos.get("stale_serves", 0)),
        allowed_staleness=dict(chaos.get("allowed_staleness", {})),
        messages_sent=int(network.get("messages_sent", 0)),
        messages_lost=int(network.get("messages_lost", 0)),
        duplicates_delivered=int(network.get("duplicates_delivered", 0)),
        invalidations_abandoned=int(network.get("invalidations_abandoned", 0)),
        failed_requests=int(result.counters.failed),
        wall_time=result.wall_time,
        schedule=schedule.to_dict(),
        violations=list(chaos.get("violations", [])),
    )


def shrink_schedule(
    base: ExperimentConfig,
    schedule: FaultSchedule,
    progress: Optional[Callable[[str], None]] = None,
) -> Tuple[FaultSchedule, int]:
    """Greedily shrink a violating schedule to a minimal reproducer.

    Repeatedly re-runs the experiment with one fault removed; a removal
    is kept whenever the violation survives it.  Terminates when no
    single removal keeps the violation alive (a local minimum: every
    remaining fault is necessary).  Deterministic: every re-run replays
    the same config, and each fault carries its own RNG seed.

    Returns ``(shrunk schedule, violation count of the shrunk run)``.
    """

    def violations_of(candidate: FaultSchedule) -> int:
        config = dataclasses.replace(
            base, fault_schedule=candidate, audit=True
        )
        chaos = run_experiment(config).chaos or {}
        return int(chaos.get("violation_count", 0))

    current = schedule
    count = violations_of(current)
    if count == 0:
        return current, 0
    changed = True
    while changed and len(current) > 0:
        changed = False
        for index in range(len(current)):
            candidate = current.without(index)
            candidate_count = violations_of(candidate)
            if candidate_count > 0:
                if progress is not None:
                    progress(
                        f"[shrink] dropped fault {index} "
                        f"({len(candidate)} left, "
                        f"{candidate_count} violation(s))"
                    )
                current, count = candidate, candidate_count
                changed = True
                break
    return current, count


def run_campaign(
    base: ExperimentConfig,
    num_schedules: int,
    seed: int = 7,
    max_faults: int = 5,
    runner=None,
    shrink: bool = True,
    progress: Optional[Callable[[str], None]] = None,
) -> CampaignReport:
    """Run a chaos campaign against one (protocol, trace) configuration.

    Args:
        base: the experiment configuration to stress; its own
            ``fault_schedule`` / ``audit`` fields are overridden.
        num_schedules: how many random schedules to sample and replay.
        seed: campaign seed; per-schedule seeds derive from it via
            :func:`derive_point_seed`, so they are independent of the
            experiment's workload seed.
        max_faults: cap on faults per schedule (1..max sampled).
        runner: optional sweep executor (e.g.
            :class:`repro.replay.ParallelSweepRunner` for parallel,
            checkpointed, resumable execution); ``None`` runs serially.
        shrink: shrink violating schedules to minimal reproducers.
        progress: optional line-oriented progress callback.
    """
    if num_schedules < 1:
        raise ValueError("need at least one schedule")

    def emit(line: str) -> None:
        if progress is not None:
            progress(line)

    base = _with_lease_grace(
        dataclasses.replace(base, fault_schedule=None, audit=True)
    )
    strong = base.protocol.strong

    emit("[chaos] baseline (fault-free) run...")
    baseline_result = run_experiment(base)
    horizon = max(baseline_result.wall_time, 1.0)
    baseline = _verdict(
        "baseline",
        FaultSchedule(seed=seed, horizon=horizon, faults=()),
        baseline_result,
    )
    emit(
        f"[chaos] baseline: wall={horizon:.1f}s "
        f"violations={baseline.violation_count}"
    )

    proxies = [f"proxy-{i}" for i in range(base.num_pseudo_clients)]
    shards = (
        [f"shard-{i}" for i in range(base.shards)] if base.shards > 1 else ()
    )
    schedules: Dict[str, FaultSchedule] = {}
    points = []
    for i in range(num_schedules):
        label = f"chaos-{i:04d}"
        schedule = random_schedule(
            derive_point_seed(seed, label), horizon, proxies,
            max_faults=max_faults, shards=shards,
        )
        schedules[label] = schedule
        points.append((label, {"fault_schedule": schedule, "audit": True}))

    results = run_sweep(base, points, runner=runner)

    verdicts: List[ScheduleVerdict] = [baseline]
    for item in results:
        verdict = _verdict(item.label, schedules[item.label], item.result)
        verdicts.append(verdict)
        status = "ok" if verdict.ok else f"{verdict.violation_count} VIOLATION(S)"
        emit(
            f"[chaos] {verdict.label}: {status} "
            f"faults={verdict.fault_count} stale={verdict.stale_serves} "
            f"lost={verdict.messages_lost}"
        )

    reproducers: Dict[str, Dict[str, Any]] = {}
    if shrink:
        for verdict in verdicts:
            if verdict.ok or verdict.label == "baseline":
                continue
            emit(f"[chaos] shrinking {verdict.label}...")
            shrunk, count = shrink_schedule(
                base, schedules[verdict.label], progress=progress
            )
            emit(
                f"[chaos] {verdict.label}: minimal reproducer has "
                f"{len(shrunk)} fault(s), {count} violation(s)"
            )
            reproducers[verdict.label] = {
                "violation_count": count,
                "schedule": shrunk.to_dict(),
                "faults": shrunk.describe(),
            }

    return CampaignReport(
        protocol=base.protocol.name,
        trace_name=base.trace.name,
        strong=strong,
        seed=seed,
        num_schedules=num_schedules,
        verdicts=tuple(verdicts),
        reproducers=reproducers,
    )
