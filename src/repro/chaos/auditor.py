"""The strong-consistency auditor.

Rides along a replay (as every proxy's ``observer``) and classifies each
*unvalidated* cached serve of outdated content:

* For a **weak** protocol (adaptive TTL, piggyback), staleness is the
  accepted trade-off — recorded, never a violation.
* For a **strong** protocol, staleness is allowed only while someone
  still *owes* the proxy an invalidation:

  - ``write-pending`` — the modification's INVALIDATE is registered but
    not yet delivered (the paper's definition: the write has not
    completed, so a concurrent read may legally return the old version);
  - ``origin-down`` — the origin is crashed, so the write itself cannot
    complete until recovery;
  - ``recovery-pending`` — a post-crash INVALIDATE-by-server for this
    proxy is still in flight;
  - ``detection-pending`` — browser-based detection only: the author has
    not yet viewed the modified page, so the accelerator cannot know.

  A stale serve with **no** open obligation is a *silent-staleness*
  violation, and a serve of a copy whose own INVALIDATE was already
  delivered is a *post-delivery-serve* violation (caught by the proxy's
  write-completion marker).  Either means the protocol broke its
  guarantee under the fault schedule in play.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import Any, Dict, List

__all__ = ["ConsistencyAuditor", "ViolationRecord"]

#: Cap on per-violation detail records kept (counts are always exact).
MAX_VIOLATION_DETAILS = 100


@dataclass(frozen=True)
class ViolationRecord:
    """One observed strong-consistency violation."""

    time: float
    kind: str
    url: str
    client_id: str
    proxy: str
    staleness_age: float

    def to_dict(self) -> Dict[str, Any]:
        """JSON-compatible form for campaign reports."""
        return {
            "time": self.time,
            "kind": self.kind,
            "url": self.url,
            "client_id": self.client_id,
            "proxy": self.proxy,
            "staleness_age": self.staleness_age,
        }


class ConsistencyAuditor:
    """Classifies every cached serve while a replay runs.

    Args:
        server: the :class:`repro.server.ServerSite` whose obligations
            ledger distinguishes in-flight windows from violations.
        strong: whether the protocol under test claims strong consistency.
        detection: the experiment's modification-detection mode
            (``"notify"`` or ``"browser"``); browser mode has one extra
            allowed window (the author has not viewed the page yet).
    """

    def __init__(self, server, strong: bool, detection: str = "notify") -> None:
        self.server = server
        self.strong = strong
        self.detection = detection
        self.serves = 0
        self.stale_serves = 0
        self.allowed: Counter = Counter()
        self.violations: List[ViolationRecord] = []
        self.violation_count = 0

    # -- the proxy observer hook -------------------------------------------

    def on_serve(self, proxy, entry, outcome) -> None:
        """Called by the proxy after every cached serve."""
        self.serves += 1
        if outcome.validated:
            return  # just confirmed by the origin: fresh by definition
        if outcome.violation and self.strong:
            self._record(proxy, entry, outcome, "post-delivery-serve")
            return
        if not outcome.stale_served:
            return
        self.stale_serves += 1
        if not self.strong:
            self.allowed["weak-protocol"] += 1
            return
        reason = self._excuse(proxy, entry)
        if reason is not None:
            self.allowed[reason] += 1
        else:
            self._record(proxy, entry, outcome, "silent-staleness")

    def _excuse(self, proxy, entry) -> str:
        """The open obligation covering this stale serve, or ``None``."""
        server = self.server
        if server.write_pending(entry.url, entry.client_id):
            return "write-pending"
        if not server.up:
            return "origin-down"
        if server.recovery_pending(proxy.address):
            return "recovery-pending"
        if self.detection == "browser" and server.change_pending_detection(
            entry.url
        ):
            return "detection-pending"
        return None

    def _record(self, proxy, entry, outcome, kind: str) -> None:
        self.violation_count += 1
        if len(self.violations) < MAX_VIOLATION_DETAILS:
            self.violations.append(
                ViolationRecord(
                    time=proxy.sim.now,
                    kind=kind,
                    url=entry.url,
                    client_id=entry.client_id,
                    proxy=proxy.address,
                    staleness_age=outcome.staleness_age,
                )
            )

    # -- reporting ----------------------------------------------------------

    def report(self) -> Dict[str, Any]:
        """JSON-compatible verdict for this replay."""
        return {
            "strong": self.strong,
            "serves": self.serves,
            "stale_serves": self.stale_serves,
            "allowed_staleness": dict(self.allowed),
            "violation_count": self.violation_count,
            "violations": [v.to_dict() for v in self.violations],
        }
