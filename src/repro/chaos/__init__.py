"""Chaos campaigns: randomized fault schedules + a consistency auditor.

The paper proves strong consistency on three hand-written failure
scenarios; this package *checks* it under arbitrary seeded combinations
of crashes, partitions, lossy/duplicating/reordering links and clock
skew, and shrinks any violating schedule to a minimal reproducer.

Entry points: :func:`run_campaign` (library), ``python -m repro chaos``
(CLI).  See ``docs/chaos.md``.
"""

from .auditor import ConsistencyAuditor, ViolationRecord
from .campaign import CampaignReport, ScheduleVerdict, run_campaign, shrink_schedule
from .faults import (
    FAULT_KINDS,
    MAX_CLOCK_SKEW,
    Fault,
    FaultSchedule,
    apply_schedule,
    random_schedule,
)

__all__ = [
    "Fault",
    "FaultSchedule",
    "FAULT_KINDS",
    "MAX_CLOCK_SKEW",
    "random_schedule",
    "apply_schedule",
    "ConsistencyAuditor",
    "ViolationRecord",
    "ScheduleVerdict",
    "CampaignReport",
    "run_campaign",
    "shrink_schedule",
]
