"""HTTP message types used by the consistency protocols.

Modelled messages:

* ``GET`` — plain document request (:func:`make_get`).
* ``GET`` + ``If-Modified-Since`` — validation request (:func:`make_ims`).
* ``200 Document follows`` — file transfer (:func:`make_reply_200`).
* ``304 Not Modified`` — validation success (:func:`make_reply_304`).
* ``INVALIDATE`` — the new message type the paper adds to HTTP
  (Section 4).  It carries either a URL (invalidate one document) or a Web
  server address (mark every document from that server *questionable*;
  used after a server-site failure).

Each constructor returns a :class:`repro.net.Message` subclass whose
``category`` feeds straight into the Table 3/4 accounting rows.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..net import Address, Message
from .wire import DEFAULT_WIRE, WireCosts

__all__ = [
    "OK",
    "NOT_MODIFIED",
    "CATEGORY_GET",
    "CATEGORY_IMS",
    "CATEGORY_REPLY_200",
    "CATEGORY_REPLY_304",
    "CATEGORY_INVALIDATE",
    "HttpRequest",
    "HttpResponse",
    "Invalidate",
    "make_get",
    "make_ims",
    "make_reply_200",
    "make_reply_304",
    "make_invalidate_url",
    "make_invalidate_multi",
    "make_invalidate_batch",
    "make_invalidate_server",
]

#: HTTP status codes the paper uses.
OK = 200
NOT_MODIFIED = 304

CATEGORY_GET = "get"
CATEGORY_IMS = "ims"
CATEGORY_REPLY_200 = "reply-200"
CATEGORY_REPLY_304 = "reply-304"
CATEGORY_INVALIDATE = "invalidate"


@dataclass(repr=False)
class HttpRequest(Message):
    """A GET or If-Modified-Since request.

    Attributes:
        url: requested document.
        client_id: the *real* client the proxy is acting for.  The paper's
            proxies forward the real clientid with each GET so the
            accelerator can register the site for invalidation.
        ims_timestamp: cached copy's Last-Modified time when this is a
            validation (If-Modified-Since) request; ``None`` for plain GETs.
        want_lease: set by lease-based protocols to request a full lease
            (two-tier leases grant full leases only on validation requests).
        reported_hits: cache hits served locally since this proxy's last
            contact for the URL, piggybacked for hit metering (Section 7).
    """

    url: str = ""
    client_id: str = ""
    ims_timestamp: Optional[float] = None
    want_lease: bool = False
    reported_hits: int = 0

    @property
    def is_ims(self) -> bool:
        """True when this request carries an If-Modified-Since header."""
        return self.ims_timestamp is not None


@dataclass(repr=False)
class HttpResponse(Message):
    """A 200 or 304 reply.

    Attributes:
        status: :data:`OK` or :data:`NOT_MODIFIED`.
        url: document the reply describes.
        body_bytes: body size for 200 replies (0 for 304).
        last_modified: server-side modification time of the document.
        lease_expires: absolute simulated time until which the server
            promises to invalidate (lease protocols only).
        piggyback_invalidations: URLs modified since this proxy's last
            contact, attached by piggyback-invalidation servers (the
            Krishnamurthy/Wills PSI follow-up; see
            :mod:`repro.core.piggyback`).
    """

    status: int = OK
    url: str = ""
    body_bytes: int = 0
    last_modified: float = 0.0
    lease_expires: Optional[float] = None
    piggyback_invalidations: Optional[tuple] = None


@dataclass(repr=False)
class Invalidate(Message):
    """An INVALIDATE message.

    Exactly one of ``url`` / ``server`` / ``pairs`` is set:

    * ``url`` — delete the named document from the cache of ``client_id``
      (or every client in ``client_ids`` for the multicast form).
    * ``server`` — mark every cached document from that Web server
      questionable (requires revalidation before next use); sent during
      server-site crash recovery.
    * ``pairs`` — batched form: ``((url, client_ids), ...)`` coalescing
      several documents' invalidations for one proxy into a single
      message (the sharded accelerator tier's fan-out batching).
    """

    url: Optional[str] = None
    server: Optional[Address] = None
    client_id: str = ""
    #: Multicast form: all real clients behind the destination proxy that
    #: should drop the URL (``None`` for the single-client form).
    client_ids: Optional[tuple] = None
    #: Batched form: ``((url, (client_id, ...)), ...)`` — every entry the
    #: destination proxy should drop, across several documents.
    pairs: Optional[tuple] = None

    def __post_init__(self) -> None:
        super().__post_init__()
        forms = sum(x is not None for x in (self.url, self.server, self.pairs))
        if forms != 1:
            raise ValueError("exactly one of url/server/pairs must be set")

    @property
    def target_clients(self) -> tuple:
        """The client ids this message invalidates (1 or many).

        For the batched (``pairs``) form the targets are per-URL; use
        :attr:`pairs` directly instead.
        """
        if self.client_ids is not None:
            return self.client_ids
        return (self.client_id,) if self.client_id else ()


def make_get(
    src: Address,
    dst: Address,
    url: str,
    client_id: str,
    wire: WireCosts = DEFAULT_WIRE,
    want_lease: bool = False,
) -> HttpRequest:
    """Build a plain GET request."""
    return HttpRequest(
        src=src,
        dst=dst,
        size=wire.get_request,
        category=CATEGORY_GET,
        url=url,
        client_id=client_id,
        want_lease=want_lease,
    )


def make_ims(
    src: Address,
    dst: Address,
    url: str,
    client_id: str,
    ims_timestamp: float,
    wire: WireCosts = DEFAULT_WIRE,
    want_lease: bool = False,
) -> HttpRequest:
    """Build an If-Modified-Since validation request."""
    return HttpRequest(
        src=src,
        dst=dst,
        size=wire.ims_request,
        category=CATEGORY_IMS,
        url=url,
        client_id=client_id,
        ims_timestamp=ims_timestamp,
        want_lease=want_lease,
    )


def make_reply_200(
    request: HttpRequest,
    body_bytes: int,
    last_modified: float,
    wire: WireCosts = DEFAULT_WIRE,
    lease_expires: Optional[float] = None,
) -> HttpResponse:
    """Build a ``200 Document follows`` reply to ``request``."""
    return HttpResponse(
        src=request.dst,
        dst=request.src,
        size=wire.response_header + body_bytes,
        category=CATEGORY_REPLY_200,
        reply_to=request.msg_id,
        status=OK,
        url=request.url,
        body_bytes=body_bytes,
        last_modified=last_modified,
        lease_expires=lease_expires,
    )


def make_reply_304(
    request: HttpRequest,
    last_modified: float,
    wire: WireCosts = DEFAULT_WIRE,
    lease_expires: Optional[float] = None,
) -> HttpResponse:
    """Build a ``304 Not Modified`` reply to ``request``."""
    return HttpResponse(
        src=request.dst,
        dst=request.src,
        size=wire.not_modified_reply,
        category=CATEGORY_REPLY_304,
        reply_to=request.msg_id,
        status=NOT_MODIFIED,
        url=request.url,
        body_bytes=0,
        last_modified=last_modified,
        lease_expires=lease_expires,
    )


def make_invalidate_url(
    src: Address,
    dst: Address,
    url: str,
    client_id: str,
    wire: WireCosts = DEFAULT_WIRE,
) -> Invalidate:
    """Build an INVALIDATE carrying a URL (normal modification path)."""
    return Invalidate(
        src=src,
        dst=dst,
        size=wire.invalidate,
        category=CATEGORY_INVALIDATE,
        url=url,
        client_id=client_id,
    )


def make_invalidate_multi(
    src: Address,
    dst: Address,
    url: str,
    client_ids,
    wire: WireCosts = DEFAULT_WIRE,
) -> Invalidate:
    """Build one INVALIDATE covering several clients behind one proxy.

    The multicast form the paper suggests for large fan-outs: one
    message per proxy host instead of one per client site.
    """
    client_ids = tuple(client_ids)
    if not client_ids:
        raise ValueError("multicast INVALIDATE needs at least one client")
    extra = wire.invalidate_per_client * (len(client_ids) - 1)
    return Invalidate(
        src=src,
        dst=dst,
        size=wire.invalidate + extra,
        category=CATEGORY_INVALIDATE,
        url=url,
        client_ids=client_ids,
    )


def make_invalidate_batch(
    src: Address,
    dst: Address,
    pairs,
    wire: WireCosts = DEFAULT_WIRE,
) -> Invalidate:
    """Build one INVALIDATE coalescing several documents for one proxy.

    ``pairs`` is an iterable of ``(url, client_ids)``.  The wire size is
    one base INVALIDATE plus ``invalidate_per_url`` for each extra URL
    and ``invalidate_per_client`` for each extra client id within a URL,
    so batching saves the per-message framing the unbatched fan-out pays.
    """
    normalized = tuple((url, tuple(cids)) for url, cids in pairs)
    if not normalized:
        raise ValueError("batched INVALIDATE needs at least one pair")
    size = wire.invalidate + wire.invalidate_per_url * (len(normalized) - 1)
    for _url, cids in normalized:
        if not cids:
            raise ValueError("batched INVALIDATE pair needs at least one client")
        size += wire.invalidate_per_client * (len(cids) - 1)
    return Invalidate(
        src=src,
        dst=dst,
        size=size,
        category=CATEGORY_INVALIDATE,
        pairs=normalized,
    )


def make_invalidate_server(
    src: Address,
    dst: Address,
    server: Address,
    wire: WireCosts = DEFAULT_WIRE,
) -> Invalidate:
    """Build an INVALIDATE carrying a server address (crash recovery)."""
    return Invalidate(
        src=src,
        dst=dst,
        size=wire.invalidate,
        category=CATEGORY_INVALIDATE,
        server=server,
    )
