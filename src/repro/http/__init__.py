"""HTTP message model: GET, If-Modified-Since, 200/304, INVALIDATE."""

from .messages import (
    CATEGORY_GET,
    CATEGORY_IMS,
    CATEGORY_INVALIDATE,
    CATEGORY_REPLY_200,
    CATEGORY_REPLY_304,
    NOT_MODIFIED,
    OK,
    HttpRequest,
    HttpResponse,
    Invalidate,
    make_get,
    make_ims,
    make_invalidate_multi,
    make_invalidate_server,
    make_invalidate_url,
    make_reply_200,
    make_reply_304,
)
from .wire import DEFAULT_WIRE, WireCosts

__all__ = [
    "OK",
    "NOT_MODIFIED",
    "CATEGORY_GET",
    "CATEGORY_IMS",
    "CATEGORY_REPLY_200",
    "CATEGORY_REPLY_304",
    "CATEGORY_INVALIDATE",
    "HttpRequest",
    "HttpResponse",
    "Invalidate",
    "make_get",
    "make_ims",
    "make_reply_200",
    "make_reply_304",
    "make_invalidate_url",
    "make_invalidate_multi",
    "make_invalidate_server",
    "WireCosts",
    "DEFAULT_WIRE",
]
