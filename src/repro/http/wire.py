"""Wire-size model for HTTP control messages.

The paper counts *control messages* (GET requests, If-Modified-Since
requests, 304 replies, INVALIDATE messages) separately from *file
transfers* (200 replies carrying a body).  The byte sizes below are
representative HTTP/1.0-era header sizes; they only matter for the
"message bytes" rows of Tables 3–4, which are dominated by file bodies, so
the comparisons are insensitive to the exact values.  All sizes are
configurable per experiment.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["WireCosts", "DEFAULT_WIRE"]


@dataclass(frozen=True)
class WireCosts:
    """Byte sizes for each message kind on the wire.

    Attributes:
        get_request: a plain ``GET`` request (request line + headers).
        ims_request: a ``GET`` with an ``If-Modified-Since`` header.
        response_header: headers of a ``200`` reply (body size is added).
        not_modified_reply: a ``304 Not Modified`` reply.
        invalidate: an ``INVALIDATE`` message (new message type, Section 4).
        invalidate_per_client: additional bytes per extra client id when a
            single INVALIDATE is multicast to several clients behind one
            proxy (the paper's suggested "multicast schemes").
        invalidate_per_url: additional bytes per extra URL when a batched
            INVALIDATE coalesces several documents' invalidations into one
            message (the sharded accelerator tier's fan-out batching).
        piggyback_per_url: bytes per URL in a piggybacked invalidation
            list attached to a reply (PSI extension).
    """

    get_request: int = 300
    ims_request: int = 340
    response_header: int = 250
    not_modified_reply: int = 180
    invalidate: int = 120
    invalidate_per_client: int = 16
    invalidate_per_url: int = 24
    piggyback_per_url: int = 24

    def __post_init__(self) -> None:
        for name in (
            "get_request",
            "ims_request",
            "response_header",
            "not_modified_reply",
            "invalidate",
            "invalidate_per_client",
            "invalidate_per_url",
            "piggyback_per_url",
        ):
            if getattr(self, name) < 0:
                raise ValueError(f"{name} must be non-negative")


#: Default sizes used throughout the reproduction.
DEFAULT_WIRE = WireCosts()
