"""Post-run invariant audit for experiment results.

A replay produces numbers from several independent accounting layers
(wire stats, outcome counters, server counters).  The audit cross-checks
them: every finding is an internal inconsistency — a bug, not a
workload property.  ``run_experiment`` results should always audit
clean; tests and the benchmarks call :func:`audit_result` to prove it.

Checks:

* request conservation — every trace record produced exactly one
  outcome; completed = hits + misses;
* wire conservation — every GET/IMS got exactly one 200/304 reply, and
  the total-message identity holds;
* transfer agreement — outcome-counted transfers equal wire 200s;
* strong-consistency — zero violations, and zero stale serves for
  protocols that validate every serve;
* invalidation arithmetic — messages sent by the server equal wire
  INVALIDATEs (flat topologies), and site-list storage equals
  entries x entry size.
"""

from __future__ import annotations

from typing import List

from ..server.sitelist import ENTRY_BYTES
from .experiment import ExperimentResult

__all__ = ["audit_result", "AuditError"]


class AuditError(AssertionError):
    """Raised when an experiment result is internally inconsistent."""


def audit_result(
    result: ExperimentResult,
    hierarchical: bool = False,
    allow_failures: bool = False,
) -> List[str]:
    """Cross-check a result's accounting; returns the check names run.

    Args:
        result: the experiment result to audit.
        hierarchical: parents add a second hop, so wire counts exceed
            origin counts; hop-exact checks are skipped.
        allow_failures: failure-injection runs may abort requests.

    Raises:
        AuditError: on the first inconsistency found.
    """
    checks: List[str] = []

    def check(name: str, condition: bool, detail: str = "") -> None:
        if not condition:
            raise AuditError(f"audit failed: {name} {detail}".rstrip())
        checks.append(name)

    counters = result.counters

    check(
        "requests-conserved",
        counters.requests == result.total_requests,
        f"({counters.requests} outcomes vs {result.total_requests} records)",
    )
    if not allow_failures:
        check("no-failed-requests", counters.failed == 0,
              f"({counters.failed} failed)")
    completed = counters.requests - counters.failed
    check(
        "hits-plus-misses",
        counters.hits + counters.misses == completed,
        f"({counters.hits}+{counters.misses} != {completed})",
    )

    if not hierarchical:
        check(
            "one-reply-per-request",
            result.gets + result.ims == result.replies_200 + result.replies_304,
            f"({result.gets}+{result.ims} vs "
            f"{result.replies_200}+{result.replies_304})",
        )
        check(
            "transfers-match-200s",
            counters.transfers == result.replies_200,
            f"({counters.transfers} vs {result.replies_200})",
        )
        check(
            "invalidations-match-sends",
            result.invalidations == result.invalidations_sent,
            f"({result.invalidations} vs {result.invalidations_sent})",
        )
    check(
        "total-message-identity",
        result.total_messages
        == result.gets
        + result.ims
        + result.replies_200
        + result.replies_304
        + result.invalidations,
    )

    check("zero-violations", counters.violations == 0,
          f"({counters.violations})")
    check(
        "sitelist-storage-arithmetic",
        result.sitelist_storage_bytes == ENTRY_BYTES * result.sitelist_entries,
    )
    check(
        "latency-sanity",
        counters.latency.min <= counters.latency.mean <= counters.latency.max
        or counters.latency.count == 0,
    )
    check(
        "staleness-only-with-stales",
        counters.staleness.count == counters.stale_serves,
    )
    return checks
