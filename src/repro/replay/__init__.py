"""Trace-replay harness: coordinator, pseudo-clients, experiments."""

from .audit import AuditError, audit_result
from .coordinator import TimeCoordinator
from .experiment import ExperimentConfig, ExperimentResult, run_experiment
from .pseudo_client import PseudoClient, shard_for_client, shard_records
from .results import (
    comparison_rows,
    format_comparison_table,
    format_invalidation_costs,
)
from .serialize import (
    read_results_json,
    result_to_dict,
    results_to_json,
    write_results_json,
)
from .sweep import SweepResult, sweep, sweep_table

__all__ = [
    "TimeCoordinator",
    "PseudoClient",
    "shard_for_client",
    "shard_records",
    "ExperimentConfig",
    "ExperimentResult",
    "run_experiment",
    "comparison_rows",
    "format_comparison_table",
    "format_invalidation_costs",
    "audit_result",
    "AuditError",
    "sweep",
    "sweep_table",
    "SweepResult",
    "result_to_dict",
    "results_to_json",
    "write_results_json",
    "read_results_json",
]
