"""Trace-replay harness: coordinator, pseudo-clients, experiments."""

from .audit import AuditError, audit_result
from .coordinator import CoordinatorError, TimeCoordinator
from .experiment import ExperimentConfig, ExperimentResult, run_experiment
from .parallel import ParallelSweepRunner, SweepPointFailed
from .pseudo_client import PseudoClient, shard_for_client, shard_records
from .results import (
    comparison_rows,
    format_comparison_table,
    format_invalidation_costs,
)
from .serialize import (
    read_checkpoint,
    read_results_json,
    result_from_dict,
    result_to_dict,
    results_to_json,
    write_checkpoint,
    write_results_json,
)
from .sweep import (
    SweepPointError,
    SweepResult,
    derive_point_seed,
    point_config,
    sweep,
    sweep_table,
)

__all__ = [
    "TimeCoordinator",
    "CoordinatorError",
    "PseudoClient",
    "shard_for_client",
    "shard_records",
    "ExperimentConfig",
    "ExperimentResult",
    "run_experiment",
    "comparison_rows",
    "format_comparison_table",
    "format_invalidation_costs",
    "audit_result",
    "AuditError",
    "sweep",
    "sweep_table",
    "SweepResult",
    "SweepPointError",
    "SweepPointFailed",
    "ParallelSweepRunner",
    "derive_point_seed",
    "point_config",
    "result_to_dict",
    "result_from_dict",
    "results_to_json",
    "write_results_json",
    "read_results_json",
    "write_checkpoint",
    "read_checkpoint",
]
