"""Parallel, resumable sweep execution.

The paper's headline tables are grids of *independent* trace-replay
experiments, so a sweep parallelises embarrassingly: this module runs
sweep points across a ``multiprocessing`` worker pool while keeping the
serial path's determinism guarantees.

Guarantees:

* **Bit-identical results.** Every point's config is built by the same
  :func:`repro.replay.sweep.point_config` the serial path uses, each
  experiment constructs its own RNG registry from the config seed, and
  per-point seeds (``derive_seeds=True``) come from a stable hash of
  (base seed, label) — never from worker identity or scheduling order.
  A sweep run under :class:`ParallelSweepRunner` therefore produces
  metric-for-metric the same :class:`ExperimentResult` objects as
  ``sweep()``.
* **Crash/timeout containment.** Each point runs in its own process
  with a private result pipe: a worker that dies or overruns its
  ``timeout`` is killed and the point retried (``retries`` times)
  without corrupting any other point's transport.
* **Checkpointed resume.** With a ``checkpoint_dir``, every completed
  point is written atomically via :mod:`repro.replay.serialize` before
  it is reported, so an interrupted sweep (even a SIGKILL) restarts
  from the last completed point with ``resume=True``.

Example::

    from repro.replay import ParallelSweepRunner, sweep

    runner = ParallelSweepRunner(workers=4, checkpoint_dir="out/ckpt",
                                 resume=True, progress=print)
    results = sweep(base, points, runner=runner)
"""

from __future__ import annotations

import multiprocessing
import os
import re
import time
import traceback
from collections import deque
from typing import Callable, Dict, List, Optional, Sequence

from .experiment import ExperimentConfig, ExperimentResult, run_experiment
from .serialize import read_checkpoint, write_checkpoint
from .sweep import SweepPoint, SweepResult, point_config

__all__ = ["ParallelSweepRunner", "SweepPointFailed", "checkpoint_filename"]


class SweepPointFailed(RuntimeError):
    """A sweep point could not be completed (error, crash or timeout)."""

    def __init__(self, label: str, message: str) -> None:
        super().__init__(f"sweep point {label!r}: {message}")
        self.label = label


def checkpoint_filename(index: int, label: str) -> str:
    """Stable checkpoint file name for point ``index`` labelled ``label``."""
    slug = re.sub(r"[^A-Za-z0-9._-]+", "-", label).strip("-") or "point"
    return f"point-{index:04d}-{slug[:60]}.json"


def _run_point(conn, config: ExperimentConfig, label: str,
               experiment_fn, checkpoint_path: Optional[str]) -> None:
    """Worker body: run one point, checkpoint it, ship the result back.

    The checkpoint is written *before* the result is sent so a parent
    that dies between the two still finds the completed point on resume.
    """
    try:
        result = experiment_fn(config)
        if checkpoint_path is not None:
            write_checkpoint(result, checkpoint_path, label=label)
        conn.send(("ok", result))
    except BaseException:
        try:
            conn.send(("error", traceback.format_exc()))
        except Exception:
            pass  # parent gone or pipe broken; exit code tells the story
    finally:
        conn.close()


class _Slot:
    """One occupied worker slot: a live process plus its bookkeeping."""

    __slots__ = ("process", "conn", "index", "started")

    def __init__(self, process, conn, index: int, started: float) -> None:
        self.process = process
        self.conn = conn
        self.index = index
        self.started = started


class ParallelSweepRunner:
    """Executes sweep points across a pool of worker processes.

    Plug into :func:`repro.replay.sweep.sweep` via ``runner=``, or call
    :meth:`run_sweep` directly.

    Args:
        workers: concurrent worker processes (default: CPU count).
        timeout: per-point wall-clock budget in seconds; an overrunning
            worker is killed and the point retried.  ``None`` = no limit.
        retries: extra attempts granted to a point whose worker crashed
            or timed out.  Points that raise an ordinary Python exception
            fail immediately (they are deterministic).
        checkpoint_dir: directory for per-point checkpoint files; created
            on demand.  ``None`` disables checkpointing.
        resume: skip points that already have a matching checkpoint in
            ``checkpoint_dir`` (requires ``checkpoint_dir``).
        experiment_fn: the per-config experiment callable (injection
            point for tests); defaults to
            :func:`repro.replay.experiment.run_experiment`.
        progress: optional callable given one human-readable line per
            point event (completed / resumed / retried).
        mp_context: ``multiprocessing`` start method; default ``fork``
            where available (configs need not be picklable), else the
            platform default.
        poll_interval: parent poll period in seconds.
    """

    def __init__(
        self,
        workers: Optional[int] = None,
        timeout: Optional[float] = None,
        retries: int = 1,
        checkpoint_dir: Optional[str] = None,
        resume: bool = False,
        experiment_fn: Callable[[ExperimentConfig], ExperimentResult] = run_experiment,
        progress: Optional[Callable[[str], None]] = None,
        mp_context: Optional[str] = None,
        poll_interval: float = 0.02,
    ) -> None:
        if workers is not None and workers < 1:
            raise ValueError("workers must be >= 1")
        if timeout is not None and timeout <= 0:
            raise ValueError("timeout must be positive (or None)")
        if retries < 0:
            raise ValueError("retries must be >= 0")
        if resume and checkpoint_dir is None:
            raise ValueError("resume=True requires a checkpoint_dir")
        self.workers = workers or os.cpu_count() or 1
        self.timeout = timeout
        self.retries = retries
        self.checkpoint_dir = checkpoint_dir
        self.resume = resume
        self.experiment_fn = experiment_fn
        self.progress = progress
        if mp_context is None:
            methods = multiprocessing.get_all_start_methods()
            mp_context = "fork" if "fork" in methods else methods[0]
        self._ctx = multiprocessing.get_context(mp_context)
        self.poll_interval = poll_interval

    # -- internals ---------------------------------------------------------

    def _emit(self, line: str) -> None:
        if self.progress is not None:
            self.progress(line)

    def _checkpoint_path(self, index: int, label: str) -> Optional[str]:
        if self.checkpoint_dir is None:
            return None
        return os.path.join(self.checkpoint_dir, checkpoint_filename(index, label))

    def _load_checkpoints(
        self,
        points: Sequence[SweepPoint],
        configs: List[ExperimentConfig],
        results: List[Optional[SweepResult]],
    ) -> int:
        """Fill ``results`` from existing checkpoints; returns the count."""
        loaded = 0
        for index, (label, _overrides) in enumerate(points):
            path = self._checkpoint_path(index, label)
            if path is None or not os.path.exists(path):
                continue
            stored_label, result = read_checkpoint(path)
            if stored_label is not None and stored_label != label:
                raise SweepPointFailed(
                    label,
                    f"checkpoint {path} belongs to point {stored_label!r}; "
                    "clear the checkpoint directory or use a fresh one",
                )
            results[index] = SweepResult(
                label=label, config=configs[index], result=result
            )
            loaded += 1
            self._emit(f"[sweep] {label}: resumed from checkpoint ({path})")
        return loaded

    def _spawn(self, index: int, label: str, config: ExperimentConfig) -> _Slot:
        recv, send = self._ctx.Pipe(duplex=False)
        process = self._ctx.Process(
            target=_run_point,
            args=(send, config, label, self.experiment_fn,
                  self._checkpoint_path(index, label)),
            name=f"sweep-{label}",
            daemon=True,
        )
        process.start()
        # Close the parent's copy of the write end so EOF (worker death)
        # is observable on the read end.
        send.close()
        return _Slot(process, recv, index, time.monotonic())

    @staticmethod
    def _shutdown(slot: _Slot) -> None:
        if slot.process.is_alive():
            slot.process.terminate()
        slot.process.join()
        slot.conn.close()

    # -- execution ---------------------------------------------------------

    def run_sweep(
        self,
        base: ExperimentConfig,
        points: Sequence[SweepPoint],
        derive_seeds: bool = False,
    ) -> List[SweepResult]:
        """Run every point; returns results in ``points`` order.

        Raises :class:`SweepPointFailed` once a point exhausts its
        attempts; other in-flight points are terminated (their completed
        peers' checkpoints remain usable for a resumed run).
        """
        points = list(points)
        # Build (and validate) every config up front so a bad override
        # fails fast with its label, before any worker starts.
        configs = [
            point_config(base, label, overrides, derive_seeds=derive_seeds)
            for label, overrides in points
        ]
        results: List[Optional[SweepResult]] = [None] * len(points)
        if self.checkpoint_dir is not None:
            os.makedirs(self.checkpoint_dir, exist_ok=True)
        if self.resume:
            self._load_checkpoints(points, configs, results)

        pending = deque(i for i, r in enumerate(results) if r is None)
        attempts: Dict[int, int] = {i: 0 for i in pending}
        slots: Dict[int, _Slot] = {}
        completed = len(points) - len(pending)

        def fail(label: str, message: str) -> "SweepPointFailed":
            for slot in slots.values():
                self._shutdown(slot)
            slots.clear()
            return SweepPointFailed(label, message)

        try:
            while pending or slots:
                # Fill free worker slots.
                for worker_id in range(self.workers):
                    if not pending:
                        break
                    if worker_id in slots:
                        continue
                    index = pending.popleft()
                    label = points[index][0]
                    attempts[index] += 1
                    slots[worker_id] = self._spawn(index, label, configs[index])

                made_progress = False
                for worker_id, slot in list(slots.items()):
                    index, label = slot.index, points[slot.index][0]
                    wall = time.monotonic() - slot.started
                    if slot.conn.poll():
                        try:
                            status, payload = slot.conn.recv()
                        except (EOFError, OSError):
                            status, payload = "crash", "result pipe closed early"
                        del slots[worker_id]
                        slot.process.join()
                        slot.conn.close()
                        made_progress = True
                        if status == "ok":
                            completed += 1
                            results[index] = SweepResult(
                                label=label, config=configs[index], result=payload
                            )
                            self._emit(
                                f"[sweep] {label}: ok worker={worker_id} "
                                f"wall={wall:.2f}s ({completed}/{len(points)})"
                            )
                        elif status == "error":
                            raise fail(label, f"experiment raised:\n{payload}")
                        else:
                            self._retry_or_fail(
                                pending, attempts, fail, index, label,
                                f"worker crashed ({payload})", worker_id,
                            )
                    elif not slot.process.is_alive():
                        # Dead without a message: give the pipe one last
                        # look (data can land just before death), then
                        # treat as a crash.
                        if slot.conn.poll(0.2):
                            continue  # handled on the next loop pass
                        exitcode = slot.process.exitcode
                        del slots[worker_id]
                        slot.conn.close()
                        made_progress = True
                        self._retry_or_fail(
                            pending, attempts, fail, index, label,
                            f"worker exited with code {exitcode} before "
                            "reporting a result", worker_id,
                        )
                    elif self.timeout is not None and wall > self.timeout:
                        del slots[worker_id]
                        self._shutdown(slot)
                        made_progress = True
                        self._retry_or_fail(
                            pending, attempts, fail, index, label,
                            f"timed out after {wall:.2f}s "
                            f"(timeout={self.timeout:g}s)", worker_id,
                        )
                if not made_progress and slots:
                    time.sleep(self.poll_interval)
        except BaseException:
            for slot in slots.values():
                self._shutdown(slot)
            slots.clear()
            raise
        return [r for r in results if r is not None]

    def _retry_or_fail(self, pending, attempts, fail, index: int, label: str,
                       message: str, worker_id: int) -> None:
        if attempts[index] > self.retries:
            raise fail(
                label, f"{message}; gave up after {attempts[index]} attempt(s)"
            )
        self._emit(
            f"[sweep] {label}: {message}; retrying "
            f"(attempt {attempts[index] + 1}/{self.retries + 1}) "
            f"worker={worker_id}"
        )
        pending.append(index)
