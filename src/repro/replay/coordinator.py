"""The time coordinator: lock-step trace replay (Section 5.1).

The paper: "a time coordinator is introduced to run the simulations in
lock step for every five minutes.  The coordinator first broadcasts the
current simulated time, then all the pseudo-clients send requests with
timestamps falling in the five minute interval after the current
simulated time.  After a pseudo-client finishes its requests, it sends a
reply back to the time coordinator.  After collecting replies from all
pseudo-clients, the time coordinator broadcasts a new simulated time
which is five minutes after the previous one.  The time coordinator also
coordinates the modifier process."

Note the two clocks: *trace time* (the timestamps in the trace, advanced
300 s per step) and the testbed's *wall clock* (our simulator's ``now``),
which advances only as fast as the work takes.  Latencies and iostat
utilisations are wall-clock quantities, exactly as in the paper.
"""

from __future__ import annotations

from typing import Callable, List

from ..sim import AllOf, Simulator

__all__ = ["TimeCoordinator", "CoordinatorError"]


class CoordinatorError(RuntimeError):
    """A participant failed mid-interval; carries the interval bounds."""

    def __init__(self, message: str, trace_start: float, trace_end: float) -> None:
        super().__init__(message)
        self.trace_start = trace_start
        self.trace_end = trace_end

#: A participant factory: called with (trace_start, trace_end) for each
#: interval and returning a generator that performs that interval's work.
Participant = Callable[[float, float], object]


class TimeCoordinator:
    """Runs registered participants in lock-step trace-time intervals."""

    def __init__(self, sim: Simulator, interval: float = 300.0) -> None:
        if interval <= 0:
            raise ValueError("interval must be positive")
        self.sim = sim
        self.interval = interval
        self._participants: List[Participant] = []
        #: Trace time at the start of the current interval.
        self.trace_time = 0.0
        self.intervals_completed = 0

    def register(self, participant: Participant) -> None:
        """Add a pseudo-client or modifier participant."""
        self._participants.append(participant)

    def run(self, duration: float):
        """Coordinator process: replay ``duration`` seconds of trace time.

        Start with ``sim.process(coordinator.run(trace.duration))``.
        """
        if not self._participants:
            raise ValueError("no participants registered")
        while self.trace_time < duration:
            start = self.trace_time
            end = min(start + self.interval, duration)
            if not end > start:
                # Float underflow: start + interval == start.  Advancing
                # would loop forever on zero-width intervals.
                raise CoordinatorError(
                    f"interval {self.interval!r} is too small to advance "
                    f"trace time from {start!r}", start, end,
                )
            processes = [
                self.sim.process(participant(start, end))
                for participant in self._participants
            ]
            try:
                # Barrier: wait for every participant's reply.
                yield AllOf(self.sim, processes)
            except BaseException as exc:
                # A participant raised mid-interval.  The interval did
                # not complete: trace_time/intervals_completed stay at
                # the last finished interval.  Defuse the surviving
                # participants so their later completion (or failure)
                # cannot crash the simulator with nobody waiting.
                for process in processes:
                    process.defuse()
                raise CoordinatorError(
                    f"participant failed in trace interval "
                    f"[{start:g}, {end:g}): {exc!r}", start, end,
                ) from exc
            self.trace_time = end
            self.intervals_completed += 1
