"""Result serialization: JSON in/out for analysis pipelines.

`ExperimentResult` nests live counter objects; this module flattens a
result into plain JSON-compatible dictionaries (and back into a
read-only summary form) so sweeps can be archived, diffed and plotted
outside Python.

It also provides the per-point *checkpoint* files behind resumable
sweeps (:class:`repro.replay.parallel.ParallelSweepRunner`): a
checkpoint is the flattened result plus enough internal counter state
(latency reservoirs) to rebuild a metric-for-metric identical
:class:`ExperimentResult` in a later process.
"""

from __future__ import annotations

import json
import os
from typing import Any, Dict, IO, List, Optional, Sequence, Tuple

from ..metrics import LatencyStats, ReplayCounters
from .experiment import ExperimentResult

__all__ = [
    "result_to_dict",
    "result_from_dict",
    "results_to_json",
    "write_results_json",
    "read_results_json",
    "write_checkpoint",
    "read_checkpoint",
]

#: Checkpoint file format version (bump on incompatible layout changes).
CHECKPOINT_VERSION = 1

#: Scalar fields copied verbatim from the result.
_SCALAR_FIELDS = [
    "protocol",
    "trace_name",
    "mean_lifetime",
    "total_requests",
    "files_modified",
    "gets",
    "ims",
    "replies_200",
    "replies_304",
    "invalidations",
    "total_messages",
    "message_bytes",
    "cpu_utilization",
    "disk_utilization",
    "disk_reads_per_sec",
    "disk_writes_per_sec",
    "sitelist_storage_bytes",
    "sitelist_entries",
    "sitelist_avg_len",
    "sitelist_max_len",
    "invalidation_time_avg",
    "invalidation_time_max",
    "invalidations_sent",
    "origin_requests",
    "origin_replies_200",
    "origin_replies_304",
    "parent_upstream_fetches",
    "parent_invalidations_forwarded",
    "wall_time",
]


def result_to_dict(result: ExperimentResult) -> Dict[str, Any]:
    """Flatten one result into a JSON-compatible dictionary."""
    data: Dict[str, Any] = {name: getattr(result, name) for name in _SCALAR_FIELDS}
    counters = result.counters
    data["counters"] = {
        "requests": counters.requests,
        "hits": counters.hits,
        "misses": counters.misses,
        "transfers": counters.transfers,
        "validations": counters.validations,
        "served_from_cache": counters.served_from_cache,
        "stale_serves": counters.stale_serves,
        "violations": counters.violations,
        "failed": counters.failed,
        "hit_ratio": counters.hit_ratio,
        "body_bytes_from_cache": counters.body_bytes_from_cache,
        "body_bytes_transferred": counters.body_bytes_transferred,
    }
    data["latency"] = counters.latency.summary()
    data["staleness"] = {
        "mean": counters.staleness.mean,
        "max": counters.staleness.max,
        "count": counters.staleness.count,
    }
    if result.chaos is not None:
        data["chaos"] = result.chaos
    # New-in-cluster fields are emitted only when set, so digests of
    # pre-cluster single-accelerator runs stay byte-identical.
    if result.sitelist_evictions:
        data["sitelist_evictions"] = result.sitelist_evictions
    if result.cluster is not None:
        data["cluster"] = result.cluster
    return data


def results_to_json(results: Sequence[ExperimentResult], indent: int = 2) -> str:
    """Serialize a list of results to a JSON string."""
    return json.dumps([result_to_dict(r) for r in results], indent=indent)


def write_results_json(results: Sequence[ExperimentResult], out: IO[str]) -> int:
    """Write results as JSON; returns the number of results written."""
    out.write(results_to_json(results))
    out.write("\n")
    return len(results)


def read_results_json(source: IO[str]) -> List[Dict[str, Any]]:
    """Load archived results (as plain dictionaries)."""
    data = json.load(source)
    if not isinstance(data, list):
        raise ValueError("expected a JSON list of results")
    return data


#: Counter attributes restorable verbatim (``hit_ratio`` is derived).
_COUNTER_FIELDS = [
    "requests",
    "hits",
    "misses",
    "transfers",
    "validations",
    "served_from_cache",
    "stale_serves",
    "violations",
    "failed",
    "body_bytes_from_cache",
    "body_bytes_transferred",
]


def _counters_from_dict(
    data: Dict[str, Any], restore: Optional[Dict[str, Any]]
) -> ReplayCounters:
    counters = ReplayCounters()
    for name in _COUNTER_FIELDS:
        setattr(counters, name, data[name])
    if restore is not None:
        counters.latency = LatencyStats.from_state(restore["latency"])
        counters.staleness = LatencyStats.from_state(restore["staleness"])
    return counters


def result_from_dict(data: Dict[str, Any]) -> ExperimentResult:
    """Rebuild an :class:`ExperimentResult` flattened by
    :func:`result_to_dict`.

    When ``data`` carries the private ``_restore`` block written by
    :func:`write_checkpoint`, the nested counters (including latency
    reservoirs, hence percentiles) are restored exactly; without it the
    latency objects are rebuilt from the summary statistics, so mean,
    min, max and count survive but percentiles do not.
    """
    scalars = {name: data[name] for name in _SCALAR_FIELDS}
    restore = data.get("_restore")
    if restore is None and "latency" in data:
        latency = data["latency"]
        staleness = data.get("staleness", {"mean": 0.0, "max": 0.0, "count": 0})
        restore = {
            "latency": {
                "count": latency["count"],
                "total": latency["mean"] * latency["count"],
                "min": latency["min"] if latency["count"] else None,
                "max": latency["max"] if latency["count"] else None,
                "reservoir": [],
            },
            "staleness": {
                "count": staleness["count"],
                "total": staleness["mean"] * staleness["count"],
                "min": 0.0 if staleness["count"] else None,
                "max": staleness["max"] if staleness["count"] else None,
                "reservoir": [],
            },
        }
    counters = _counters_from_dict(data["counters"], restore)
    return ExperimentResult(
        counters=counters,
        chaos=data.get("chaos"),
        sitelist_evictions=data.get("sitelist_evictions", 0),
        cluster=data.get("cluster"),
        **scalars,
    )


def write_checkpoint(
    result: ExperimentResult, path: str, label: Optional[str] = None
) -> str:
    """Atomically persist one sweep point's result as a checkpoint file.

    Written via a temporary file and ``os.replace`` so a reader (or a
    resumed sweep) never observes a torn checkpoint, even if the writing
    worker is killed mid-write.  Returns ``path``.
    """
    counters = result.counters
    payload = {
        "version": CHECKPOINT_VERSION,
        "label": label,
        "result": result_to_dict(result),
        "restore": {
            "latency": counters.latency.state_dict(),
            "staleness": counters.staleness.state_dict(),
        },
    }
    tmp = f"{path}.tmp.{os.getpid()}"
    with open(tmp, "w") as handle:
        json.dump(payload, handle)
        handle.write("\n")
    os.replace(tmp, path)
    return path


def read_checkpoint(path: str) -> Tuple[Optional[str], ExperimentResult]:
    """Load a checkpoint written by :func:`write_checkpoint`.

    Returns ``(label, result)``.  Raises ``ValueError`` on files that are
    not checkpoints (or from an incompatible version).
    """
    with open(path, "r") as handle:
        payload = json.load(handle)
    if not isinstance(payload, dict) or "result" not in payload:
        raise ValueError(f"{path}: not a sweep checkpoint")
    version = payload.get("version")
    if version != CHECKPOINT_VERSION:
        raise ValueError(
            f"{path}: checkpoint version {version!r} != {CHECKPOINT_VERSION}"
        )
    data = dict(payload["result"])
    data["_restore"] = payload.get("restore")
    return payload.get("label"), result_from_dict(data)
