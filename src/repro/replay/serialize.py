"""Result serialization: JSON in/out for analysis pipelines.

`ExperimentResult` nests live counter objects; this module flattens a
result into plain JSON-compatible dictionaries (and back into a
read-only summary form) so sweeps can be archived, diffed and plotted
outside Python.
"""

from __future__ import annotations

import json
from typing import Any, Dict, IO, List, Sequence

from .experiment import ExperimentResult

__all__ = ["result_to_dict", "results_to_json", "write_results_json", "read_results_json"]

#: Scalar fields copied verbatim from the result.
_SCALAR_FIELDS = [
    "protocol",
    "trace_name",
    "mean_lifetime",
    "total_requests",
    "files_modified",
    "gets",
    "ims",
    "replies_200",
    "replies_304",
    "invalidations",
    "total_messages",
    "message_bytes",
    "cpu_utilization",
    "disk_utilization",
    "disk_reads_per_sec",
    "disk_writes_per_sec",
    "sitelist_storage_bytes",
    "sitelist_entries",
    "sitelist_avg_len",
    "sitelist_max_len",
    "invalidation_time_avg",
    "invalidation_time_max",
    "invalidations_sent",
    "origin_requests",
    "origin_replies_200",
    "origin_replies_304",
    "parent_upstream_fetches",
    "parent_invalidations_forwarded",
    "wall_time",
]


def result_to_dict(result: ExperimentResult) -> Dict[str, Any]:
    """Flatten one result into a JSON-compatible dictionary."""
    data: Dict[str, Any] = {name: getattr(result, name) for name in _SCALAR_FIELDS}
    counters = result.counters
    data["counters"] = {
        "requests": counters.requests,
        "hits": counters.hits,
        "misses": counters.misses,
        "transfers": counters.transfers,
        "validations": counters.validations,
        "served_from_cache": counters.served_from_cache,
        "stale_serves": counters.stale_serves,
        "violations": counters.violations,
        "failed": counters.failed,
        "hit_ratio": counters.hit_ratio,
        "body_bytes_from_cache": counters.body_bytes_from_cache,
        "body_bytes_transferred": counters.body_bytes_transferred,
    }
    data["latency"] = {
        "mean": counters.latency.mean,
        "min": counters.latency.min,
        "max": counters.latency.max,
        "p50": counters.latency.percentile(50),
        "p95": counters.latency.percentile(95),
        "p99": counters.latency.percentile(99),
        "count": counters.latency.count,
    }
    data["staleness"] = {
        "mean": counters.staleness.mean,
        "max": counters.staleness.max,
        "count": counters.staleness.count,
    }
    return data


def results_to_json(results: Sequence[ExperimentResult], indent: int = 2) -> str:
    """Serialize a list of results to a JSON string."""
    return json.dumps([result_to_dict(r) for r in results], indent=indent)


def write_results_json(results: Sequence[ExperimentResult], out: IO[str]) -> int:
    """Write results as JSON; returns the number of results written."""
    out.write(results_to_json(results))
    out.write("\n")
    return len(results)


def read_results_json(source: IO[str]) -> List[Dict[str, Any]]:
    """Load archived results (as plain dictionaries)."""
    data = json.load(source)
    if not isinstance(data, list):
        raise ValueError("expected a JSON list of results")
    return data
