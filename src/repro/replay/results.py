"""Paper-style result tables.

Formats :class:`~repro.replay.experiment.ExperimentResult` objects as the
rows of Tables 3-4 (per-trace protocol comparison) and Table 5
(invalidation costs), so benchmark output can be eyeballed against the
paper directly.
"""

from __future__ import annotations

from typing import List, Sequence

from .experiment import ExperimentResult

__all__ = ["format_comparison_table", "format_invalidation_costs", "comparison_rows"]


def _fmt_bytes(n: int) -> str:
    if n >= 1 << 30:
        return f"{n / (1 << 30):.2f}GB"
    if n >= 1 << 20:
        return f"{n / (1 << 20):.0f}MB"
    return f"{n / 1024:.0f}KB"


def comparison_rows(results: Sequence[ExperimentResult]) -> List[tuple]:
    """(label, values-per-protocol) rows in the paper's Table 3/4 order."""
    return [
        ("Hits", [r.hits for r in results]),
        ("GET Requests", [r.gets for r in results]),
        ("If-Modified-Since", [r.ims for r in results]),
        ("Reply 200", [r.replies_200 for r in results]),
        ("Reply 304", [r.replies_304 for r in results]),
        ("Invalidations", [r.invalidations for r in results]),
        ("Total Messages", [r.total_messages for r in results]),
        ("Messages Bytes", [_fmt_bytes(r.message_bytes) for r in results]),
        ("Stale Serves", [r.stale_serves for r in results]),
        (
            "Mean Staleness",
            [f"{r.counters.staleness.mean:.1f}s" for r in results],
        ),
        ("Avg. Latency", [f"{r.avg_latency:.3f}" for r in results]),
        ("Min Latency", [f"{r.min_latency:.3f}" for r in results]),
        ("Max Latency", [f"{r.max_latency:.3f}" for r in results]),
        ("Server CPU", [f"{100 * r.cpu_utilization:.1f}%" for r in results]),
        (
            "Disk RW/s",
            [
                f"{r.disk_reads_per_sec:.2f};{r.disk_writes_per_sec:.2f}"
                for r in results
            ],
        ),
    ]


def format_comparison_table(
    results: Sequence[ExperimentResult], title: str = ""
) -> str:
    """Render a Table 3/4-style block comparing protocols on one trace."""
    if not results:
        raise ValueError("no results to format")
    trace = results[0].trace_name
    header = title or (
        f"Trace {trace}, {results[0].total_requests} requests, "
        f"{results[0].files_modified} files modified"
    )
    width = max(18, *(len(r.protocol) + 2 for r in results))
    lines = [header]
    lines.append(
        f"{'':24s}" + "".join(f"{r.protocol:>{width}s}" for r in results)
    )
    for label, values in comparison_rows(results):
        cells = "".join(f"{str(v):>{width}s}" for v in values)
        lines.append(f"{label:24s}{cells}")
    return "\n".join(lines)


def format_invalidation_costs(results: Sequence[ExperimentResult]) -> str:
    """Render a Table 5-style block (invalidation runs only)."""
    if not results:
        raise ValueError("no results to format")
    width = max(14, *(len(r.trace_name) + 2 for r in results))
    lines = ["Invalidation costs (Table 5)"]
    lines.append(
        f"{'':24s}" + "".join(f"{r.trace_name:>{width}s}" for r in results)
    )
    rows = [
        ("Storage", [_fmt_bytes(r.sitelist_storage_bytes) for r in results]),
        ("Entries", [r.sitelist_entries for r in results]),
        ("Avg. SiteList", [f"{r.sitelist_avg_len:.1f}" for r in results]),
        ("Max. SiteList", [r.sitelist_max_len for r in results]),
        ("Avg. Inval. Time", [f"{r.invalidation_time_avg:.3f}" for r in results]),
        ("Max. Inval. Time", [f"{r.invalidation_time_max:.3f}" for r in results]),
        ("Invalidations Sent", [r.invalidations_sent for r in results]),
    ]
    for label, values in rows:
        cells = "".join(f"{str(v):>{width}s}" for v in values)
        lines.append(f"{label:24s}{cells}")
    return "\n".join(lines)
