"""Pseudo-clients: replay trace requests through a proxy (Section 5.1).

"Each pseudo-client handles approximately one fourth of the real clients
in the trace ... Pseudo-client i handles real clients whose clientid mod
4 is i.  A caching proxy runs on each pseudo-client.  A separate program
reads every record from the trace file, and if the real client in the
record is handled by the pseudo-client, generates a corresponding HTTP
request and sends it to the proxy, then waits for the reply."

Requests are issued serially per pseudo-client with a small per-request
driver overhead ("think time") covering trace parsing, logging and 1996
process scheduling — it dominates the replay's wall pace, as the paper's
measured disk-write rates imply (~3 requests/second across 4 clients).
"""

from __future__ import annotations

import random
import zlib
from typing import List, Sequence

from ..metrics import ReplayCounters
from ..proxy import ProxyCache
from ..traces import TraceRecord

__all__ = ["PseudoClient", "shard_for_client", "shard_records"]


def shard_for_client(client_id: str, num_shards: int) -> int:
    """Deterministic "clientid mod N" shard for a real client."""
    if num_shards < 1:
        raise ValueError("num_shards must be >= 1")
    return zlib.crc32(client_id.encode()) % num_shards


def shard_records(
    records: Sequence[TraceRecord], num_shards: int
) -> List[List[TraceRecord]]:
    """Split trace records across pseudo-clients by real-client id."""
    shards: List[List[TraceRecord]] = [[] for _ in range(num_shards)]
    for record in records:
        shards[shard_for_client(record.client, num_shards)].append(record)
    return shards


class PseudoClient:
    """Replays one shard of trace records through one proxy."""

    def __init__(
        self,
        proxy: ProxyCache,
        records: Sequence[TraceRecord],
        counters: ReplayCounters,
        think_time: float = 1.0,
        rng: random.Random = None,
    ) -> None:
        if think_time < 0:
            raise ValueError("think_time must be non-negative")
        self.proxy = proxy
        self.records = list(records)
        self.counters = counters
        self.think_time = think_time
        self.rng = rng or random.Random(0)
        self._next = 0

    @property
    def remaining(self) -> int:
        """Records not yet replayed."""
        return len(self.records) - self._next

    def participant(self, trace_start: float, trace_end: float):
        """Coordinator participant: replay records in [start, end).

        Issues each request, waits for the reply, records the outcome,
        then pays the driver overhead before the next request.
        """
        sim = self.proxy.sim
        while self._next < len(self.records):
            record = self.records[self._next]
            if record.timestamp >= trace_end:
                break
            self._next += 1
            outcome = yield from self.proxy.request(record.client, record.url)
            self.counters.record(outcome)
            if self.think_time > 0:
                yield sim.timeout(self.rng.uniform(0.5, 1.5) * self.think_time)
