"""Pseudo-clients: replay trace requests through a proxy (Section 5.1).

"Each pseudo-client handles approximately one fourth of the real clients
in the trace ... Pseudo-client i handles real clients whose clientid mod
4 is i.  A caching proxy runs on each pseudo-client.  A separate program
reads every record from the trace file, and if the real client in the
record is handled by the pseudo-client, generates a corresponding HTTP
request and sends it to the proxy, then waits for the reply."

Requests are issued serially per pseudo-client with a small per-request
driver overhead ("think time") covering trace parsing, logging and 1996
process scheduling — it dominates the replay's wall pace, as the paper's
measured disk-write rates imply (~3 requests/second across 4 clients).
"""

from __future__ import annotations

import random
import zlib
from typing import List, Optional, Sequence

from ..metrics import ReplayCounters
from ..proxy import ProxyCache
from ..sim.core import URGENT, Event
from ..traces import TraceRecord

__all__ = ["PseudoClient", "shard_for_client", "shard_records"]


def shard_for_client(client_id: str, num_shards: int) -> int:
    """Deterministic "clientid mod N" shard for a real client."""
    if num_shards < 1:
        raise ValueError("num_shards must be >= 1")
    return zlib.crc32(client_id.encode()) % num_shards


def shard_records(
    records: Sequence[TraceRecord], num_shards: int
) -> List[List[TraceRecord]]:
    """Split trace records across pseudo-clients by real-client id."""
    shards: List[List[TraceRecord]] = [[] for _ in range(num_shards)]
    for record in records:
        shards[shard_for_client(record.client, num_shards)].append(record)
    return shards


class PseudoClient:
    """Replays one shard of trace records through one proxy."""

    def __init__(
        self,
        proxy: ProxyCache,
        records: Sequence[TraceRecord],
        counters: ReplayCounters,
        think_time: float = 1.0,
        rng: random.Random = None,
        fast: bool = True,
    ) -> None:
        if think_time < 0:
            raise ValueError("think_time must be non-negative")
        self.proxy = proxy
        self.records = list(records)
        self.counters = counters
        self.think_time = think_time
        self.rng = rng or random.Random(0)
        #: Drive cache hits through the proxy's callback chain instead of
        #: generator resumption (identical results; see request_fast).
        self.fast = fast
        self._next = 0
        self._interval_end = 0.0
        self._handoff: Optional[Event] = None

    @property
    def remaining(self) -> int:
        """Records not yet replayed."""
        return len(self.records) - self._next

    def participant(self, trace_start: float, trace_end: float):
        """Coordinator participant: replay records in [start, end).

        Issues each request, waits for the reply, records the outcome,
        then pays the driver overhead before the next request.
        """
        if self.fast and self.proxy.fast_path_ok():
            return self._fast_participant(trace_start, trace_end)
        return self._general_participant(trace_start, trace_end)

    def _general_participant(self, trace_start: float, trace_end: float):
        sim = self.proxy.sim
        while self._next < len(self.records):
            record = self.records[self._next]
            if record.timestamp >= trace_end:
                break
            self._next += 1
            outcome = yield from self.proxy.request(record.client, record.url)
            self.counters.record(outcome)
            if self.think_time > 0:
                yield sim.sleep(self.rng.uniform(0.5, 1.5) * self.think_time)

    # -- fast driver --------------------------------------------------------
    #
    # Cache hits run entirely on pooled callback entries (request_fast);
    # the generator below only wakes up for requests that need the
    # network, via a handoff event succeeded at URGENT priority so the
    # general path resumes with nothing processed in between — the same
    # position the inline ``yield from`` would have run at.

    def _fast_participant(self, trace_start: float, trace_end: float):
        sim = self.proxy.sim
        self._interval_end = trace_end
        while True:
            self._handoff = Event(sim)
            self._issue_next()
            item = yield self._handoff
            if item is None:
                return
            entry, action, outcome = item
            outcome = yield from self.proxy._finish(entry, action, outcome)
            self.counters.record(outcome)
            if self.think_time > 0:
                yield sim.sleep(self.rng.uniform(0.5, 1.5) * self.think_time)

    def _issue_next(self) -> None:
        """Start the next record's request, or end the interval."""
        if self._next < len(self.records):
            record = self.records[self._next]
            if record.timestamp < self._interval_end:
                self._next += 1
                self.proxy.request_fast(
                    record.client, record.url, self._on_done, self._on_handoff
                )
                return
        self._signal(None)

    def _on_done(self, outcome) -> None:
        """A request completed on the callback chain (hit or down)."""
        self.counters.record(outcome)
        if self.think_time > 0:
            delay = self.rng.uniform(0.5, 1.5) * self.think_time
            self.proxy.sim.call_later(delay, self._issue_next)
        else:
            self._issue_next()

    def _on_handoff(self, entry, action, outcome) -> None:
        self._signal((entry, action, outcome))

    def _signal(self, value) -> None:
        # Succeed the handoff at URGENT so the parked generator resumes
        # before any same-time NORMAL entry, exactly where the inline
        # continuation would have run.
        event = self._handoff
        event._ok = True
        event._value = value
        event.sim._enqueue(event, URGENT)
