"""Parameter-sweep utilities.

The benchmarks hand-roll their sweeps; this module packages the pattern
for users: run a grid of (label, config) experiments, collect results,
and render a metric table.  Configurations derive from a base config via
``dataclasses.replace``-style keyword overrides, so sweeps stay
seed-consistent by construction.

Example::

    from repro.replay import ExperimentConfig, sweep, sweep_table

    base = ExperimentConfig(trace=trace, protocol=invalidation(),
                            mean_lifetime=14 * DAYS)
    results = sweep(base, cache=[
        ("16MB", {"proxy_cache_bytes": 16 << 20}),
        ("64MB", {"proxy_cache_bytes": 64 << 20}),
    ])
    print(sweep_table(results, ["total_messages", "avg_latency"]))
"""

from __future__ import annotations

import dataclasses
import hashlib
from typing import Callable, Dict, List, Sequence, Tuple

from .experiment import ExperimentConfig, ExperimentResult, run_experiment

__all__ = [
    "SweepPoint",
    "SweepPointError",
    "SweepResult",
    "derive_point_seed",
    "point_config",
    "sweep",
    "sweep_table",
]

#: One sweep point: a display label plus config-field overrides.
SweepPoint = Tuple[str, Dict[str, object]]


class SweepPointError(ValueError):
    """A sweep point's overrides do not form a valid configuration.

    Carries the point's label so a bad cell in a big grid is locatable
    without decoding a bare ``dataclasses.replace`` traceback.
    """

    def __init__(self, label: str, message: str) -> None:
        super().__init__(f"sweep point {label!r}: {message}")
        self.label = label


def derive_point_seed(base_seed: int, label: str) -> int:
    """Deterministic per-point seed from the base seed and point label.

    Stable across processes and Python versions (unlike ``hash()``), so a
    sweep executed serially, in parallel, or resumed from checkpoints
    sees bit-identical RNG streams for every point.
    """
    digest = hashlib.sha256(f"{base_seed}:{label}".encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big")


def point_config(
    base: ExperimentConfig,
    label: str,
    overrides: Dict[str, object],
    derive_seeds: bool = False,
) -> ExperimentConfig:
    """Derive one point's config from ``base``; the single construction
    path shared by the serial and parallel sweep executors.

    Args:
        derive_seeds: give the point its own seed (from
            :func:`derive_point_seed`) unless the overrides set one
            explicitly.  Off by default: protocol-comparison sweeps rely
            on every point seeing the identical seeded workload.

    Raises:
        SweepPointError: on an unknown config field or a field value the
            config rejects, naming the offending point.
    """
    fields = dict(overrides)
    if derive_seeds and "seed" not in fields:
        fields["seed"] = derive_point_seed(base.seed, label)
    valid = {f.name for f in dataclasses.fields(base)}
    unknown = sorted(set(fields) - valid)
    if unknown:
        raise SweepPointError(
            label,
            f"unknown config field(s) {', '.join(map(repr, unknown))}; "
            f"valid fields are {', '.join(sorted(valid))}",
        )
    try:
        return dataclasses.replace(base, **fields)
    except (TypeError, ValueError) as exc:
        raise SweepPointError(label, str(exc)) from exc


@dataclasses.dataclass(frozen=True)
class SweepResult:
    """A labelled experiment result from a sweep."""

    label: str
    config: ExperimentConfig
    result: ExperimentResult


def sweep(
    base: ExperimentConfig,
    points: Sequence[SweepPoint],
    runner: Callable[[ExperimentConfig], ExperimentResult] = run_experiment,
    derive_seeds: bool = False,
) -> List[SweepResult]:
    """Run the experiment grid derived from ``base``.

    Args:
        base: the configuration every point derives from.
        points: ``(label, {field: value, ...})`` overrides.  Overriding
            ``protocol`` per point is the common case for protocol
            comparisons.
        runner: either a per-config callable (the serial path; injection
            point for caching/testing) or a sweep-level executor exposing
            ``run_sweep(base, points, derive_seeds=...)`` such as
            :class:`repro.replay.parallel.ParallelSweepRunner`.
        derive_seeds: see :func:`point_config`.
    """
    run_sweep = getattr(runner, "run_sweep", None)
    if run_sweep is not None:
        return run_sweep(base, points, derive_seeds=derive_seeds)
    results = []
    for label, overrides in points:
        config = point_config(base, label, overrides, derive_seeds=derive_seeds)
        results.append(
            SweepResult(label=label, config=config, result=runner(config))
        )
    return results


def sweep_table(
    results: Sequence[SweepResult],
    metrics: Sequence[str],
    float_format: str = "{:.3f}",
) -> str:
    """Render sweep results as a label x metric text table.

    ``metrics`` are attribute names on :class:`ExperimentResult`
    (``"total_messages"``, ``"avg_latency"``, ``"cpu_utilization"``, ...).
    """
    if not results:
        raise ValueError("no sweep results to format")
    label_width = max(12, *(len(r.label) + 2 for r in results))
    widths = [max(12, len(m) + 2) for m in metrics]
    header = f"{'':{label_width}s}" + "".join(
        f"{m:>{w}s}" for m, w in zip(metrics, widths)
    )
    lines = [header]
    for item in results:
        cells = []
        for metric, width in zip(metrics, widths):
            value = getattr(item.result, metric)
            text = (
                float_format.format(value)
                if isinstance(value, float)
                else str(value)
            )
            cells.append(f"{text:>{width}s}")
        lines.append(f"{item.label:{label_width}s}" + "".join(cells))
    return "\n".join(lines)
