"""Parameter-sweep utilities.

The benchmarks hand-roll their sweeps; this module packages the pattern
for users: run a grid of (label, config) experiments, collect results,
and render a metric table.  Configurations derive from a base config via
``dataclasses.replace``-style keyword overrides, so sweeps stay
seed-consistent by construction.

Example::

    from repro.replay import ExperimentConfig, sweep, sweep_table

    base = ExperimentConfig(trace=trace, protocol=invalidation(),
                            mean_lifetime=14 * DAYS)
    results = sweep(base, cache=[
        ("16MB", {"proxy_cache_bytes": 16 << 20}),
        ("64MB", {"proxy_cache_bytes": 64 << 20}),
    ])
    print(sweep_table(results, ["total_messages", "avg_latency"]))
"""

from __future__ import annotations

import dataclasses
from typing import Callable, Dict, List, Sequence, Tuple

from .experiment import ExperimentConfig, ExperimentResult, run_experiment

__all__ = ["SweepResult", "sweep", "sweep_table"]

#: One sweep point: a display label plus config-field overrides.
SweepPoint = Tuple[str, Dict[str, object]]


@dataclasses.dataclass(frozen=True)
class SweepResult:
    """A labelled experiment result from a sweep."""

    label: str
    config: ExperimentConfig
    result: ExperimentResult


def sweep(
    base: ExperimentConfig,
    points: Sequence[SweepPoint],
    runner: Callable[[ExperimentConfig], ExperimentResult] = run_experiment,
) -> List[SweepResult]:
    """Run the experiment grid derived from ``base``.

    Args:
        base: the configuration every point derives from.
        points: ``(label, {field: value, ...})`` overrides.  Overriding
            ``protocol`` per point is the common case for protocol
            comparisons.
        runner: injection point for caching/testing.
    """
    results = []
    for label, overrides in points:
        config = dataclasses.replace(base, **overrides)
        results.append(
            SweepResult(label=label, config=config, result=runner(config))
        )
    return results


def sweep_table(
    results: Sequence[SweepResult],
    metrics: Sequence[str],
    float_format: str = "{:.3f}",
) -> str:
    """Render sweep results as a label x metric text table.

    ``metrics`` are attribute names on :class:`ExperimentResult`
    (``"total_messages"``, ``"avg_latency"``, ``"cpu_utilization"``, ...).
    """
    if not results:
        raise ValueError("no sweep results to format")
    label_width = max(12, *(len(r.label) + 2 for r in results))
    widths = [max(12, len(m) + 2) for m in metrics]
    header = f"{'':{label_width}s}" + "".join(
        f"{m:>{w}s}" for m, w in zip(metrics, widths)
    )
    lines = [header]
    for item in results:
        cells = []
        for metric, width in zip(metrics, widths):
            value = getattr(item.result, metric)
            text = (
                float_format.format(value)
                if isinstance(value, float)
                else str(value)
            )
            cells.append(f"{text:>{width}s}")
        lines.append(f"{item.label:{label_width}s}" + "".join(cells))
    return "\n".join(lines)
