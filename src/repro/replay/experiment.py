"""Experiment runner: one protocol x one trace x one lifetime.

This wires the whole testbed together the way Section 5.1 describes:

* one pseudo-server workstation (:class:`repro.server.ServerSite`) holding
  scaled copies of every trace document;
* four pseudo-client workstations, each running a caching proxy and a
  trace-replay driver for its quarter of the real clients;
* a modifier process touching one uniform-random file every N seconds of
  trace time (N from the mean-lifetime arithmetic);
* the lock-step time coordinator;
* an iostat sampler on the server.

Clock semantics: trace time is compressed — pseudo-clients issue their
interval's requests back-to-back (plus driver overhead), so the replay's
wall clock advances much more slowly than trace time, exactly like the
paper's testbed.  All freshness dynamics (document mtimes, adaptive-TTL
ages, leases) live in wall time; the modifier's schedule is mapped from
trace time into the interval it falls in, so modification *rates* stay
consistent with the compressed request stream.

Fairness: the modification schedule, document sizes, initial ages and
client sharding derive from seed streams that do not depend on the
protocol, so all protocol runs of one experiment see identical workloads.
"""

from __future__ import annotations

import dataclasses
import difflib
from dataclasses import dataclass, field
from typing import List, Optional

from ..core.protocol import Protocol
from ..http import (
    CATEGORY_GET,
    CATEGORY_IMS,
    CATEGORY_INVALIDATE,
    CATEGORY_REPLY_200,
    CATEGORY_REPLY_304,
)
from ..http.wire import DEFAULT_WIRE, WireCosts
from ..metrics import IostatSampler, ReplayCounters
from ..net import LanModel, LatencyModel, Network
from ..proxy import Cache, ProxyCache, ProxyCosts
from ..server import DEFAULT_SERVER_COSTS, FileStore, ServerCosts, ServerSite
from ..sim import RngRegistry, Simulator
from ..traces import Trace
from ..workload import generate_schedule
from .coordinator import TimeCoordinator
from .pseudo_client import PseudoClient, shard_records

__all__ = ["ExperimentConfig", "ExperimentResult", "run_experiment"]


def _unknown_value(label: str, value, choices) -> str:
    """Error text for a bad enum value, suggesting the closest spelling."""
    suggestion = difflib.get_close_matches(str(value), list(choices), n=1)
    hint = f"; did you mean {suggestion[0]!r}?" if suggestion else ""
    options = ", ".join(repr(c) for c in choices)
    return f"unknown {label} {value!r}{hint} (choose from {options})"


@dataclass(frozen=True)
class ExperimentConfig:
    """Everything one replay run needs.

    Attributes:
        trace: the request trace to replay.
        protocol: the consistency approach under test.
        mean_lifetime: mean document lifetime, in *trace* seconds (the
            modifier interval derives from it: N = lifetime / num_files).
        num_pseudo_clients: proxy workstations (paper: 4).
        proxy_cache_bytes: per-proxy cache capacity; ``None`` = unbounded.
        seed: master seed for every stochastic stream.
        interval: coordinator lock-step, in trace seconds (paper: 300).
        size_scale: divide document sizes by this for *time* computations
            (disk reads, network transfer), while byte accounting stays
            full-size — the paper's factor-100 scaling methodology.
        think_time: pseudo-client driver overhead per request (wall s).
        mean_initial_age: mean initial document age (wall s); default 0
            matches the paper's testbed where scaled document copies are
            created at setup time.
        modifier_overhead: wall seconds the modifier spends per touch.
        detection: how the accelerator learns of modifications —
            ``"notify"`` (the paper's check-in utility, immediate) or
            ``"browser"`` (Section 4's other approach: the author views
            the modified page ``browser_view_delay`` wall seconds later,
            which triggers the accelerator's mtime check).
        browser_view_delay: mean wall delay before the author's view
            (uniform 0.5x-1.5x jitter), for ``detection="browser"``.
        server_costs / proxy_costs / wire: cost-model overrides.
        latency_model: network latency override; default is the paper's
            100 Mb/s Ethernet LAN.  Pass a :class:`repro.net.WanModel`
            for the paper's "how would this look on the real Internet"
            extrapolation (apply ``size_scale`` yourself when overriding).
        hierarchy_parents: when set, insert that many upper-level caches
            between the leaf proxies and the server (leaf ``i`` uses
            parent ``i mod N``) — the Worrell [14] configuration from the
            related-work discussion.  Only meaningful for invalidation
            protocols.
        parent_cache_bytes: capacity of each parent cache.
        shards: accelerator shards behind the ``server`` address.  The
            default 1 is the paper's single accelerator (bit-identical to
            the pre-cluster code path); ``> 1`` builds a
            :class:`repro.server.AcceleratorCluster` that partitions
            documents across shards by consistent hashing.
        batch_window: seconds a shard may hold a proxy's invalidations
            open to coalesce them into one batched INVALIDATE (0 with
            ``batch_max`` 0 disables batching; shards only).
        batch_max: flush a shard's per-proxy invalidation buffer as soon
            as it holds this many (url, client) pairs (0 = no size cap;
            shards only).
        iostat_period: sampling period for the load monitor.
        fault_schedule: optional :class:`repro.chaos.FaultSchedule` (or
            its ``to_dict()`` form) of crashes/partitions/link faults/
            clock skew to inject during the replay.
        audit: attach the strong-consistency auditor
            (:class:`repro.chaos.ConsistencyAuditor`) and publish its
            verdict in ``result.chaos``.
        fast_path: use the zero-allocation kernel fast paths (pooled
            callback chains for cache hits, fire-and-forget network
            sends).  Results are event-for-event identical either way —
            ``tests/test_differential_fastpath.py`` proves it; the flag
            exists so that proof has a lever to pull.
        observation: optional :class:`repro.obs.Observation` receiving
            per-request metric series, lifecycle spans and end-of-run
            aggregates.  A plain observation preserves the fast path and
            changes no result; ``Observation(deep=True)`` additionally
            traces every kernel event (slower, same results).  Not
            picklable — use ``None`` (the default) with parallel sweep
            runners and aggregate from checkpoints instead.
    """

    trace: Trace
    protocol: Protocol
    mean_lifetime: float
    num_pseudo_clients: int = 4
    proxy_cache_bytes: Optional[int] = 64 * 1024 * 1024
    seed: int = 42
    interval: float = 300.0
    size_scale: float = 100.0
    think_time: float = 1.0
    mean_initial_age: float = 0.0
    modifier_overhead: float = 0.5
    detection: str = "notify"
    browser_view_delay: float = 120.0
    server_costs: ServerCosts = DEFAULT_SERVER_COSTS
    proxy_costs: ProxyCosts = ProxyCosts()
    wire: WireCosts = DEFAULT_WIRE
    latency_model: Optional[LatencyModel] = None
    hierarchy_parents: Optional[int] = None
    parent_cache_bytes: Optional[int] = 256 * 1024 * 1024
    iostat_period: float = 60.0
    fault_schedule: Optional[object] = None
    audit: bool = False
    fast_path: bool = True
    observation: Optional[object] = None
    shards: int = 1
    batch_window: float = 0.0
    batch_max: int = 0

    def __post_init__(self) -> None:
        self.validate()

    def validate(self) -> "ExperimentConfig":
        """Check every cross-field constraint; returns ``self`` when valid.

        Raises :class:`ValueError` with actionable messages — string
        enums suggest the closest valid spelling, so a typo like
        ``detection="notfy"`` points at ``"notify"`` instead of only
        listing the alternatives.  Construction runs this automatically;
        callers assembling configs via ``dataclasses.replace`` or the
        :mod:`repro.api` facade can call it again for free.
        """
        if self.mean_lifetime <= 0:
            raise ValueError("mean_lifetime must be positive")
        if self.num_pseudo_clients < 1:
            raise ValueError("need at least one pseudo-client")
        if self.size_scale <= 0:
            raise ValueError("size_scale must be positive")
        if self.detection not in ("notify", "browser"):
            raise ValueError(
                _unknown_value("detection mode", self.detection,
                               ("notify", "browser"))
            )
        if self.shards < 1:
            raise ValueError("shards must be at least 1")
        if self.batch_window < 0:
            raise ValueError("batch_window must be non-negative")
        if self.batch_max < 0:
            raise ValueError("batch_max must be non-negative")
        if self.shards == 1 and (self.batch_window or self.batch_max):
            raise ValueError(
                "invalidation batching (batch_window/batch_max) requires "
                "shards > 1 — the single-accelerator path is kept "
                "bit-identical to the paper's testbed"
            )
        if self.shards > 1 and self.hierarchy_parents:
            raise ValueError(
                "shards > 1 cannot be combined with hierarchy_parents"
            )
        if self.shards > 1 and self.protocol.adaptive_lease_budget:
            raise ValueError(
                "shards > 1 cannot be combined with an adaptive-lease "
                "protocol (the controller assumes one accelerator)"
            )
        return self


@dataclass
class ExperimentResult:
    """Everything Tables 3-5 print for one (protocol, trace) run."""

    protocol: str
    trace_name: str
    mean_lifetime: float
    total_requests: int
    files_modified: int

    counters: ReplayCounters = field(default_factory=ReplayCounters)

    # Wire-measured message counts (Tables 3-4 rows).
    gets: int = 0
    ims: int = 0
    replies_200: int = 0
    replies_304: int = 0
    invalidations: int = 0
    total_messages: int = 0
    message_bytes: int = 0

    # Server load (iostat).
    cpu_utilization: float = 0.0
    disk_utilization: float = 0.0
    disk_reads_per_sec: float = 0.0
    disk_writes_per_sec: float = 0.0

    # Invalidation costs (Table 5).
    sitelist_storage_bytes: int = 0
    sitelist_entries: int = 0
    sitelist_avg_len: float = 0.0
    sitelist_max_len: int = 0
    invalidation_time_avg: float = 0.0
    invalidation_time_max: float = 0.0
    invalidations_sent: int = 0
    #: Expired site-list entries evicted under the lease-grace rule
    #: during the run (0 for protocols without finite leases).
    sitelist_evictions: int = 0

    # Origin-server-side counters (differ from the wire counts when a
    # hierarchy adds a second hop).
    origin_requests: int = 0
    origin_replies_200: int = 0
    origin_replies_304: int = 0

    # Hierarchy extension (zero when no parents are configured).
    parent_upstream_fetches: int = 0
    parent_invalidations_forwarded: int = 0

    wall_time: float = 0.0

    # Chaos verdict (auditor report + network-fault and schedule data);
    # ``None`` unless the run was audited or fault-injected.
    chaos: Optional[dict] = None

    # Sharded-accelerator panel (per-shard counters, imbalance, batching
    # savings); ``None`` unless the run used ``shards > 1``.
    cluster: Optional[dict] = None

    @property
    def hits(self) -> int:
        """Cache hits (protocol-specific definition, see core policies)."""
        return self.counters.hits

    @property
    def stale_serves(self) -> int:
        """Unvalidated serves of outdated content.

        For adaptive TTL these are the paper's stale hits.  For the
        invalidation family a nonzero value reflects reads concurrent
        with an in-flight invalidation fan-out (the write has not
        completed), which the paper's strong-consistency definition
        permits; true violations are counted separately.
        """
        return self.counters.stale_serves

    @property
    def violations(self) -> int:
        """Strong-consistency violations (must be zero; see proxy docs)."""
        return self.counters.violations

    @property
    def avg_latency(self) -> float:
        """Mean client-observed request latency, in seconds."""
        return self.counters.latency.mean

    @property
    def min_latency(self) -> float:
        """Fastest observed request latency, in seconds."""
        return self.counters.latency.min

    @property
    def max_latency(self) -> float:
        """Slowest observed request latency, in seconds."""
        return self.counters.latency.max


def run_experiment(config: ExperimentConfig) -> ExperimentResult:
    """Replay one trace under one protocol; returns the measured result."""
    trace = config.trace
    protocol = config.protocol
    rng = RngRegistry(config.seed)
    sim = Simulator()

    # Scale *time* by the document-size scale, keep byte accounting full.
    latency_model = config.latency_model or LanModel(size_scale=config.size_scale)
    network = Network(sim, latency=latency_model, fast_sends=config.fast_path)
    scaled_server_costs = dataclasses.replace(
        config.server_costs,
        cpu_per_kb=config.server_costs.cpu_per_kb / config.size_scale,
        disk_read_per_kb=config.server_costs.disk_read_per_kb / config.size_scale,
    )
    scaled_proxy_costs = dataclasses.replace(
        config.proxy_costs,
        cpu_serve_per_kb=config.proxy_costs.cpu_serve_per_kb / config.size_scale,
    )

    filestore = FileStore.from_catalog(
        trace.documents,
        mean_initial_age=config.mean_initial_age,
        rng=rng.stream("initial-ages"),
    )
    cluster = None
    if config.shards > 1:
        from ..server.cluster import AcceleratorCluster

        cluster = AcceleratorCluster(
            sim,
            network,
            "server",
            filestore,
            accel=protocol.accelerator,
            costs=scaled_server_costs,
            wire=config.wire,
            num_shards=config.shards,
            batch_window=config.batch_window,
            batch_max=config.batch_max,
        )
        server = cluster
    else:
        server = ServerSite(
            sim,
            network,
            "server",
            filestore,
            accel=protocol.accelerator,
            costs=scaled_server_costs,
            wire=config.wire,
        )

    parents = []
    if config.hierarchy_parents:
        from ..hierarchy import ParentProxy

        parents = [
            ParentProxy(
                sim,
                network,
                f"parent-{i}",
                "server",
                cache=Cache(capacity_bytes=config.parent_cache_bytes),
                costs=scaled_proxy_costs,
                wire=config.wire,
            )
            for i in range(config.hierarchy_parents)
        ]

    counters = ReplayCounters()
    observation = config.observation
    oracle = lambda url: filestore.get(url).last_modified  # noqa: E731
    shards = shard_records(trace.records, config.num_pseudo_clients)
    clients: List[PseudoClient] = []
    proxies: List[ProxyCache] = []
    for i, shard in enumerate(shards):
        upstream = (
            parents[i % len(parents)].address if parents else "server"
        )
        proxy = ProxyCache(
            sim,
            network,
            f"proxy-{i}",
            upstream,
            policy=protocol.client_policy,
            cache=Cache(
                capacity_bytes=config.proxy_cache_bytes,
                expired_first=protocol.expired_first_cache,
            ),
            wire=config.wire,
            costs=scaled_proxy_costs,
            oracle=oracle,
        )
        proxies.append(proxy)
        # The observation wrapper feeds the same ReplayCounters (results
        # are untouched) and records from the one seam both the fast and
        # the general client paths share, so observing keeps the
        # zero-allocation fast path and bit-identical outcomes.
        client_counters = (
            observation.wrap_counters(counters, site=proxy.address)
            if observation is not None
            else counters
        )
        clients.append(
            PseudoClient(
                proxy,
                shard,
                client_counters,
                think_time=config.think_time,
                rng=rng.stream(f"think-{i}"),
                fast=config.fast_path,
            )
        )

    # Operator-configured roster: lets a server that lost its persistent
    # site log still reach every proxy on recovery.
    server.proxy_roster = {p.address for p in proxies}

    auditor = None
    if config.audit:
        from ..chaos.auditor import ConsistencyAuditor

        auditor = ConsistencyAuditor(
            server, strong=protocol.strong, detection=config.detection
        )
        for proxy in proxies:
            proxy.observer = auditor

    injector = None
    schedule_obj = None
    if config.fault_schedule is not None:
        from ..chaos.faults import FaultSchedule, apply_schedule
        from ..failures import FailureInjector

        schedule_obj = config.fault_schedule
        if isinstance(schedule_obj, dict):
            schedule_obj = FaultSchedule.from_dict(schedule_obj)
        injector = FailureInjector(sim, network)
        apply_schedule(
            schedule_obj, injector, server, {p.address: p for p in proxies},
            cluster=cluster,
        )

    # Modification schedule in trace time (identical across protocols).
    schedule = generate_schedule(
        sorted(trace.documents),
        duration=trace.duration,
        mean_lifetime_seconds=config.mean_lifetime,
        rng=rng.stream("modifications"),
    )

    browser_rng = rng.stream("browser-views")

    def notify_change(url: str) -> None:
        if not protocol.needs_check_in:
            return
        if config.detection == "notify":
            server.check_in(url)
        else:
            # Browser-based detection: the author views the page a bit
            # later; the accelerator then compares mtimes.
            delay = config.browser_view_delay * browser_rng.uniform(0.5, 1.5)
            sim.schedule_callback(delay, lambda u=url: server.check_document(u))

    def modifier_participant(trace_start: float, trace_end: float):
        state = modifier_participant
        while state.next < len(schedule) and schedule[state.next].time < trace_end:
            mod = schedule[state.next]
            state.next += 1
            filestore.modify(mod.url, now=sim.now)
            notify_change(mod.url)
            if config.modifier_overhead > 0:
                yield sim.sleep(config.modifier_overhead)

    modifier_participant.next = 0

    coordinator = TimeCoordinator(sim, interval=config.interval)
    for client in clients:
        coordinator.register(client.participant)
    coordinator.register(modifier_participant)

    if observation is not None:
        # Bound after the coordinator exists so phases can be derived
        # from its trace clock (no events of its own are scheduled).
        observation.bind(
            sim,
            protocol=protocol.name,
            trace_name=trace.name,
            coordinator=coordinator,
            duration=trace.duration,
        )
        server.fanout_listener = observation.fanout_listener

    iostat = IostatSampler(sim, server, period=config.iostat_period)
    lease_controller = None
    if protocol.adaptive_lease_budget:
        from ..server import AdaptiveLeaseController

        lease_controller = AdaptiveLeaseController(
            sim,
            server,
            state_budget_bytes=protocol.adaptive_lease_budget,
            initial_lease=protocol.accelerator.lease_get,
        )
    run_process = sim.process(coordinator.run(trace.duration))
    # Run until the coordinator finishes (the sampler alone would keep the
    # queue alive forever), then stop sampling and drain stragglers
    # (in-flight invalidation fan-outs, last replies).
    while not run_process.triggered:
        try:
            sim.step()
        except IndexError:
            raise RuntimeError("replay deadlocked before completing the trace")
    if not run_process.ok:
        raise RuntimeError(f"replay failed: {run_process.value!r}")
    iostat.stop()
    if lease_controller is not None:
        lease_controller.stop()
    sim.run()
    wall_time = sim.now

    stats = network.stats
    if protocol.accelerator.grant_leases:
        # Reclaim expired leases before reading end-of-run storage, as a
        # lease-aware server would.
        server.table.purge_expired(sim.now)
    avg_len, max_len = server.table.modified_list_lengths()
    inval_times = server.invalidation_times
    result = ExperimentResult(
        protocol=protocol.name,
        trace_name=trace.name,
        mean_lifetime=config.mean_lifetime,
        total_requests=len(trace.records),
        files_modified=modifier_participant.next,
        counters=counters,
        gets=stats.messages(CATEGORY_GET),
        ims=stats.messages(CATEGORY_IMS),
        replies_200=stats.messages(CATEGORY_REPLY_200),
        replies_304=stats.messages(CATEGORY_REPLY_304),
        invalidations=stats.messages(CATEGORY_INVALIDATE),
        total_messages=stats.total_messages,
        message_bytes=stats.total_bytes,
        cpu_utilization=iostat.cpu_utilization(),
        disk_utilization=iostat.disk_utilization(),
        disk_reads_per_sec=iostat.disk_reads_per_sec(),
        disk_writes_per_sec=iostat.disk_writes_per_sec(),
        sitelist_storage_bytes=server.table.storage_bytes(),
        sitelist_entries=server.table.total_entries(),
        sitelist_avg_len=avg_len,
        sitelist_max_len=max_len,
        invalidation_time_avg=(
            sum(inval_times) / len(inval_times) if inval_times else 0.0
        ),
        invalidation_time_max=max(inval_times) if inval_times else 0.0,
        invalidations_sent=server.invalidations_sent,
        sitelist_evictions=server.table.evictions,
        origin_requests=server.requests_handled,
        origin_replies_200=server.replies_200,
        origin_replies_304=server.replies_304,
        parent_upstream_fetches=sum(p.upstream_fetches for p in parents),
        parent_invalidations_forwarded=sum(
            p.invalidations_forwarded for p in parents
        ),
        wall_time=wall_time,
    )
    if cluster is not None:
        routed = [cluster.requests_routed[s.address] for s in cluster.shards]
        mean_routed = sum(routed) / len(routed) if routed else 0.0
        result.cluster = {
            "shards": config.shards,
            "batch_window": config.batch_window,
            "batch_max": config.batch_max,
            "per_shard": {
                s.address: {
                    "requests_routed": cluster.requests_routed[s.address],
                    "requests_handled": s.requests_handled,
                    "replies_200": s.replies_200,
                    "replies_304": s.replies_304,
                    "invalidations_sent": s.invalidations_sent,
                    "batches_sent": s.batches_sent,
                    "batched_invalidations": s.batched_invalidations,
                    "sitelist_entries": s.table.total_entries(),
                    "sitelist_storage_bytes": s.table.storage_bytes(),
                    "sitelist_evictions": s.table.evictions,
                }
                for s in cluster.shards
            },
            "max_requests_routed": max(routed) if routed else 0,
            "mean_requests_routed": mean_routed,
            "imbalance_ratio": (
                max(routed) / mean_routed if mean_routed else 0.0
            ),
            "handoffs": cluster.handoffs,
            "shard_crashes": cluster.shard_crashes,
            "rebalances": cluster.rebalances,
            "batches_delivered": stats.batches(CATEGORY_INVALIDATE),
            "batched_invalidations_delivered": stats.batched_payloads(
                CATEGORY_INVALIDATE
            ),
        }
    if auditor is not None or injector is not None:
        chaos = auditor.report() if auditor is not None else {}
        chaos["network"] = {
            "messages_sent": stats.messages_sent,
            "messages_lost": stats.messages_lost,
            "lost_by_reason": stats.lost_by_reason(),
            "duplicates_delivered": stats.duplicates_delivered,
            "invalidations_abandoned": server.invalidations_abandoned,
        }
        if schedule_obj is not None:
            chaos["schedule"] = schedule_obj.to_dict()
        if injector is not None:
            chaos["fault_log"] = [
                {"time": e.time, "kind": e.kind, "target": e.target}
                for e in injector.log
            ]
        result.chaos = chaos
    if observation is not None:
        observation.finish(
            sim=sim,
            result=result,
            network_stats=stats,
            server=server,
            proxies=proxies,
            iostat=iostat,
        )
    return result
