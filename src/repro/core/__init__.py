"""The paper's contribution: cache-consistency protocols + analysis.

Quick use::

    from repro.core import adaptive_ttl, poll_every_time, invalidation

    protocols = [adaptive_ttl(), poll_every_time(), invalidation()]
"""

from .adaptive_ttl import DEFAULT_TTL_FACTOR, AdaptiveTtlPolicy, adaptive_ttl
from .analysis import (
    MessageCounts,
    simulate_stream,
    symbolic_counts,
    timed_stream_from_ops,
)
from .fixed_ttl import FixedTtlPolicy, fixed_ttl
from .invalidation import InvalidationPolicy, invalidation
from .leases import (
    DEFAULT_LEASE,
    adaptive_lease,
    lease_invalidation,
    two_tier_lease,
)
from .piggyback import piggyback_invalidation
from .polling import PollEveryTimePolicy, poll_every_time
from .prediction import TracePrediction, pair_streams, predict_message_counts
from .protocol import SERVE, VALIDATE, ClientPolicy, Protocol

__all__ = [
    "Protocol",
    "ClientPolicy",
    "SERVE",
    "VALIDATE",
    "adaptive_ttl",
    "AdaptiveTtlPolicy",
    "DEFAULT_TTL_FACTOR",
    "poll_every_time",
    "PollEveryTimePolicy",
    "fixed_ttl",
    "FixedTtlPolicy",
    "piggyback_invalidation",
    "invalidation",
    "InvalidationPolicy",
    "lease_invalidation",
    "two_tier_lease",
    "adaptive_lease",
    "DEFAULT_LEASE",
    "MessageCounts",
    "symbolic_counts",
    "simulate_stream",
    "timed_stream_from_ops",
    "predict_message_counts",
    "TracePrediction",
    "pair_streams",
]
