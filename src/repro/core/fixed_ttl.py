"""Fixed TTL — the baseline Worrell's thesis compared invalidation to.

Related work (Section 2): Worrell [14] compared invalidation "with a
fixed TTL approach, in which a single time-to-live is assigned to all
files" and concluded invalidation is better.  The paper's adaptive TTL
is the stronger weak-consistency baseline; fixed TTL is included here so
that comparison can be reproduced too, and because it exposes adaptive
TTL's advantage (fixed TTL must choose between frequent validation and
frequent staleness for *all* documents at once).
"""

from __future__ import annotations

from ..proxy.entry import CacheEntry
from ..server.accelerator import AcceleratorConfig
from .protocol import SERVE, VALIDATE, ClientPolicy, Protocol

__all__ = ["FixedTtlPolicy", "fixed_ttl"]


class FixedTtlPolicy(ClientPolicy):
    """Client policy: every copy is fresh for the same fixed window."""

    def __init__(self, ttl: float) -> None:
        if ttl < 0:
            raise ValueError("ttl must be non-negative")
        self.name = f"fixed-ttl({ttl:g}s)"
        self.ttl = ttl

    def action(self, entry: CacheEntry, now: float) -> str:
        return SERVE if entry.fresh_by_ttl(now) else VALIDATE

    def on_fill(self, entry: CacheEntry, response, now: float) -> None:
        entry.expires = now + self.ttl

    def on_validated(self, entry: CacheEntry, response, now: float) -> None:
        entry.expires = now + self.ttl

    def is_hit(self, outcome) -> bool:
        return outcome.served_from_cache


def fixed_ttl(ttl: float = 3600.0) -> Protocol:
    """A single time-to-live for every document (Worrell's baseline)."""
    return Protocol(
        name=f"fixed-ttl({ttl:g}s)",
        client_policy=FixedTtlPolicy(ttl),
        accelerator=AcceleratorConfig(invalidation=False),
        expired_first_cache=True,
        strong=False,
    )
