"""Server-driven invalidation — the paper's recommended approach.

The accelerator remembers every client site that fetched a document and
sends INVALIDATE messages to all of them when it changes; a write is
complete when the invalidations have reached the relevant clients.  The
proxy deletes invalidated copies (freeing cache space for fresh
documents), so a valid cached copy can be served without contacting the
server at all.

``blocking`` reproduces the prototype inefficiency the paper measured:
the accelerator "does not accept new requests until it finishes sending
all invalidation messages", producing the large worst-case latencies in
Tables 3-4.  ``blocking=False`` is the paper's proposed fix (a separate
sending process), benchmarked as Ablation A.
"""

from __future__ import annotations

from typing import Optional

from ..proxy.entry import CacheEntry
from ..server.accelerator import AcceleratorConfig
from .protocol import SERVE, VALIDATE, ClientPolicy, Protocol

__all__ = ["InvalidationPolicy", "invalidation"]


class InvalidationPolicy(ClientPolicy):
    """Client policy: a cached copy is valid until invalidated.

    With leases (Section 6) a copy is only trusted while its lease holds;
    after expiry the client keeps its promise to revalidate.  Plain
    invalidation is the ``lease = infinity`` special case.
    """

    def __init__(self, want_leases: bool = False) -> None:
        self.name = "invalidation"
        self.want_lease_get = want_leases
        self.want_lease_ims = want_leases

    def action(self, entry: CacheEntry, now: float) -> str:
        return SERVE if entry.lease_valid(now) else VALIDATE

    def is_hit(self, outcome) -> bool:
        return outcome.served_from_cache


def invalidation(
    blocking: bool = True,
    multicast: bool = False,
    retry_interval: float = 30.0,
    max_retries: Optional[int] = None,
) -> Protocol:
    """The paper's simple invalidation protocol.

    Args:
        blocking: reproduce the prototype's blocking send (default, as
            measured in Tables 3-5); False decouples sending.
        multicast: one INVALIDATE per proxy host instead of per client
            site (the paper's suggested mitigation for long fan-outs).
        retry_interval: TCP retry period for failure handling.
        max_retries: give up on an INVALIDATE after this many retries
            (the copy's site-list entry turns *dirty* and is flushed on
            the proxy's next contact); ``None`` retries forever, the
            paper's behaviour.
    """
    name = "invalidation"
    if multicast:
        name += "-multicast"
    return Protocol(
        name=name,
        client_policy=InvalidationPolicy(want_leases=False),
        accelerator=AcceleratorConfig(
            invalidation=True,
            blocking_send=blocking,
            multicast=multicast,
            retry_interval=retry_interval,
            max_retries=max_retries,
        ),
        strong=True,
    )
