"""Piggyback server invalidation (PSI) — the follow-up protocol family.

Krishnamurthy & Wills' piggyback server invalidation builds directly on
this paper's invalidation study: instead of sending separate INVALIDATE
messages, the server attaches the list of documents modified since a
proxy's last contact to every reply it sends that proxy.  The proxy
drops its copies of those documents on receipt.

Consistency is *weak* (staleness is bounded by the proxy's inter-contact
gap rather than eliminated), but there are zero additional control
messages, no site lists, and no fan-out stalls — a different point in
the trade-off space from all three of the paper's approaches.  The
client side remains adaptive TTL; piggybacking just shrinks the stale
window dramatically.
"""

from __future__ import annotations

from ..server.accelerator import AcceleratorConfig
from .adaptive_ttl import DEFAULT_TTL_FACTOR, AdaptiveTtlPolicy
from .protocol import Protocol

__all__ = ["piggyback_invalidation"]


def piggyback_invalidation(
    ttl_factor: float = DEFAULT_TTL_FACTOR,
    min_ttl: float = 60.0,
    max_ttl: float = 7 * 86400.0,
    cap: int = 100,
) -> Protocol:
    """Adaptive TTL + piggybacked server invalidation lists.

    Args:
        ttl_factor / min_ttl / max_ttl: the underlying adaptive TTL.
        cap: maximum URLs per piggybacked list.
    """
    return Protocol(
        name="psi-adaptive-ttl",
        client_policy=AdaptiveTtlPolicy(
            factor=ttl_factor, min_ttl=min_ttl, max_ttl=max_ttl
        ),
        accelerator=AcceleratorConfig(
            invalidation=False,
            piggyback=True,
            piggyback_cap=cap,
        ),
        expired_first_cache=True,
        strong=False,
    )
