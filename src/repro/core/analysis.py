"""The paper's Section 3 analytical message model (Table 1).

For one viewing client C and one document D, consider the interleaved
stream of requests (``r``) and modifications (``m``) — e.g.
``"r r r m m m r r m r r r m m r"``.  With R requests and RI request
intervals (maximal runs of requests with no intervening modification),
Table 1 gives per-protocol message counts:

=====================  ==================  ============  =========================================
message                polling-every-time  invalidation  adaptive TTL
=====================  ==================  ============  =========================================
GET requests           0                   RI            0
If-Modified-Since      R                   0             TTL-missed
304 replies            R - RI              0             TTL-missed - TTL-missed-and-new-doc
invalidations          0                   RI            0
total control          2R - RI             2RI           2*TTL-missed - TTL-missed-and-new-doc
file transfers         RI                  RI            RI - stale hits
=====================  ==================  ============  =========================================

:func:`symbolic_counts` evaluates those formulas directly.
:func:`simulate_stream` executes each protocol's exact state machine on a
timed stream (including the first-fetch GET that the paper's idealized
formulas fold away, and the exact adaptive-TTL expiry arithmetic) so the
formulas can be validated and the TTL-dependent quantities (TTL-missed,
stale hits) computed rather than assumed.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from ..workload.streams import MODIFY, READ
from .adaptive_ttl import AdaptiveTtlPolicy

__all__ = [
    "MessageCounts",
    "symbolic_counts",
    "simulate_stream",
    "timed_stream_from_ops",
]


@dataclass(frozen=True)
class MessageCounts:
    """Message totals for one protocol on one (client, document) stream.

    ``stale_hits`` uses Table 1's definition: the number of request
    *intervals* served entirely from a stale copy — i.e. the file
    transfers adaptive TTL saved relative to the strong protocols (the
    paper estimates stale hits in Tables 3-4 exactly this way, as the
    polling-vs-TTL transfer difference).  ``stale_serves`` counts the
    individual user requests that received stale data (>= stale_hits).
    """

    gets: int = 0
    ims: int = 0
    replies_304: int = 0
    invalidations: int = 0
    file_transfers: int = 0
    stale_hits: int = 0
    stale_serves: int = 0

    @property
    def control_messages(self) -> int:
        """Control messages as Table 1 counts them: GETs + IMS + 304s +
        invalidations (200 replies are file transfers, not control)."""
        return self.gets + self.ims + self.replies_304 + self.invalidations

    @property
    def total_messages(self) -> int:
        """Every message on the wire (control + transfers)."""
        return self.control_messages + self.file_transfers


def symbolic_counts(
    protocol: str,
    reads: int,
    intervals: int,
    ttl_missed: int = 0,
    ttl_missed_new_doc: int = 0,
    stale_hits: int = 0,
) -> MessageCounts:
    """Evaluate the Table 1 formulas.

    Args:
        protocol: ``"polling"``, ``"invalidation"`` or ``"ttl"``.
        reads: R.
        intervals: RI.
        ttl_missed: TTL-expired requests (adaptive TTL only).
        ttl_missed_new_doc: TTL-expired requests where the document had
            changed (adaptive TTL only).
        stale_hits: fresh-by-TTL serves of changed documents.
    """
    if intervals > reads:
        raise ValueError("RI cannot exceed R")
    if protocol == "polling":
        return MessageCounts(
            gets=0,
            ims=reads,
            replies_304=reads - intervals,
            invalidations=0,
            file_transfers=intervals,
        )
    if protocol == "invalidation":
        return MessageCounts(
            gets=intervals,
            ims=0,
            replies_304=0,
            invalidations=intervals,
            file_transfers=intervals,
        )
    if protocol == "ttl":
        if ttl_missed_new_doc > ttl_missed:
            raise ValueError("ttl_missed_new_doc cannot exceed ttl_missed")
        return MessageCounts(
            gets=0,
            ims=ttl_missed,
            replies_304=ttl_missed - ttl_missed_new_doc,
            invalidations=0,
            file_transfers=intervals - stale_hits,
            stale_hits=stale_hits,
        )
    raise ValueError(f"unknown protocol {protocol!r}")


def timed_stream_from_ops(
    ops: Sequence[str], spacing: float = 1.0, start: float = 0.0
) -> List[Tuple[float, str]]:
    """Attach uniform timestamps to an r/m op sequence."""
    return [(start + i * spacing, op) for i, op in enumerate(ops)]


def simulate_stream(
    events: Sequence[Tuple[float, str]],
    protocol: str,
    ttl_policy: Optional[AdaptiveTtlPolicy] = None,
    initial_age: float = 0.0,
) -> MessageCounts:
    """Run one protocol's exact state machine over a timed r/m stream.

    Models a single (client, document) pair with an always-big-enough
    cache, exactly as the Section 3 analysis assumes.  Unlike the
    idealized Table 1 formulas, the first access is a real GET (the
    formulas assume an already-primed interval structure); tests account
    for that off-by-one when comparing.

    Args:
        events: ``(time, 'r'|'m')`` pairs, time-ascending.
        protocol: ``"polling"``, ``"invalidation"`` or ``"ttl"``.
        ttl_policy: adaptive-TTL parameters (required for ``"ttl"``).
        initial_age: document age at the first event (drives the first
            TTL assignment).
    """
    for i in range(1, len(events)):
        if events[i][0] < events[i - 1][0]:
            raise ValueError("events must be time-ascending")

    if protocol == "ttl" and ttl_policy is None:
        ttl_policy = AdaptiveTtlPolicy()

    gets = ims = r304 = invals = transfers = stale_serves = 0
    t0 = events[0][0] if events else 0.0
    doc_mtime = t0 - initial_age  # server-side last-modified
    cached_mtime: Optional[float] = None  # client copy's validator
    expires = -math.inf  # TTL freshness deadline
    registered = False  # on the server's site list (invalidation)
    # Stale-interval tracking (TTL): an interval is stale when none of its
    # reads saw the current version.
    stale_intervals = 0
    interval_open = False  # an interval with >= 1 read is in progress
    interval_correct = False  # some read in it saw the current version
    dirty = True  # document modified (or unseen) since the last read

    for now, op in events:
        if op == MODIFY:
            doc_mtime = now
            if interval_open:
                # The modification closes the current request interval.
                if not interval_correct:
                    stale_intervals += 1
                interval_open = False
            dirty = True
            if protocol == "invalidation" and registered:
                # Server invalidates the registered client and forgets it;
                # the proxy deletes the copy on receipt.
                invals += 1
                registered = False
                cached_mtime = None
            continue
        if op != READ:
            raise ValueError(f"invalid op {op!r}")

        if dirty:
            interval_open = True
            interval_correct = False
            dirty = False

        have_copy = cached_mtime is not None
        is_fresh = have_copy and cached_mtime == doc_mtime

        if protocol == "invalidation":
            # A present copy is always fresh (stale ones were deleted).
            if have_copy:
                pass  # local serve, no messages
            else:
                gets += 1
                transfers += 1
                cached_mtime = doc_mtime
                registered = True
        elif protocol == "polling":
            if not have_copy:
                gets += 1
                transfers += 1
                cached_mtime = doc_mtime
            else:
                ims += 1
                if is_fresh:
                    r304 += 1
                else:
                    transfers += 1
                    cached_mtime = doc_mtime
        elif protocol == "ttl":
            if not have_copy:
                gets += 1
                transfers += 1
                cached_mtime = doc_mtime
                expires = now + ttl_policy.ttl_for_age(now - doc_mtime)
            elif now < expires:
                if not is_fresh:
                    stale_serves += 1  # weak consistency: stale serve
            else:
                ims += 1
                if is_fresh:
                    r304 += 1
                    expires = now + ttl_policy.ttl_for_age(now - doc_mtime)
                else:
                    transfers += 1
                    cached_mtime = doc_mtime
                    expires = now + ttl_policy.ttl_for_age(now - doc_mtime)
        else:
            raise ValueError(f"unknown protocol {protocol!r}")

        if cached_mtime == doc_mtime:
            interval_correct = True

    if interval_open and not interval_correct:
        stale_intervals += 1

    return MessageCounts(
        gets=gets,
        ims=ims,
        replies_304=r304,
        invalidations=invals,
        file_transfers=transfers,
        stale_hits=stale_intervals,
        stale_serves=stale_serves,
    )
