"""Lease-augmented and two-tier invalidation (Section 6).

Simple invalidation's site lists "grow linearly with the number of
requests seen by the server".  Two refinements bound them:

* **Lease-augmented invalidation** — every document shipped to a client
  carries a lease.  The server promises invalidation until the lease
  expires; the client promises to revalidate afterwards.  The server only
  remembers clients with unexpired leases, so site-list size is bounded by
  the request volume of the last lease-duration window.

* **Two-tier lease-augmented invalidation** — plain GETs get a very short
  (zero) lease; only If-Modified-Since requests earn the regular lease.
  A client enters the site lists only when it asks about a document for
  the *second* time, trading a few extra If-Modified-Since requests for
  drastically smaller site lists (the paper reports SASK shrinking from
  ~20k entries to 2489, max list 1155 -> 473, for 2489 extra IMS).
"""

from __future__ import annotations

from ..server.accelerator import AcceleratorConfig
from .invalidation import InvalidationPolicy
from .protocol import Protocol

__all__ = [
    "lease_invalidation",
    "two_tier_lease",
    "adaptive_lease",
    "DEFAULT_LEASE",
]

#: Default lease duration (the paper's example: "if the lease is three
#: days, the total size of site lists is bounded by the ... last three
#: days").
DEFAULT_LEASE = 3 * 86400.0


def lease_invalidation(
    lease_duration: float = DEFAULT_LEASE,
    blocking: bool = True,
    retry_interval: float = 30.0,
) -> Protocol:
    """Lease-augmented invalidation with one lease for all requests."""
    if lease_duration <= 0:
        raise ValueError("lease_duration must be positive")
    return Protocol(
        name=f"lease-invalidation({lease_duration / 86400.0:g}d)",
        client_policy=InvalidationPolicy(want_leases=True),
        accelerator=AcceleratorConfig(
            invalidation=True,
            lease_get=lease_duration,
            lease_ims=lease_duration,
            grant_leases=True,
            blocking_send=blocking,
            retry_interval=retry_interval,
        ),
        strong=True,
    )


def adaptive_lease(
    state_budget_bytes: int = 64 * 1024,
    initial_lease: float = 600.0,
    blocking: bool = True,
    retry_interval: float = 30.0,
) -> Protocol:
    """Adaptive leases: the server tunes the lease to a state budget.

    The Duvvuri/Shenoy/Tewari follow-up to Section 6: instead of a fixed
    lease, the server watches its site-list storage and multiplicatively
    shrinks the lease when storage exceeds ``state_budget_bytes`` (and
    grows it when storage is comfortably below), trading validation
    traffic for bounded server state automatically.

    The replay harness attaches the controller; outside the harness,
    create a :class:`repro.server.AdaptiveLeaseController` yourself.
    """
    if state_budget_bytes <= 0:
        raise ValueError("state_budget_bytes must be positive")
    return Protocol(
        name=f"adaptive-lease({state_budget_bytes // 1024}KB)",
        client_policy=InvalidationPolicy(want_leases=True),
        accelerator=AcceleratorConfig(
            invalidation=True,
            lease_get=initial_lease,
            lease_ims=initial_lease,
            grant_leases=True,
            blocking_send=blocking,
            retry_interval=retry_interval,
        ),
        strong=True,
        adaptive_lease_budget=state_budget_bytes,
    )


def two_tier_lease(
    lease_duration: float = DEFAULT_LEASE,
    blocking: bool = True,
    retry_interval: float = 30.0,
) -> Protocol:
    """Two-tier lease-augmented invalidation (zero lease on GET)."""
    if lease_duration <= 0:
        raise ValueError("lease_duration must be positive")
    return Protocol(
        name=f"two-tier-lease({lease_duration / 86400.0:g}d)",
        client_policy=InvalidationPolicy(want_leases=True),
        accelerator=AcceleratorConfig(
            invalidation=True,
            lease_get=0.0,
            lease_ims=lease_duration,
            grant_leases=True,
            blocking_send=blocking,
            retry_interval=retry_interval,
        ),
        strong=True,
    )
