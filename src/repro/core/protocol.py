"""Consistency protocols as (client policy, accelerator config) pairs.

A :class:`Protocol` bundles everything that differs between the paper's
three approaches; the proxy, server, network and replay machinery are
shared.  The client side decides, per cache hit, whether to *serve* the
cached copy or *validate* it with an If-Modified-Since; the server side
(an :class:`~repro.server.AcceleratorConfig`) decides whether to track
sites, what leases to grant, and how invalidations are sent.

The paper's protocols are constructed by:

* :func:`repro.core.adaptive_ttl.adaptive_ttl`
* :func:`repro.core.polling.poll_every_time`
* :func:`repro.core.invalidation.invalidation`
* :func:`repro.core.leases.lease_invalidation`
* :func:`repro.core.leases.two_tier_lease`
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..proxy.entry import CacheEntry
from ..proxy.proxy import RequestOutcome
from ..server.accelerator import AcceleratorConfig

__all__ = ["ClientPolicy", "Protocol", "SERVE", "VALIDATE"]

#: Client-policy actions.
SERVE = "serve"
VALIDATE = "validate"


class ClientPolicy:
    """Decides what the proxy does with a cached copy.

    Subclasses override :meth:`action`, the fill/validate hooks, and
    :meth:`is_hit` (the paper's protocols count "cache hits" slightly
    differently — see Section 5.2's discussion of stale hits).
    """

    #: Human-readable policy name.
    name: str = "abstract"
    #: Ask the server for a lease on GET / If-Modified-Since requests.
    want_lease_get: bool = False
    want_lease_ims: bool = False

    def action(self, entry: CacheEntry, now: float) -> str:
        """Return :data:`SERVE` or :data:`VALIDATE` for a cached copy.

        The proxy forces VALIDATE for *questionable* entries before this
        is consulted.
        """
        raise NotImplementedError

    def on_fill(self, entry: CacheEntry, response, now: float) -> None:
        """Hook when a 200 reply creates a fresh cache entry."""

    def on_validated(self, entry: CacheEntry, response, now: float) -> None:
        """Hook when a 304 reply revalidates an existing entry."""

    def is_hit(self, outcome: RequestOutcome) -> bool:
        """Whether this request counts as a cache hit for the tables."""
        raise NotImplementedError


@dataclass(frozen=True)
class Protocol:
    """A complete consistency approach.

    Attributes:
        name: row label used in results tables.
        client_policy: proxy-side behaviour.
        accelerator: server-side behaviour.
        expired_first_cache: use Harvest's expired-first replacement (the
            adaptive-TTL interaction the paper analyses on SASK).
        strong: whether the approach guarantees strong consistency (used
            by tests asserting zero stale serves).
        adaptive_lease_budget: when set, the replay attaches an
            :class:`repro.server.AdaptiveLeaseController` with this
            site-list state budget (bytes) — the adaptive-leases
            follow-up to Section 6.
    """

    name: str
    client_policy: ClientPolicy
    accelerator: AcceleratorConfig = field(default_factory=AcceleratorConfig)
    expired_first_cache: bool = False
    strong: bool = True
    adaptive_lease_budget: int = 0

    @property
    def uses_invalidation(self) -> bool:
        """True when the server sends INVALIDATE messages."""
        return self.accelerator.invalidation

    @property
    def needs_check_in(self) -> bool:
        """True when the modifier must check in with the accelerator
        (invalidation fan-out and/or piggyback logging)."""
        return self.accelerator.invalidation or self.accelerator.piggyback
