"""Trace-level message prediction from the Section 3 model.

The paper's Table 1 analyses a single (client, document) pair.  This
module lifts that analysis to a whole trace: group the requests by
(client, document), interleave each group with the document's
modification schedule, run the exact per-pair protocol state machine
(:func:`repro.core.analysis.simulate_stream`), and sum.

The result predicts the message rows of Tables 3-4 from first principles
— no network, no server, no caching machinery — under the model's
idealisations (cache always has space; timing at trace resolution).  The
benchmark ``benchmarks/test_validation_model_vs_replay.py`` checks the
full replay against these predictions, which is a strong end-to-end
correctness argument for both the model and the testbed.

For adaptive TTL the prediction uses *trace-time* TTL dynamics while the
replay's TTLs run on the compressed testbed wall clock (as the paper's
did), so TTL predictions are indicative rather than tight.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..traces.record import Trace
from ..workload.modifier import Modification
from ..workload.streams import MODIFY, READ
from .adaptive_ttl import AdaptiveTtlPolicy
from .analysis import MessageCounts, simulate_stream

__all__ = ["TracePrediction", "predict_message_counts", "pair_streams"]


@dataclass(frozen=True)
class TracePrediction:
    """Aggregated per-pair model counts for one protocol on one trace."""

    protocol: str
    pairs: int
    counts: MessageCounts

    @property
    def total_messages(self) -> int:
        return self.counts.total_messages


def pair_streams(
    trace: Trace, modifications: Sequence[Modification]
) -> Dict[Tuple[str, str], List[Tuple[float, str]]]:
    """Build the timed r/m stream for every (client, url) pair.

    Each pair's stream holds that client's requests for the URL plus all
    of the URL's modifications, time-merged (modification-first on ties,
    matching the write-completion convention).
    """
    reads: Dict[Tuple[str, str], List[float]] = {}
    for record in trace.records:
        reads.setdefault((record.client, record.url), []).append(record.timestamp)

    mods_by_url: Dict[str, List[float]] = {}
    for mod in modifications:
        mods_by_url.setdefault(mod.url, []).append(mod.time)

    streams: Dict[Tuple[str, str], List[Tuple[float, str]]] = {}
    for (client, url), read_times in reads.items():
        events = [(t, 0, MODIFY) for t in mods_by_url.get(url, ())]
        events.extend((t, 1, READ) for t in read_times)
        events.sort()
        streams[(client, url)] = [(t, op) for t, _, op in events]
    return streams


def _sum_counts(counts: Sequence[MessageCounts]) -> MessageCounts:
    return MessageCounts(
        gets=sum(c.gets for c in counts),
        ims=sum(c.ims for c in counts),
        replies_304=sum(c.replies_304 for c in counts),
        invalidations=sum(c.invalidations for c in counts),
        file_transfers=sum(c.file_transfers for c in counts),
        stale_hits=sum(c.stale_hits for c in counts),
        stale_serves=sum(c.stale_serves for c in counts),
    )


def predict_message_counts(
    trace: Trace,
    modifications: Sequence[Modification],
    protocol: str,
    ttl_policy: Optional[AdaptiveTtlPolicy] = None,
    initial_age: float = 0.0,
) -> TracePrediction:
    """Predict a protocol's message totals for a whole trace.

    Args:
        trace: the request trace.
        modifications: the modifier schedule the replay will use (build
            it with :func:`repro.workload.generate_schedule` and the same
            seed for apples-to-apples comparison).
        protocol: ``"polling"``, ``"invalidation"`` or ``"ttl"``.
        ttl_policy: adaptive-TTL parameters for ``"ttl"``.
        initial_age: document age at trace start (model idealisation).
    """
    streams = pair_streams(trace, modifications)
    per_pair = [
        simulate_stream(
            events, protocol, ttl_policy=ttl_policy, initial_age=initial_age
        )
        for events in streams.values()
    ]
    return TracePrediction(
        protocol=protocol,
        pairs=len(per_pair),
        counts=_sum_counts(per_pair),
    )
