"""Adaptive TTL (the Alex protocol) — the paper's weak-consistency baseline.

The cache manager assigns each document a time-to-live equal to a
percentage of the document's current age (now minus last-modified),
exploiting the bimodal lifetime distributions of real files: an old file
is unlikely to change soon, so it earns a long TTL; a recently-modified
file earns a short one.

Harvest's implementation detail that matters for the results: expired
documents are *replaced first* when cache space is needed
(``expired_first_cache=True``), which on SASK evicts freshly-modified
documents prematurely and lowers the hit ratio (Section 5.2).

A request hitting an expired copy sends an If-Modified-Since (the paper's
optimization of the original Harvest code).  Stale hits — serving a copy
whose TTL has not expired although the original changed — are possible;
that is exactly the weak-consistency cost the paper quantifies.
"""

from __future__ import annotations

from ..proxy.entry import CacheEntry
from ..server.accelerator import AcceleratorConfig
from .protocol import SERVE, VALIDATE, ClientPolicy, Protocol

__all__ = ["AdaptiveTtlPolicy", "adaptive_ttl", "DEFAULT_TTL_FACTOR"]

#: Harvest-era default update factor (cached copy valid for 20% of age).
DEFAULT_TTL_FACTOR = 0.2


class AdaptiveTtlPolicy(ClientPolicy):
    """Client policy: serve while the adaptive TTL holds, else validate."""

    def __init__(
        self,
        factor: float = DEFAULT_TTL_FACTOR,
        min_ttl: float = 60.0,
        max_ttl: float = 7 * 86400.0,
    ) -> None:
        if not 0 < factor:
            raise ValueError("factor must be positive")
        if min_ttl < 0 or max_ttl < min_ttl:
            raise ValueError("need 0 <= min_ttl <= max_ttl")
        self.name = "adaptive-ttl"
        self.factor = factor
        self.min_ttl = min_ttl
        self.max_ttl = max_ttl

    def ttl_for_age(self, age: float) -> float:
        """TTL assigned to a document of the given age."""
        return min(self.max_ttl, max(self.min_ttl, self.factor * age))

    def action(self, entry: CacheEntry, now: float) -> str:
        return SERVE if entry.fresh_by_ttl(now) else VALIDATE

    def on_fill(self, entry: CacheEntry, response, now: float) -> None:
        age = max(0.0, now - response.last_modified)
        entry.expires = now + self.ttl_for_age(age)

    def on_validated(self, entry: CacheEntry, response, now: float) -> None:
        # A successful validation restarts the TTL from the (now larger)
        # document age.
        age = max(0.0, now - response.last_modified)
        entry.expires = now + self.ttl_for_age(age)

    def is_hit(self, outcome) -> bool:
        # Fresh serves and 304-revalidated serves count (Harvest's
        # TCP_HIT + TCP_REFRESH_HIT).
        return outcome.served_from_cache


def adaptive_ttl(
    factor: float = DEFAULT_TTL_FACTOR,
    min_ttl: float = 60.0,
    max_ttl: float = 7 * 86400.0,
) -> Protocol:
    """The paper's adaptive-TTL baseline protocol."""
    return Protocol(
        name="adaptive-ttl",
        client_policy=AdaptiveTtlPolicy(factor=factor, min_ttl=min_ttl, max_ttl=max_ttl),
        accelerator=AcceleratorConfig(invalidation=False),
        expired_first_cache=True,
        strong=False,
    )
