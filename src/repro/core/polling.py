"""Polling-every-time — strong consistency by validating on every hit.

Every request that finds a cached copy first sends an If-Modified-Since to
the origin server; only a 304 allows the copy to be served.  A write is
complete once it reaches the server's file system, so no stale copy is
ever served — at the price of a server round-trip per hit, which is where
the paper's extra 10-50% network messages and higher server CPU come from.

Hit accounting: the paper notes its polling hit counts "include 'hits' on
stale documents" — a request that finds a (stale) copy counts as a hit
even though validation then transfers the new version.  :meth:`is_hit`
reproduces that definition so the Tables 3-4 comparison reads the same
way.
"""

from __future__ import annotations

from ..proxy.entry import CacheEntry
from ..server.accelerator import AcceleratorConfig
from .protocol import VALIDATE, ClientPolicy, Protocol

__all__ = ["PollEveryTimePolicy", "poll_every_time"]


class PollEveryTimePolicy(ClientPolicy):
    """Client policy: always validate before serving."""

    name = "poll-every-time"

    def action(self, entry: CacheEntry, now: float) -> str:
        return VALIDATE

    def is_hit(self, outcome) -> bool:
        return outcome.had_cached_copy


def poll_every_time() -> Protocol:
    """The paper's polling-every-time strong-consistency protocol."""
    return Protocol(
        name="poll-every-time",
        client_policy=PollEveryTimePolicy(),
        accelerator=AcceleratorConfig(invalidation=False),
        strong=True,
    )
