"""Hierarchical caching extension (the Worrell [14] configuration)."""

from .parent import ParentProxy

__all__ = ["ParentProxy"]
