"""Hierarchical caching: a parent (upper-level) proxy node.

Related work (Section 2): Worrell's thesis studied invalidation in
*hierarchical* network object caches and found that the hierarchy
"significantly reduces the overhead for invalidation" — the origin
server only tracks and invalidates the few top-level caches, which
propagate invalidations to the children that hold copies.  The paper
deliberately evaluates invalidation *without* hierarchies (they were not
yet deployed); this package supplies the hierarchy so that comparison
can be reproduced too.

A :class:`ParentProxy` is a network-served shared cache:

* children send it plain GET / If-Modified-Since requests (it looks like
  the origin server to them);
* it keeps an *interest table* — per URL, the (child proxy, real client)
  pairs that fetched the document — using the same
  :class:`~repro.server.InvalidationTable` machinery the accelerator
  uses;
* it registers itself (not its clients) with the upstream server, so the
  server's site lists hold one entry per parent instead of one per
  client site;
* on INVALIDATE from upstream it drops its copy and fans the
  invalidation out to interested children; the server-address form is
  forwarded to every known child;
* concurrent child misses for the same document are *coalesced* into a
  single upstream fetch (later requests wait on the in-flight one).
"""

from __future__ import annotations

from typing import Dict, Set

from ..http import (
    NOT_MODIFIED,
    HttpRequest,
    HttpResponse,
    Invalidate,
    make_get,
    make_ims,
    make_invalidate_server,
    make_invalidate_url,
    make_reply_200,
    make_reply_304,
)
from ..http.wire import DEFAULT_WIRE, WireCosts
from ..net import Message, Network, ReliableChannel, Unreachable
from ..proxy.cache import Cache
from ..proxy.entry import CacheEntry
from ..proxy.proxy import ProxyCosts
from ..server.sitelist import InvalidationTable
from ..sim import Event, Simulator

__all__ = ["ParentProxy"]

#: Pseudo client id under which the parent caches shared copies.
_SHARED = "*shared*"


class ParentProxy:
    """An upper-level cache between leaf proxies and the origin server."""

    def __init__(
        self,
        sim: Simulator,
        network: Network,
        address: str,
        server_address: str,
        cache: Cache = None,
        costs: ProxyCosts = ProxyCosts(),
        wire: WireCosts = DEFAULT_WIRE,
        retry_interval: float = 30.0,
    ) -> None:
        self.sim = sim
        self.network = network
        self.address = address
        self.server_address = server_address
        self.cache = cache if cache is not None else Cache()
        self.costs = costs
        self.wire = wire
        self.channel = ReliableChannel(network, retry_interval=retry_interval)

        #: Per-URL interest: which (child proxy, real client) hold copies.
        self.interest = InvalidationTable()
        #: Every child proxy ever seen (for server-form forwarding).
        self._known_children: Set[str] = set()
        self._pending: Dict[int, Event] = {}
        #: In-flight upstream fetches by URL; later misses wait on these.
        self._inflight: Dict[str, Event] = {}

        self.requests_served = 0
        self.upstream_fetches = 0
        self.coalesced_fetches = 0
        self.invalidations_received = 0
        self.invalidations_forwarded = 0
        self.up = True
        network.register(address, self._receive)

    # ------------------------------------------------------------------
    # network receive path
    # ------------------------------------------------------------------

    def _receive(self, message: Message) -> None:
        if not self.up:
            return
        if isinstance(message, HttpRequest):
            self._known_children.add(message.src)
            self.sim.process(self._serve(message))
        elif isinstance(message, HttpResponse):
            waiter = self._pending.pop(message.reply_to, None)
            if waiter is not None and not waiter.triggered:
                waiter.succeed(message)
        elif isinstance(message, Invalidate):
            self.invalidations_received += 1
            self.sim.process(self._propagate(message))

    # ------------------------------------------------------------------
    # request path (child -> parent -> server)
    # ------------------------------------------------------------------

    def _serve(self, request: HttpRequest):
        sim = self.sim
        yield sim.sleep(self.costs.cpu_lookup)
        # Remember the child's interest so invalidations reach it.
        self.interest.register(
            request.url, request.client_id, proxy=request.src, now=sim.now
        )
        key = f"{request.url}@{_SHARED}"
        entry = self.cache.get(key, sim.now)

        if entry is None or entry.questionable:
            entry = yield from self._refresh(request.url, entry)
            if entry is None:
                return  # upstream unreachable; the child's timeout fires

        self.requests_served += 1
        if request.is_ims and entry.last_modified <= request.ims_timestamp:
            self.network.send(
                make_reply_304(request, entry.last_modified, wire=self.wire),
                wait=False,
            )
        else:
            yield sim.sleep(self.costs.cpu_serve_per_kb * entry.size / 1024.0)
            self.network.send(
                make_reply_200(
                    request,
                    body_bytes=entry.size,
                    last_modified=entry.last_modified,
                    wire=self.wire,
                ),
                wait=False,
            )

    def _refresh(self, url: str, stale_entry):
        """Fetch or revalidate a document from the upstream server.

        Returns the fresh cache entry, or ``None`` on failure.
        Concurrent refreshes of the same URL coalesce onto the first.
        """
        sim = self.sim
        inflight = self._inflight.get(url)
        if inflight is not None:
            self.coalesced_fetches += 1
            entry = yield inflight
            return entry
        gate = Event(sim)
        self._inflight[url] = gate
        entry = None
        try:
            entry = yield from self._refresh_upstream(url, stale_entry)
        finally:
            self._inflight.pop(url, None)
            if not gate.triggered:
                gate.succeed(entry)
        return entry

    def _refresh_upstream(self, url: str, stale_entry):
        sim = self.sim
        if stale_entry is not None and stale_entry.questionable:
            upstream = make_ims(
                self.address,
                self.server_address,
                url,
                client_id=self.address,
                ims_timestamp=stale_entry.last_modified,
                wire=self.wire,
            )
        else:
            upstream = make_get(
                self.address,
                self.server_address,
                url,
                client_id=self.address,
                wire=self.wire,
            )
        waiter = Event(sim)
        self._pending[upstream.msg_id] = waiter
        try:
            yield self.network.send(upstream)
        except Unreachable:
            self._pending.pop(upstream.msg_id, None)
            return None
        response = yield waiter
        self.upstream_fetches += 1
        if response.status == NOT_MODIFIED:
            stale_entry.questionable = False
            stale_entry.fetched_at = sim.now
            return stale_entry
        entry = CacheEntry(
            url=url,
            client_id=_SHARED,
            size=response.body_bytes,
            last_modified=response.last_modified,
            fetched_at=sim.now,
        )
        self.cache.put(entry, sim.now)
        yield sim.sleep(self.costs.cpu_insert)
        return entry

    # ------------------------------------------------------------------
    # invalidation propagation (server -> parent -> children)
    # ------------------------------------------------------------------

    def _propagate(self, message: Invalidate):
        sim = self.sim
        if message.url is not None:
            # Drop our shared copy and invalidate interested children.
            self.cache.remove(f"{message.url}@{_SHARED}")
            entries = self.interest.note_modification(message.url, sim.now)
            for entry in entries:
                child_msg = make_invalidate_url(
                    self.address,
                    entry.proxy,
                    message.url,
                    entry.client_id,
                    wire=self.wire,
                )
                yield from self.channel.deliver(child_msg)
                self.invalidations_forwarded += 1
                self.interest.clear_after_invalidation(
                    message.url, [entry.client_id]
                )
        else:
            # Server recovered: everything we hold is questionable, and
            # every child must hear the same.
            self.cache.mark_all_questionable()
            for child in sorted(self._known_children):
                child_msg = make_invalidate_server(
                    self.address, child, server=message.server, wire=self.wire
                )
                yield from self.channel.deliver(child_msg)
                self.invalidations_forwarded += 1

    # ------------------------------------------------------------------
    # failures
    # ------------------------------------------------------------------

    def crash(self) -> None:
        """Parent host dies (interest table is volatile)."""
        self.up = False
        self.network.set_down(self.address)
        self.interest = InvalidationTable()
        self._pending.clear()

    def recover(self):
        """Restart: our copies *and the children's* become questionable.

        While the parent was down its children missed every invalidation
        that should have flowed through it, so — exactly like the origin
        server's crash recovery — it sends an INVALIDATE carrying the
        server address to every child it has ever seen (the child log,
        like the server's site log, survives the crash on disk).
        Returns the recovery process.
        """
        self.up = True
        self.network.set_up(self.address)
        self.cache.mark_all_questionable()
        return self.sim.process(self._recovery_fanout())

    def _recovery_fanout(self):
        for child in sorted(self._known_children):
            message = make_invalidate_server(
                self.address, child, server=self.server_address, wire=self.wire
            )
            yield from self.channel.deliver(message)
            self.invalidations_forwarded += 1
