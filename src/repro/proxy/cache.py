"""Bounded cache storage with the paper's two replacement behaviours.

* Plain **LRU** — used by polling-every-time and the invalidation family.
* **Expired-first LRU** — Harvest's behaviour under adaptive TTL: when
  space is needed, documents whose TTL has expired are replaced first
  (earliest expiry first), falling back to LRU.  Section 5.2 attributes
  SASK's lower TTL hit ratio to exactly this policy interacting with
  adaptive TTL's conservative lifetime estimates, so it must be modelled.

Invalidation benefits symmetrically: deleting stale copies on INVALIDATE
"frees up cache space for fresh documents" — :meth:`Cache.remove` returns
the freed bytes for that accounting.
"""

from __future__ import annotations

import heapq
import itertools
from collections import OrderedDict
from typing import Dict, List, Optional, Set

from .entry import CacheEntry

__all__ = ["Cache"]


class Cache:
    """Byte-capacity cache of :class:`CacheEntry` keyed ``url@clientid``.

    Args:
        capacity_bytes: total budget; ``None`` means unbounded.
        expired_first: use Harvest's expired-first replacement (TTL runs).
    """

    def __init__(
        self,
        capacity_bytes: Optional[int] = None,
        expired_first: bool = False,
    ) -> None:
        if capacity_bytes is not None and capacity_bytes <= 0:
            raise ValueError("capacity_bytes must be positive (or None)")
        self.capacity_bytes = capacity_bytes
        self.expired_first = expired_first
        self._entries: "OrderedDict[str, CacheEntry]" = OrderedDict()
        self._used = 0
        # URL -> cache keys holding it (all clients); lets piggybacked
        # invalidations drop every copy of a document in O(copies).
        self._by_url: Dict[str, Set[str]] = {}
        # Lazy min-heap of (expires, seq, key) for expired-first victims.
        self._expiry_heap: List = []
        self._heap_seq = itertools.count()
        self.evictions = 0
        self.expired_evictions = 0
        self.insertions = 0
        self.uncacheable = 0

    # -- inspection -----------------------------------------------------------

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: str) -> bool:
        return key in self._entries

    @property
    def used_bytes(self) -> int:
        """Bytes currently cached."""
        return self._used

    def keys(self):
        """Current cache keys, LRU order (oldest first)."""
        return list(self._entries)

    # -- operations -------------------------------------------------------------

    def get(self, key: str, now: float) -> Optional[CacheEntry]:
        """Look up an entry, refreshing its recency."""
        entry = self._entries.get(key)
        if entry is None:
            return None
        entry.last_used = now
        self._entries.move_to_end(key)
        return entry

    def peek(self, key: str) -> Optional[CacheEntry]:
        """Look up without touching recency (for tests/metrics)."""
        return self._entries.get(key)

    def put(self, entry: CacheEntry, now: float) -> bool:
        """Insert (or replace) an entry, evicting as needed.

        Returns False when the document is larger than the whole cache
        (it is served but not cached, as real proxies do).
        """
        if self.capacity_bytes is not None and entry.size > self.capacity_bytes:
            self.uncacheable += 1
            return False
        old = self._entries.pop(entry.key, None)
        if old is not None:
            self._used -= old.size
            self._unindex(old)
        while (
            self.capacity_bytes is not None
            and self._used + entry.size > self.capacity_bytes
        ):
            self._evict_one(now)
        entry.last_used = now
        self._entries[entry.key] = entry
        self._used += entry.size
        self._by_url.setdefault(entry.url, set()).add(entry.key)
        self.insertions += 1
        self._push_expiry(entry)
        return True

    def remove(self, key: str) -> int:
        """Delete an entry (e.g. on INVALIDATE); returns bytes freed."""
        entry = self._entries.pop(key, None)
        if entry is None:
            return 0
        self._used -= entry.size
        self._unindex(entry)
        return entry.size

    def remove_url(self, url: str) -> int:
        """Delete every client's copy of ``url``; returns copies removed.

        Used by piggybacked invalidation, which names documents rather
        than (document, client) pairs.
        """
        keys = self._by_url.pop(url, None)
        if not keys:
            return 0
        removed = 0
        for key in list(keys):
            entry = self._entries.pop(key, None)
            if entry is not None:
                self._used -= entry.size
                removed += 1
        return removed

    def _unindex(self, entry: CacheEntry) -> None:
        keys = self._by_url.get(entry.url)
        if keys is not None:
            keys.discard(entry.key)
            if not keys:
                del self._by_url[entry.url]

    def note_expiry_update(self, key: str) -> bool:
        """Re-register ``key`` after its entry's ``expires`` changed in place.

        The expired-first heap indexes entries by the expiry they had
        when inserted.  TTL policies extend ``entry.expires`` in place on
        a successful revalidation, which silently removed the entry from
        expired-first consideration (its only heap record no longer
        matched, so once the *new* deadline passed the entry could never
        be picked as an expired victim and a fresh LRU entry was evicted
        instead).  Callers that mutate ``expires`` on a cached entry must
        call this; returns True when a live entry was re-registered.
        """
        entry = self._entries.get(key)
        if entry is None:
            return False
        self._push_expiry(entry)
        return True

    def _push_expiry(self, entry: CacheEntry) -> None:
        """Record the entry's current expiry in the lazy victim heap."""
        if not self.expired_first:
            return
        heapq.heappush(
            self._expiry_heap, (entry.expires, next(self._heap_seq), entry.key)
        )
        # Updates and removals leave stale tuples behind; rebuild once
        # they dominate so the heap stays O(live entries).
        if len(self._expiry_heap) > 4 * len(self._entries) + 64:
            self._expiry_heap = [
                (e.expires, next(self._heap_seq), key)
                for key, e in self._entries.items()
            ]
            heapq.heapify(self._expiry_heap)

    def mark_all_questionable(self) -> int:
        """Flag every entry as needing revalidation; returns the count.

        Used on proxy recovery and on INVALIDATE-by-server messages.
        """
        for entry in self._entries.values():
            entry.questionable = True
        return len(self._entries)

    def clear(self) -> None:
        """Drop everything (proxy cold restart)."""
        self._entries.clear()
        self._expiry_heap.clear()
        self._by_url.clear()
        self._used = 0

    # -- replacement ------------------------------------------------------------

    def _evict_one(self, now: float) -> None:
        if not self._entries:
            raise RuntimeError("cache accounting error: nothing to evict")
        if self.expired_first:
            key = self._pop_expired_victim(now)
            if key is not None:
                entry = self._entries.pop(key)
                self._used -= entry.size
                self._unindex(entry)
                self.evictions += 1
                self.expired_evictions += 1
                return
        # LRU fallback: OrderedDict front is least recently used.
        _key, entry = self._entries.popitem(last=False)
        self._used -= entry.size
        self._unindex(entry)
        self.evictions += 1

    def _pop_expired_victim(self, now: float) -> Optional[str]:
        """Earliest-expiring *expired* entry, skipping stale heap records."""
        heap = self._expiry_heap
        while heap:
            expires, _seq, key = heap[0]
            entry = self._entries.get(key)
            if entry is None or entry.expires != expires:
                heapq.heappop(heap)  # stale record
                continue
            if expires <= now:
                heapq.heappop(heap)
                return key
            return None  # earliest expiry is in the future
        return None
