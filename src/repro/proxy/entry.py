"""Cache entries.

The paper simulates private per-client caches inside a shared proxy by
keying cached objects ``url@clientid``; :func:`entry_key` reproduces that.
An entry carries everything the three protocol families need: the
validator (``last_modified``), the adaptive-TTL freshness deadline
(``expires``), the lease expiry, and the *questionable* flag set by
INVALIDATE-by-server / proxy recovery (Section 4).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

__all__ = ["CacheEntry", "entry_key"]


def entry_key(url: str, client_id: str) -> str:
    """Cache key for a document cached on behalf of one real client."""
    return f"{url}@{client_id}"


@dataclass
class CacheEntry:
    """One cached document copy (private to one real client)."""

    url: str
    client_id: str
    size: int
    last_modified: float
    fetched_at: float
    #: Adaptive-TTL freshness deadline; ``inf`` for non-TTL protocols.
    expires: float = math.inf
    #: Lease expiry granted by the server; ``inf`` when no lease protocol.
    lease_expires: float = math.inf
    #: Needs revalidation before use (proxy recovery / server recovery).
    questionable: bool = False
    last_used: float = field(default=0.0)

    @property
    def key(self) -> str:
        """The ``url@clientid`` cache key."""
        return entry_key(self.url, self.client_id)

    def fresh_by_ttl(self, now: float) -> bool:
        """True while the TTL deadline has not passed."""
        return now < self.expires

    def lease_valid(self, now: float) -> bool:
        """True while the server's lease promise holds."""
        return now <= self.lease_expires
