"""Proxy cache substrate: entries, bounded cache storage, proxy node."""

from .cache import Cache
from .entry import CacheEntry, entry_key
from .proxy import ProxyCache, ProxyCosts, RequestFailed, RequestOutcome

__all__ = [
    "Cache",
    "CacheEntry",
    "entry_key",
    "ProxyCache",
    "ProxyCosts",
    "RequestOutcome",
    "RequestFailed",
]
