"""The proxy cache (Harvest ``cached`` stand-in).

One :class:`ProxyCache` runs per pseudo-client workstation and serves the
real clients sharded onto it.  Per the paper's methodology:

* cached objects are keyed ``url@clientid`` so each real client has a
  private cache, and the real clientid travels with every GET so the
  accelerator can register the site;
* INVALIDATE-by-URL deletes the one client's copy; INVALIDATE-by-server
  marks every entry questionable (revalidate before use);
* a recovering proxy marks all its entries questionable.

The consistency *decision* (serve the cached copy vs. validate) is
delegated to a client policy object (see :mod:`repro.core.protocol`), so
the three approaches share every other code path — mirroring the paper's
single-Harvest-codebase methodology.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Optional

from ..http import (
    NOT_MODIFIED,
    OK,
    HttpRequest,
    HttpResponse,
    Invalidate,
    make_get,
    make_ims,
)
from ..http.wire import DEFAULT_WIRE, WireCosts
from ..net import Message, Network, Unreachable
from ..sim import AnyOf, Event, Simulator
from .cache import Cache
from .entry import CacheEntry, entry_key

__all__ = ["ProxyCache", "ProxyCosts", "RequestOutcome", "RequestFailed"]


class RequestFailed(Exception):
    """A client request could not be completed (server down/partition)."""


@dataclass(frozen=True)
class ProxyCosts:
    """CPU seconds charged per proxy operation (latency model only)."""

    cpu_lookup: float = 0.0008
    cpu_insert: float = 0.0010
    cpu_serve_per_kb: float = 0.00008


@dataclass
class RequestOutcome:
    """What happened to one client request (the metrics layer's input)."""

    url: str
    client_id: str
    started: float
    finished: float = 0.0
    had_cached_copy: bool = False
    served_from_cache: bool = False
    validated: bool = False
    fetched: bool = False
    status: Optional[int] = None
    transfer: bool = False
    body_bytes: int = 0
    #: An *unvalidated* serve of outdated content (the paper's stale
    #: hits).  Serves freshly confirmed by a 304 are fresh by definition
    #: — a write that lands between the validation and the serve has not
    #: completed with respect to this read.
    stale_served: bool = False
    #: How far behind the served copy was (served mtime vs current),
    #: seconds; 0 when fresh.
    staleness_age: float = 0.0
    #: Strong-consistency violation: the served copy's INVALIDATE had
    #: already been *delivered* to this proxy (the write was complete).
    #: Must never happen; guards against protocol races.
    violation: bool = False
    hit: bool = False
    failed: bool = False

    @property
    def latency(self) -> float:
        """Client-observed response time."""
        return self.finished - self.started


class ProxyCache:
    """A caching proxy node.

    Args:
        sim: simulator.
        network: fabric this proxy is attached to.
        address: this proxy's network address.
        server_address: the origin server site.
        policy: client consistency policy (see :mod:`repro.core.protocol`).
        cache: storage (shared by this proxy's real clients).
        oracle: optional ``url -> last_modified`` used *only for
            measurement* — it flags stale serves (the paper counts
            adaptive TTL's stale hits); it never influences behaviour.
        meter: optional :class:`repro.metering.HitMeter` — when present,
            unvalidated cache serves are counted and piggybacked on the
            next upstream request for the URL (Section 7 hit metering).
        reply_timeout: seconds before an unanswered request fails.

    Two chaos hooks, both inert by default: :attr:`observer` (an object
    with ``on_serve(proxy, entry, outcome)``, called after every cached
    serve — the consistency auditor) and :attr:`clock_skew` (seconds added
    to this host's notion of wall-clock time when the *policy* judges a
    cached copy, modelling a drifting local clock against lease expiries
    and TTLs).
    """

    def __init__(
        self,
        sim: Simulator,
        network: Network,
        address: str,
        server_address: str,
        policy,
        cache: Optional[Cache] = None,
        wire: WireCosts = DEFAULT_WIRE,
        costs: ProxyCosts = ProxyCosts(),
        oracle: Optional[Callable[[str], float]] = None,
        meter=None,
        reply_timeout: float = 30.0,
    ) -> None:
        self.sim = sim
        self.network = network
        self.address = address
        self.server_address = server_address
        self.policy = policy
        self.cache = cache if cache is not None else Cache()
        self.wire = wire
        self.costs = costs
        self.oracle = oracle
        self.meter = meter
        self.reply_timeout = reply_timeout

        self._pending: Dict[int, Event] = {}
        #: INVALIDATEs that arrived before the copy they target (the
        #: fetch reply was still in flight).  The eventual insert is
        #: marked questionable so it revalidates before first reuse —
        #: AFS-style callback-race handling.
        self._tombstones: Dict[str, float] = {}
        #: Delivery time of the last INVALIDATE per cache key (write
        #: completion marker for the violation check).
        self._last_invalidated: Dict[str, float] = {}
        self.invalidations_received = 0
        #: Individual (url, client) invalidations that arrived inside
        #: batched INVALIDATE messages (sharded accelerator tier).
        self.batched_invalidations_received = 0
        self.piggyback_copies_removed = 0
        self.server_invalidations_received = 0
        self.questionable_validations = 0
        self.failed_requests = 0
        self.up = True
        self.observer = None
        self.clock_skew = 0.0
        network.register(address, self._receive)

    def publish_metrics(self, registry, **labels) -> None:
        """Publish this proxy's counters into a metrics registry.

        One ``proxy_*`` counter per quantity, labelled with this proxy's
        ``site`` address plus any caller-supplied ``labels`` (typically
        ``protocol=``).  Cache occupancy is published as gauges.
        """
        site = self.address
        for name, value in (
            ("proxy_invalidations_received", self.invalidations_received),
            ("proxy_server_invalidations_received",
             self.server_invalidations_received),
            ("proxy_piggyback_copies_removed", self.piggyback_copies_removed),
            ("proxy_questionable_validations", self.questionable_validations),
            ("proxy_failed_requests", self.failed_requests),
        ):
            registry.counter(name, site=site, **labels).inc(value)
        if self.batched_invalidations_received:
            registry.counter(
                "proxy_batched_invalidations_received", site=site, **labels
            ).inc(self.batched_invalidations_received)
        registry.gauge("proxy_cache_entries", site=site, **labels).set(
            len(self.cache)
        )
        registry.gauge("proxy_cache_bytes", site=site, **labels).set(
            self.cache.used_bytes
        )

    # ------------------------------------------------------------------
    # network receive path
    # ------------------------------------------------------------------

    def _receive(self, message: Message) -> None:
        if not self.up:
            return
        if isinstance(message, HttpResponse):
            if message.piggyback_invalidations:
                # PSI extension: the reply names documents modified since
                # our last contact; drop every client's copy of each.
                for url in message.piggyback_invalidations:
                    self.piggyback_copies_removed += self.cache.remove_url(url)
            waiter = self._pending.pop(message.reply_to, None)
            if waiter is not None and not waiter.triggered:
                waiter.succeed(message)
        elif isinstance(message, Invalidate):
            self._handle_invalidate(message)

    def _handle_invalidate(self, message: Invalidate) -> None:
        if message.pairs is not None:
            # Batched form: one message coalescing several documents'
            # invalidations (the sharded accelerator tier).  Each pair is
            # processed exactly like a url-form INVALIDATE.
            for url, client_ids in message.pairs:
                for client_id in client_ids:
                    key = entry_key(url, client_id)
                    if self.cache.remove(key) == 0:
                        self._tombstones[key] = self.sim.now
                    self._last_invalidated[key] = self.sim.now
            self.invalidations_received += 1
            self.batched_invalidations_received += sum(
                len(cids) for _url, cids in message.pairs
            )
        elif message.url is not None:
            # Delete the targeted clients' copies; if one is not cached,
            # the invalidation may have overtaken an in-flight fetch
            # reply — tombstone the key so the eventual insert
            # revalidates.  (The multicast form covers several clients.)
            for client_id in message.target_clients:
                key = entry_key(message.url, client_id)
                if self.cache.remove(key) == 0:
                    self._tombstones[key] = self.sim.now
                self._last_invalidated[key] = self.sim.now
            self.invalidations_received += 1
        else:
            # Server-address form: everything from that server becomes
            # questionable (we model a single origin server per fabric).
            self.cache.mark_all_questionable()
            self.server_invalidations_received += 1

    # ------------------------------------------------------------------
    # client request path
    # ------------------------------------------------------------------

    def request(self, client_id: str, url: str):
        """Handle one browser request; yields sim events, returns outcome.

        Intended use from a pseudo-client process::

            outcome = yield from proxy.request("client-7", "/doc")
        """
        sim = self.sim
        outcome = RequestOutcome(url=url, client_id=client_id, started=sim.now)
        yield sim.sleep(self.costs.cpu_lookup)
        entry, action = self._lookup(client_id, url)
        outcome.had_cached_copy = entry is not None
        return (yield from self._finish(entry, action, outcome))

    def _lookup(self, client_id: str, url: str):
        """Post-lookup-delay decision: ``(entry, action)``.

        ``action`` is ``"serve"``, ``"validate"``, ``"fill"`` or
        ``"down"``; ``entry`` is the cached copy (``None`` for fill/down).
        """
        if not self.up:
            # A dead host serves nobody; its browsers see the outage.
            return None, "down"
        entry = self.cache.get(entry_key(url, client_id), self.sim.now)
        if entry is None:
            return None, "fill"
        if entry.questionable:
            return entry, "validate"
        # The policy judges freshness on the host's own clock, which may
        # be skewed (chaos fault): lease/TTL expiry shifts by clock_skew
        # on this host.
        action = self.policy.action(entry, self.sim.now + self.clock_skew)
        if action not in ("serve", "validate"):
            raise ValueError(f"policy returned unknown action {action!r}")
        return entry, action

    def _finish(self, entry, action: str, outcome: RequestOutcome):
        """General path for a looked-up request (generator)."""
        try:
            if action == "down":
                raise RequestFailed(f"proxy {self.address} is down")
            if action == "fill":
                yield from self._fill(outcome.client_id, outcome.url, outcome)
            elif action == "serve":
                yield from self._serve_cached(entry, outcome)
            else:
                if entry.questionable:
                    self.questionable_validations += 1
                yield from self._validate(entry, outcome)
        except RequestFailed:
            outcome.failed = True
            self.failed_requests += 1
        return self._complete(outcome)

    def _complete(self, outcome: RequestOutcome) -> RequestOutcome:
        """Shared request epilogue (both the general and fast paths)."""
        outcome.finished = self.sim.now
        outcome.hit = (not outcome.failed) and self.policy.is_hit(outcome)
        if (
            self.meter is not None
            and outcome.served_from_cache
            and not outcome.validated
        ):
            # Locally-served hit the origin never saw: meter it for the
            # next piggybacked report.
            self.meter.record(outcome.url)
        return outcome

    # -- zero-allocation fast path ------------------------------------------

    def fast_path_ok(self) -> bool:
        """True when the callback-chain request route may be used.

        Any attached observer (consistency auditor), hit meter or event
        tracer forces the general generator path so those instruments see
        exactly the event stream they were written against.
        """
        return (
            self.observer is None
            and self.meter is None
            and self.sim._tracer is None
        )

    def serve_delay(self, entry: CacheEntry) -> float:
        """CPU seconds to push a cached copy to the browser."""
        return self.costs.cpu_serve_per_kb * entry.size / 1024.0

    def request_fast(self, client_id: str, url: str, on_done, on_handoff) -> None:
        """Callback-chain twin of :meth:`request` (no events, no process).

        Cache hits (and down-proxy failures) complete entirely on pooled
        callback entries: ``on_done(outcome)`` fires after the same
        lookup/serve delays the generator path pays.  Requests that need
        the network call ``on_handoff(entry, action, outcome)`` at the
        decision point so the caller can run :meth:`_finish` in a
        process.  Timing and side-effect order are identical to the
        general path; only the Timeout/Event machinery of the hit flow is
        skipped.  Callers must check :meth:`fast_path_ok` first.
        """
        outcome = RequestOutcome(url=url, client_id=client_id, started=self.sim.now)
        self.sim.call_later(
            self.costs.cpu_lookup, self._fast_lookup, outcome, on_done, on_handoff
        )

    def _fast_lookup(self, outcome: RequestOutcome, on_done, on_handoff) -> None:
        entry, action = self._lookup(outcome.client_id, outcome.url)
        outcome.had_cached_copy = entry is not None
        if action == "serve":
            self.sim.call_later(
                self.serve_delay(entry), self._fast_serve, entry, outcome, on_done
            )
        elif action == "down":
            outcome.failed = True
            self.failed_requests += 1
            on_done(self._complete(outcome))
        else:
            on_handoff(entry, action, outcome)

    def _fast_serve(self, entry: CacheEntry, outcome: RequestOutcome, on_done) -> None:
        self._complete_serve(entry, outcome)
        on_done(self._complete(outcome))

    def _serve_cached(self, entry: CacheEntry, outcome: RequestOutcome):
        yield self.sim.sleep(self.serve_delay(entry))
        self._complete_serve(entry, outcome)

    def _complete_serve(self, entry: CacheEntry, outcome: RequestOutcome) -> None:
        outcome.served_from_cache = True
        outcome.body_bytes = entry.size
        if self.oracle is not None and not outcome.validated:
            current = self.oracle(entry.url)
            if current > entry.last_modified:
                outcome.stale_served = True
                outcome.staleness_age = current - entry.last_modified
        # A copy fetched before its own invalidation was delivered must
        # never be served afterwards.
        outcome.violation = entry.fetched_at <= self._last_invalidated.get(
            entry.key, float("-inf")
        )
        if self.observer is not None:
            self.observer.on_serve(self, entry, outcome)

    def _fill(self, client_id: str, url: str, outcome: RequestOutcome):
        request = make_get(
            self.address,
            self.server_address,
            url,
            client_id=client_id,
            wire=self.wire,
            want_lease=getattr(self.policy, "want_lease_get", False),
        )
        if self.meter is not None:
            request.reported_hits = self.meter.take(url)
        outcome.fetched = True
        response = yield from self._roundtrip(request)
        self._insert_from_response(response, client_id)
        yield self.sim.sleep(self.costs.cpu_insert)
        outcome.status = response.status
        outcome.transfer = True
        outcome.body_bytes = response.body_bytes

    def _validate(self, entry: CacheEntry, outcome: RequestOutcome):
        request = make_ims(
            self.address,
            self.server_address,
            entry.url,
            client_id=entry.client_id,
            ims_timestamp=entry.last_modified,
            wire=self.wire,
            want_lease=getattr(self.policy, "want_lease_ims", False),
        )
        if self.meter is not None:
            request.reported_hits = self.meter.take(entry.url)
        outcome.validated = True
        response = yield from self._roundtrip(request)
        outcome.status = response.status
        if response.status == NOT_MODIFIED:
            entry.questionable = False
            # The server just confirmed freshness: the copy is as good as
            # one fetched now (resets the violation baseline too).
            entry.fetched_at = self.sim.now
            if response.lease_expires is not None:
                entry.lease_expires = response.lease_expires
            self.policy.on_validated(entry, response, self.sim.now)
            # TTL policies extend entry.expires in place: tell the cache
            # so expired-first replacement keeps seeing this entry.
            self.cache.note_expiry_update(entry.key)
            yield from self._serve_cached(entry, outcome)
        else:
            # New version: replace the cached copy and serve the new body.
            self.cache.remove(entry.key)
            self._insert_from_response(response, entry.client_id)
            yield self.sim.sleep(self.costs.cpu_insert)
            outcome.transfer = True
            outcome.body_bytes = response.body_bytes

    def _insert_from_response(self, response: HttpResponse, client_id: str) -> None:
        if response.status != OK:
            raise ValueError(f"cannot cache a {response.status} reply")
        entry = CacheEntry(
            url=response.url,
            client_id=client_id,
            size=response.body_bytes,
            last_modified=response.last_modified,
            fetched_at=self.sim.now,
        )
        if response.lease_expires is not None:
            entry.lease_expires = response.lease_expires
        if self._tombstones.pop(entry.key, None) is not None:
            # An INVALIDATE raced ahead of this reply: don't trust the
            # copy until it has been revalidated.
            entry.questionable = True
        self.policy.on_fill(entry, response, self.sim.now)
        self.cache.put(entry, self.sim.now)

    def _roundtrip(self, request: HttpRequest):
        """Send a request, wait for the matching reply (or fail)."""
        sim = self.sim
        waiter = Event(sim)
        self._pending[request.msg_id] = waiter
        try:
            yield self.network.send(request)
        except Unreachable:
            self._pending.pop(request.msg_id, None)
            raise RequestFailed(f"server unreachable for {request.url}")
        timeout = sim.timeout(self.reply_timeout)
        result = yield AnyOf(sim, [waiter, timeout])
        if waiter not in result:
            self._pending.pop(request.msg_id, None)
            raise RequestFailed(f"no reply for {request.url} within timeout")
        if not timeout.processed:
            timeout.cancel()  # retire the timer so it never idles the clock
        return waiter.value

    # ------------------------------------------------------------------
    # crash / recovery
    # ------------------------------------------------------------------

    def crash(self) -> None:
        """Proxy host dies; cached objects survive on disk (Harvest)."""
        self.up = False
        self.network.set_down(self.address)
        self._pending.clear()

    def recover(self, cold: bool = False) -> int:
        """Restart; all entries become questionable (Section 4).

        A *warm* restart keeps the on-disk cache (Harvest's behaviour); a
        *cold* one comes back with an empty cache — the disk was replaced
        or the store wiped.  Returns how many entries were flagged
        questionable (0 for cold).
        """
        self.up = True
        self.network.set_up(self.address)
        if cold:
            self.cache.clear()
            self._tombstones.clear()
            return 0
        return self.cache.mark_all_questionable()
