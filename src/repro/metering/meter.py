"""HTTP hit metering (the paper's Section 7 integration point).

"For those commercial Web sites that want to control the accesses to its
contents, invalidation should be merged with other hit-metering
protocols [10] to provide both the benefits of caching and the
capability of access control."  [10] is the Mogul/Leach HTTP
hit-metering draft: proxies count the cache hits they serve and report
them back to the origin piggybacked on their next request for the
document, so providers keep accurate access counts without defeating
caching.

Two pieces:

* :class:`HitMeter` — proxy-side per-URL counters of locally-served
  hits not yet reported upstream.
* :class:`UsageLedger` — server-side aggregation of directly-observed
  requests plus proxy-reported hits.

The conservation law (checked by tests): for every document,
``ledger total + unreported meter residue == true access count``.
"""

from __future__ import annotations

from collections import Counter

__all__ = ["HitMeter", "UsageLedger"]


class HitMeter:
    """Proxy-side counts of cache hits pending report to the origin."""

    def __init__(self) -> None:
        self._pending: Counter = Counter()
        self.total_recorded = 0
        self.total_reported = 0

    def record(self, url: str, count: int = 1) -> None:
        """Note ``count`` locally-served hits for ``url``."""
        if count < 0:
            raise ValueError("count must be non-negative")
        self._pending[url] += count
        self.total_recorded += count

    def take(self, url: str) -> int:
        """Drain the pending count for ``url`` (to piggyback upstream)."""
        count = self._pending.pop(url, 0)
        self.total_reported += count
        return count

    def pending(self, url: str) -> int:
        """Hits recorded for ``url`` but not yet reported."""
        return self._pending[url]

    @property
    def total_pending(self) -> int:
        """All unreported hits across URLs."""
        return sum(self._pending.values())


class UsageLedger:
    """Origin-side per-document access accounting."""

    def __init__(self) -> None:
        self._direct: Counter = Counter()
        self._reported: Counter = Counter()

    def record_request(self, url: str) -> None:
        """One request observed directly at the origin."""
        self._direct[url] += 1

    def record_reported_hits(self, url: str, count: int) -> None:
        """Cache hits reported by a proxy's meter."""
        if count < 0:
            raise ValueError("count must be non-negative")
        self._reported[url] += count

    def direct(self, url: str) -> int:
        """Requests the origin saw itself."""
        return self._direct[url]

    def reported(self, url: str) -> int:
        """Hits proxies reported for ``url``."""
        return self._reported[url]

    def total(self, url: str) -> int:
        """Best-known access count for ``url``."""
        return self._direct[url] + self._reported[url]

    def grand_total(self) -> int:
        """Accesses across all documents."""
        return sum(self._direct.values()) + sum(self._reported.values())

    def top(self, n: int = 10):
        """The ``n`` most-accessed documents as (url, total) pairs."""
        totals = Counter()
        for url, count in self._direct.items():
            totals[url] += count
        for url, count in self._reported.items():
            totals[url] += count
        return totals.most_common(n)
