"""Hit-metering extension (Mogul/Leach draft; paper Section 7)."""

from .meter import HitMeter, UsageLedger

__all__ = ["HitMeter", "UsageLedger"]
