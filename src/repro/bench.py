"""Kernel + replay benchmarks and the persisted perf trajectory.

The replay experiments push millions of events per run, so the kernel's
events/second figure bounds the whole suite's runtime.  This module
measures both layers and records the numbers as tracked artifacts:

* ``BENCH_kernel.json`` — raw scheduler throughput on four workload
  shapes (spread timeout storm, near-future sleep storm, process
  ping-pong, far-horizon calendar storm);
* ``BENCH_replay.json`` — end-to-end trace replay requests/second for a
  strong (invalidation) and a weak (adaptive TTL) protocol.

Every payload carries the git SHA, a timestamp, peak RSS and a
``machine_score`` — a fixed pure-Python calibration loop measured on the
same host, so comparisons across machines can be normalised instead of
trusting absolute events/second.

``compare_bench`` implements the regression gate: each benchmark present
in both payloads must be no slower than ``(1 - tolerance)`` times the
old (machine-normalised) rate.  ``python -m repro bench --compare
BENCH_kernel.json`` exits non-zero when the gate fails; CI runs it with
a looser tolerance because runner hardware varies run to run.
"""

from __future__ import annotations

import json
import resource
import subprocess
import time
from typing import Callable, Dict, List, Optional, Tuple

from .sim import Simulator, Store

__all__ = [
    "KERNEL_BENCHMARKS",
    "calibrate_machine",
    "run_kernel_benchmarks",
    "run_replay_benchmarks",
    "bench_payload",
    "git_sha",
    "write_payload",
    "compare_bench",
    "missing_baselines",
    "profile_kernel",
]

#: Gate: fail when a benchmark drops below (1 - tolerance) x the old rate.
DEFAULT_TOLERANCE = 0.15

SCHEMA_VERSION = 1


# ---------------------------------------------------------------------------
# kernel workloads — each returns (events_processed, elapsed_seconds)
# ---------------------------------------------------------------------------

def bench_timeout_storm(n: int) -> Tuple[int, float]:
    """Pre-scheduled callbacks spread over many distinct delays.

    The ``test_timeout_event_throughput`` shape: ``i % 97`` second
    delays fan the entries across ~194 calendar buckets, which is where
    the two-level scheduler beats a single global heap.
    """
    sim = Simulator()
    fired = [0]

    def bump() -> None:
        fired[0] += 1

    t0 = time.perf_counter()
    for i in range(n):
        sim.schedule_callback(float(i % 97), bump)
    sim.run()
    elapsed = time.perf_counter() - t0
    assert fired[0] == n
    return n, elapsed


def bench_sleep_storm(n: int) -> Tuple[int, float]:
    """One process sleeping in a tight loop (pooled one-shot timers)."""
    sim = Simulator()
    done = [0]

    def proc(sim):
        for _ in range(n):
            yield sim.sleep(0.001)
            done[0] += 1

    sim.process(proc(sim))
    t0 = time.perf_counter()
    sim.run()
    elapsed = time.perf_counter() - t0
    assert done[0] == n
    return n, elapsed


def bench_hit_path_ping_pong(n: int) -> Tuple[int, float]:
    """Two generator processes trading control through stores.

    Measures raw process-resume cost — the part the proxy hit path's
    callback chain avoids entirely.
    """
    sim = Simulator()
    ping, pong = Store(sim), Store(sim)

    def left(sim):
        for _ in range(n):
            ping.put(1)
            yield pong.get()

    def right(sim):
        for _ in range(n):
            yield ping.get()
            pong.put(1)

    sim.process(left(sim))
    sim.process(right(sim))
    t0 = time.perf_counter()
    sim.run()
    elapsed = time.perf_counter() - t0
    return 2 * n, elapsed


def bench_hit_path_callbacks(n: int) -> Tuple[int, float]:
    """The zero-allocation hit flow: a chained ``call_later`` loop.

    Mirrors what ``ProxyCache.request_fast`` does per cache hit (lookup
    callback -> serve callback -> next request), with no Event, Timeout
    or generator in the loop.
    """
    sim = Simulator()
    fired = [0]

    def lookup() -> None:
        sim.call_later(0.0002, serve)

    def serve() -> None:
        fired[0] += 1
        if fired[0] < n:
            sim.call_later(0.0008, lookup)

    sim.call_later(0.0008, lookup)
    t0 = time.perf_counter()
    sim.run()
    elapsed = time.perf_counter() - t0
    assert fired[0] == n
    return 2 * n, elapsed


def bench_bucketed_timeout_storm(n: int) -> Tuple[int, float]:
    """Callbacks landing beyond the calendar horizon (far-heap traffic).

    Delays up to ~1000 s overflow the default 128 s near-future window,
    so entries migrate far heap -> calendar -> current bucket as the
    clock advances — the full two-level machinery.
    """
    sim = Simulator()
    fired = [0]

    def bump() -> None:
        fired[0] += 1

    t0 = time.perf_counter()
    for i in range(n):
        sim.schedule_callback(float((i * 37) % 1009), bump)
    sim.run()
    elapsed = time.perf_counter() - t0
    assert fired[0] == n
    return n, elapsed


#: name -> (workload, full_n, quick_n)
KERNEL_BENCHMARKS: Dict[str, Tuple[Callable[[int], Tuple[int, float]], int, int]] = {
    "timeout_storm": (bench_timeout_storm, 50_000, 10_000),
    "sleep_storm": (bench_sleep_storm, 50_000, 10_000),
    "hit_path_ping_pong": (bench_hit_path_ping_pong, 25_000, 5_000),
    "hit_path_callbacks": (bench_hit_path_callbacks, 50_000, 10_000),
    "bucketed_timeout_storm": (bench_bucketed_timeout_storm, 50_000, 10_000),
}


def calibrate_machine(loops: int = 2_000_000) -> float:
    """Fixed pure-Python loop; returns millions of iterations/second.

    Used to normalise events/second across hosts of different speeds so
    the regression gate compares scheduler efficiency, not hardware.
    """
    t0 = time.perf_counter()
    acc = 0
    for i in range(loops):
        acc += i & 7
    elapsed = time.perf_counter() - t0
    assert acc >= 0
    return loops / elapsed / 1e6


def run_kernel_benchmarks(
    quick: bool = False, repeats: int = 3
) -> Dict[str, Dict[str, float]]:
    """Run every kernel workload; best-of-``repeats`` events/second."""
    results: Dict[str, Dict[str, float]] = {}
    for name, (fn, full_n, quick_n) in KERNEL_BENCHMARKS.items():
        n = quick_n if quick else full_n
        best_rate, best_elapsed, events = 0.0, 0.0, 0
        for _ in range(max(1, repeats)):
            events, elapsed = fn(n)
            rate = events / elapsed if elapsed > 0 else float("inf")
            if rate > best_rate:
                best_rate, best_elapsed = rate, elapsed
        results[name] = {
            "events": events,
            "seconds": round(best_elapsed, 6),
            "events_per_sec": round(best_rate, 1),
        }
    return results


# ---------------------------------------------------------------------------
# replay workloads
# ---------------------------------------------------------------------------

def run_replay_benchmarks(
    quick: bool = False, seed: int = 11
) -> Dict[str, Dict[str, float]]:
    """End-to-end replay throughput for one strong + one weak protocol."""
    from .api import build_protocol, run_experiment
    from .replay import ExperimentConfig
    from .sim import RngRegistry
    from .traces import generate_trace
    from .traces import profile as lookup_profile

    scale = 0.05 if quick else 0.2
    trace = generate_trace(
        lookup_profile("EPA").scaled(scale), RngRegistry(seed=3)
    )
    results: Dict[str, Dict[str, float]] = {}
    for name in ("invalidation", "ttl"):
        protocol = build_protocol(name)
        config = ExperimentConfig(
            trace=trace,
            protocol=protocol,
            mean_lifetime=7 * 86400.0,
            seed=seed,
        )
        t0 = time.perf_counter()
        result = run_experiment(config)
        elapsed = time.perf_counter() - t0
        results[f"replay_{protocol.name}"] = {
            "requests": result.total_requests,
            "seconds": round(elapsed, 6),
            "requests_per_sec": round(result.total_requests / elapsed, 1),
            "total_messages": result.total_messages,
            "hits": result.hits,
        }

    # Cluster fan-out: the same invalidation workload on 4 shards, with
    # and without batching, so the trajectory records both the routed
    # throughput and the batching win (message reduction).
    unbatched_cfg = ExperimentConfig(
        trace=trace,
        protocol=build_protocol("invalidation"),
        mean_lifetime=7 * 86400.0,
        seed=seed,
        shards=4,
    )
    unbatched = run_experiment(unbatched_cfg)
    batched_cfg = ExperimentConfig(
        trace=trace,
        protocol=build_protocol("invalidation"),
        mean_lifetime=7 * 86400.0,
        seed=seed,
        shards=4,
        batch_window=1.0,
        batch_max=32,
    )
    t0 = time.perf_counter()
    batched = run_experiment(batched_cfg)
    elapsed = time.perf_counter() - t0
    reduction = (
        1.0 - batched.invalidations_sent / unbatched.invalidations_sent
        if unbatched.invalidations_sent
        else 0.0
    )
    results["cluster_fanout"] = {
        "requests": batched.total_requests,
        "seconds": round(elapsed, 6),
        "requests_per_sec": round(batched.total_requests / elapsed, 1),
        "shards": 4,
        "invalidations_unbatched": unbatched.invalidations_sent,
        "invalidations_batched": batched.invalidations_sent,
        "fanout_reduction": round(reduction, 4),
        "imbalance_ratio": round(batched.cluster["imbalance_ratio"], 4),
    }
    return results


# ---------------------------------------------------------------------------
# payloads
# ---------------------------------------------------------------------------

def git_sha() -> str:
    """Short git SHA of the working tree's HEAD, or ``"unknown"``.

    Shared provenance hook: benchmark payloads and the ``repro report``
    run manifest both stamp their output with it.
    """
    try:
        return (
            subprocess.run(
                ["git", "rev-parse", "--short", "HEAD"],
                capture_output=True,
                text=True,
                timeout=10,
            ).stdout.strip()
            or "unknown"
        )
    except (OSError, subprocess.SubprocessError):
        return "unknown"


def peak_rss_kb() -> int:
    """Peak resident set size of this process, in KiB (Linux semantics)."""
    return resource.getrusage(resource.RUSAGE_SELF).ru_maxrss


def bench_payload(kind: str, benchmarks: Dict[str, Dict[str, float]]) -> dict:
    """Wrap benchmark results with provenance for the JSON trajectory."""
    return {
        "schema": SCHEMA_VERSION,
        "kind": kind,
        "git_sha": git_sha(),
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%S%z"),
        "machine_score": round(calibrate_machine(), 3),
        "peak_rss_kb": peak_rss_kb(),
        "benchmarks": benchmarks,
    }


def write_payload(path: str, payload: dict) -> None:
    with open(path, "w") as fh:
        json.dump(payload, fh, indent=1, sort_keys=True)
        fh.write("\n")


_RATE_KEYS = ("events_per_sec", "requests_per_sec")


def _rate_of(bench: Dict[str, float]) -> Optional[float]:
    for key in _RATE_KEYS:
        if key in bench:
            return float(bench[key])
    return None


def compare_bench(
    new: dict, old: dict, tolerance: float = DEFAULT_TOLERANCE
) -> List[str]:
    """Regression gate: list of failure strings (empty = pass).

    Rates are normalised by each payload's ``machine_score`` when both
    sides carry one, so a slower CI runner does not read as a kernel
    regression; only benchmarks present on both sides are compared.
    """
    failures: List[str] = []
    new_score = float(new.get("machine_score") or 0) or None
    old_score = float(old.get("machine_score") or 0) or None
    normalise = new_score is not None and old_score is not None
    old_benchmarks = old.get("benchmarks") or {}
    new_benchmarks = new.get("benchmarks") or {}
    for name, old_bench in old_benchmarks.items():
        new_bench = new_benchmarks.get(name)
        if new_bench is None:
            continue
        old_rate, new_rate = _rate_of(old_bench), _rate_of(new_bench)
        if old_rate is None or new_rate is None or old_rate <= 0:
            continue
        if normalise:
            old_rate /= old_score
            new_rate /= new_score
        if new_rate < old_rate * (1.0 - tolerance):
            failures.append(
                f"{name}: {new_rate:,.1f} vs baseline {old_rate:,.1f} "
                f"({new_rate / old_rate - 1.0:+.1%}, tolerance -{tolerance:.0%})"
            )
    return failures


def missing_baselines(new: dict, old: dict) -> List[str]:
    """Benchmark variants in ``new`` that the baseline has no entry for.

    A baseline written before a benchmark variant existed cannot gate
    that variant; callers report those by name ("no baseline — new
    variant") instead of failing.  Sorted for stable output.
    """
    old_names = set(old.get("benchmarks") or {})
    new_names = set(new.get("benchmarks") or {})
    return sorted(new_names - old_names)


# ---------------------------------------------------------------------------
# profiling
# ---------------------------------------------------------------------------

def profile_kernel(
    name: str = "sleep_storm", n: Optional[int] = None, out=None
) -> None:
    """Run one kernel workload under a profiler and print the hot spots.

    Uses ``pyinstrument`` when importable (nicer flame output),
    otherwise the stdlib ``cProfile``.
    """
    import sys

    out = out or sys.stdout
    fn, full_n, _quick_n = KERNEL_BENCHMARKS[name]
    n = n or full_n
    try:
        from pyinstrument import Profiler  # optional, never a hard dep
    except ImportError:
        Profiler = None
    if Profiler is not None:
        profiler = Profiler()
        profiler.start()
        fn(n)
        profiler.stop()
        print(profiler.output_text(unicode=True, color=False), file=out)
        return
    import cProfile
    import pstats

    profiler = cProfile.Profile()
    profiler.enable()
    fn(n)
    profiler.disable()
    stats = pstats.Stats(profiler, stream=out)
    stats.strip_dirs().sort_stats("cumulative").print_stats(25)
