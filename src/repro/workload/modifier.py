"""The modifier: drives document changes during a replay.

The schedule (which file changes at which tick) is pre-generated from a
seeded stream, so all protocol runs of the same experiment replay exactly
the same modification history — the paper achieves comparability by
replaying the same traces; we additionally pin the modification randomness.

At each tick the modifier performs the paper's two steps: a ``touch``
(update the file's last-modified time in the store) and a ``check-in``
(notify the accelerator, the paper's "notify" detection approach).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence

from ..sim import Simulator
from .lifetime import modification_interval

__all__ = ["Modification", "generate_schedule", "Modifier"]


@dataclass(frozen=True)
class Modification:
    """One scheduled document change."""

    time: float
    url: str


def generate_schedule(
    urls: Sequence[str],
    duration: float,
    mean_lifetime_seconds: float,
    rng: random.Random,
) -> List[Modification]:
    """Pre-generate the modification schedule for a replay.

    One uniform-random document is modified every
    ``mean_lifetime / len(urls)`` seconds, starting one interval in — the
    paper's fixed-interval modifier, yielding geometric lifetimes.
    """
    if not urls:
        raise ValueError("urls must be non-empty")
    interval = modification_interval(len(urls), mean_lifetime_seconds)
    schedule = []
    t = interval
    while t <= duration:
        schedule.append(Modification(time=t, url=urls[rng.randrange(len(urls))]))
        t += interval
    return schedule


class Modifier:
    """Simulation process replaying a modification schedule.

    Args:
        sim: the simulator.
        schedule: pre-generated (time, url) list, time-ascending.
        touch: callback updating the document's mtime (the file system).
        check_in: optional callback notifying the accelerator (the paper's
            check-in utility); ``None`` for protocols without server-side
            change detection hooks (TTL / polling, where only the file
            mtime matters).
    """

    def __init__(
        self,
        sim: Simulator,
        schedule: Sequence[Modification],
        touch: Callable[[str], None],
        check_in: Optional[Callable[[str], None]] = None,
    ) -> None:
        self.sim = sim
        self.schedule = list(schedule)
        self.touch = touch
        self.check_in = check_in
        self.applied: List[Modification] = []
        self.process = sim.process(self._run())

    @property
    def modifications_applied(self) -> int:
        """How many schedule entries have fired so far."""
        return len(self.applied)

    def _run(self):
        for mod in self.schedule:
            delay = mod.time - self.sim.now
            if delay > 0:
                yield self.sim.timeout(delay)
            self.touch(mod.url)
            if self.check_in is not None:
                self.check_in(mod.url)
            self.applied.append(mod)
