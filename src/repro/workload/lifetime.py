"""File-lifetime arithmetic for the modifier process.

The paper's modifier "chooses a random file to modify every N seconds.
This modification pattern leads to a geometric life time distribution for
files; N is set so that the average life time of the files is a particular
value (for example, 50 days)."

With ``F`` files and one uniform-random modification every ``N`` seconds, a
given file is hit with probability ``1/F`` per tick, so its lifetime is
geometric with mean ``F`` ticks = ``F*N`` seconds.  Hence
``N = mean_lifetime / F``.
"""

from __future__ import annotations

import math

__all__ = [
    "modification_interval",
    "expected_modifications",
    "mean_lifetime",
    "DAYS",
]

#: Seconds per day, for readable experiment configs.
DAYS = 86400.0


def modification_interval(num_files: int, mean_lifetime_seconds: float) -> float:
    """Seconds between modifier ticks for the target mean file lifetime."""
    if num_files < 1:
        raise ValueError("num_files must be >= 1")
    if mean_lifetime_seconds <= 0:
        raise ValueError("mean lifetime must be positive")
    return mean_lifetime_seconds / num_files


def expected_modifications(
    num_files: int, mean_lifetime_seconds: float, duration_seconds: float
) -> int:
    """Number of modifier ticks during a replay of the given duration."""
    interval = modification_interval(num_files, mean_lifetime_seconds)
    return int(math.floor(duration_seconds / interval))


def mean_lifetime(num_files: int, interval_seconds: float) -> float:
    """Inverse of :func:`modification_interval`."""
    if interval_seconds <= 0:
        raise ValueError("interval must be positive")
    return num_files * interval_seconds
