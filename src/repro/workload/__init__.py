"""Workload machinery: lifetimes, the modifier process, r/m streams."""

from .lifetime import (
    DAYS,
    expected_modifications,
    mean_lifetime,
    modification_interval,
)
from .modifier import Modification, Modifier, generate_schedule
from .streams import (
    MODIFY,
    READ,
    Op,
    StreamCounts,
    count_r_ri,
    merge_events,
    parse_stream,
)

__all__ = [
    "DAYS",
    "modification_interval",
    "expected_modifications",
    "mean_lifetime",
    "Modification",
    "Modifier",
    "generate_schedule",
    "READ",
    "MODIFY",
    "Op",
    "parse_stream",
    "merge_events",
    "count_r_ri",
    "StreamCounts",
]
