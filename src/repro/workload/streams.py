"""Interleaved request/modification streams (the paper's Section 3 model).

The Table 1 analysis considers, for one (client, document) pair, the
interleaved sequence of reads and modifications — e.g. ``"r r r m m m r r
m r r r m m r"`` — and defines:

* ``R``  — number of reads, and
* ``RI`` — number of *request intervals*: maximal runs of reads with no
  intervening modification (4 in the example).

This module builds those streams from raw event times and computes R/RI;
:mod:`repro.core.analysis` turns them into per-protocol message counts.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Sequence, Tuple

__all__ = ["Op", "READ", "MODIFY", "parse_stream", "merge_events", "count_r_ri"]

READ = "r"
MODIFY = "m"

#: One stream element: ``"r"`` or ``"m"``.
Op = str


def parse_stream(text: str) -> List[Op]:
    """Parse a stream like ``"r r m r"`` (whitespace optional)."""
    ops = [c for c in text.lower() if not c.isspace()]
    bad = sorted(set(ops) - {READ, MODIFY})
    if bad:
        raise ValueError(f"invalid stream ops {bad!r}; only 'r'/'m' allowed")
    return ops


def merge_events(
    read_times: Iterable[float], modify_times: Iterable[float]
) -> List[Op]:
    """Interleave read/modification timestamps into a stream.

    Ties are resolved modification-first (a read at the same instant as a
    write sees the new version, matching the paper's write-completion
    definitions).
    """
    events: List[Tuple[float, int, Op]] = []
    events.extend((t, 0, MODIFY) for t in modify_times)
    events.extend((t, 1, READ) for t in read_times)
    events.sort()
    return [op for _, _, op in events]


@dataclass(frozen=True)
class StreamCounts:
    """R and RI for one stream (see module docstring)."""

    reads: int
    intervals: int

    @property
    def repeats(self) -> int:
        """Reads served without any possible change: ``R - RI``."""
        return self.reads - self.intervals


def count_r_ri(stream: Sequence[Op]) -> StreamCounts:
    """Compute R (reads) and RI (request intervals) for a stream.

    An interval starts at the first read after a modification (or at the
    first read overall); modifications with no subsequent read do not open
    intervals.
    """
    reads = 0
    intervals = 0
    dirty = True  # document unseen or modified since the last read
    for op in stream:
        if op == READ:
            reads += 1
            if dirty:
                intervals += 1
                dirty = False
        elif op == MODIFY:
            dirty = True
        else:
            raise ValueError(f"invalid op {op!r}")
    return StreamCounts(reads=reads, intervals=intervals)
