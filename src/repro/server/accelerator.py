"""Accelerator configuration (the Harvest httpd-accelerator stand-in).

The paper implements invalidation inside Harvest's HTTP accelerator, which
fronts the Web server.  In this reproduction the accelerator's behaviour is
data-driven: an :class:`AcceleratorConfig` tells the server site whether to
track client sites, what lease to attach to each request type, and whether
the invalidation send blocks the accept loop (the paper's implementation
artifact responsible for the worst-case latencies in Tables 3-4).

Protocol presets (see :mod:`repro.core`):

===================  ============  ==========  =========  =============
protocol             invalidation  lease(GET)  lease(IMS) grant_leases
===================  ============  ==========  =========  =============
adaptive TTL         off           --          --         no
polling-every-time   off           --          --         no
invalidation         on            inf         inf        no
lease invalidation   on            L           L          yes
two-tier leases      on            0           L          yes
===================  ============  ==========  =========  =============
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional

__all__ = ["AcceleratorConfig"]


@dataclass(frozen=True)
class AcceleratorConfig:
    """Server-side consistency behaviour.

    Attributes:
        invalidation: track client sites and send INVALIDATE on change.
        lease_get: lease duration attached to plain GET requests.
            ``inf`` = remember forever (simple invalidation); ``0`` = do
            not remember at all (the two-tier scheme's first tier).
        lease_ims: lease duration attached to If-Modified-Since requests.
        grant_leases: whether replies carry an explicit lease expiry the
            client must honour (lease-augmented schemes).  When False the
            client treats cached copies as valid until invalidated.
        blocking_send: when True the accelerator does not accept new
            requests until all INVALIDATEs for a modification have been
            sent (the paper's prototype behaviour); when False a separate
            process sends them (the paper's proposed fix).
        multicast: send one INVALIDATE per proxy host (covering all its
            affected clients) instead of one per client site — the
            "multicast schemes" the paper suggests for large fan-outs.
        piggyback: attach the list of URLs modified since the proxy's
            last contact to every reply (the Krishnamurthy/Wills
            piggyback-server-invalidation follow-up; weak consistency
            with much fresher caches at zero extra messages).
        piggyback_cap: at most this many URLs per piggybacked list.
        retry_interval: seconds between TCP retries for undeliverable
            invalidations (Section 4 failure handling).
        max_retries: give up on an invalidation after this many delivery
            attempts and mark the site-list entry dirty instead (flushed on
            the proxy's next contact).  ``None`` retries forever, the
            paper's Section 4 behaviour.
        lease_grace: safety margin, in seconds, for clock skew between the
            server and its clients.  The server still invalidates entries
            whose lease expired up to ``lease_grace`` seconds ago, and only
            purges them once the grace has also elapsed — so a client whose
            clock runs behind by at most this much never serves a stale
            copy it believes is still leased.
    """

    invalidation: bool = False
    lease_get: float = math.inf
    lease_ims: float = math.inf
    grant_leases: bool = False
    blocking_send: bool = True
    multicast: bool = False
    piggyback: bool = False
    piggyback_cap: int = 100
    retry_interval: float = 30.0
    max_retries: Optional[int] = None
    lease_grace: float = 0.0

    def __post_init__(self) -> None:
        if self.lease_get < 0 or self.lease_ims < 0:
            raise ValueError("lease durations must be non-negative")
        if self.retry_interval <= 0:
            raise ValueError("retry_interval must be positive")
        if self.max_retries is not None and self.max_retries < 0:
            raise ValueError("max_retries must be non-negative")
        if self.lease_grace < 0:
            raise ValueError("lease_grace must be non-negative")

    def lease_for(self, is_ims: bool) -> float:
        """Lease duration to attach to a request of the given kind."""
        return self.lease_ims if is_ims else self.lease_get
