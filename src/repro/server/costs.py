"""Per-operation cost model for the pseudo-server workstation.

The paper measures server CPU utilisation and disk reads/writes per second
with ``iostat`` and stresses that the absolute numbers "are only
meaningful for comparison purposes".  We model the server as one CPU and
one disk (both FIFO resources) and charge each operation a fixed cost,
sized to 1996-workstation magnitudes: a fork-per-request NCSA HTTPD on a
SPARC-20 spends on the order of 100 ms of CPU per request, which is what
the paper's measured utilisations imply at its replay request rates.  The
*relative* protocol comparison — polling burns more CPU because it fields
an If-Modified-Since on every hit — is what the model must preserve, and
it depends only on the operation mix, not the constants.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["ServerCosts", "DEFAULT_SERVER_COSTS"]


@dataclass(frozen=True)
class ServerCosts:
    """CPU/disk seconds charged per server operation.

    Attributes:
        cpu_accept: admission of one connection (accept + dispatch).
        cpu_parse: parsing a request and routing it.
        cpu_reply_header: building a reply (200 or 304).
        cpu_per_kb: marshalling cost per KB of body served.
        cpu_sitelist: invalidation-table lookup/update per request.
        cpu_invalidate_msg: building + sending one INVALIDATE message.
        disk_read: reading one document from disk (seek-dominated).
        disk_read_per_kb: additional read time per KB of body.
        disk_log_write: appending one line to the request log.
        disk_sitelog_write: persisting one never-seen-before client site
            (Section 4: "a disk access is only necessary when a new client
            site ... contacts the server").
    """

    cpu_accept: float = 0.015
    cpu_parse: float = 0.055
    cpu_reply_header: float = 0.045
    cpu_per_kb: float = 0.0005
    cpu_sitelist: float = 0.005
    cpu_invalidate_msg: float = 0.020
    disk_read: float = 0.015
    disk_read_per_kb: float = 0.0005
    disk_log_write: float = 0.010
    disk_sitelog_write: float = 0.020

    def cpu_reply(self, body_bytes: int) -> float:
        """CPU time to build and push a reply with ``body_bytes`` of body."""
        return self.cpu_reply_header + self.cpu_per_kb * (body_bytes / 1024.0)

    def disk_fetch(self, body_bytes: int) -> float:
        """Disk time to read a ``body_bytes`` document."""
        return self.disk_read + self.disk_read_per_kb * (body_bytes / 1024.0)


#: Default cost constants used by the experiments.
DEFAULT_SERVER_COSTS = ServerCosts()
