"""The pseudo-server workstation: HTTPD + accelerator on one host.

One :class:`ServerSite` bundles what the paper runs on its pseudo-server
SPARC-20: the NCSA HTTPD (document service, request logging) and the
Harvest accelerator (site tracking, modification detection, INVALIDATE
fan-out), sharing one CPU and one disk.

Key fidelity points, all from Section 4 of the paper:

* Every client access registers the site — the accelerator does not rely
  on the client saying whether it caches.
* Modification detection supports both the "notify" (check-in) path and
  the browser-based path (:meth:`ServerSite.check_document`).
* With ``blocking_send`` (the prototype's behaviour), the accelerator
  stops accepting requests until all INVALIDATEs for a change are sent —
  the cause of the paper's worst-case latencies.
* Crash recovery: volatile site lists are lost; a persistent log of every
  site ever seen is replayed as INVALIDATE-by-server-address messages.
* Invalidations travel over the reliable channel (TCP + periodic retry).
"""

from __future__ import annotations

import bisect
import math
from typing import Dict, Iterable, List, Optional, Set, Tuple

from ..http import (
    HttpRequest,
    make_invalidate_multi,
    make_invalidate_server,
    make_invalidate_url,
    make_reply_200,
    make_reply_304,
)
from ..http.wire import DEFAULT_WIRE, WireCosts
from ..metering import UsageLedger
from ..net import DeliveryFailed, Message, Network, ReliableChannel
from ..sim import Resource, Simulator
from .accelerator import AcceleratorConfig
from .costs import DEFAULT_SERVER_COSTS, ServerCosts
from .filestore import FileStore
from .sitelist import InvalidationTable, KnownSitesLog

__all__ = ["ServerSite"]


class ServerSite:
    """The origin server host (HTTPD + accelerator + CPU + disk)."""

    def __init__(
        self,
        sim: Simulator,
        network: Network,
        address: str,
        filestore: FileStore,
        accel: Optional[AcceleratorConfig] = None,
        costs: ServerCosts = DEFAULT_SERVER_COSTS,
        wire: WireCosts = DEFAULT_WIRE,
    ) -> None:
        self.sim = sim
        self.network = network
        self.address = address
        self.filestore = filestore
        self.accel = accel or AcceleratorConfig()
        self.costs = costs
        self.wire = wire

        #: Single-CPU and single-disk FIFO resources (SPARC-20 model).
        self.cpu = Resource(sim, capacity=1)
        self.disk = Resource(sim, capacity=1)
        #: The accept loop: requests acquire it briefly to be admitted; a
        #: blocking invalidation send holds it for the whole fan-out.
        self.accept_lock = Resource(sim, capacity=1)

        self.table = InvalidationTable()
        self.known_sites = KnownSitesLog()
        #: Section 7 hit metering: direct requests plus proxy-reported
        #: cache hits, per document.
        self.ledger = UsageLedger()
        self.channel = ReliableChannel(
            network,
            retry_interval=self.accel.retry_interval,
            max_retries=self.accel.max_retries,
        )

        #: Consistency obligations ledger.  An obligation is opened the
        #: instant a modification (or a recovery) makes a cached copy
        #: stale, and closed only after the corresponding INVALIDATE is
        #: *delivered*.  The chaos auditor treats staleness covered by an
        #: open obligation as an allowed in-flight window, not a violation.
        self._pending_inval: Dict[Tuple[str, str], str] = {}
        self._pending_server_inval: Set[str] = set()
        #: Abandoned deliveries (``max_retries`` exhausted) queued for
        #: re-send on the target proxy's next contact with the server.
        self._dirty_by_proxy: Dict[str, Dict[Tuple[str, str], None]] = {}
        self._dirty_server_inval: Set[str] = set()
        #: Operator-configured fleet membership: every proxy host that may
        #: front this server.  Used as the recovery broadcast target when a
        #: crash also destroys the persistent known-sites log.
        self.proxy_roster: Set[str] = set()
        self._sitelog_lost = False

        #: Last modification time the accelerator has *seen* per URL
        #: (browser-based detection compares against the file system).
        self._seen_mtime: Dict[str, float] = {}
        #: Piggyback extension: time-ordered (time, url) modification log
        #: and each proxy's last-contact time.
        self._mod_log: List[tuple] = []
        self._last_contact: Dict[str, float] = {}
        self.piggybacked_urls = 0
        #: When set (by an adaptive-lease controller), overrides the
        #: static lease durations in :attr:`accel` for every request.
        self.lease_override: Optional[float] = None

        # -- counters surfaced to the metrics layer --
        self.requests_handled = 0
        self.replies_200 = 0
        self.replies_304 = 0
        self.invalidations_sent = 0
        self.disk_reads = 0
        self.disk_writes = 0
        self.invalidations_abandoned = 0
        #: Wall-clock seconds each modification's INVALIDATE fan-out took.
        self.invalidation_times: List[float] = []
        #: Observability hook: ``fn(url, started, ended, num_entries)``
        #: called after each INVALIDATE fan-out completes (see
        #: :meth:`repro.obs.Observation.fanout_listener`).  ``None`` (the
        #: default) costs nothing.
        self.fanout_listener = None

        self.up = True
        network.register(address, self._receive)

    # ------------------------------------------------------------------
    # request path
    # ------------------------------------------------------------------

    def _receive(self, message: Message) -> None:
        if not self.up:
            return  # crashed host: the network normally blocks this
        if isinstance(message, HttpRequest):
            self.sim.process(self._handle_request(message))

    def _handle_request(self, request: HttpRequest):
        sim, costs = self.sim, self.costs

        # A contact from a proxy we owe abandoned invalidations is the
        # retry opportunity: the proxy is provably reachable right now.
        if (
            request.src in self._dirty_by_proxy
            or request.src in self._dirty_server_inval
        ):
            sim.process(self._flush_dirty(request.src))

        # Admission: the accept loop is a choke point shared with blocking
        # invalidation sends.
        with self.accept_lock.request() as admit:
            yield admit
            with self.cpu.request() as cpu:
                yield cpu
                yield sim.sleep(costs.cpu_accept)

        # Parse + accelerator bookkeeping.
        with self.cpu.request() as cpu:
            yield cpu
            cost = costs.cpu_parse
            if self.accel.invalidation:
                cost += costs.cpu_sitelist
            yield sim.sleep(cost)

        self.ledger.record_request(request.url)
        if request.reported_hits:
            self.ledger.record_reported_hits(request.url, request.reported_hits)

        lease_expires: Optional[float] = None
        if self.accel.invalidation:
            lease_expires = yield from self._register_site(request)

        doc = self.filestore.get(request.url)
        # The invalidation table remembers when each served document was
        # last seen modified (browser-based change detection compares
        # against this).
        self._seen_mtime.setdefault(request.url, doc.last_modified)
        modified = (
            request.ims_timestamp is None
            or doc.last_modified > request.ims_timestamp
        )

        if modified:
            # Full transfer: read the document from disk, build the reply.
            with self.disk.request() as disk:
                yield disk
                yield sim.sleep(costs.disk_fetch(doc.size))
            self.disk_reads += 1
            with self.cpu.request() as cpu:
                yield cpu
                yield sim.sleep(costs.cpu_reply(doc.size))
            reply = make_reply_200(
                request,
                body_bytes=doc.size,
                last_modified=doc.last_modified,
                wire=self.wire,
                lease_expires=lease_expires,
            )
            self.replies_200 += 1
        else:
            with self.cpu.request() as cpu:
                yield cpu
                yield sim.sleep(costs.cpu_reply(0))
            reply = make_reply_304(
                request,
                last_modified=doc.last_modified,
                wire=self.wire,
                lease_expires=lease_expires,
            )
            self.replies_304 += 1

        if self.accel.piggyback:
            urls = self._piggyback_for(request.src, exclude_url=request.url)
            if urls:
                reply.piggyback_invalidations = urls
                reply.size += len(urls) * self.wire.piggyback_per_url
                self.piggybacked_urls += len(urls)

        # All three approaches log incoming requests (paper Section 5.2).
        with self.disk.request() as disk:
            yield disk
            yield sim.sleep(costs.disk_log_write)
        self.disk_writes += 1

        self.requests_handled += 1
        self.network.send(reply, wait=False)

    def _register_site(self, request: HttpRequest):
        """Record the requesting site in the invalidation table.

        Returns the lease expiry to advertise in the reply (or ``None``
        when the protocol does not grant explicit leases).
        """
        now = self.sim.now
        if self.lease_override is not None:
            duration = self.lease_override
        else:
            duration = self.accel.lease_for(request.is_ims)
        if self.accel.grant_leases:
            # Lazy lease reclamation: expired entries on this document's
            # list are dropped whenever it is touched (Section 6 — "the
            # server only needs to remember clients whose leases have not
            # expired").  The clock-skew grace keeps recently-expired
            # entries around: a client whose clock lags may still honour
            # the lease, so it must still be invalidated.
            cutoff = now - self.accel.lease_grace
            self.table.purge_url(request.url, cutoff)
            # Amortized sweep over the rest of the table: without it, a
            # site that never reconnects keeps its expired entries (and
            # its document's list object) alive for the whole run.
            self.table.evict_round(cutoff)
        # Zero-duration leases (the two-tier first tier) normally skip
        # registration; under a clock-skew grace the server still remembers
        # the site for the grace window, because a client whose clock runs
        # behind may briefly act as if the lease were live.
        if duration > 0 or self.accel.lease_grace > 0:
            expiry = math.inf if math.isinf(duration) else now + duration
            self.table.register(
                request.url,
                request.client_id,
                proxy=request.src,
                now=now,
                lease_expires=expiry,
            )
        # Persistent every-site log: disk write only on first sight.
        if self.known_sites.record(request.client_id, request.src):
            with self.disk.request() as disk:
                yield disk
                yield self.sim.sleep(self.costs.disk_sitelog_write)
            self.disk_writes += 1
        if not self.accel.grant_leases:
            return None
        if math.isinf(duration):
            return None
        return now + duration

    def _piggyback_for(self, proxy: str, exclude_url: str):
        """URLs modified since ``proxy``'s last contact (PSI extension).

        Updates the proxy's last-contact time; returns ``None`` on first
        contact or when nothing changed.
        """
        now = self.sim.now
        since = self._last_contact.get(proxy)
        self._last_contact[proxy] = now
        if since is None or not self._mod_log:
            return None
        start = bisect.bisect_right(self._mod_log, (since, "￿"))
        seen = {}
        for _t, url in self._mod_log[start:]:
            if url != exclude_url:
                seen[url] = None
            if len(seen) >= self.accel.piggyback_cap:
                break
        return tuple(seen) or None

    # ------------------------------------------------------------------
    # modification detection + invalidation fan-out
    # ------------------------------------------------------------------

    def check_in(self, url: str) -> None:
        """The "notify" path: a check-in utility reports a change."""
        if not self.up:
            return  # the check-in utility runs on the crashed host
        self._seen_mtime[url] = self.filestore.get(url).last_modified
        if self.accel.piggyback:
            self._mod_log.append((self.sim.now, url))
        if self.accel.invalidation:
            self._start_invalidation(url)

    def check_document(self, url: str) -> bool:
        """The browser-based path: compare the file's mtime with the last
        one the accelerator saw; returns True when a change was detected
        (and, under invalidation, a fan-out was started)."""
        if not self.up:
            return False
        current = self.filestore.get(url).last_modified
        seen = self._seen_mtime.get(url)
        if seen is None:
            # Never served: nobody can be caching it, so nothing to do
            # beyond remembering the current mtime.
            self._seen_mtime[url] = current
            return False
        if current <= seen:
            return False
        self._seen_mtime[url] = current
        if self.accel.piggyback:
            self._mod_log.append((self.sim.now, url))
        if self.accel.invalidation:
            self._start_invalidation(url)
        return True

    def _start_invalidation(self, url: str) -> None:
        """Open the consistency obligations for a change, then fan out.

        The obligations are registered synchronously — at the instant the
        modification is detected — so the auditor can tell "stale because
        the INVALIDATE is still in flight" (allowed) apart from "stale and
        nobody owes this proxy anything" (a violation).
        """
        entries = self.table.note_modification(
            url, self.sim.now - self.accel.lease_grace
        )
        for entry in entries:
            self._pending_inval[(url, entry.client_id)] = entry.proxy
        self.sim.process(self._send_invalidations(url, entries))

    def _send_invalidations(self, url: str, entries):
        """Send INVALIDATE(url) to every live site, serially over TCP.

        With ``multicast`` enabled, clients are grouped by proxy host and
        each proxy receives a single message covering all of them.  When
        ``max_retries`` is configured and a delivery is abandoned, the
        affected site-list entries are marked dirty and re-sent on that
        proxy's next contact — the obligation stays open either way.
        """
        sim = self.sim
        started = sim.now
        hold = self.accept_lock.request() if self.accel.blocking_send else None
        if hold is not None:
            yield hold
        try:
            if self.accel.multicast:
                by_proxy: Dict[str, List[str]] = {}
                for entry in entries:
                    by_proxy.setdefault(entry.proxy, []).append(entry.client_id)
                for proxy, client_ids in by_proxy.items():
                    with self.cpu.request() as cpu:
                        yield cpu
                        yield sim.sleep(self.costs.cpu_invalidate_msg)
                    message = make_invalidate_multi(
                        self.address, proxy, url, client_ids, wire=self.wire
                    )
                    try:
                        yield from self.channel.deliver(message)
                    except DeliveryFailed:
                        self._abandon(url, proxy, client_ids)
                        continue
                    self.invalidations_sent += 1
                    self.table.clear_after_invalidation(url, client_ids)
                    for cid in client_ids:
                        self._pending_inval.pop((url, cid), None)
            else:
                for entry in entries:
                    with self.cpu.request() as cpu:
                        yield cpu
                        yield sim.sleep(self.costs.cpu_invalidate_msg)
                    message = make_invalidate_url(
                        self.address, entry.proxy, url, entry.client_id,
                        wire=self.wire,
                    )
                    try:
                        yield from self.channel.deliver(message)
                    except DeliveryFailed:
                        self._abandon(url, entry.proxy, [entry.client_id])
                        continue
                    self.invalidations_sent += 1
                    self.table.clear_after_invalidation(url, [entry.client_id])
                    self._pending_inval.pop((url, entry.client_id), None)
        finally:
            if hold is not None:
                self.accept_lock.release(hold)
        self.invalidation_times.append(sim.now - started)
        if self.fanout_listener is not None:
            self.fanout_listener(url, started, sim.now, len(entries))

    def _abandon(self, url: str, proxy: str, client_ids: Iterable[str]) -> None:
        """Record an abandoned INVALIDATE and queue it for flush-on-contact.

        Keeps the site-list entry (marked dirty) and the pending
        obligation: the copy out there is still stale and still owed an
        invalidation, just via a different channel.
        """
        queue = self._dirty_by_proxy.setdefault(proxy, {})
        site_list = self.table.site_list(url)
        for cid in client_ids:
            self.invalidations_abandoned += 1
            queue[(url, cid)] = None
            site_list.mark_dirty(cid)

    def _flush_dirty(self, proxy: str):
        """Re-send abandoned invalidations now that ``proxy`` is in touch."""
        sim = self.sim
        pairs = list(self._dirty_by_proxy.pop(proxy, {}))
        server_inval = proxy in self._dirty_server_inval
        self._dirty_server_inval.discard(proxy)
        if server_inval:
            with self.cpu.request() as cpu:
                yield cpu
                yield sim.sleep(self.costs.cpu_invalidate_msg)
            message = make_invalidate_server(
                self.address, proxy, server=self.address, wire=self.wire
            )
            try:
                yield from self.channel.deliver(message)
            except DeliveryFailed:
                self._dirty_server_inval.add(proxy)
            else:
                self.invalidations_sent += 1
                self._pending_server_inval.discard(proxy)
        for url, cid in pairs:
            with self.cpu.request() as cpu:
                yield cpu
                yield sim.sleep(self.costs.cpu_invalidate_msg)
            message = make_invalidate_url(
                self.address, proxy, url, cid, wire=self.wire
            )
            try:
                yield from self.channel.deliver(message)
            except DeliveryFailed:
                self._dirty_by_proxy.setdefault(proxy, {})[(url, cid)] = None
            else:
                self.invalidations_sent += 1
                self.table.clear_after_invalidation(url, [cid])
                self._pending_inval.pop((url, cid), None)

    # ------------------------------------------------------------------
    # consistency obligations (queried by the chaos auditor)
    # ------------------------------------------------------------------

    def write_pending(self, url: str, client_id: str) -> bool:
        """True while an INVALIDATE for ``(url, client_id)`` is still owed."""
        return (url, client_id) in self._pending_inval

    def recovery_pending(self, proxy: str) -> bool:
        """True while a post-crash INVALIDATE-by-server is owed to ``proxy``."""
        return proxy in self._pending_server_inval

    def change_pending_detection(self, url: str) -> bool:
        """True when the file changed but the accelerator has not seen it.

        Nonzero only under browser-based detection, where the window
        between the modification and the author's page view is an allowed
        staleness window (Section 4's second detection approach).
        """
        seen = self._seen_mtime.get(url)
        if seen is None:
            return False
        return self.filestore.get(url).last_modified > seen

    # ------------------------------------------------------------------
    # crash / recovery (Section 4 failure handling)
    # ------------------------------------------------------------------

    def crash(self, lose_sitelog: bool = False) -> None:
        """Kill the server site: volatile invalidation state is lost.

        With ``lose_sitelog`` the crash also destroys the *persistent*
        known-sites log (disk loss) — the worst case the paper's Section 4
        recovery story does not cover.  Recovery then falls back to
        broadcasting INVALIDATE-by-server to the operator-configured
        :attr:`proxy_roster`.
        """
        self.up = False
        self.network.set_down(self.address)
        self.table = InvalidationTable()
        self._seen_mtime.clear()
        if lose_sitelog:
            self.known_sites = KnownSitesLog()
            self._sitelog_lost = True

    def recover(self):
        """Restart; returns the recovery process (INVALIDATE-by-server).

        The persistent :class:`KnownSitesLog` survives the crash; every
        site in it receives an INVALIDATE carrying the server address,
        which makes proxies mark our documents questionable.  When the log
        was lost too, the :attr:`proxy_roster` is the broadcast target.
        The recovery obligations are opened synchronously, before the
        fan-out process runs, so the auditor sees them immediately.
        """
        self.up = True
        self.network.set_up(self.address)
        targets = {proxy for _client_id, proxy in self.known_sites.all_sites()}
        if self._sitelog_lost:
            targets |= self.proxy_roster
            self._sitelog_lost = False
        self._pending_server_inval |= targets
        return self.sim.process(self._recovery_fanout(sorted(targets)))

    def _recovery_fanout(self, proxies: List[str]):
        sim = self.sim
        # One INVALIDATE-by-server per proxy host is enough: the proxy
        # marks every cached document from this server questionable.
        for proxy in proxies:
            with self.cpu.request() as cpu:
                yield cpu
                yield sim.sleep(self.costs.cpu_invalidate_msg)
            message = make_invalidate_server(
                self.address, proxy, server=self.address, wire=self.wire
            )
            try:
                yield from self.channel.deliver(message)
            except DeliveryFailed:
                # Still owed: re-sent on the proxy's next contact.
                self.invalidations_abandoned += 1
                self._dirty_server_inval.add(proxy)
                continue
            self.invalidations_sent += 1
            self._pending_server_inval.discard(proxy)
