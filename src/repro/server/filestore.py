"""The pseudo-server's document file system.

Holds every URL document with its size and last-modified time.  The
modifier's ``touch`` goes through :meth:`FileStore.modify`; consistency
checks (If-Modified-Since handling, stale-hit detection) compare against
:attr:`Document.last_modified`.

Initial modification times matter for adaptive TTL (its time-to-live is a
fraction of the document's *age*), so :meth:`FileStore.from_catalog` draws
each document's initial age from an exponential distribution with the
workload's mean lifetime — the stationary age distribution of the paper's
geometric-lifetime modification process.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, Iterator, Mapping, Optional

__all__ = ["Document", "FileStore"]


@dataclass
class Document:
    """One server document."""

    url: str
    size: int
    last_modified: float
    version: int = 0


class FileStore:
    """URL -> :class:`Document` map with modification support."""

    def __init__(self, documents: Mapping[str, Document]) -> None:
        self._documents: Dict[str, Document] = dict(documents)
        self.modification_count = 0

    @classmethod
    def from_catalog(
        cls,
        catalog: Mapping[str, int],
        mean_initial_age: float = 0.0,
        rng: Optional[random.Random] = None,
    ) -> "FileStore":
        """Build a store from ``{url: size}``.

        With ``mean_initial_age > 0``, documents start with ages drawn from
        an exponential distribution of that mean (times before the trace
        start are negative timestamps).
        """
        rng = rng or random.Random(0)
        documents = {}
        for url, size in catalog.items():
            age = rng.expovariate(1.0 / mean_initial_age) if mean_initial_age > 0 else 0.0
            documents[url] = Document(url=url, size=size, last_modified=-age)
        return cls(documents)

    def __contains__(self, url: str) -> bool:
        return url in self._documents

    def __len__(self) -> int:
        return len(self._documents)

    def __iter__(self) -> Iterator[str]:
        return iter(self._documents)

    @property
    def urls(self) -> list:
        """All document URLs."""
        return list(self._documents)

    def get(self, url: str) -> Document:
        """Look up a document; raises ``KeyError`` for unknown URLs."""
        return self._documents[url]

    def modify(self, url: str, now: float) -> Document:
        """Touch a document: bump its mtime/version (the modifier's write)."""
        doc = self._documents[url]
        doc.last_modified = now
        doc.version += 1
        self.modification_count += 1
        return doc

    def modified_since(self, url: str, timestamp: float) -> bool:
        """True when the document changed after ``timestamp``."""
        return self._documents[url].last_modified > timestamp

    def age(self, url: str, now: float) -> float:
        """Document age (now minus last modification)."""
        return max(0.0, now - self._documents[url].last_modified)
