"""Adaptive lease-duration control (the Duvvuri/Shenoy/Tewari follow-up).

Section 6 fixes the lease duration by hand.  The "Adaptive Leases"
follow-up work lets the *server* pick it: long leases when state is
cheap (fewer validations), short leases when the site-list state
approaches a budget.  This controller implements the state-space policy:
it watches the invalidation table's storage and multiplicatively
shrinks/grows the lease duration to keep storage near a configured
budget.

The controller must be stopped when the replay ends (like the iostat
sampler) or its periodic ticks keep the simulation alive.
"""

from __future__ import annotations

from typing import List, Tuple

from ..sim import Interrupt, Simulator
from .httpd import ServerSite

__all__ = ["AdaptiveLeaseController"]


class AdaptiveLeaseController:
    """Keeps site-list storage near a budget by tuning the lease.

    Args:
        sim: the simulator.
        server: the server site whose ``lease_override`` we drive.
        state_budget_bytes: target ceiling for site-list storage.
        period: seconds between adjustments.
        initial_lease: starting lease duration (seconds).
        min_lease / max_lease: clamp bounds.
        shrink / grow: multiplicative adjustment factors.
    """

    def __init__(
        self,
        sim: Simulator,
        server: ServerSite,
        state_budget_bytes: int,
        period: float = 60.0,
        initial_lease: float = 600.0,
        min_lease: float = 10.0,
        max_lease: float = 7 * 86400.0,
        shrink: float = 0.7,
        grow: float = 1.3,
    ) -> None:
        if state_budget_bytes <= 0:
            raise ValueError("state budget must be positive")
        if not 0 < shrink < 1 < grow:
            raise ValueError("need shrink < 1 < grow")
        if not 0 < min_lease <= initial_lease <= max_lease:
            raise ValueError("need min_lease <= initial_lease <= max_lease")
        self.sim = sim
        self.server = server
        self.budget = state_budget_bytes
        self.period = period
        self.min_lease = min_lease
        self.max_lease = max_lease
        self.shrink = shrink
        self.grow = grow
        #: (time, lease) adjustment history for analysis.
        self.history: List[Tuple[float, float]] = []
        server.lease_override = initial_lease
        self.process = sim.process(self._run())

    @property
    def lease(self) -> float:
        """The lease duration currently granted."""
        return self.server.lease_override

    def _run(self):
        tick = None
        try:
            while True:
                tick = self.sim.timeout(self.period)
                yield tick
                self._adjust()
        except Interrupt:
            if tick is not None and not tick.processed:
                tick.cancel()
            return

    def _adjust(self) -> None:
        # Expired entries don't count against the budget — reclaim first.
        # Keep entries inside the clock-skew grace: lagging clients may
        # still honour those leases, so they must stay invalidatable.
        self.server.table.purge_expired(
            self.sim.now - self.server.accel.lease_grace
        )
        storage = self.server.table.storage_bytes()
        lease = self.server.lease_override
        if storage > self.budget:
            lease = max(self.min_lease, lease * self.shrink)
        elif storage < 0.5 * self.budget:
            lease = min(self.max_lease, lease * self.grow)
        self.server.lease_override = lease
        self.history.append((self.sim.now, lease))

    def stop(self) -> None:
        """Stop adjusting (the replay is over)."""
        if self.process.is_alive:
            self.process.interrupt()
