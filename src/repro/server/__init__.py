"""Origin-server substrate: file store, costs, site lists, server site."""

from .accelerator import AcceleratorConfig
from .cluster import AcceleratorCluster, AcceleratorShard, ClusterTable, HashRing
from .costs import DEFAULT_SERVER_COSTS, ServerCosts
from .filestore import Document, FileStore
from .httpd import ServerSite
from .lease_control import AdaptiveLeaseController
from .sitelist import (
    ENTRY_BYTES,
    InvalidationTable,
    KnownSitesLog,
    SiteEntry,
    SiteList,
)

__all__ = [
    "Document",
    "FileStore",
    "ServerCosts",
    "DEFAULT_SERVER_COSTS",
    "AcceleratorConfig",
    "ServerSite",
    "AcceleratorShard",
    "AcceleratorCluster",
    "ClusterTable",
    "HashRing",
    "AdaptiveLeaseController",
    "SiteEntry",
    "SiteList",
    "InvalidationTable",
    "KnownSitesLog",
    "ENTRY_BYTES",
]
