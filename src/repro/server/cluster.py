"""Sharded accelerator tier: consistent hashing + batched fan-out.

The paper's accelerator is one process; its per-document site lists and
serial INVALIDATE fan-out are the scalability ceiling Sections 6-7
concede.  This module scales that tier out while keeping the paper's
consistency story intact:

* :class:`HashRing` — consistent hashing with virtual nodes.  Documents
  partition across N accelerator shards; adding/removing a shard moves
  only ~K/N keys (the classic rebalance property, tested in
  ``tests/test_cluster.py``).
* :class:`AcceleratorShard` — a :class:`~repro.server.httpd.ServerSite`
  that can coalesce same-proxy invalidations into batched INVALIDATE
  messages (:func:`repro.http.make_invalidate_batch`), flushed when a
  size cap (``batch_max``) or a flush window (``batch_window``) is hit.
  Consistency obligations stay open while a pair sits in a buffer: a
  write completes only when its INVALIDATE is *delivered*, exactly as in
  the unbatched protocol, so the chaos auditor's rules are unchanged.
* :class:`AcceleratorCluster` — the facade the replay harness talks to.
  It registers the public ``server`` address, routes each request to the
  owning shard in-process (no extra wire hop: the shards and the router
  are one tier sharing a LAN-attached fleet), and mirrors the single
  ``ServerSite`` surface (counters, obligations ledger queries, crash /
  recovery) so every existing layer — iostat, observability, the
  auditor — works unmodified.  ``shards=1`` is routed through the plain
  ``ServerSite`` by the experiment runner, so the legacy path stays
  bit-identical.

Failover reuses PR 2's recovery semantics.  When a shard crashes, the
hash ring routes its documents to the surviving shards (they share the
one :class:`~repro.server.filestore.FileStore`); the cluster reports
``up=False`` while degraded, which the auditor treats as the
origin-down allowed-staleness window.  On recovery the shard replays its
persistent known-sites log as INVALIDATE-by-server messages (marking
proxies' copies questionable) and the cluster hands the site lists that
accumulated on failover shards back to the recovered owner, so later
modifications find their registrants.  Planned rebalances (the chaos
``shard_rebalance`` fault) do the same site-list handoff live, without a
crash.
"""

from __future__ import annotations

import bisect
import hashlib
from typing import Dict, Iterable, List, Optional, Set, Tuple

from ..http import HttpRequest, make_invalidate_batch
from ..http.wire import DEFAULT_WIRE, WireCosts
from ..net import DeliveryFailed, Message, Network
from ..sim import Simulator
from .accelerator import AcceleratorConfig
from .costs import DEFAULT_SERVER_COSTS, ServerCosts
from .filestore import FileStore
from .httpd import ServerSite

__all__ = ["HashRing", "AcceleratorShard", "AcceleratorCluster", "ClusterTable"]


class HashRing:
    """Consistent-hash ring with virtual nodes.

    Deterministic across processes (MD5, not Python's seeded ``hash``),
    so a document's owning shard is a pure function of the ring
    membership — replays and parallel sweeps agree on placement.
    """

    def __init__(self, nodes: Iterable[str] = (), vnodes: int = 64) -> None:
        if vnodes < 1:
            raise ValueError("need at least one virtual node per node")
        self.vnodes = vnodes
        self._ring: List[Tuple[int, str]] = []
        self._points: List[int] = []
        self._nodes: Set[str] = set()
        for node in nodes:
            self.add_node(node)

    @staticmethod
    def _hash(key: str) -> int:
        digest = hashlib.md5(key.encode("utf-8")).digest()
        return int.from_bytes(digest[:8], "big")

    def _rebuild(self) -> None:
        self._ring.sort()
        self._points = [point for point, _node in self._ring]

    def add_node(self, node: str) -> None:
        """Add ``node`` (idempotent); moves ~K/N keys onto it."""
        if node in self._nodes:
            return
        self._nodes.add(node)
        self._ring.extend(
            (self._hash(f"{node}#{i}"), node) for i in range(self.vnodes)
        )
        self._rebuild()

    def remove_node(self, node: str) -> None:
        """Remove ``node`` (idempotent); its keys spread over the rest."""
        if node not in self._nodes:
            return
        self._nodes.discard(node)
        self._ring = [(p, n) for p, n in self._ring if n != node]
        self._rebuild()

    @property
    def nodes(self) -> frozenset:
        """The current ring membership."""
        return frozenset(self._nodes)

    def __len__(self) -> int:
        return len(self._nodes)

    def owner(self, key: str, exclude: Iterable[str] = ()) -> Optional[str]:
        """The node owning ``key``: first clockwise, skipping ``exclude``.

        Walking past excluded (down/draining) nodes is what gives
        failover for free: a crashed shard's keys land on its ring
        successors and return home the instant it rejoins.
        Returns ``None`` when the ring is empty or fully excluded.
        """
        if not self._ring:
            return None
        exclude = exclude if isinstance(exclude, (set, frozenset)) else set(exclude)
        index = bisect.bisect_right(self._points, self._hash(key))
        size = len(self._ring)
        for step in range(size):
            node = self._ring[(index + step) % size][1]
            if node not in exclude:
                return node
        return None


class AcceleratorShard(ServerSite):
    """One accelerator shard: a ``ServerSite`` with batched fan-out.

    With ``batch_window == 0 and batch_max == 0`` the shard behaves
    exactly like its parent (per-entry or multicast INVALIDATEs).
    Otherwise same-proxy invalidations buffer and flush as one batched
    INVALIDATE when the buffer reaches ``batch_max`` pairs or
    ``batch_window`` simulated seconds after the buffer opened —
    whichever comes first.
    """

    def __init__(
        self,
        sim: Simulator,
        network: Network,
        address: str,
        filestore: FileStore,
        accel: Optional[AcceleratorConfig] = None,
        costs: ServerCosts = DEFAULT_SERVER_COSTS,
        wire: WireCosts = DEFAULT_WIRE,
        batch_window: float = 0.0,
        batch_max: int = 0,
    ) -> None:
        super().__init__(
            sim, network, address, filestore, accel=accel, costs=costs, wire=wire
        )
        if batch_window < 0:
            raise ValueError("batch_window must be non-negative")
        if batch_max < 0:
            raise ValueError("batch_max must be non-negative")
        self.batch_window = batch_window
        self.batch_max = batch_max
        #: Per-proxy coalescing buffers: proxy -> [(url, client_id), ...].
        self._batch_buffers: Dict[str, List[Tuple[str, str]]] = {}
        #: When each proxy's open buffer started filling (for the
        #: invalidation-time statistic: obligation open -> delivered).
        self._batch_opened: Dict[str, float] = {}
        #: Proxies with a flush timer in flight (timers are not
        #: cancelled; a fired timer on an empty buffer is a no-op).
        self._batch_timer_armed: Set[str] = set()
        self.batches_sent = 0
        self.batched_invalidations = 0

    @property
    def batching(self) -> bool:
        """True when fan-out coalescing is enabled."""
        return self.batch_window > 0 or self.batch_max > 0

    # -- fan-out override ---------------------------------------------------

    def _start_invalidation(self, url: str) -> None:
        if not self.batching:
            super()._start_invalidation(url)
            return
        entries = self.table.note_modification(
            url, self.sim.now - self.accel.lease_grace
        )
        # Obligations open synchronously at detection time, exactly like
        # the unbatched path — buffering delays the send, not the debt.
        for entry in entries:
            self._pending_inval[(url, entry.client_id)] = entry.proxy
            self._enqueue(entry.proxy, url, entry.client_id)

    def _enqueue(self, proxy: str, url: str, client_id: str) -> None:
        buffer = self._batch_buffers.setdefault(proxy, [])
        if not buffer:
            self._batch_opened[proxy] = self.sim.now
        buffer.append((url, client_id))
        if self.batch_max and len(buffer) >= self.batch_max:
            self._flush_batch(proxy)
        elif proxy not in self._batch_timer_armed:
            self._batch_timer_armed.add(proxy)
            self.sim.schedule_callback(
                self.batch_window, lambda p=proxy: self._batch_timer_fired(p)
            )

    def _batch_timer_fired(self, proxy: str) -> None:
        self._batch_timer_armed.discard(proxy)
        if self._batch_buffers.get(proxy):
            self._flush_batch(proxy)

    def _flush_batch(self, proxy: str) -> None:
        pairs = self._batch_buffers.pop(proxy, [])
        opened = self._batch_opened.pop(proxy, self.sim.now)
        if not pairs:
            return
        self.sim.process(self._send_batch(proxy, pairs, opened))

    def flush_all_batches(self) -> None:
        """Flush every open buffer immediately (end-of-run drain)."""
        for proxy in list(self._batch_buffers):
            self._flush_batch(proxy)

    def _send_batch(self, proxy: str, pairs, opened: float):
        """Deliver one batched INVALIDATE; obligations close per pair."""
        sim = self.sim
        # Group pairs by URL, deduplicating clients (two modifications of
        # one document inside a window need only one invalidation).
        by_url: Dict[str, Dict[str, None]] = {}
        for url, client_id in pairs:
            by_url.setdefault(url, {})[client_id] = None
        grouped = tuple((url, tuple(cids)) for url, cids in by_url.items())
        total = sum(len(cids) for _url, cids in grouped)

        hold = self.accept_lock.request() if self.accel.blocking_send else None
        if hold is not None:
            yield hold
        try:
            # One CPU charge per batch — the point of coalescing.
            with self.cpu.request() as cpu:
                yield cpu
                yield sim.sleep(self.costs.cpu_invalidate_msg)
            message = make_invalidate_batch(
                self.address, proxy, grouped, wire=self.wire
            )
            try:
                yield from self.channel.deliver(message)
            except DeliveryFailed:
                for url, cids in grouped:
                    self._abandon(url, proxy, cids)
            else:
                self.invalidations_sent += 1
                self.batches_sent += 1
                self.batched_invalidations += total
                for url, cids in grouped:
                    self.table.clear_after_invalidation(url, cids)
                    for cid in cids:
                        self._pending_inval.pop((url, cid), None)
        finally:
            if hold is not None:
                self.accept_lock.release(hold)
        self.invalidation_times.append(sim.now - opened)
        if self.fanout_listener is not None:
            self.fanout_listener(grouped[0][0], opened, sim.now, total)

    # -- crash override -----------------------------------------------------

    def crash(self, lose_sitelog: bool = False) -> None:
        """Crash the shard; open batch buffers die with the process.

        The buffered pairs' obligations stay open (``_pending_inval`` is
        volatile-but-owed state, as in the parent class); the recovery
        INVALIDATE-by-server broadcast is what discharges them.
        """
        super().crash(lose_sitelog=lose_sitelog)
        self._batch_buffers.clear()
        self._batch_opened.clear()


class ClusterTable:
    """Aggregate invalidation-table view over every shard.

    Implements the slice of the :class:`~repro.server.sitelist.InvalidationTable`
    surface the replay/observability layers read, summing across shards.
    Reads ``shard.table`` dynamically so post-crash table replacement is
    reflected automatically.
    """

    def __init__(self, shards: List[AcceleratorShard]) -> None:
        self._shards = shards

    def purge_expired(self, now: float) -> int:
        """Purge expired leases on every shard; returns total dropped."""
        return sum(s.table.purge_expired(now) for s in self._shards)

    def total_entries(self, now: Optional[float] = None) -> int:
        """Site-list entries across all shards."""
        return sum(s.table.total_entries(now) for s in self._shards)

    def storage_bytes(self) -> int:
        """Site-list memory across all shards, accounting bytes."""
        return sum(s.table.storage_bytes() for s in self._shards)

    def max_list_length(self) -> int:
        """Largest current site list across the cluster."""
        lengths = [s.table.max_list_length() for s in self._shards]
        return max(lengths) if lengths else 0

    def modified_list_lengths(self) -> Tuple[float, int]:
        """(average, max) modified-list length pooled across shards."""
        lengths: List[int] = []
        for shard in self._shards:
            lengths.extend(shard.table._lengths_at_modification)
        if not lengths:
            return (0.0, 0)
        return (sum(lengths) / len(lengths), max(lengths))

    @property
    def evictions(self) -> int:
        """Lease-grace evictions summed across shards."""
        return sum(s.table.evictions for s in self._shards)


class _AggregateResource:
    """Mean ``busy_time`` over shard resources.

    The iostat sampler divides ``busy_time()`` by elapsed time to get a
    utilization in [0, 1]; averaging (not summing) keeps that invariant
    for a fleet of single-CPU/single-disk shard hosts.
    """

    def __init__(self, resources) -> None:
        self._resources = list(resources)

    def busy_time(self) -> float:
        total = sum(r.busy_time() for r in self._resources)
        return total / len(self._resources)


class AcceleratorCluster:
    """The sharded accelerator tier, behind the single ``server`` address.

    Mirrors the :class:`~repro.server.httpd.ServerSite` surface the rest
    of the testbed expects — request receive, modification check-in,
    obligations-ledger queries, crash/recovery, counters — while
    partitioning documents across :class:`AcceleratorShard` instances by
    consistent hashing and routing in-process (the router adds no wire
    messages; replies carry the shard's source address and proxies match
    them by ``reply_to``).
    """

    def __init__(
        self,
        sim: Simulator,
        network: Network,
        address: str,
        filestore: FileStore,
        accel: Optional[AcceleratorConfig] = None,
        costs: ServerCosts = DEFAULT_SERVER_COSTS,
        wire: WireCosts = DEFAULT_WIRE,
        num_shards: int = 2,
        batch_window: float = 0.0,
        batch_max: int = 0,
        vnodes: int = 64,
    ) -> None:
        if num_shards < 1:
            raise ValueError("need at least one shard")
        self.sim = sim
        self.network = network
        self.address = address
        self.filestore = filestore
        self.accel = accel or AcceleratorConfig()
        self.costs = costs
        self.wire = wire
        self.batch_window = batch_window
        self.batch_max = batch_max

        self.shards: List[AcceleratorShard] = [
            AcceleratorShard(
                sim,
                network,
                f"shard-{i}",
                filestore,
                accel=self.accel,
                costs=costs,
                wire=wire,
                batch_window=batch_window,
                batch_max=batch_max,
            )
            for i in range(num_shards)
        ]
        self._by_address = {shard.address: shard for shard in self.shards}
        self.ring = HashRing([s.address for s in self.shards], vnodes=vnodes)
        #: Crashed / draining shard addresses (kept separately so a drain
        #: overlapping a crash resolves correctly); ``_excluded`` is the
        #: materialized union the per-request routing reads.
        self._crashed: Set[str] = set()
        self._drained: Set[str] = set()
        self._excluded: Set[str] = set()

        self.table = ClusterTable(self.shards)
        self.cpu = _AggregateResource([s.cpu for s in self.shards])
        self.disk = _AggregateResource([s.disk for s in self.shards])

        #: Requests routed per shard address (the imbalance panel input).
        self.requests_routed: Dict[str, int] = {
            shard.address: 0 for shard in self.shards
        }
        #: Site-list entries moved between shards (failover + rebalance).
        self.handoffs = 0
        self.shard_crashes = 0
        self.rebalances = 0

        self.up = True
        network.register(address, self._receive)

    # -- routing ------------------------------------------------------------

    def owner_of(self, url: str) -> str:
        """The address of the shard currently serving ``url``."""
        owner = self.ring.owner(url, exclude=self._excluded)
        if owner is None:
            # Whole tier down/drained: fall back to the primary owner
            # (its down state swallows the request, like a dead server).
            owner = self.ring.owner(url)
        return owner

    def _refresh_excluded(self) -> None:
        self._excluded = self._crashed | self._drained
        self.up = not self._crashed

    def _receive(self, message: Message) -> None:
        if not isinstance(message, HttpRequest):
            return
        owner = self.owner_of(message.url)
        # Cluster-wide flush-on-next-contact: any *other* shard owing
        # this proxy abandoned invalidations uses the contact to retry
        # (the owner handles its own debt inside ``_handle_request``).
        for shard in self.shards:
            if shard.address == owner or not shard.up:
                continue
            if (
                message.src in shard._dirty_by_proxy
                or message.src in shard._dirty_server_inval
            ):
                self.sim.process(shard._flush_dirty(message.src))
        self.requests_routed[owner] += 1
        shard = self._by_address[owner]
        message.dst = shard.address
        shard._receive(message)

    # -- modification detection --------------------------------------------

    def check_in(self, url: str) -> None:
        """Route the check-in utility's report to the owning shard."""
        self._by_address[self.owner_of(url)].check_in(url)

    def check_document(self, url: str) -> bool:
        """Route the browser-based mtime check to the owning shard."""
        return self._by_address[self.owner_of(url)].check_document(url)

    # -- obligations ledger (queried by the chaos auditor) ------------------

    def write_pending(self, url: str, client_id: str) -> bool:
        """True while any shard still owes INVALIDATE(url) to the client."""
        return any(s.write_pending(url, client_id) for s in self.shards)

    def recovery_pending(self, proxy: str) -> bool:
        """True while any shard owes a post-crash INVALIDATE-by-server."""
        return any(s.recovery_pending(proxy) for s in self.shards)

    def change_pending_detection(self, url: str) -> bool:
        """True when a change has not yet been seen by any accelerator."""
        return any(s.change_pending_detection(url) for s in self.shards)

    # -- aggregate counters (read by the results/metrics layers) ------------

    @property
    def requests_handled(self) -> int:
        """Requests completed across all shards."""
        return sum(s.requests_handled for s in self.shards)

    @property
    def replies_200(self) -> int:
        """200 replies across all shards."""
        return sum(s.replies_200 for s in self.shards)

    @property
    def replies_304(self) -> int:
        """304 replies across all shards."""
        return sum(s.replies_304 for s in self.shards)

    @property
    def invalidations_sent(self) -> int:
        """INVALIDATE messages delivered, across all shards."""
        return sum(s.invalidations_sent for s in self.shards)

    @property
    def invalidations_abandoned(self) -> int:
        """Abandoned deliveries queued for flush-on-contact, all shards."""
        return sum(s.invalidations_abandoned for s in self.shards)

    @property
    def disk_reads(self) -> int:
        """Disk reads across all shards."""
        return sum(s.disk_reads for s in self.shards)

    @property
    def disk_writes(self) -> int:
        """Disk writes across all shards."""
        return sum(s.disk_writes for s in self.shards)

    @property
    def piggybacked_urls(self) -> int:
        """Piggybacked invalidation URLs across all shards (PSI)."""
        return sum(s.piggybacked_urls for s in self.shards)

    @property
    def batches_sent(self) -> int:
        """Batched INVALIDATE messages delivered, across all shards."""
        return sum(s.batches_sent for s in self.shards)

    @property
    def batched_invalidations(self) -> int:
        """Individual (url, client) pairs delivered in batches."""
        return sum(s.batched_invalidations for s in self.shards)

    @property
    def invalidation_times(self) -> List[float]:
        """Fan-out durations pooled across shards (open -> delivered)."""
        times: List[float] = []
        for shard in self.shards:
            times.extend(shard.invalidation_times)
        return times

    @property
    def fanout_listener(self):
        """The observability fan-out hook (shared by every shard)."""
        return self.shards[0].fanout_listener

    @fanout_listener.setter
    def fanout_listener(self, listener) -> None:
        for shard in self.shards:
            shard.fanout_listener = listener

    @property
    def proxy_roster(self) -> Set[str]:
        """Operator-configured fleet membership (shared by every shard)."""
        return self.shards[0].proxy_roster

    @proxy_roster.setter
    def proxy_roster(self, roster: Set[str]) -> None:
        for shard in self.shards:
            shard.proxy_roster = set(roster)

    @property
    def lease_override(self) -> Optional[float]:
        """Adaptive-lease override (shared by every shard)."""
        return self.shards[0].lease_override

    @lease_override.setter
    def lease_override(self, value: Optional[float]) -> None:
        for shard in self.shards:
            shard.lease_override = value

    # -- site-list handoff --------------------------------------------------

    def _transfer_url(
        self, source: AcceleratorShard, target: AcceleratorShard, url: str
    ) -> None:
        table = source.table
        site_list = table._lists.pop(url, None)
        table._in_rotation.discard(url)
        # Detection state moves with ownership (keep the newest mtime).
        seen = source._seen_mtime.pop(url, None)
        if seen is not None:
            known = target._seen_mtime.get(url)
            target._seen_mtime[url] = seen if known is None else max(known, seen)
        if site_list is None or not len(site_list):
            return
        dest = target.table.site_list(url)
        moved = 0
        for client_id, entry in site_list._entries.items():
            # The target's entry (registered after the handoff began) is
            # newer — keep it; otherwise adopt the moved entry.
            if client_id not in dest._entries:
                dest._entries[client_id] = entry
                moved += 1
        self.handoffs += moved

    def _rebalance(self) -> None:
        """Move every misplaced site list to its current owner."""
        for shard in self.shards:
            if not shard.up:
                continue
            stale = [
                url
                for url in shard.table._lists
                if self.owner_of(url) != shard.address
            ]
            orphan_seen = [
                url
                for url in shard._seen_mtime
                if url not in shard.table._lists
                and self.owner_of(url) != shard.address
            ]
            for url in stale:
                self._transfer_url(
                    shard, self._by_address[self.owner_of(url)], url
                )
            for url in orphan_seen:
                self._transfer_url(
                    shard, self._by_address[self.owner_of(url)], url
                )

    # -- shard failure / rebalance ------------------------------------------

    def crash_shard(self, address: str, lose_sitelog: bool = False) -> None:
        """Crash one shard; its documents fail over along the ring."""
        shard = self._by_address[address]
        if not shard.up:
            return
        shard.crash(lose_sitelog=lose_sitelog)
        self._crashed.add(address)
        self._refresh_excluded()
        self.shard_crashes += 1

    def recover_shard(self, address: str):
        """Recover one shard: broadcast recovery, take ownership back.

        The shard's own :meth:`ServerSite.recover` replays the
        persistent known-sites log as INVALIDATE-by-server messages (the
        paper's Section 4 story); the cluster then hands back the site
        lists that accumulated on failover shards during the outage, so
        subsequent modifications find every registrant.
        """
        shard = self._by_address[address]
        if shard.up:
            return None
        self._crashed.discard(address)
        self._refresh_excluded()
        process = shard.recover()
        self._rebalance()
        return process

    def drain_shard(self, address: str) -> None:
        """Planned rebalance: move a live shard's documents off it."""
        if address in self._drained:
            return
        self._drained.add(address)
        self._refresh_excluded()
        self.rebalances += 1
        if self._by_address[address].up:
            self._rebalance()

    def restore_shard(self, address: str) -> None:
        """End a drain: the shard takes its ring segment back."""
        if address not in self._drained:
            return
        self._drained.discard(address)
        self._refresh_excluded()
        if self._by_address[address].up:
            self._rebalance()

    # -- whole-tier crash / recovery (the ``server_crash`` fault) -----------

    def crash(self, lose_sitelog: bool = False) -> None:
        """Crash every shard (the single-server fault, scaled out)."""
        for shard in self.shards:
            if shard.up:
                shard.crash(lose_sitelog=lose_sitelog)
            self._crashed.add(shard.address)
        self._refresh_excluded()
        self.network.set_down(self.address)

    def recover(self) -> list:
        """Recover every crashed shard; returns their recovery processes."""
        self.network.set_up(self.address)
        processes = []
        recovered = [s for s in self.shards if not s.up]
        for shard in recovered:
            self._crashed.discard(shard.address)
        self._refresh_excluded()
        for shard in recovered:
            processes.append(shard.recover())
        self._rebalance()
        return processes

    def flush_all_batches(self) -> None:
        """Flush every shard's open batch buffers (end-of-run drain)."""
        for shard in self.shards:
            shard.flush_all_batches()
