"""Invalidation table and site lists (Section 4 of the paper).

The accelerator maintains, per URL, the list of remote (real) client sites
that fetched the document since its previous invalidation.  Lease-based
variants (Section 6) attach an expiry to each entry; expired entries are
skipped and purged, which is what bounds site-list growth.

Storage accounting follows the paper's observation that site lists cost
"on the order of 20 to 30 bytes per request": each entry is charged
:data:`ENTRY_BYTES`.
"""

from __future__ import annotations

import math
from collections import deque
from dataclasses import dataclass
from typing import Deque, Dict, Iterable, List, Optional, Tuple

__all__ = ["SiteEntry", "SiteList", "InvalidationTable", "KnownSitesLog", "ENTRY_BYTES"]

#: Accounting size of one site-list entry (paper: 20-30 bytes/request).
ENTRY_BYTES = 28


@dataclass
class SiteEntry:
    """One remembered client site for one document."""

    client_id: str
    proxy: str
    registered_at: float
    lease_expires: float = math.inf
    #: Set when an INVALIDATE for this entry was abandoned (max_retries
    #: exhausted); the server re-invalidates on the proxy's next contact.
    dirty: bool = False

    def live(self, now: float) -> bool:
        """True while the lease has not expired."""
        return now <= self.lease_expires


class SiteList:
    """The client sites remembered for one document."""

    def __init__(self) -> None:
        self._entries: Dict[str, SiteEntry] = {}

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, client_id: str) -> bool:
        return client_id in self._entries

    def register(
        self,
        client_id: str,
        proxy: str,
        now: float,
        lease_expires: float = math.inf,
    ) -> SiteEntry:
        """Add or refresh a site (re-registration refreshes the lease)."""
        entry = SiteEntry(
            client_id=client_id,
            proxy=proxy,
            registered_at=now,
            lease_expires=lease_expires,
        )
        self._entries[client_id] = entry
        return entry

    def remove(self, client_id: str) -> None:
        """Forget a site (after its invalidation was delivered)."""
        self._entries.pop(client_id, None)

    def mark_dirty(self, client_id: str) -> None:
        """Flag a site whose invalidation was abandoned (no-op if absent)."""
        entry = self._entries.get(client_id)
        if entry is not None:
            entry.dirty = True

    def live_entries(self, now: float) -> List[SiteEntry]:
        """Entries whose lease is still valid, registration order."""
        return [e for e in self._entries.values() if e.live(now)]

    def purge_expired(self, now: float) -> int:
        """Drop expired entries; returns how many were dropped."""
        dead = [cid for cid, e in self._entries.items() if not e.live(now)]
        for cid in dead:
            del self._entries[cid]
        return len(dead)

    def storage_bytes(self) -> int:
        """Accounting size of this list."""
        return len(self._entries) * ENTRY_BYTES


class InvalidationTable:
    """URL -> :class:`SiteList`, plus the statistics Table 5 reports."""

    def __init__(self) -> None:
        self._lists: Dict[str, SiteList] = {}
        #: URLs that have been modified at least once (Table 5's site-list
        #: length statistics are "taken among the site lists of files that
        #: have been modified").
        self.modified_urls: set = set()
        #: Historical max length of each modified URL's site list at the
        #: moment of its modifications.
        self._lengths_at_modification: List[int] = []
        #: Expired entries dropped over this table's lifetime (the
        #: lease-grace eviction counter the results layer surfaces).
        self.evictions = 0
        #: Round-robin rotation of known URLs for the amortized
        #: :meth:`evict_round` sweep (sites that never reconnect never
        #: touch their own list, so somebody else has to).
        self._rotation: Deque[str] = deque()
        self._in_rotation: set = set()

    def site_list(self, url: str) -> SiteList:
        """The (possibly empty, auto-created) site list for ``url``."""
        lst = self._lists.get(url)
        if lst is None:
            lst = SiteList()
            self._lists[url] = lst
            if url not in self._in_rotation:
                self._in_rotation.add(url)
                self._rotation.append(url)
        return lst

    def register(
        self,
        url: str,
        client_id: str,
        proxy: str,
        now: float,
        lease_expires: float = math.inf,
    ) -> None:
        """Remember that ``client_id`` (via ``proxy``) fetched ``url``."""
        self.site_list(url).register(client_id, proxy, now, lease_expires)

    def note_modification(self, url: str, now: float) -> List[SiteEntry]:
        """Record a modification; returns the live sites to invalidate."""
        self.modified_urls.add(url)
        lst = self.site_list(url)
        live = lst.live_entries(now)
        self._lengths_at_modification.append(len(live))
        return live

    def clear_after_invalidation(self, url: str, client_ids: Iterable[str]) -> None:
        """Forget sites whose invalidations were delivered."""
        lst = self.site_list(url)
        for cid in client_ids:
            lst.remove(cid)

    def purge_expired(self, now: float) -> int:
        """Purge expired leases everywhere; returns total dropped."""
        return sum(lst.purge_expired(now) for lst in self._lists.values())

    def purge_url(self, url: str, cutoff: float) -> int:
        """Lease-grace eviction for one URL's list; returns entries dropped.

        Unlike the raw ``SiteList.purge_expired``, this counts the drops
        in :attr:`evictions` and reclaims the list object itself once it
        is empty (``site_list`` re-creates on demand), so a document whose
        clients all went away stops costing table space.
        """
        lst = self._lists.get(url)
        if lst is None:
            return 0
        dropped = lst.purge_expired(cutoff)
        self.evictions += dropped
        if not len(lst):
            del self._lists[url]
            self._in_rotation.discard(url)
        return dropped

    def evict_round(self, cutoff: float, budget: int = 8) -> int:
        """Amortized lease-grace sweep: purge up to ``budget`` URL lists.

        The bugfix for unbounded site-list growth: a site that never
        reconnects never touches its own list, so lazy purge-on-touch
        alone lets its expired entries live forever.  Each call visits the
        next ``budget`` URLs in a round-robin rotation and evicts entries
        whose lease expired before ``cutoff`` (``now - lease_grace``).
        Pure memory work — no simulated time is consumed — so calling it
        from the request path cannot perturb event timing.
        """
        dropped = 0
        for _ in range(min(budget, len(self._rotation))):
            url = self._rotation.popleft()
            lst = self._lists.get(url)
            if lst is None:
                # Stale rotation entry (list already reclaimed elsewhere).
                self._in_rotation.discard(url)
                continue
            count = lst.purge_expired(cutoff)
            self.evictions += count
            dropped += count
            if len(lst):
                self._rotation.append(url)
            else:
                del self._lists[url]
                self._in_rotation.discard(url)
        return dropped

    # -- Table 5 statistics ---------------------------------------------------

    def total_entries(self, now: Optional[float] = None) -> int:
        """Entries across all site lists (live only when ``now`` given)."""
        if now is None:
            return sum(len(lst) for lst in self._lists.values())
        return sum(len(lst.live_entries(now)) for lst in self._lists.values())

    def storage_bytes(self) -> int:
        """Total site-list memory, in accounting bytes."""
        return sum(lst.storage_bytes() for lst in self._lists.values())

    def modified_list_lengths(self) -> Tuple[float, int]:
        """(average, max) site-list length among modified documents.

        Lengths are sampled at modification time, matching the paper's
        per-invalidation costs.
        """
        lengths = self._lengths_at_modification
        if not lengths:
            return (0.0, 0)
        return (sum(lengths) / len(lengths), max(lengths))

    def max_list_length(self) -> int:
        """Largest current site list across all documents."""
        if not self._lists:
            return 0
        return max(len(lst) for lst in self._lists.values())


class KnownSitesLog:
    """Persistent log of every client site the server has ever seen.

    Used for server-site crash recovery (Section 4): on recovery the
    accelerator sends an INVALIDATE carrying the server's address to every
    site in this log.  Only the *first* sight of a site costs a disk
    write; the log survives crashes.
    """

    def __init__(self) -> None:
        self._sites: Dict[str, str] = {}
        self.disk_writes = 0

    def __len__(self) -> int:
        return len(self._sites)

    def __contains__(self, client_id: str) -> bool:
        return client_id in self._sites

    def record(self, client_id: str, proxy: str) -> bool:
        """Record a site; returns True (a disk write) when first seen."""
        if client_id in self._sites:
            return False
        self._sites[client_id] = proxy
        self.disk_writes += 1
        return True

    def all_sites(self) -> List[Tuple[str, str]]:
        """(client_id, proxy) for every site ever seen."""
        return list(self._sites.items())
