"""Common Log Format reader and writer.

The paper's traces come from the Internet Traffic Archive in NCSA Common
Log Format::

    host - - [01/Jul/1995:00:00:01 -0400] "GET /path HTTP/1.0" 200 6245

We cannot download the archive offline, but users who have the original
files can replay them directly: :func:`read_clf` turns a CLF stream into a
:class:`~repro.traces.record.Trace`, applying the paper's preprocessing
(only successful GETs; document sizes taken from the largest observed
response for the URL).  :func:`write_clf` round-trips synthetic traces into
the same format for interoperability with other tools.
"""

from __future__ import annotations

import re
from datetime import datetime, timedelta, timezone
from typing import Dict, Iterable, List, Optional, TextIO, Tuple, Union

from .record import Trace, TraceRecord

__all__ = ["read_clf", "write_clf", "parse_clf_line", "format_clf_line", "ClfEntry"]

_CLF_RE = re.compile(
    r'^(?P<host>\S+) \S+ \S+ \[(?P<time>[^\]]+)\] '
    # Trailing fields (combined-format referrer/user-agent) are ignored.
    r'"(?P<request>[^"]*)" (?P<status>\d{3}) (?P<size>\d+|-)(?:\s.*)?$'
)

_MONTHS = {
    "Jan": 1, "Feb": 2, "Mar": 3, "Apr": 4, "May": 5, "Jun": 6,
    "Jul": 7, "Aug": 8, "Sep": 9, "Oct": 10, "Nov": 11, "Dec": 12,
}


class ClfEntry:
    """One parsed CLF line."""

    __slots__ = ("host", "timestamp", "method", "url", "status", "size")

    def __init__(
        self,
        host: str,
        timestamp: float,
        method: str,
        url: str,
        status: int,
        size: Optional[int],
    ) -> None:
        self.host = host
        self.timestamp = timestamp
        self.method = method
        self.url = url
        self.status = status
        self.size = size


#: Numeric timezone offsets: sign, two-digit hours, two-digit minutes.
_OFFSET_RE = re.compile(r"^(?P<sign>[+-])(?P<hours>\d{2})(?P<minutes>\d{2})$")

#: Offset spellings some archive logs use instead of a numeric offset.
_UTC_NAMES = frozenset({"GMT", "UTC", "UT", "Z"})


def _parse_clf_offset(offset: str) -> timedelta:
    """Parse a CLF timezone offset (``-0400``, ``+0530``, ``GMT``)."""
    if offset.upper() in _UTC_NAMES:
        return timedelta(0)
    match = _OFFSET_RE.match(offset)
    if match is None:
        raise ValueError(f"bad timezone offset {offset!r}")
    sign = -1 if match.group("sign") == "-" else 1
    minutes = int(match.group("minutes"))
    if minutes >= 60:
        raise ValueError(f"bad timezone offset {offset!r}")
    return sign * timedelta(hours=int(match.group("hours")), minutes=minutes)


def _parse_clf_time(text: str) -> float:
    """Parse ``01/Jul/1995:00:00:01 -0400`` to a POSIX timestamp.

    Raises ``ValueError`` on anything it cannot interpret; month names
    are matched case-insensitively (real archive logs contain ``JUL``
    and ``jul`` spellings) and full month names are accepted by their
    first three letters.
    """
    try:
        stamp, offset = text.rsplit(" ", 1)
        day, month, rest = stamp.split("/", 2)
        year, hour, minute, second = rest.split(":")
        month_num = _MONTHS.get(month[:3].capitalize())
        if month_num is None:
            raise ValueError(f"unknown month {month!r}")
        dt = datetime(
            int(year),
            month_num,
            int(day),
            int(hour),
            int(minute),
            int(second),
            tzinfo=timezone(_parse_clf_offset(offset)),
        )
    except ValueError as exc:
        raise ValueError(f"bad CLF timestamp {text!r}") from exc
    return dt.timestamp()


def _parse_clf_request(request: str) -> Optional[Tuple[str, str]]:
    """Split the quoted request field into (method, url).

    Tolerates real-log oddities: a missing HTTP-version token
    (HTTP/0.9-style ``GET /path``) and unencoded spaces inside the URL
    (everything between the method and a trailing ``HTTP/x`` token is
    the URL).  Returns ``None`` when no method + URL can be extracted.
    """
    tokens = request.split()
    if len(tokens) < 2:
        return None
    method, rest = tokens[0], tokens[1:]
    if len(rest) > 1 and rest[-1].upper().startswith("HTTP/"):
        rest = rest[:-1]
    return method.upper(), " ".join(rest)


def parse_clf_line(line: str) -> Optional[ClfEntry]:
    """Parse one CLF line; returns ``None`` for malformed lines.

    Malformed means *anything* this function cannot interpret — bad
    timestamps and timezone offsets included.  A multi-million-line
    Internet Traffic Archive log always contains a few mangled lines;
    they must be skippable, never fatal.
    """
    match = _CLF_RE.match(line)
    if match is None:
        return None
    parsed = _parse_clf_request(match.group("request"))
    if parsed is None:
        return None
    method, url = parsed
    try:
        timestamp = _parse_clf_time(match.group("time"))
    except ValueError:
        return None
    size_text = match.group("size")
    return ClfEntry(
        host=match.group("host"),
        timestamp=timestamp,
        method=method,
        url=url,
        status=int(match.group("status")),
        size=None if size_text == "-" else int(size_text),
    )


def read_clf(
    lines: Union[TextIO, Iterable[str]],
    name: str = "clf",
    default_size: int = 1024,
) -> Trace:
    """Build a replayable trace from CLF lines.

    Preprocessing mirrors the paper: keep successful (2xx/304) GET
    requests, rebase timestamps to zero, and size each document as the
    largest body observed for its URL (``default_size`` when the log never
    reports one).
    """
    records: List[TraceRecord] = []
    documents: Dict[str, int] = {}
    base: Optional[float] = None
    last = 0.0
    for line in lines:
        entry = parse_clf_line(line)
        if entry is None or entry.method != "GET":
            continue
        if not (200 <= entry.status < 300 or entry.status == 304):
            continue
        if base is None:
            base = entry.timestamp
        at = max(0.0, entry.timestamp - base)
        last = max(last, at)
        records.append(TraceRecord(timestamp=at, client=entry.host, url=entry.url))
        size = entry.size or 0
        documents[entry.url] = max(documents.get(entry.url, 0), size)
    records.sort()
    return Trace(
        name=name,
        records=records,
        documents={url: size or default_size for url, size in documents.items()},
        duration=last + 1.0,
    )


def format_clf_line(record: TraceRecord, size: int, base_epoch: float = 804556800.0) -> str:
    """Render a record as a CLF line (UTC, status 200)."""
    dt = datetime.fromtimestamp(base_epoch + record.timestamp, tz=timezone.utc)
    month = [k for k, v in _MONTHS.items() if v == dt.month][0]
    stamp = (
        f"{dt.day:02d}/{month}/{dt.year}:{dt.hour:02d}:{dt.minute:02d}:{dt.second:02d}"
        " +0000"
    )
    return f'{record.client} - - [{stamp}] "GET {record.url} HTTP/1.0" 200 {size}'


def write_clf(trace: Trace, out: TextIO) -> int:
    """Write a trace in CLF; returns the number of lines written."""
    count = 0
    for record in trace.records:
        out.write(format_clf_line(record, trace.documents[record.url]) + "\n")
        count += 1
    return count
