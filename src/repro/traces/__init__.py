"""Trace substrate: records, CLF I/O, synthetic generation, summaries."""

from .catalog import DAY, HOUR, PROFILES, TraceProfile, profile
from .clf import ClfEntry, format_clf_line, parse_clf_line, read_clf, write_clf
from .record import Trace, TraceRecord
from .stats import (
    IntervalStats,
    client_activity,
    fit_zipf_alpha,
    interarrival_stats,
    popularity_curve,
    request_interval_stats,
)
from .summary import TraceSummary, summarize
from .synthetic import client_id, document_url, generate_trace
from .zipf import ZipfSampler

__all__ = [
    "Trace",
    "TraceRecord",
    "TraceProfile",
    "PROFILES",
    "profile",
    "DAY",
    "HOUR",
    "generate_trace",
    "document_url",
    "client_id",
    "summarize",
    "TraceSummary",
    "ZipfSampler",
    "popularity_curve",
    "fit_zipf_alpha",
    "interarrival_stats",
    "client_activity",
    "request_interval_stats",
    "IntervalStats",
    "read_clf",
    "write_clf",
    "parse_clf_line",
    "format_clf_line",
    "ClfEntry",
]
