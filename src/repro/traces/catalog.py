"""Profiles of the five paper traces (Table 2) and their derivations.

The paper uses five Internet Traffic Archive server traces.  Offline, we
regenerate statistically equivalent synthetic traces from these profiles.
Table 2's "Number of Files" row is unreadable in the available paper text,
so file counts are recovered from the modification counts reported in the
Table 3/4 experiment headers: the modifier touches one uniform-random file
every ``N`` seconds, giving mean lifetime ``L = F*N`` and ``mods = T/N =
T*F/L``, hence ``F = mods*L/T`` (see DESIGN.md §3).

``doc_alpha``, ``client_alpha`` and ``num_clients`` are calibrated so the
generated traces match the paper's file-popularity column (max and mean
number of distinct client sites per document); the calibration is checked
by ``benchmarks/test_table2_trace_summaries.py``.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, Tuple

__all__ = ["TraceProfile", "PROFILES", "profile", "DAY", "HOUR"]

HOUR = 3600.0
DAY = 24 * HOUR


@dataclass(frozen=True)
class TraceProfile:
    """Workload statistics for one paper trace.

    Attributes:
        name: trace identifier, as in the paper.
        duration: trace length in seconds.
        total_requests: number of requests to generate.
        num_files: server document count (derived; see module docstring).
        mean_file_size: mean document size in bytes.
        popularity_max: paper's max distinct client sites on one document.
        popularity_mean: paper's mean distinct client sites per document.
        num_clients: calibrated client-site population.
        doc_alpha: Zipf exponent for document popularity (calibrated).
        client_alpha: Zipf exponent for client activity (calibrated).
        revisit_prob: probability a request re-reads a document the same
            client already fetched (temporal locality; calibrated so the
            popularity mean matches the paper).
        diurnal_amplitude: day/night request-rate modulation in [0, 1).
    """

    name: str
    duration: float
    total_requests: int
    num_files: int
    mean_file_size: int
    popularity_max: int
    popularity_mean: float
    num_clients: int
    doc_alpha: float
    client_alpha: float
    revisit_prob: float = 0.0
    diurnal_amplitude: float = 0.5

    def scaled(self, fraction: float) -> "TraceProfile":
        """Shrink the workload for fast tests/benchmarks.

        Requests, files and clients shrink together so per-document request
        and modification intensities are preserved (the quantities the
        protocol comparison is sensitive to); duration is kept so request
        *rate* drops, matching how a smaller server would look.
        """
        if not 0 < fraction <= 1:
            raise ValueError("fraction must be in (0, 1]")
        if fraction == 1.0:
            return self
        return replace(
            self,
            name=f"{self.name}[{fraction:g}]",
            total_requests=max(100, round(self.total_requests * fraction)),
            num_files=max(20, round(self.num_files * fraction)),
            num_clients=max(10, round(self.num_clients * fraction)),
            popularity_max=max(2, round(self.popularity_max * fraction)),
            popularity_mean=max(1.0, self.popularity_mean),
        )


def _profiles() -> Dict[str, TraceProfile]:
    entries: Tuple[TraceProfile, ...] = (
        # EPA WWW server, Research Triangle Park NC; 1 day.
        TraceProfile(
            name="EPA",
            duration=1 * DAY,
            total_requests=40658,
            num_files=3600,
            mean_file_size=21 * 1024,
            popularity_max=1642,
            popularity_mean=8.2,
            num_clients=2700,
            doc_alpha=1.00,
            client_alpha=0.60,
            revisit_prob=0.30,
        ),
        # San Diego Supercomputer Center; 1 day.
        TraceProfile(
            name="SDSC",
            duration=1 * DAY,
            total_requests=25430,
            num_files=1430,
            mean_file_size=14 * 1024,
            popularity_max=1020,
            popularity_mean=12.0,
            num_clients=1500,
            doc_alpha=0.95,
            client_alpha=0.60,
            revisit_prob=0.24,
        ),
        # ClarkNet commercial ISP, Baltimore-Washington DC; 10 hours.
        TraceProfile(
            name="ClarkNet",
            duration=10 * HOUR,
            total_requests=61703,
            num_files=4800,
            mean_file_size=13 * 1024,
            popularity_max=680,
            popularity_mean=8.0,
            num_clients=4500,
            doc_alpha=0.68,
            client_alpha=0.60,
            revisit_prob=0.42,
        ),
        # NASA Kennedy Space Center; 1 day.
        TraceProfile(
            name="NASA",
            duration=1 * DAY,
            total_requests=61823,
            num_files=1008,
            mean_file_size=44 * 1024,
            popularity_max=3138,
            popularity_mean=31.0,
            num_clients=5400,
            doc_alpha=1.05,
            client_alpha=0.60,
            revisit_prob=0.42,
        ),
        # University of Saskatchewan; 8 days.
        TraceProfile(
            name="SASK",
            duration=8 * DAY,
            total_requests=51471,
            num_files=2009,
            mean_file_size=12 * 1024,
            popularity_max=1155,
            popularity_mean=14.0,
            num_clients=1700,
            doc_alpha=0.90,
            client_alpha=0.60,
            revisit_prob=0.40,
        ),
    )
    return {p.name: p for p in entries}


#: The five paper traces, keyed by name.
PROFILES: Dict[str, TraceProfile] = _profiles()


def profile(name: str) -> TraceProfile:
    """Look up a profile by (case-insensitive) name."""
    for candidate in PROFILES.values():
        if candidate.name.lower() == name.lower():
            return candidate
    raise KeyError(f"unknown trace profile {name!r}; have {sorted(PROFILES)}")
