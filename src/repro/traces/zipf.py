"""Zipf-like discrete sampling.

Web document popularity and client activity are famously Zipf-distributed;
the synthetic trace generators use :class:`ZipfSampler` for both.  The
implementation precomputes the CDF once and samples by bisection, so
drawing a 60k-request trace is fast.
"""

from __future__ import annotations

import bisect
import random
from typing import List, Sequence

__all__ = ["ZipfSampler"]


class ZipfSampler:
    """Samples ranks ``0..n-1`` with P(rank k) proportional to 1/(k+1)^alpha."""

    def __init__(self, n: int, alpha: float, rng: random.Random) -> None:
        if n < 1:
            raise ValueError("n must be >= 1")
        if alpha < 0:
            raise ValueError("alpha must be non-negative")
        self.n = n
        self.alpha = alpha
        self.rng = rng
        weights = [1.0 / (k + 1) ** alpha for k in range(n)]
        total = sum(weights)
        cdf: List[float] = []
        acc = 0.0
        for w in weights:
            acc += w
            cdf.append(acc / total)
        self._cdf = cdf

    def sample(self) -> int:
        """Draw one rank."""
        return bisect.bisect_left(self._cdf, self.rng.random())

    def sample_many(self, count: int) -> List[int]:
        """Draw ``count`` ranks."""
        cdf, rand = self._cdf, self.rng.random
        return [bisect.bisect_left(cdf, rand()) for _ in range(count)]

    def probability(self, rank: int) -> float:
        """P(rank); rank 0 is the most popular item."""
        if not 0 <= rank < self.n:
            raise IndexError(f"rank {rank} out of range")
        prev = self._cdf[rank - 1] if rank > 0 else 0.0
        return self._cdf[rank] - prev

    def expected_counts(self, total: int) -> Sequence[float]:
        """Expected draws per rank when sampling ``total`` times."""
        out = []
        prev = 0.0
        for c in self._cdf:
            out.append((c - prev) * total)
            prev = c
        return out
