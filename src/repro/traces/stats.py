"""Deeper trace analytics (beyond the Table 2 summary).

Tools for understanding a workload before replaying it, and for
calibrating synthetic generators against real logs:

* :func:`popularity_curve` and :func:`fit_zipf_alpha` — the document
  popularity distribution and its Zipf exponent (log-log least squares).
* :func:`interarrival_stats` — request spacing.
* :func:`client_activity` — per-client request counts.
* :func:`request_interval_stats` — aggregate R / RI structure over all
  (client, document) pairs given a modification schedule: exactly the
  quantities the Section 3 analysis is parameterised by.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from ..workload.modifier import Modification
from ..workload.streams import count_r_ri
from .record import Trace

__all__ = [
    "popularity_curve",
    "fit_zipf_alpha",
    "interarrival_stats",
    "client_activity",
    "request_interval_stats",
    "IntervalStats",
]


def popularity_curve(trace: Trace) -> List[int]:
    """Request counts per document, most popular first."""
    counts: Dict[str, int] = {}
    for record in trace.records:
        counts[record.url] = counts.get(record.url, 0) + 1
    return sorted(counts.values(), reverse=True)


def fit_zipf_alpha(curve: Sequence[int], max_rank: int = 1000) -> float:
    """Least-squares Zipf exponent from a popularity curve.

    Fits ``log(count) = c - alpha * log(rank)`` over the head of the
    curve (rank 1..max_rank); returns 0.0 for degenerate curves.
    """
    points = [
        (math.log(rank + 1.0), math.log(count))
        for rank, count in enumerate(curve[:max_rank])
        if count > 0
    ]
    if len(points) < 2:
        return 0.0
    n = len(points)
    sum_x = sum(x for x, _ in points)
    sum_y = sum(y for _, y in points)
    sum_xx = sum(x * x for x, _ in points)
    sum_xy = sum(x * y for x, y in points)
    denom = n * sum_xx - sum_x * sum_x
    if denom == 0:
        return 0.0
    slope = (n * sum_xy - sum_x * sum_y) / denom
    return -slope


def interarrival_stats(trace: Trace) -> Tuple[float, float]:
    """(mean, max) spacing between consecutive requests, in seconds."""
    times = [r.timestamp for r in trace.records]
    if len(times) < 2:
        return (0.0, 0.0)
    gaps = [b - a for a, b in zip(times, times[1:])]
    return (sum(gaps) / len(gaps), max(gaps))


def client_activity(trace: Trace) -> List[int]:
    """Requests per client, most active first."""
    counts: Dict[str, int] = {}
    for record in trace.records:
        counts[record.client] = counts.get(record.client, 0) + 1
    return sorted(counts.values(), reverse=True)


@dataclass(frozen=True)
class IntervalStats:
    """Aggregate R/RI structure of a trace (Section 3 quantities)."""

    pairs: int
    total_reads: int
    total_intervals: int
    repeat_reads: int

    @property
    def repeat_fraction(self) -> float:
        """Fraction of reads that repeat within an interval (R-RI)/R —
        the reads weak consistency could possibly save transfers on."""
        return self.repeat_reads / self.total_reads if self.total_reads else 0.0

    @property
    def mean_interval_length(self) -> float:
        """Average reads per request interval."""
        return (
            self.total_reads / self.total_intervals
            if self.total_intervals
            else 0.0
        )


def request_interval_stats(
    trace: Trace, modifications: Sequence[Modification]
) -> IntervalStats:
    """Compute aggregate R and RI over all (client, document) pairs.

    This is the workload-side input to the Table 1 analysis: the minimum
    possible network cost is ``total_intervals`` control messages plus
    ``total_intervals`` file transfers.
    """
    from ..core.prediction import pair_streams  # local: avoids a cycle

    streams = pair_streams(trace, modifications)
    total_reads = 0
    total_intervals = 0
    for events in streams.values():
        counts = count_r_ri([op for _, op in events])
        total_reads += counts.reads
        total_intervals += counts.intervals
    return IntervalStats(
        pairs=len(streams),
        total_reads=total_reads,
        total_intervals=total_intervals,
        repeat_reads=total_reads - total_intervals,
    )
