"""Synthetic trace generation calibrated to the paper's workloads.

The generator draws, per request, a client site (Zipf activity), a
document (Zipf popularity) and a timestamp (Poisson process with diurnal
modulation), which reproduces the workload statistics the consistency
protocols are sensitive to: per-document request interleaving, popularity
skew (Table 2's max/mean distinct clients per document), and per-client
revisit behaviour (which drives proxy cache hits).

Document sizes are lognormal around the profile's mean size, matching the
heavy-tailed size distributions of the original server logs.
"""

from __future__ import annotations

import bisect
import math
import random
from typing import Dict, List

from ..sim import RngRegistry
from .catalog import TraceProfile
from .record import Trace, TraceRecord
from .zipf import ZipfSampler

__all__ = ["generate_trace", "document_url", "client_id"]

#: Lognormal shape parameter for document sizes.
_SIZE_SIGMA = 1.4
#: Smallest generated document.
_MIN_DOC_BYTES = 128


def document_url(index: int) -> str:
    """Canonical URL for the index-th document."""
    return f"/doc/{index:05d}.html"


def client_id(index: int) -> str:
    """Canonical id for the index-th client site."""
    return f"client-{index:05d}"


def _document_sizes(profile: TraceProfile, rng: random.Random) -> List[int]:
    """Lognormal sizes whose sample mean is pinned to the profile mean."""
    mu = math.log(profile.mean_file_size) - _SIZE_SIGMA**2 / 2.0
    sizes = [
        max(_MIN_DOC_BYTES, int(rng.lognormvariate(mu, _SIZE_SIGMA)))
        for _ in range(profile.num_files)
    ]
    # Rescale so the realised mean matches the profile exactly; the paper's
    # byte totals depend on it.
    scale = profile.mean_file_size * profile.num_files / sum(sizes)
    return [max(_MIN_DOC_BYTES, int(s * scale)) for s in sizes]


def _diurnal_cdf(profile: TraceProfile, bins: int = 288) -> List[float]:
    """CDF of request arrival time over the trace duration.

    Rate follows ``1 + a*sin(...)`` with a 24-hour period (floored at a
    small positive value), giving the day/night swing visible in the
    original logs.
    """
    amplitude = min(max(profile.diurnal_amplitude, 0.0), 0.95)
    step = profile.duration / bins
    weights = []
    for i in range(bins):
        t = (i + 0.5) * step
        rate = 1.0 + amplitude * math.sin(2.0 * math.pi * t / 86400.0 - math.pi / 2)
        weights.append(max(rate, 0.05))
    total = sum(weights)
    cdf, acc = [], 0.0
    for w in weights:
        acc += w
        cdf.append(acc / total)
    return cdf


def _sample_times(
    profile: TraceProfile, rng: random.Random, count: int
) -> List[float]:
    cdf = _diurnal_cdf(profile)
    bins = len(cdf)
    step = profile.duration / bins
    times = []
    for _ in range(count):
        u = rng.random()
        idx = bisect.bisect_left(cdf, u)
        lo = cdf[idx - 1] if idx > 0 else 0.0
        hi = cdf[idx]
        frac = (u - lo) / (hi - lo) if hi > lo else rng.random()
        times.append((idx + frac) * step)
    times.sort()
    return times


def generate_trace(profile: TraceProfile, rng: RngRegistry) -> Trace:
    """Generate a synthetic trace for ``profile``.

    Deterministic for a given registry seed: document sizes, the
    popularity permutation, timestamps and the request sequence each draw
    from their own named stream.
    """
    size_rng = rng.stream(f"trace:{profile.name}:sizes")
    time_rng = rng.stream(f"trace:{profile.name}:times")
    pick_rng = rng.stream(f"trace:{profile.name}:picks")

    sizes = _document_sizes(profile, size_rng)
    documents: Dict[str, int] = {
        document_url(i): size for i, size in enumerate(sizes)
    }

    # Popularity rank is independent of document index (so document size
    # and popularity are uncorrelated, as in real logs to first order).
    doc_by_rank = list(range(profile.num_files))
    pick_rng.shuffle(doc_by_rank)
    doc_sampler = ZipfSampler(profile.num_files, profile.doc_alpha, pick_rng)
    client_sampler = ZipfSampler(profile.num_clients, profile.client_alpha, pick_rng)

    times = _sample_times(profile, time_rng, profile.total_requests)
    history: Dict[int, List[str]] = {}
    records = []
    for t in times:
        client = client_sampler.sample()
        seen = history.setdefault(client, [])
        if seen and pick_rng.random() < profile.revisit_prob:
            # Temporal locality: the client re-reads something it already
            # fetched (weighted towards its frequent documents because the
            # history list keeps duplicates).
            url = seen[pick_rng.randrange(len(seen))]
        else:
            url = document_url(doc_by_rank[doc_sampler.sample()])
        seen.append(url)
        records.append(
            TraceRecord(timestamp=t, client=client_id(client), url=url)
        )
    return Trace(
        name=profile.name,
        records=records,
        documents=documents,
        duration=profile.duration,
    )
