"""Trace records and whole traces.

A trace is what the replay harness consumes: a time-ordered sequence of
(timestamp, client, url) requests plus the document catalog (URL -> size)
needed to populate the pseudo-server's file store.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, List, Sequence

__all__ = ["TraceRecord", "Trace"]


@dataclass(frozen=True, order=True)
class TraceRecord:
    """One HTTP request in a trace.

    Ordering is by timestamp (then client/url) so sorted traces replay in
    time order deterministically.
    """

    timestamp: float
    client: str
    url: str

    def __post_init__(self) -> None:
        if self.timestamp < 0:
            raise ValueError(f"negative timestamp {self.timestamp!r}")
        if not self.client or not self.url:
            raise ValueError("client and url must be non-empty")


@dataclass
class Trace:
    """A named request trace plus its document catalog.

    Attributes:
        name: trace identifier (e.g. ``"EPA"``).
        records: time-ordered requests.
        documents: URL -> document size in bytes.
        duration: nominal trace duration in seconds (may exceed the last
            record's timestamp).
    """

    name: str
    records: List[TraceRecord]
    documents: Dict[str, int]
    duration: float

    def __post_init__(self) -> None:
        if self.duration <= 0:
            raise ValueError("duration must be positive")
        for i in range(1, len(self.records)):
            if self.records[i].timestamp < self.records[i - 1].timestamp:
                raise ValueError("records must be time-ordered")
        missing = {r.url for r in self.records} - set(self.documents)
        if missing:
            raise ValueError(f"records reference unknown documents: {sorted(missing)[:3]}")

    def __len__(self) -> int:
        return len(self.records)

    def __iter__(self) -> Iterator[TraceRecord]:
        return iter(self.records)

    @property
    def clients(self) -> Sequence[str]:
        """Distinct client ids, in first-seen order."""
        seen: Dict[str, None] = {}
        for record in self.records:
            seen.setdefault(record.client, None)
        return list(seen)

    @property
    def urls(self) -> Sequence[str]:
        """All catalog URLs (including never-requested ones)."""
        return list(self.documents)

    def slice(self, max_requests: int) -> "Trace":
        """Prefix of the trace with at most ``max_requests`` records.

        Duration shrinks proportionally to the kept request fraction so
        modification counts stay consistent when traces are scaled down.
        """
        if max_requests >= len(self.records):
            return self
        kept = self.records[:max_requests]
        fraction = max_requests / len(self.records)
        return Trace(
            name=self.name,
            records=kept,
            documents=dict(self.documents),
            duration=max(self.duration * fraction, kept[-1].timestamp + 1.0),
        )
