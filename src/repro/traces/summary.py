"""Trace summary statistics (the paper's Table 2)."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Set

from .record import Trace

__all__ = ["TraceSummary", "summarize"]


@dataclass(frozen=True)
class TraceSummary:
    """One row of Table 2.

    ``popularity_max`` / ``popularity_mean`` are the maximum and mean
    number of *distinct client sites* that requested the same document
    (mean over requested documents only, as in the paper).
    """

    name: str
    duration: float
    total_requests: int
    num_files: int
    avg_file_size: float
    popularity_max: int
    popularity_mean: float
    num_clients: int

    def row(self) -> str:
        """Format as a paper-style summary line."""
        days = self.duration / 86400.0
        return (
            f"{self.name:10s} {days:6.2f}d  req={self.total_requests:7d}  "
            f"files={self.num_files:5d}  avg={self.avg_file_size / 1024:6.1f}KB  "
            f"popularity={self.popularity_max:5d} ({self.popularity_mean:.1f})  "
            f"clients={self.num_clients:5d}"
        )


def summarize(trace: Trace) -> TraceSummary:
    """Compute the Table 2 row for a trace."""
    distinct: Dict[str, Set[str]] = {}
    clients: Set[str] = set()
    for record in trace.records:
        distinct.setdefault(record.url, set()).add(record.client)
        clients.add(record.client)
    counts = [len(s) for s in distinct.values()]
    total_size = sum(trace.documents.values())
    return TraceSummary(
        name=trace.name,
        duration=trace.duration,
        total_requests=len(trace.records),
        num_files=len(trace.documents),
        avg_file_size=total_size / len(trace.documents) if trace.documents else 0.0,
        popularity_max=max(counts) if counts else 0,
        popularity_mean=sum(counts) / len(counts) if counts else 0.0,
        num_clients=len(clients),
    )
