"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``replay``    — run one trace x protocol experiment and print the
  Table 3/4-style block (plus Table 5 costs for invalidation runs).
* ``compare``   — run all three paper protocols on one trace.
* ``sweep``     — run a protocol x lifetime grid on one trace, optionally
  in parallel (``--parallel N``) with checkpointed resume (``--resume``).
* ``table``     — reproduce Table 3 or Table 4 (all traces, all three
  protocols); the same ``--parallel``/``--resume`` flags apply.
* ``chaos``     — run a randomized fault-injection campaign with the
  strong-consistency auditor attached; violating schedules are shrunk
  to minimal reproducers.  Exits 1 if a strong protocol is caught
  serving stale bytes it should not have.
* ``report``    — run (or load from checkpoints) the full five-trace x
  three-protocol matrix and write ``RESULTS.md``: every paper table
  side-by-side with the reproduction, percentage deltas, the Section 5.2
  claims checklist, and a run manifest (git SHA, seed, digests).
* ``trace``     — record a structured span timeline (JSONL) for one
  experiment, or view/filter a previously recorded timeline.
* ``summarize`` — print the Table 2 row for a synthetic or CLF trace.
* ``generate``  — write a calibrated synthetic trace as a CLF log.
* ``analyze``   — evaluate the Table 1 model on an r/m stream.

Examples::

    python -m repro compare --trace EPA --lifetime-days 50 --scale 0.1
    python -m repro replay --trace SASK --protocol two-tier --scale 0.1
    python -m repro sweep --trace SDSC --protocols polling,invalidation \\
        --lifetimes 2,25 --parallel 4 --checkpoint-dir out/ckpt --resume
    python -m repro table --table 3 --scale 0.1 --parallel 4
    python -m repro report --scale 0.1 --parallel 4 --out RESULTS.md
    python -m repro report --from-checkpoints out/ckpt --out RESULTS.md
    python -m repro trace --trace EPA --protocol invalidation \\
        --scale 0.05 --out spans.jsonl
    python -m repro trace --view spans.jsonl --kind request --match miss
    python -m repro chaos --schedules 50 --seed 7 --protocol invalidation
    python -m repro summarize --trace NASA
    python -m repro summarize --clf /path/to/access_log
    python -m repro generate --trace SDSC --scale 0.2 --out sdsc.log
    python -m repro analyze --stream "r r r m m m r r m r r r m m r"
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional

from . import __version__
from .api import PROTOCOLS, build_protocol
from .core import simulate_stream, symbolic_counts
from .core.analysis import timed_stream_from_ops
from .replay import (
    ExperimentConfig,
    ParallelSweepRunner,
    SweepPointFailed,
    format_comparison_table,
    format_invalidation_costs,
    result_to_dict,
    run_experiment,
    sweep,
    sweep_table,
)
from .sim import RngRegistry
from .traces import generate_trace, read_clf, summarize, write_clf
from .traces.catalog import PROFILES
from .traces import profile as lookup_profile
from .workload import DAYS, count_r_ri, parse_stream

__all__ = ["main", "build_parser"]

_warned_factories = False


def __getattr__(name: str):
    """Deprecation shim: ``repro.cli.PROTOCOL_FACTORIES`` moved to
    :data:`repro.api.PROTOCOLS` (same names, same factories)."""
    if name == "PROTOCOL_FACTORIES":
        global _warned_factories
        if not _warned_factories:
            _warned_factories = True
            import warnings

            warnings.warn(
                "repro.cli.PROTOCOL_FACTORIES is deprecated; use "
                "repro.api.PROTOCOLS (or repro.api.build_protocol)",
                DeprecationWarning,
                stacklevel=2,
            )
        return PROTOCOLS
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


def build_parser() -> argparse.ArgumentParser:
    """Build the top-level argument parser (exposed for testing)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Reproduction of Liu & Cao (ICDCS 1997), 'Maintaining Strong "
            "Cache Consistency in the World-Wide Web'."
        ),
    )
    parser.add_argument("--version", action="version", version=__version__)
    sub = parser.add_subparsers(dest="command", required=True)

    def add_trace_args(p: argparse.ArgumentParser) -> None:
        p.add_argument(
            "--trace",
            default="EPA",
            help=f"trace profile name ({', '.join(PROFILES)})",
        )
        p.add_argument(
            "--scale",
            type=float,
            default=0.1,
            help="workload scale factor in (0, 1] (default 0.1)",
        )
        p.add_argument("--seed", type=int, default=42, help="master seed")

    def add_replay_args(p: argparse.ArgumentParser) -> None:
        add_trace_args(p)
        p.add_argument(
            "--lifetime-days",
            type=float,
            default=50.0,
            help="mean document lifetime in days (default 50)",
        )
        p.add_argument(
            "--cache-mb",
            type=int,
            default=64,
            help="per-proxy cache capacity in MB (default 64)",
        )
        p.add_argument(
            "--hierarchy",
            type=int,
            default=0,
            metavar="N",
            help="insert N parent caches (0 = flat, the paper's setup)",
        )
        p.add_argument(
            "--shards",
            type=int,
            default=1,
            metavar="N",
            help="accelerator shards (1 = the paper's single accelerator)",
        )
        p.add_argument(
            "--batch-window",
            type=float,
            default=0.0,
            metavar="SECONDS",
            help="coalesce same-proxy invalidations for this long "
            "(cluster only; 0 = send immediately)",
        )
        p.add_argument(
            "--batch-max",
            type=int,
            default=0,
            metavar="N",
            help="flush an invalidation batch at N URLs even before the "
            "window closes (cluster only; 0 = no size cap)",
        )

    def add_parallel_args(p: argparse.ArgumentParser) -> None:
        p.add_argument(
            "--parallel",
            type=int,
            default=0,
            metavar="N",
            help="run sweep points across N worker processes (0 = serial)",
        )
        p.add_argument(
            "--checkpoint-dir",
            metavar="DIR",
            help="write a per-point checkpoint file here as points finish",
        )
        p.add_argument(
            "--resume",
            action="store_true",
            help="skip points already checkpointed (needs --checkpoint-dir)",
        )
        p.add_argument(
            "--timeout",
            type=float,
            default=None,
            metavar="SECONDS",
            help="per-point wall-clock budget; overrunning workers retry",
        )
        p.add_argument(
            "--retries",
            type=int,
            default=1,
            help="extra attempts after a worker crash or timeout (default 1)",
        )

    replay = sub.add_parser("replay", help="run one protocol on one trace")
    add_replay_args(replay)
    replay.add_argument(
        "--protocol",
        default="invalidation",
        choices=sorted(PROTOCOLS),
        help="consistency protocol",
    )
    replay.add_argument(
        "--json", action="store_true", help="emit JSON instead of a table"
    )

    compare = sub.add_parser(
        "compare", help="run the paper's three protocols on one trace"
    )
    add_replay_args(compare)
    compare.add_argument(
        "--json", action="store_true", help="emit JSON instead of a table"
    )

    sweep_p = sub.add_parser(
        "sweep", help="run a protocol x lifetime grid on one trace"
    )
    add_replay_args(sweep_p)
    sweep_p.add_argument(
        "--protocols",
        default="polling,invalidation,ttl",
        help="comma-separated protocol names (default: the paper's three)",
    )
    sweep_p.add_argument(
        "--lifetimes",
        default=None,
        metavar="DAYS,...",
        help="comma-separated mean lifetimes in days "
        "(default: just --lifetime-days)",
    )
    sweep_p.add_argument(
        "--metrics",
        default="total_messages,message_bytes,stale_serves,avg_latency",
        help="comma-separated ExperimentResult fields for the output table",
    )
    sweep_p.add_argument(
        "--derive-seeds",
        action="store_true",
        help="give each point its own label-derived seed "
        "(default: all points share the base seed)",
    )
    sweep_p.add_argument(
        "--json", action="store_true", help="emit JSON instead of a table"
    )
    add_parallel_args(sweep_p)

    table = sub.add_parser(
        "table", help="reproduce Table 3 or 4 (all traces x three protocols)"
    )
    table.add_argument(
        "--table",
        type=int,
        default=3,
        choices=(3, 4),
        help="which paper table to reproduce (default 3)",
    )
    table.add_argument(
        "--scale",
        type=float,
        default=0.1,
        help="workload scale factor in (0, 1] (default 0.1)",
    )
    table.add_argument("--seed", type=int, default=42, help="master seed")
    table.add_argument(
        "--cache-mb",
        type=int,
        default=64,
        help="per-proxy cache capacity in MB (default 64)",
    )
    add_parallel_args(table)

    report = sub.add_parser(
        "report",
        help="write RESULTS.md: every paper table vs. this reproduction",
    )
    report.add_argument(
        "--scale",
        type=float,
        default=0.1,
        help="workload scale factor in (0, 1] (default 0.1)",
    )
    report.add_argument("--seed", type=int, default=42, help="master seed")
    report.add_argument(
        "--out",
        default="RESULTS.md",
        metavar="PATH",
        help="where to write the report (default RESULTS.md; '-' = stdout)",
    )
    report.add_argument(
        "--from-checkpoints",
        metavar="DIR",
        help="load the matrix from sweep checkpoints instead of replaying",
    )
    report.add_argument(
        "--timestamp",
        action="store_true",
        help="stamp the manifest with the generation time (off by default "
        "so committed reports regenerate diff-clean)",
    )
    report.add_argument(
        "--check",
        action="store_true",
        help="CI smoke: tiny matrix end to end, assert report invariants",
    )
    report.add_argument(
        "--shards",
        type=int,
        default=1,
        metavar="N",
        help="run the matrix on an N-shard accelerator cluster (adds the "
        "shard-balance panel; default 1 = the paper's setup)",
    )
    report.add_argument(
        "--batch-window",
        type=float,
        default=0.0,
        metavar="SECONDS",
        help="cluster invalidation batching window (0 = immediate)",
    )
    report.add_argument(
        "--batch-max",
        type=int,
        default=0,
        metavar="N",
        help="cluster invalidation batch size cap (0 = none)",
    )
    add_parallel_args(report)

    trace_p = sub.add_parser(
        "trace",
        help="record or view a structured span timeline for one experiment",
    )
    add_replay_args(trace_p)
    trace_p.add_argument(
        "--protocol",
        default="invalidation",
        choices=sorted(PROTOCOLS),
        help="consistency protocol",
    )
    trace_p.add_argument(
        "--out",
        metavar="PATH",
        help="JSONL span file to write (record mode; default spans.jsonl)",
    )
    trace_p.add_argument(
        "--sample",
        type=float,
        default=1.0,
        metavar="FRAC",
        help="deterministic per-kind span sampling rate in (0, 1] "
        "(default 1.0 = keep everything)",
    )
    trace_p.add_argument(
        "--deep",
        action="store_true",
        help="also attach the kernel event tracer (disables the "
        "simulation fast paths for this run)",
    )
    trace_p.add_argument(
        "--view",
        metavar="FILE",
        help="view a previously recorded span file instead of recording",
    )
    trace_p.add_argument(
        "--kind", help="view filter: span kind (request/invalidation/run)"
    )
    trace_p.add_argument(
        "--match",
        help="view filter: substring of the span name or attributes",
    )
    trace_p.add_argument(
        "--since", type=float, help="view filter: spans ending at/after this sim time"
    )
    trace_p.add_argument(
        "--until", type=float, help="view filter: spans starting at/before this sim time"
    )
    trace_p.add_argument(
        "--limit",
        type=int,
        default=50,
        help="view: max timeline rows to print (default 50)",
    )

    chaos = sub.add_parser(
        "chaos",
        help="randomized fault-injection campaign with consistency audit",
    )
    add_replay_args(chaos)
    chaos.set_defaults(seed=7)  # campaign convention; --seed still wins
    chaos.add_argument(
        "--protocol",
        default="invalidation",
        choices=sorted(PROTOCOLS),
        help="consistency protocol under test",
    )
    chaos.add_argument(
        "--schedules",
        type=int,
        default=50,
        metavar="N",
        help="random fault schedules to sample and replay (default 50)",
    )
    chaos.add_argument(
        "--max-faults",
        type=int,
        default=5,
        metavar="K",
        help="cap on faults per schedule (default 5)",
    )
    chaos.add_argument(
        "--no-shrink",
        action="store_true",
        help="skip shrinking violating schedules to minimal reproducers",
    )
    chaos.add_argument(
        "--json", action="store_true", help="emit the full campaign report as JSON"
    )
    add_parallel_args(chaos)

    summ = sub.add_parser("summarize", help="print a Table 2-style summary")
    add_trace_args(summ)
    summ.add_argument(
        "--clf",
        metavar="PATH",
        help="summarize a Common Log Format file instead of a profile",
    )

    gen = sub.add_parser("generate", help="write a synthetic trace as CLF")
    add_trace_args(gen)
    gen.add_argument("--out", required=True, metavar="PATH", help="output file")

    analyze = sub.add_parser(
        "analyze", help="Table 1 message model for an r/m stream"
    )
    analyze.add_argument(
        "--stream",
        default="r r r m m m r r m r r r m m r",
        help="request/modification stream (default: the paper's example)",
    )
    analyze.add_argument(
        "--spacing",
        type=float,
        default=3600.0,
        help="seconds between stream events (default 3600)",
    )

    bench = sub.add_parser(
        "bench",
        help="kernel + replay benchmarks; writes BENCH_*.json",
    )
    bench.add_argument(
        "--quick",
        action="store_true",
        help="smaller workloads (CI smoke: seconds, not minutes)",
    )
    bench.add_argument(
        "--kernel-only", action="store_true", help="skip the replay benchmarks"
    )
    bench.add_argument(
        "--replay-only", action="store_true", help="skip the kernel benchmarks"
    )
    bench.add_argument(
        "--out-dir",
        default=".",
        metavar="DIR",
        help="where BENCH_kernel.json / BENCH_replay.json are written",
    )
    bench.add_argument(
        "--compare",
        metavar="PATH",
        help="baseline BENCH JSON; exit non-zero on regression",
    )
    bench.add_argument(
        "--tolerance",
        type=float,
        default=None,
        metavar="FRAC",
        help="allowed slowdown fraction for --compare (default 0.15)",
    )
    bench.add_argument(
        "--repeats",
        type=int,
        default=3,
        metavar="N",
        help="take best-of-N per kernel benchmark (default 3)",
    )
    bench.add_argument(
        "--profile",
        metavar="NAME",
        nargs="?",
        const="sleep_storm",
        help="profile one kernel workload (cProfile, or pyinstrument "
        "when installed) instead of benchmarking",
    )
    return parser


def _make_trace(args):
    profile = lookup_profile(args.trace)
    if args.scale != 1.0:
        profile = profile.scaled(args.scale)
    return generate_trace(profile, RngRegistry(seed=args.seed))


def _make_config(args, protocol) -> ExperimentConfig:
    return ExperimentConfig(
        trace=_make_trace(args),
        protocol=protocol,
        mean_lifetime=args.lifetime_days * DAYS,
        proxy_cache_bytes=args.cache_mb * 1024 * 1024,
        seed=args.seed,
        hierarchy_parents=args.hierarchy or None,
        shards=getattr(args, "shards", 1),
        batch_window=getattr(args, "batch_window", 0.0),
        batch_max=getattr(args, "batch_max", 0),
    )


def _cmd_replay(args, out) -> int:
    protocol = build_protocol(args.protocol)
    result = run_experiment(_make_config(args, protocol))
    if args.json:
        from .replay import results_to_json

        print(results_to_json([result]), file=out)
        return 0
    print(format_comparison_table([result]), file=out)
    if protocol.uses_invalidation:
        print("", file=out)
        print(format_invalidation_costs([result]), file=out)
    if result.cluster is not None:
        cluster = result.cluster
        print("", file=out)
        print(
            f"Cluster: {cluster['shards']} shard(s), "
            f"imbalance {cluster['imbalance_ratio']:.2f}x, "
            f"{cluster['handoffs']} site-list handoff(s)",
            file=out,
        )
        if cluster["batches_delivered"]:
            print(
                f"  batching: {cluster['batched_invalidations_delivered']} "
                f"invalidation(s) in {cluster['batches_delivered']} "
                f"message(s)",
                file=out,
            )
        for name, row in sorted(cluster["per_shard"].items()):
            print(
                f"  {name}: {row['requests_routed']} routed, "
                f"{row['invalidations_sent']} invalidation msg(s), "
                f"{row['sitelist_entries']} site-list entries",
                file=out,
            )
    return 0


def _cmd_compare(args, out) -> int:
    results = []
    for name in ("polling", "invalidation", "ttl"):
        results.append(run_experiment(_make_config(args, build_protocol(name))))
    if args.json:
        from .replay import results_to_json

        print(results_to_json(results), file=out)
        return 0
    print(format_comparison_table(results), file=out)
    return 0


def _make_runner(args):
    """Build a ParallelSweepRunner when any parallel flag is set.

    Returns ``None`` for a plain serial sweep so ``sweep()`` keeps its
    default runner (and zero multiprocessing overhead).  Progress lines
    go to stderr so ``--json`` output stays machine-readable.
    """
    wanted = (
        args.parallel
        or args.resume
        or args.checkpoint_dir is not None
        or args.timeout is not None
    )
    if not wanted:
        return None
    return ParallelSweepRunner(
        workers=args.parallel or None,
        timeout=args.timeout,
        retries=args.retries,
        checkpoint_dir=args.checkpoint_dir,
        resume=args.resume,
        progress=lambda line: print(line, file=sys.stderr),
    )


def _run_points(base, points, args, derive_seeds=False):
    runner = _make_runner(args)
    if runner is None:
        return sweep(base, points, derive_seeds=derive_seeds)
    return sweep(base, points, runner=runner, derive_seeds=derive_seeds)


def _cmd_sweep(args, out) -> int:
    import json

    protocols = [p.strip() for p in args.protocols.split(",") if p.strip()]
    unknown = [p for p in protocols if p not in PROTOCOLS]
    if not protocols or unknown:
        print(
            f"error: unknown protocol(s) {', '.join(unknown) or '<none>'}; "
            f"choose from {', '.join(sorted(PROTOCOLS))}",
            file=out,
        )
        return 2
    lifetimes = (
        [float(d) for d in args.lifetimes.split(",") if d.strip()]
        if args.lifetimes
        else [args.lifetime_days]
    )
    base = _make_config(args, build_protocol(protocols[0]))
    points = []
    for days in lifetimes:
        for name in protocols:
            label = name if len(lifetimes) == 1 else f"{name}/{days:g}d"
            points.append(
                (
                    label,
                    {
                        "protocol": build_protocol(name),
                        "mean_lifetime": days * DAYS,
                    },
                )
            )
    try:
        results = _run_points(base, points, args, derive_seeds=args.derive_seeds)
    except (ValueError, SweepPointFailed) as exc:
        print(f"error: {exc}", file=out)
        return 2
    if args.json:
        payload = [
            {"label": r.label, **result_to_dict(r.result)} for r in results
        ]
        print(json.dumps(payload, indent=2), file=out)
        return 0
    metrics = [m.strip() for m in args.metrics.split(",") if m.strip()]
    print(sweep_table(results, metrics), file=out)
    return 0


#: (trace, mean lifetime in days) rows of the paper's Tables 3 and 4.
TABLE_SPECS = {
    3: [("EPA", 50.0), ("SASK", 14.0), ("ClarkNet", 50.0)],
    4: [("NASA", 7.0), ("SDSC", 25.0), ("SDSC", 2.5)],
}

#: Column order within each table block.
TABLE_PROTOCOLS = ("polling", "invalidation", "ttl")


def _cmd_table(args, out) -> int:
    spec = TABLE_SPECS[args.table]
    traces = {}
    for trace_name, _days in spec:
        if trace_name not in traces:
            profile = lookup_profile(trace_name)
            if args.scale != 1.0:
                profile = profile.scaled(args.scale)
            traces[trace_name] = generate_trace(
                profile, RngRegistry(seed=args.seed)
            )
    first_trace, first_days = spec[0]
    base = ExperimentConfig(
        trace=traces[first_trace],
        protocol=build_protocol(TABLE_PROTOCOLS[0]),
        mean_lifetime=first_days * DAYS,
        proxy_cache_bytes=args.cache_mb * 1024 * 1024,
        seed=args.seed,
    )
    points = [
        (
            f"{trace_name}-{days:g}d/{proto}",
            {
                "trace": traces[trace_name],
                "mean_lifetime": days * DAYS,
                "protocol": build_protocol(proto),
            },
        )
        for trace_name, days in spec
        for proto in TABLE_PROTOCOLS
    ]
    try:
        results = _run_points(base, points, args)
    except (ValueError, SweepPointFailed) as exc:
        print(f"error: {exc}", file=out)
        return 2
    blocks = []
    for row, (trace_name, days) in enumerate(spec):
        group = results[row * len(TABLE_PROTOCOLS):(row + 1) * len(TABLE_PROTOCOLS)]
        title = (
            f"Trace {trace_name}, lifetime {days:g} days, "
            f"{group[0].result.total_requests} requests, "
            f"{group[0].result.files_modified} files modified"
        )
        blocks.append(
            format_comparison_table([g.result for g in group], title=title)
        )
    print("\n\n".join(blocks), file=out)
    return 0


def _cmd_report(args, out) -> int:
    import time as _time

    from .obs.report import check_report, collect_report, render_report

    if args.check:
        return check_report(out=out)
    generated = (
        _time.strftime("%Y-%m-%dT%H:%M:%S%z") if args.timestamp else None
    )
    try:
        data = collect_report(
            scale=args.scale,
            seed=args.seed,
            runner=_make_runner(args),
            from_checkpoints=args.from_checkpoints,
            generated=generated,
            progress=lambda line: print(line, file=sys.stderr),
            shards=args.shards,
            batch_window=args.batch_window,
            batch_max=args.batch_max,
        )
    except (ValueError, SweepPointFailed) as exc:
        print(f"error: {exc}", file=out)
        return 2
    text = render_report(data)
    if args.out == "-":
        print(text, file=out)
    else:
        with open(args.out, "w") as handle:
            handle.write(text)
        manifest = data.manifest
        print(
            f"wrote {args.out} ({manifest['points']} matrix point(s), "
            f"scale {data.scale:g}, seed {data.seed}, "
            f"git {manifest['git_sha']}, "
            f"results digest {manifest['results_digest']})",
            file=out,
        )
    return 0


def _cmd_trace(args, out) -> int:
    from .obs import (
        MetricsRegistry,
        Observation,
        SpanSink,
        filter_spans,
        format_timeline,
        read_spans,
    )

    if args.view:
        spans = filter_spans(
            read_spans(args.view),
            kind=args.kind,
            contains=args.match,
            since=args.since,
            until=args.until,
        )
        print(format_timeline(spans, limit=args.limit), file=out)
        return 0

    import dataclasses

    path = args.out or "spans.jsonl"
    try:
        sink = SpanSink(path, sample=args.sample)
    except ValueError as exc:
        print(f"error: {exc}", file=out)
        return 2
    observation = Observation(
        registry=MetricsRegistry(), sink=sink, deep=args.deep
    )
    config = dataclasses.replace(
        _make_config(args, build_protocol(args.protocol)),
        observation=observation,
    )
    try:
        run_experiment(config)
    finally:
        observation.close()
    print(
        f"wrote {sink.total_written} span(s) to {path} "
        f"({sink.total_seen} seen, sample {args.sample:g}); "
        f"{len(observation.registry)} metric series recorded",
        file=out,
    )
    for kind in sorted(sink.counts):
        print(
            f"  {kind:14s} {sink.written[kind]:>8d} written / "
            f"{sink.counts[kind]} seen",
            file=out,
        )
    if args.deep and observation.tracer is not None:
        print(
            f"  deep: {observation.tracer.total} kernel event(s) traced",
            file=out,
        )
    return 0


def _cmd_chaos(args, out) -> int:
    import json

    from .chaos import run_campaign

    protocol = build_protocol(args.protocol)
    base = _make_config(args, protocol)
    try:
        report = run_campaign(
            base,
            num_schedules=args.schedules,
            seed=args.seed,
            max_faults=args.max_faults,
            runner=_make_runner(args),
            shrink=not args.no_shrink,
            progress=lambda line: print(line, file=sys.stderr),
        )
    except (ValueError, SweepPointFailed) as exc:
        print(f"error: {exc}", file=out)
        return 2
    if args.json:
        print(json.dumps(report.to_dict(), indent=2), file=out)
    else:
        allowed = report.allowed_staleness()
        print(
            f"chaos campaign: {args.protocol} on {report.trace_name}, "
            f"{report.num_schedules} schedules, seed {report.seed}",
            file=out,
        )
        print(
            f"  verdict: {'CLEAN' if report.ok else 'VIOLATIONS FOUND'} "
            f"({report.total_violations} violation(s), "
            f"{report.total_stale_serves} stale serve(s))",
            file=out,
        )
        if allowed:
            reasons = ", ".join(
                f"{reason}={count}" for reason, count in sorted(allowed.items())
            )
            print(f"  allowed staleness: {reasons}", file=out)
        for verdict in report.verdicts:
            if verdict.ok:
                continue
            print(
                f"  {verdict.label}: {verdict.violation_count} violation(s) "
                f"across {verdict.fault_count} fault(s)",
                file=out,
            )
        for label, repro in sorted(report.reproducers.items()):
            faults = repro["faults"] or ["(reproduces fault-free)"]
            print(f"  minimal reproducer for {label}:", file=out)
            for line in faults:
                print(f"    - {line}", file=out)
    # A weak protocol's staleness is its trade-off, not a failure: only
    # strong protocols turn violations into a nonzero exit code.
    return 1 if (report.strong and not report.ok) else 0


def _cmd_summarize(args, out) -> int:
    if args.clf:
        with open(args.clf, "r", errors="replace") as handle:
            trace = read_clf(handle, name=args.clf)
    else:
        trace = _make_trace(args)
    print(summarize(trace).row(), file=out)
    return 0


def _cmd_generate(args, out) -> int:
    trace = _make_trace(args)
    with open(args.out, "w") as handle:
        count = write_clf(trace, handle)
    print(f"wrote {count} records to {args.out}", file=out)
    return 0


def _cmd_analyze(args, out) -> int:
    ops = parse_stream(args.stream)
    counts = count_r_ri(ops)
    print(f"R = {counts.reads}, RI = {counts.intervals}", file=out)
    events = timed_stream_from_ops(ops, spacing=args.spacing)
    print(f"{'protocol':14s}{'GETs':>6s}{'IMS':>6s}{'304s':>6s}"
          f"{'invals':>8s}{'xfers':>7s}{'control':>9s}", file=out)
    for name in ("polling", "invalidation", "ttl"):
        counts_sim = simulate_stream(events, name)
        print(
            f"{name:14s}{counts_sim.gets:>6d}{counts_sim.ims:>6d}"
            f"{counts_sim.replies_304:>6d}{counts_sim.invalidations:>8d}"
            f"{counts_sim.file_transfers:>7d}{counts_sim.control_messages:>9d}",
            file=out,
        )
    symbolic = symbolic_counts("invalidation", counts.reads, counts.intervals)
    print(f"(Table 1 bound: invalidation control <= {symbolic.control_messages})",
          file=out)
    return 0


def _cmd_bench(args, out) -> int:
    import os

    from . import bench as benchmod

    if args.profile:
        if args.profile not in benchmod.KERNEL_BENCHMARKS:
            names = ", ".join(sorted(benchmod.KERNEL_BENCHMARKS))
            print(f"unknown benchmark {args.profile!r}; one of: {names}", file=out)
            return 2
        benchmod.profile_kernel(args.profile, out=out)
        return 0

    tolerance = (
        args.tolerance if args.tolerance is not None else benchmod.DEFAULT_TOLERANCE
    )
    os.makedirs(args.out_dir, exist_ok=True)
    kernel_payload = None
    if not args.replay_only:
        kernel = benchmod.run_kernel_benchmarks(
            quick=args.quick, repeats=args.repeats
        )
        kernel_payload = benchmod.bench_payload("kernel", kernel)
        path = os.path.join(args.out_dir, "BENCH_kernel.json")
        benchmod.write_payload(path, kernel_payload)
        print(f"wrote {path}", file=out)
        for name, b in kernel.items():
            print(f"  {name:24s} {b['events_per_sec']:>12,.0f} events/s", file=out)
    if not args.kernel_only:
        replay = benchmod.run_replay_benchmarks(quick=args.quick)
        replay_payload = benchmod.bench_payload("replay", replay)
        path = os.path.join(args.out_dir, "BENCH_replay.json")
        benchmod.write_payload(path, replay_payload)
        print(f"wrote {path}", file=out)
        for name, b in replay.items():
            print(f"  {name:24s} {b['requests_per_sec']:>12,.0f} requests/s", file=out)

    if args.compare:
        with open(args.compare) as fh:
            baseline = json.load(fh)
        subject = kernel_payload
        if subject is None or baseline.get("kind") == "replay":
            print("--compare needs a kernel run and a kernel baseline", file=out)
            return 2
        # Variants the baseline predates cannot be gated; report them
        # individually instead of erroring out on the whole run.
        for name in benchmod.missing_baselines(subject, baseline):
            print(f"  {name}: no baseline (new variant), not gated", file=out)
        failures = benchmod.compare_bench(subject, baseline, tolerance=tolerance)
        if failures:
            print(f"PERF REGRESSION vs {args.compare}:", file=out)
            for failure in failures:
                print(f"  {failure}", file=out)
            return 1
        print(
            f"no regression vs {args.compare} (tolerance -{tolerance:.0%})",
            file=out,
        )
    return 0


def main(argv: Optional[List[str]] = None, out=None) -> int:
    """CLI entry point; returns the process exit code."""
    out = out or sys.stdout
    args = build_parser().parse_args(argv)
    handler = {
        "replay": _cmd_replay,
        "compare": _cmd_compare,
        "sweep": _cmd_sweep,
        "table": _cmd_table,
        "report": _cmd_report,
        "trace": _cmd_trace,
        "chaos": _cmd_chaos,
        "summarize": _cmd_summarize,
        "generate": _cmd_generate,
        "analyze": _cmd_analyze,
        "bench": _cmd_bench,
    }[args.command]
    return handler(args, out)
