"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``replay``    — run one trace x protocol experiment and print the
  Table 3/4-style block (plus Table 5 costs for invalidation runs).
* ``compare``   — run all three paper protocols on one trace.
* ``summarize`` — print the Table 2 row for a synthetic or CLF trace.
* ``generate``  — write a calibrated synthetic trace as a CLF log.
* ``analyze``   — evaluate the Table 1 model on an r/m stream.

Examples::

    python -m repro compare --trace EPA --lifetime-days 50 --scale 0.1
    python -m repro replay --trace SASK --protocol two-tier --scale 0.1
    python -m repro summarize --trace NASA
    python -m repro summarize --clf /path/to/access_log
    python -m repro generate --trace SDSC --scale 0.2 --out sdsc.log
    python -m repro analyze --stream "r r r m m m r r m r r r m m r"
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from . import __version__
from .core import (
    adaptive_lease,
    adaptive_ttl,
    fixed_ttl,
    invalidation,
    lease_invalidation,
    piggyback_invalidation,
    poll_every_time,
    simulate_stream,
    symbolic_counts,
    two_tier_lease,
)
from .core.analysis import timed_stream_from_ops
from .replay import (
    ExperimentConfig,
    format_comparison_table,
    format_invalidation_costs,
    run_experiment,
)
from .sim import RngRegistry
from .traces import generate_trace, read_clf, summarize, write_clf
from .traces.catalog import PROFILES
from .traces import profile as lookup_profile
from .workload import DAYS, count_r_ri, parse_stream

__all__ = ["main", "build_parser"]

#: CLI protocol names -> factories.
PROTOCOL_FACTORIES = {
    "ttl": adaptive_ttl,
    "adaptive-ttl": adaptive_ttl,
    "fixed-ttl": fixed_ttl,
    "polling": poll_every_time,
    "invalidation": invalidation,
    "invalidation-decoupled": lambda: invalidation(blocking=False),
    "invalidation-multicast": lambda: invalidation(multicast=True),
    "lease": lease_invalidation,
    "adaptive-lease": adaptive_lease,
    "two-tier": two_tier_lease,
    "psi": piggyback_invalidation,
}


def build_parser() -> argparse.ArgumentParser:
    """Build the top-level argument parser (exposed for testing)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Reproduction of Liu & Cao (ICDCS 1997), 'Maintaining Strong "
            "Cache Consistency in the World-Wide Web'."
        ),
    )
    parser.add_argument("--version", action="version", version=__version__)
    sub = parser.add_subparsers(dest="command", required=True)

    def add_trace_args(p: argparse.ArgumentParser) -> None:
        p.add_argument(
            "--trace",
            default="EPA",
            help=f"trace profile name ({', '.join(PROFILES)})",
        )
        p.add_argument(
            "--scale",
            type=float,
            default=0.1,
            help="workload scale factor in (0, 1] (default 0.1)",
        )
        p.add_argument("--seed", type=int, default=42, help="master seed")

    def add_replay_args(p: argparse.ArgumentParser) -> None:
        add_trace_args(p)
        p.add_argument(
            "--lifetime-days",
            type=float,
            default=50.0,
            help="mean document lifetime in days (default 50)",
        )
        p.add_argument(
            "--cache-mb",
            type=int,
            default=64,
            help="per-proxy cache capacity in MB (default 64)",
        )
        p.add_argument(
            "--hierarchy",
            type=int,
            default=0,
            metavar="N",
            help="insert N parent caches (0 = flat, the paper's setup)",
        )

    replay = sub.add_parser("replay", help="run one protocol on one trace")
    add_replay_args(replay)
    replay.add_argument(
        "--protocol",
        default="invalidation",
        choices=sorted(PROTOCOL_FACTORIES),
        help="consistency protocol",
    )
    replay.add_argument(
        "--json", action="store_true", help="emit JSON instead of a table"
    )

    compare = sub.add_parser(
        "compare", help="run the paper's three protocols on one trace"
    )
    add_replay_args(compare)
    compare.add_argument(
        "--json", action="store_true", help="emit JSON instead of a table"
    )

    summ = sub.add_parser("summarize", help="print a Table 2-style summary")
    add_trace_args(summ)
    summ.add_argument(
        "--clf",
        metavar="PATH",
        help="summarize a Common Log Format file instead of a profile",
    )

    gen = sub.add_parser("generate", help="write a synthetic trace as CLF")
    add_trace_args(gen)
    gen.add_argument("--out", required=True, metavar="PATH", help="output file")

    analyze = sub.add_parser(
        "analyze", help="Table 1 message model for an r/m stream"
    )
    analyze.add_argument(
        "--stream",
        default="r r r m m m r r m r r r m m r",
        help="request/modification stream (default: the paper's example)",
    )
    analyze.add_argument(
        "--spacing",
        type=float,
        default=3600.0,
        help="seconds between stream events (default 3600)",
    )
    return parser


def _make_trace(args):
    profile = lookup_profile(args.trace)
    if args.scale != 1.0:
        profile = profile.scaled(args.scale)
    return generate_trace(profile, RngRegistry(seed=args.seed))


def _make_config(args, protocol) -> ExperimentConfig:
    return ExperimentConfig(
        trace=_make_trace(args),
        protocol=protocol,
        mean_lifetime=args.lifetime_days * DAYS,
        proxy_cache_bytes=args.cache_mb * 1024 * 1024,
        seed=args.seed,
        hierarchy_parents=args.hierarchy or None,
    )


def _cmd_replay(args, out) -> int:
    protocol = PROTOCOL_FACTORIES[args.protocol]()
    result = run_experiment(_make_config(args, protocol))
    if args.json:
        from .replay import results_to_json

        print(results_to_json([result]), file=out)
        return 0
    print(format_comparison_table([result]), file=out)
    if protocol.uses_invalidation:
        print("", file=out)
        print(format_invalidation_costs([result]), file=out)
    return 0


def _cmd_compare(args, out) -> int:
    results = []
    for factory in (poll_every_time, invalidation, adaptive_ttl):
        results.append(run_experiment(_make_config(args, factory())))
    if args.json:
        from .replay import results_to_json

        print(results_to_json(results), file=out)
        return 0
    print(format_comparison_table(results), file=out)
    return 0


def _cmd_summarize(args, out) -> int:
    if args.clf:
        with open(args.clf, "r", errors="replace") as handle:
            trace = read_clf(handle, name=args.clf)
    else:
        trace = _make_trace(args)
    print(summarize(trace).row(), file=out)
    return 0


def _cmd_generate(args, out) -> int:
    trace = _make_trace(args)
    with open(args.out, "w") as handle:
        count = write_clf(trace, handle)
    print(f"wrote {count} records to {args.out}", file=out)
    return 0


def _cmd_analyze(args, out) -> int:
    ops = parse_stream(args.stream)
    counts = count_r_ri(ops)
    print(f"R = {counts.reads}, RI = {counts.intervals}", file=out)
    events = timed_stream_from_ops(ops, spacing=args.spacing)
    print(f"{'protocol':14s}{'GETs':>6s}{'IMS':>6s}{'304s':>6s}"
          f"{'invals':>8s}{'xfers':>7s}{'control':>9s}", file=out)
    for name in ("polling", "invalidation", "ttl"):
        counts_sim = simulate_stream(events, name)
        print(
            f"{name:14s}{counts_sim.gets:>6d}{counts_sim.ims:>6d}"
            f"{counts_sim.replies_304:>6d}{counts_sim.invalidations:>8d}"
            f"{counts_sim.file_transfers:>7d}{counts_sim.control_messages:>9d}",
            file=out,
        )
    symbolic = symbolic_counts("invalidation", counts.reads, counts.intervals)
    print(f"(Table 1 bound: invalidation control <= {symbolic.control_messages})",
          file=out)
    return 0


def main(argv: Optional[List[str]] = None, out=None) -> int:
    """CLI entry point; returns the process exit code."""
    out = out or sys.stdout
    args = build_parser().parse_args(argv)
    handler = {
        "replay": _cmd_replay,
        "compare": _cmd_compare,
        "summarize": _cmd_summarize,
        "generate": _cmd_generate,
        "analyze": _cmd_analyze,
    }[args.command]
    return handler(args, out)
