"""Generator-based processes and condition events for the sim kernel.

A *process* wraps a Python generator.  The generator yields
:class:`~repro.sim.core.Event` instances; the process is suspended until the
yielded event triggers, at which point the generator is resumed with the
event's value (or the event's exception is thrown into it).

Processes are themselves events, so one process can wait for another simply
by yielding it (a *join*).
"""

from __future__ import annotations

from typing import Any, Generator, List, Optional

from .core import Event, Interrupt, SimulationError, Simulator, URGENT

__all__ = ["Process", "AllOf", "AnyOf", "ConditionValue"]


class _InterruptEvent(Event):
    """Internal high-priority event carrying an Interrupt into a process."""

    __slots__ = ("process",)

    def __init__(self, process: "Process", cause: Any) -> None:
        super().__init__(process.sim)
        self.process = process
        self._ok = False
        self._value = Interrupt(cause)
        self._defused = True
        self.callbacks.append(process._resume)
        self.sim._enqueue(self, URGENT)


class Process(Event):
    """A running generator; triggers when the generator terminates.

    The process event succeeds with the generator's return value, or fails
    with the exception that escaped the generator.
    """

    __slots__ = ("_generator", "_target")

    def __init__(self, sim: Simulator, generator: Generator[Event, Any, Any]) -> None:
        if not hasattr(generator, "throw"):
            raise TypeError(f"{generator!r} is not a generator")
        super().__init__(sim)
        self._generator = generator
        #: The event this process is currently waiting on.
        self._target: Optional[Event] = None
        # Kick the process off via an initial event so that construction
        # order does not matter within a time step.
        start = Event(sim)
        start._ok = True
        start._value = None
        start.callbacks.append(self._resume)
        sim._enqueue(start, URGENT)

    @property
    def is_alive(self) -> bool:
        """True while the wrapped generator has not terminated."""
        return not self.triggered

    @property
    def target(self) -> Optional[Event]:
        """The event this process is currently waiting on (if any)."""
        return self._target

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process.

        The process is detached from whatever event it was waiting on; that
        event stays valid and may still be waited on again afterwards.
        Interrupting a terminated process is an error.
        """
        if self.triggered:
            raise SimulationError("cannot interrupt a terminated process")
        _InterruptEvent(self, cause)

    # -- engine ------------------------------------------------------------

    def _resume(self, event: Event) -> None:
        """Resume the generator with ``event``'s outcome."""
        if self.triggered:
            # Process already finished (e.g. an interrupt raced its
            # termination); nothing to resume.
            return
        # Detach from the previous target (relevant for interrupts).
        if self._target is not None and self._target.callbacks is not None:
            try:
                self._target.callbacks.remove(self._resume)
            except ValueError:
                pass
        self._target = None

        self.sim._active_process = self
        try:
            while True:
                if event._ok:
                    next_event = self._generator.send(event._value)
                else:
                    event._defused = True
                    next_event = self._generator.throw(event._value)

                if not isinstance(next_event, Event):
                    raise SimulationError(
                        f"process yielded a non-event: {next_event!r}"
                    )
                if next_event.callbacks is None:
                    # Already processed: consume its value immediately.
                    event = next_event
                    continue
                next_event.callbacks.append(self._resume)
                self._target = next_event
                return
        except StopIteration as stop:
            self._ok = True
            self._value = stop.value
            self.sim._enqueue(self, URGENT)
        except BaseException as exc:  # noqa: BLE001 - propagated via event
            self._ok = False
            self._value = exc
            self.sim._enqueue(self, URGENT)
        finally:
            self.sim._active_process = None

    def __repr__(self) -> str:
        name = getattr(self._generator, "__name__", "process")
        return f"<Process {name}>"


class ConditionValue:
    """Ordered mapping of child events to values for condition events."""

    def __init__(self) -> None:
        self.events: List[Event] = []

    def __getitem__(self, event: Event) -> Any:
        if event not in self.events:
            raise KeyError(repr(event))
        return event._value

    def __contains__(self, event: Event) -> bool:
        return event in self.events

    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self):
        return iter(self.events)

    def todict(self) -> dict:
        """Return a plain ``{event: value}`` dict."""
        return {event: event._value for event in self.events}

    def __repr__(self) -> str:
        return f"<ConditionValue {self.todict()!r}>"


class _Condition(Event):
    """Base for AllOf/AnyOf: waits on children, applies an evaluator."""

    __slots__ = ("_events", "_count")

    def __init__(self, sim: Simulator, events: List[Event]) -> None:
        super().__init__(sim)
        self._events = list(events)
        self._count = 0
        for event in self._events:
            if event.sim is not sim:
                raise SimulationError("condition spans multiple simulators")
        if not self._events:
            self.succeed(ConditionValue())
            return
        for event in self._events:
            if event.callbacks is None:
                self._check(event)
            else:
                event.callbacks.append(self._check)

    def _evaluate(self, count: int) -> bool:
        raise NotImplementedError

    def _check(self, event: Event) -> None:
        if self.triggered:
            # The condition has already resolved (e.g. another child
            # failed it): absorb this child's failure so it does not
            # escape the simulator loop with nobody left to handle it.
            if not event._ok:
                event._defused = True
            return
        self._count += 1
        if not event._ok:
            event._defused = True
            self.fail(event._value)
        elif self._evaluate(self._count):
            value = ConditionValue()
            for child in self._events:
                # A child counts as "done" only once processed; Timeouts are
                # value-triggered at construction, so `triggered` would be
                # wrong here.
                if child.processed and child._ok:
                    value.events.append(child)
            self.succeed(value)


class AllOf(_Condition):
    """Triggers once every child event has succeeded."""

    __slots__ = ()

    def _evaluate(self, count: int) -> bool:
        return count == len(self._events)


class AnyOf(_Condition):
    """Triggers as soon as any child event succeeds (or fails)."""

    __slots__ = ()

    def _evaluate(self, count: int) -> bool:
        return count >= 1
