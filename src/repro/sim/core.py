"""Discrete-event simulation kernel: events and the simulator loop.

This module provides the event machinery used by every other subsystem in
the reproduction.  It is deliberately simpy-like (generator-based processes
yield events and are resumed when those events trigger) but implemented from
scratch so the repository has no third-party runtime dependencies.

Determinism: events scheduled for the same simulated time are processed in
(priority, insertion-order) order, so a run is exactly reproducible given
the same seed and the same sequence of API calls.

Scheduler layout (the replay hot path schedules almost everything at
``now + small delta``):

* a *near-future calendar*: ``num_buckets`` buckets of ``bucket_width``
  simulated seconds each.  Scheduling into a future bucket is a plain list
  append (O(1)); a bucket is sorted once, when the clock reaches it.
* late arrivals into the *current* bucket go to a small binary heap.
* everything beyond the calendar horizon goes to a *far heap* and migrates
  into the calendar when the horizon advances past it.

All three structures hold ``(time, priority, seq, obj)`` tuples whose
``(time, priority, seq)`` prefix is unique, so tuple comparison never
reaches ``obj`` and the total order is identical to the single global
heap this kernel used to run on.

Allocation avoidance on the hot path:

* :meth:`Simulator.call_later` schedules a plain function through a pooled
  :class:`Callback` entry — no :class:`Event`, no callbacks list, no
  generator resumption.
* :meth:`Simulator.sleep` returns a pooled one-shot timeout for the
  ubiquitous ``yield sim.sleep(delta)`` pattern; the event object is
  recycled as soon as its callbacks have run.

Both fall back to real :class:`Timeout` events while an
:class:`~repro.sim.tracing.EventTracer` is attached, so traced runs keep
seeing the event kinds they always did.

Cancelled entries are discarded lazily when they surface, and the queue is
compacted outright once cancelled entries outnumber live ones (mirroring
the cache heap's ``note_expiry_update`` compaction), so long-lived runs
with many abandoned reply timers keep a bounded queue.
"""

from __future__ import annotations

from heapq import heappop, heappush
from typing import Any, Callable, Iterable, List, Optional

__all__ = [
    "Event",
    "Timeout",
    "Callback",
    "Simulator",
    "SimulationError",
    "Interrupt",
    "StopSimulation",
    "URGENT",
    "NORMAL",
]

#: Scheduling priority for interrupt-style events (processed before NORMAL
#: events scheduled for the same simulated time).
URGENT = 0
#: Default scheduling priority.
NORMAL = 1

#: Sentinel for "event has not been given a value yet".
_PENDING = object()


class SimulationError(Exception):
    """Raised for misuse of the simulation kernel (e.g. double-trigger)."""


class _QueueEmpty(IndexError):
    """Internal: the event queue is exhausted (still an IndexError for
    callers of :meth:`Simulator.step`, but distinguishable from an
    IndexError raised by user callback code)."""


class StopSimulation(Exception):
    """Raised internally to stop :meth:`Simulator.run` early."""


class Interrupt(Exception):
    """Thrown into a process by :meth:`Process.interrupt`.

    The interrupting cause is available as :attr:`cause`.
    """

    @property
    def cause(self) -> Any:
        """The cause passed to :meth:`Process.interrupt` (may be ``None``)."""
        return self.args[0] if self.args else None


class Event:
    """A one-shot occurrence that processes can wait for.

    An event goes through three states: *pending* (created, not triggered),
    *triggered* (given a value or an exception, scheduled on the event
    queue) and *processed* (popped from the queue; its callbacks have run).
    Processes wait on an event by ``yield``-ing it; they are resumed with
    the event's value, or have the event's exception thrown into them.
    """

    __slots__ = ("sim", "callbacks", "_value", "_ok", "_defused", "_cancelled")

    def __init__(self, sim: "Simulator") -> None:
        self.sim = sim
        #: Callbacks to run when the event is processed.  ``None`` once the
        #: event has been processed (this doubles as the "processed" flag).
        self.callbacks: Optional[List[Callable[["Event"], None]]] = []
        self._value: Any = _PENDING
        self._ok: bool = True
        self._defused: bool = False
        self._cancelled: bool = False

    # -- state ------------------------------------------------------------

    @property
    def triggered(self) -> bool:
        """True once the event has a value (it may not be processed yet)."""
        return self._value is not _PENDING

    @property
    def processed(self) -> bool:
        """True once the event's callbacks have been run."""
        return self.callbacks is None

    @property
    def ok(self) -> bool:
        """True if the event succeeded (only meaningful once triggered)."""
        return self._ok

    @property
    def value(self) -> Any:
        """The event's value; raises if the event is not yet triggered."""
        if self._value is _PENDING:
            raise SimulationError(f"{self!r} has not been triggered")
        return self._value

    # -- triggering -------------------------------------------------------

    def succeed(self, value: Any = None) -> "Event":
        """Trigger the event successfully with ``value``."""
        if self._value is not _PENDING:
            raise SimulationError(f"{self!r} already triggered")
        self._ok = True
        self._value = value
        self.sim._enqueue(self, NORMAL)
        return self

    def fail(self, exception: BaseException) -> "Event":
        """Trigger the event with an exception.

        The exception is re-raised at the end of the simulation unless some
        waiter handles it (waiting on a failed event *defuses* it).
        """
        if not isinstance(exception, BaseException):
            raise TypeError(f"{exception!r} is not an exception")
        if self._value is not _PENDING:
            raise SimulationError(f"{self!r} already triggered")
        self._ok = False
        self._value = exception
        self.sim._enqueue(self, NORMAL)
        return self

    def trigger(self, event: "Event") -> None:
        """Trigger this event with the state of another (callback helper)."""
        if self._value is not _PENDING:
            raise SimulationError(f"{self!r} already triggered")
        self._ok = event._ok
        self._value = event._value
        self.sim._enqueue(self, NORMAL)

    def defuse(self) -> None:
        """Mark the event as handled so its failure cannot crash the loop.

        A failed event whose exception no waiter consumes is re-raised
        out of :meth:`Simulator.step`.  Supervisors that learn of a
        failure through another channel (e.g. a condition that already
        failed) call this on the remaining events they were watching so
        late failures do not take down the whole simulation.  Safe to
        call before or after the event triggers.
        """
        self._defused = True

    def cancel(self) -> None:
        """Make a scheduled-but-unprocessed event inert.

        A cancelled event never runs its callbacks and — importantly —
        does not advance the simulation clock when its queue slot drains.
        Used to retire abandoned timers (e.g. a reply timeout after the
        reply arrived) so ``run()`` does not idle the clock forward.
        """
        if self.processed:
            raise SimulationError("cannot cancel a processed event")
        self._cancelled = True
        self.callbacks = None
        self.sim._note_cancel()

    # -- composition ------------------------------------------------------

    def __and__(self, other: "Event") -> "Condition":
        from .process import AllOf  # local import to avoid a cycle

        return AllOf(self.sim, [self, other])

    def __or__(self, other: "Event") -> "Condition":
        from .process import AnyOf

        return AnyOf(self.sim, [self, other])

    def __repr__(self) -> str:
        return f"<{type(self).__name__} at {id(self):#x}>"


# Imported late by __and__/__or__; re-exported for type checkers.
Condition = Event


class Timeout(Event):
    """An event that triggers after a fixed simulated delay."""

    __slots__ = ("delay",)

    def __init__(self, sim: "Simulator", delay: float, value: Any = None) -> None:
        if delay < 0:
            raise ValueError(f"negative timeout delay {delay!r}")
        super().__init__(sim)
        self.delay = delay
        self._ok = True
        self._value = value
        sim._enqueue(self, NORMAL, delay)

    def __repr__(self) -> str:
        return f"<Timeout delay={self.delay!r}>"


class _Sleep(Event):
    """A pooled one-shot timeout (see :meth:`Simulator.sleep`).

    Recycled by the event loop right after its callbacks run, so the
    object must never be stored, composed (``AnyOf``/``AllOf``) or
    cancelled — only yielded immediately by the scheduling process.
    """

    __slots__ = ()


class Callback:
    """A pooled queue entry that runs a plain function — no Event at all.

    This is the zero-allocation fast path for fire-and-forget timers
    (message delivery, cache-hit completion).  The handle supports
    :meth:`cancel` but nothing else; it is recycled after firing, so it
    must not be retained (and in particular not cancelled) once its
    scheduled time has passed.
    """

    __slots__ = ("sim", "fn", "args", "_cancelled")

    def __init__(self, sim: "Simulator") -> None:
        self.sim = sim
        self.fn: Optional[Callable[..., None]] = None
        self.args: tuple = ()
        self._cancelled = False

    def cancel(self) -> None:
        """Make the pending callback inert (same contract as Event.cancel)."""
        if not self._cancelled:
            self._cancelled = True
            self.fn = None
            self.args = ()
            self.sim._note_cancel()

    def __repr__(self) -> str:
        return f"<Callback {getattr(self.fn, '__name__', None)}>"


#: Cap on each free list so a one-off burst cannot pin memory forever.
_POOL_LIMIT = 1024

#: Compact the queue once this many cancelled entries accumulate *and*
#: they outnumber the live entries (see Simulator._note_cancel).
_COMPACT_MIN_CANCELLED = 64


class Simulator:
    """The event loop.

    Typical use::

        sim = Simulator()

        def worker(sim):
            yield sim.timeout(5.0)
            print("done at", sim.now)

        sim.process(worker(sim))
        sim.run()

    Args:
        start_time: initial simulated time.
        bucket_width: span of one near-future calendar bucket, in
            simulated seconds.
        num_buckets: calendar length; times beyond
            ``bucket_width * num_buckets`` in the future go to the far
            heap until the horizon catches up.
    """

    def __init__(
        self,
        start_time: float = 0.0,
        bucket_width: float = 0.5,
        num_buckets: int = 256,
    ) -> None:
        if bucket_width <= 0:
            raise ValueError("bucket_width must be positive")
        if num_buckets < 1:
            raise ValueError("num_buckets must be >= 1")
        self._now = float(start_time)
        self._seq = 0
        self._active_process = None
        #: Optional EventTracer (see repro.sim.tracing).
        self._tracer = None

        # -- two-level scheduler state --
        self._width = float(bucket_width)
        self._inv_width = 1.0 / self._width
        self._nbuckets = num_buckets
        #: Index of the bucket containing the clock (monotone).
        self._cur_idx = int(self._now / self._width)
        #: Upper time bound of the current bucket: anything scheduled
        #: below it goes straight to the current heap (one float compare
        #: on the hot path instead of a bucket-index computation).
        self._cur_limit = (self._cur_idx + 1) * self._width
        #: Sorted-descending entries of the current bucket (pop from end).
        self._cur_run: List[tuple] = []
        #: Heap of late arrivals into the current bucket.
        self._cur_heap: List[tuple] = []
        #: bucket index -> unsorted entry list, for (cur, cur + nbuckets).
        self._buckets: dict = {}
        #: Heap of entries beyond the calendar horizon.
        self._far: List[tuple] = []
        #: Total entries across all structures (including cancelled).
        self._depth = 0
        #: Cancelled entries still occupying queue slots.
        self._cancelled_queued = 0

        # -- free lists --
        self._cb_pool: List[Callback] = []
        self._sleep_pool: List[_Sleep] = []

    # -- inspection -------------------------------------------------------

    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    @property
    def active_process(self):
        """The process currently being resumed, if any."""
        return self._active_process

    @property
    def queue_depth(self) -> int:
        """Entries currently occupying queue slots (cancelled included)."""
        return self._depth

    def peek(self) -> float:
        """Time of the next live scheduled event, or ``float('inf')``."""
        entry = self._peek_live()
        return entry[0] if entry is not None else float("inf")

    # -- event construction ------------------------------------------------

    def event(self) -> Event:
        """Create a new pending :class:`Event`."""
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        """Create a :class:`Timeout` triggering ``delay`` seconds from now."""
        return Timeout(self, delay, value)

    def sleep(self, delay: float) -> Event:
        """Pooled one-shot timeout for ``yield sim.sleep(delta)``.

        Identical queue behaviour to ``sim.timeout(delay)`` (one entry,
        same priority, same insertion order) but the event object comes
        from a free list and is recycled as soon as it is processed.  The
        returned event must be yielded immediately and never stored,
        composed or cancelled.  Falls back to a real :class:`Timeout`
        while a tracer is attached.
        """
        if self._tracer is not None:
            return Timeout(self, delay)
        if delay < 0:
            raise ValueError(f"negative sleep delay {delay!r}")
        pool = self._sleep_pool
        event = pool.pop() if pool else _Sleep(self)
        event._ok = True
        event._value = None
        self._enqueue(event, NORMAL, delay)
        return event

    def process(self, generator) -> "Process":
        """Start a new generator :class:`Process`."""
        from .process import Process

        return Process(self, generator)

    def all_of(self, events: Iterable[Event]) -> Event:
        """Event that triggers when all ``events`` have succeeded."""
        from .process import AllOf

        return AllOf(self, list(events))

    def any_of(self, events: Iterable[Event]) -> Event:
        """Event that triggers when any of ``events`` triggers."""
        from .process import AnyOf

        return AnyOf(self, list(events))

    # -- scheduling --------------------------------------------------------

    def _schedule(self, entry: tuple) -> None:
        """Route one queue entry into the calendar / current heap / far."""
        bucket = int(entry[0] * self._inv_width)
        if bucket <= self._cur_idx:
            heappush(self._cur_heap, entry)
        elif bucket < self._cur_idx + self._nbuckets:
            lst = self._buckets.get(bucket)
            if lst is None:
                self._buckets[bucket] = [entry]
            else:
                lst.append(entry)
        else:
            heappush(self._far, entry)
        self._depth += 1

    def _enqueue(self, event: Event, priority: int, delay: float = 0.0) -> None:
        """Put a triggered event on the queue, ``delay`` seconds from now."""
        # Hot path: _schedule inlined (every trigger/timeout lands here).
        # The dominant schedule-at-now+δ case is one compare + heappush.
        self._seq += 1
        t = self._now + delay
        entry = (t, priority, self._seq, event)
        if t < self._cur_limit:
            heappush(self._cur_heap, entry)
        else:
            bucket = int(t * self._inv_width)
            if bucket < self._cur_idx + self._nbuckets:
                lst = self._buckets.get(bucket)
                if lst is None:
                    self._buckets[bucket] = [entry]
                else:
                    lst.append(entry)
            else:
                heappush(self._far, entry)
        self._depth += 1

    def call_later(self, delay: float, fn: Callable[..., None], *args) -> Any:
        """Schedule ``fn(*args)`` after ``delay`` seconds — the fast path.

        Uses a pooled :class:`Callback` queue entry: no :class:`Event`
        construction, no callbacks list, no generator resumption.  Returns
        a handle supporting ``cancel()``; the handle is recycled after the
        callback fires and must not be retained past that point.  Falls
        back to a :class:`Timeout` event while a tracer is attached (the
        handle still supports ``cancel()``).
        """
        if self._tracer is not None:
            event = Timeout(self, delay)
            event.callbacks.append(lambda _evt, fn=fn, args=args: fn(*args))
            return event
        if delay < 0:
            raise ValueError(f"negative callback delay {delay!r}")
        pool = self._cb_pool
        if pool:
            cb = pool.pop()
            cb._cancelled = False
        else:
            cb = Callback(self)
        cb.fn = fn
        cb.args = args
        # Hot path: _schedule inlined (mirrors _enqueue).
        self._seq += 1
        t = self._now + delay
        entry = (t, NORMAL, self._seq, cb)
        if t < self._cur_limit:
            heappush(self._cur_heap, entry)
        else:
            bucket = int(t * self._inv_width)
            if bucket < self._cur_idx + self._nbuckets:
                lst = self._buckets.get(bucket)
                if lst is None:
                    self._buckets[bucket] = [entry]
                else:
                    lst.append(entry)
            else:
                heappush(self._far, entry)
        self._depth += 1
        return cb

    def schedule_callback(self, delay: float, callback: Callable[[], None]) -> Any:
        """Schedule a plain callable to run after ``delay`` seconds.

        Convenience wrapper used by non-process components (e.g. the network
        fabric delivering messages).  Returns a cancellable handle (see
        :meth:`call_later`).
        """
        return self.call_later(delay, callback)

    # -- queue internals ---------------------------------------------------

    def _advance_bucket(self) -> None:
        """Move the calendar window to the next non-empty bucket.

        Raises :class:`IndexError` when nothing is scheduled anywhere.
        """
        buckets = self._buckets
        far = self._far
        if buckets:
            self._cur_idx = min(buckets)
        elif far:
            self._cur_idx = int(far[0][0] * self._inv_width)
        else:
            raise _QueueEmpty("pop from an empty event queue")
        self._cur_limit = (self._cur_idx + 1) * self._width
        # Pull far-heap entries that the new horizon now covers.
        horizon = (self._cur_idx + self._nbuckets) * self._width
        while far and far[0][0] < horizon:
            entry = heappop(far)
            self._depth -= 1  # _schedule re-counts it
            self._schedule(entry)
        run = buckets.pop(self._cur_idx, None)
        if run is not None:
            # One sort per bucket; (time, priority, seq) is unique, so the
            # comparison never reaches the object and the order is exactly
            # the old global-heap order.
            run.sort(reverse=True)
            self._cur_run = run

    def _peek_live(self) -> Optional[tuple]:
        """Next live entry (discarding cancelled heads), or ``None``."""
        while True:
            run = self._cur_run
            cur_heap = self._cur_heap
            while run and run[-1][3]._cancelled:
                run.pop()
                self._depth -= 1
                self._cancelled_queued -= 1
            while cur_heap and cur_heap[0][3]._cancelled:
                heappop(cur_heap)
                self._depth -= 1
                self._cancelled_queued -= 1
            if run:
                if cur_heap and cur_heap[0] < run[-1]:
                    return cur_heap[0]
                return run[-1]
            if cur_heap:
                return cur_heap[0]
            if not self._buckets and not self._far:
                return None
            self._advance_bucket()

    def _pop_live(self) -> tuple:
        """Pop the next live entry directly (hot path for :meth:`step`)."""
        cur_heap = self._cur_heap
        run = self._cur_run
        while True:
            if run:
                if cur_heap and cur_heap[0] < run[-1]:
                    entry = heappop(cur_heap)
                else:
                    entry = run.pop()
            elif cur_heap:
                entry = heappop(cur_heap)
            else:
                self._advance_bucket()
                run = self._cur_run
                continue
            self._depth -= 1
            if entry[3]._cancelled:
                self._cancelled_queued -= 1
                continue
            return entry

    def _note_cancel(self) -> None:
        """Bookkeeping hook for Event/Callback.cancel: maybe compact.

        Threshold-based compaction (mirroring the cache heap's
        ``note_expiry_update`` compaction): once cancelled entries pass a
        floor *and* outnumber live ones, rebuild the queue without them so
        abandoned reply timers cannot grow it unboundedly.
        """
        self._cancelled_queued += 1
        if (
            self._cancelled_queued > _COMPACT_MIN_CANCELLED
            and self._cancelled_queued * 2 > self._depth
        ):
            self._compact()

    def _compact(self) -> None:
        """Rebuild the queue structures with cancelled entries dropped."""
        live: List[tuple] = []
        for entry in self._cur_run:
            if not entry[3]._cancelled:
                live.append(entry)
        for entry in self._cur_heap:
            if not entry[3]._cancelled:
                live.append(entry)
        for bucket in self._buckets.values():
            for entry in bucket:
                if not entry[3]._cancelled:
                    live.append(entry)
        for entry in self._far:
            if not entry[3]._cancelled:
                live.append(entry)
        self._cur_run = []
        self._cur_heap = []
        self._buckets = {}
        self._far = []
        self._depth = 0
        self._cancelled_queued = 0
        # Entries keep their (time, priority, seq) keys, so re-routing them
        # preserves the processing order exactly.
        for entry in live:
            self._schedule(entry)

    def _recycle_callback(self, cb: Callback) -> None:
        cb.fn = None
        cb.args = ()
        if len(self._cb_pool) < _POOL_LIMIT:
            self._cb_pool.append(cb)

    # -- execution ---------------------------------------------------------

    def step(self) -> None:
        """Process the single next event.

        Raises :class:`IndexError` if the queue is empty and re-raises any
        un-defused event failure.
        """
        entry = self._pop_live()
        self._now = entry[0]
        event = entry[3]

        if type(event) is Callback:
            # Direct-callback fast path: no Event machinery at all.
            fn = event.fn
            args = event.args
            self._recycle_callback(event)
            if self._tracer is not None:
                self._tracer.observe(self._now, event)
            fn(*args)
            return

        if self._tracer is not None:
            self._tracer.observe(self._now, event)

        callbacks, event.callbacks = event.callbacks, None
        for callback in callbacks:
            callback(event)

        if not event._ok and not event._defused:
            exc = event._value
            if isinstance(exc, BaseException):
                raise exc
            raise SimulationError(f"event failed with non-exception {exc!r}")

        if type(event) is _Sleep and len(self._sleep_pool) < _POOL_LIMIT:
            # The waiter has been resumed; the pooled timer is dead weight.
            event._value = _PENDING
            event._ok = True
            event._defused = False
            event._cancelled = False
            event.callbacks = []
            self._sleep_pool.append(event)

    def run(self, until: Optional[float] = None) -> None:
        """Run until the queue is exhausted or ``until`` is reached.

        If ``until`` is given, the clock is advanced exactly to ``until``
        even when no event is scheduled at that time.
        """
        if until is None:
            # Tight loop: no peek, step() pops directly.  _QueueEmpty is
            # private to the scheduler, so user-code IndexErrors propagate.
            try:
                step = self.step
                while True:
                    step()
            except _QueueEmpty:
                return
            except StopSimulation:
                return
        if until < self._now:
            raise ValueError(f"until={until!r} is in the past (now={self._now!r})")
        try:
            while True:
                entry = self._peek_live()
                if entry is None or entry[0] > until:
                    break
                self.step()
        except StopSimulation:
            return
        self._now = max(self._now, until)

    def stop(self) -> None:
        """Stop :meth:`run` from inside a callback or process."""
        raise StopSimulation()
