"""Discrete-event simulation kernel: events and the simulator loop.

This module provides the event machinery used by every other subsystem in
the reproduction.  It is deliberately simpy-like (generator-based processes
yield events and are resumed when those events trigger) but implemented from
scratch so the repository has no third-party runtime dependencies.

Determinism: events scheduled for the same simulated time are processed in
(priority, insertion-order) order, so a run is exactly reproducible given
the same seed and the same sequence of API calls.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, Iterable, List, Optional

__all__ = [
    "Event",
    "Timeout",
    "Simulator",
    "SimulationError",
    "Interrupt",
    "StopSimulation",
    "URGENT",
    "NORMAL",
]

#: Scheduling priority for interrupt-style events (processed before NORMAL
#: events scheduled for the same simulated time).
URGENT = 0
#: Default scheduling priority.
NORMAL = 1

#: Sentinel for "event has not been given a value yet".
_PENDING = object()


class SimulationError(Exception):
    """Raised for misuse of the simulation kernel (e.g. double-trigger)."""


class StopSimulation(Exception):
    """Raised internally to stop :meth:`Simulator.run` early."""


class Interrupt(Exception):
    """Thrown into a process by :meth:`Process.interrupt`.

    The interrupting cause is available as :attr:`cause`.
    """

    @property
    def cause(self) -> Any:
        """The cause passed to :meth:`Process.interrupt` (may be ``None``)."""
        return self.args[0] if self.args else None


class Event:
    """A one-shot occurrence that processes can wait for.

    An event goes through three states: *pending* (created, not triggered),
    *triggered* (given a value or an exception, scheduled on the event
    queue) and *processed* (popped from the queue; its callbacks have run).
    Processes wait on an event by ``yield``-ing it; they are resumed with
    the event's value, or have the event's exception thrown into them.
    """

    __slots__ = ("sim", "callbacks", "_value", "_ok", "_defused", "_cancelled")

    def __init__(self, sim: "Simulator") -> None:
        self.sim = sim
        #: Callbacks to run when the event is processed.  ``None`` once the
        #: event has been processed (this doubles as the "processed" flag).
        self.callbacks: Optional[List[Callable[["Event"], None]]] = []
        self._value: Any = _PENDING
        self._ok: bool = True
        self._defused: bool = False
        self._cancelled: bool = False

    # -- state ------------------------------------------------------------

    @property
    def triggered(self) -> bool:
        """True once the event has a value (it may not be processed yet)."""
        return self._value is not _PENDING

    @property
    def processed(self) -> bool:
        """True once the event's callbacks have been run."""
        return self.callbacks is None

    @property
    def ok(self) -> bool:
        """True if the event succeeded (only meaningful once triggered)."""
        return self._ok

    @property
    def value(self) -> Any:
        """The event's value; raises if the event is not yet triggered."""
        if self._value is _PENDING:
            raise SimulationError(f"{self!r} has not been triggered")
        return self._value

    # -- triggering -------------------------------------------------------

    def succeed(self, value: Any = None) -> "Event":
        """Trigger the event successfully with ``value``."""
        if self._value is not _PENDING:
            raise SimulationError(f"{self!r} already triggered")
        self._ok = True
        self._value = value
        self.sim._enqueue(self, NORMAL)
        return self

    def fail(self, exception: BaseException) -> "Event":
        """Trigger the event with an exception.

        The exception is re-raised at the end of the simulation unless some
        waiter handles it (waiting on a failed event *defuses* it).
        """
        if not isinstance(exception, BaseException):
            raise TypeError(f"{exception!r} is not an exception")
        if self._value is not _PENDING:
            raise SimulationError(f"{self!r} already triggered")
        self._ok = False
        self._value = exception
        self.sim._enqueue(self, NORMAL)
        return self

    def trigger(self, event: "Event") -> None:
        """Trigger this event with the state of another (callback helper)."""
        self._ok = event._ok
        self._value = event._value
        self.sim._enqueue(self, NORMAL)

    def defuse(self) -> None:
        """Mark the event as handled so its failure cannot crash the loop.

        A failed event whose exception no waiter consumes is re-raised
        out of :meth:`Simulator.step`.  Supervisors that learn of a
        failure through another channel (e.g. a condition that already
        failed) call this on the remaining events they were watching so
        late failures do not take down the whole simulation.  Safe to
        call before or after the event triggers.
        """
        self._defused = True

    def cancel(self) -> None:
        """Make a scheduled-but-unprocessed event inert.

        A cancelled event never runs its callbacks and — importantly —
        does not advance the simulation clock when its queue slot drains.
        Used to retire abandoned timers (e.g. a reply timeout after the
        reply arrived) so ``run()`` does not idle the clock forward.
        """
        if self.processed:
            raise SimulationError("cannot cancel a processed event")
        self._cancelled = True
        self.callbacks = None

    # -- composition ------------------------------------------------------

    def __and__(self, other: "Event") -> "Condition":
        from .process import AllOf  # local import to avoid a cycle

        return AllOf(self.sim, [self, other])

    def __or__(self, other: "Event") -> "Condition":
        from .process import AnyOf

        return AnyOf(self.sim, [self, other])

    def __repr__(self) -> str:
        return f"<{type(self).__name__} at {id(self):#x}>"


# Imported late by __and__/__or__; re-exported for type checkers.
Condition = Event


class Timeout(Event):
    """An event that triggers after a fixed simulated delay."""

    __slots__ = ("delay",)

    def __init__(self, sim: "Simulator", delay: float, value: Any = None) -> None:
        if delay < 0:
            raise ValueError(f"negative timeout delay {delay!r}")
        super().__init__(sim)
        self.delay = delay
        self._ok = True
        self._value = value
        sim._enqueue(self, NORMAL, delay)

    def __repr__(self) -> str:
        return f"<Timeout delay={self.delay!r}>"


class Simulator:
    """The event loop.

    Typical use::

        sim = Simulator()

        def worker(sim):
            yield sim.timeout(5.0)
            print("done at", sim.now)

        sim.process(worker(sim))
        sim.run()
    """

    def __init__(self, start_time: float = 0.0) -> None:
        self._now = float(start_time)
        self._queue: List[Any] = []
        self._seq = 0
        self._active_process = None
        #: Optional EventTracer (see repro.sim.tracing).
        self._tracer = None

    # -- inspection -------------------------------------------------------

    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    @property
    def active_process(self):
        """The process currently being resumed, if any."""
        return self._active_process

    def peek(self) -> float:
        """Time of the next live scheduled event, or ``float('inf')``."""
        self._drop_cancelled_head()
        return self._queue[0][0] if self._queue else float("inf")

    def _drop_cancelled_head(self) -> None:
        """Discard cancelled events from the front of the queue."""
        queue = self._queue
        while queue and queue[0][3]._cancelled:
            heapq.heappop(queue)

    # -- event construction ------------------------------------------------

    def event(self) -> Event:
        """Create a new pending :class:`Event`."""
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        """Create a :class:`Timeout` triggering ``delay`` seconds from now."""
        return Timeout(self, delay, value)

    def process(self, generator) -> "Process":
        """Start a new generator :class:`Process`."""
        from .process import Process

        return Process(self, generator)

    def all_of(self, events: Iterable[Event]) -> Event:
        """Event that triggers when all ``events`` have succeeded."""
        from .process import AllOf

        return AllOf(self, list(events))

    def any_of(self, events: Iterable[Event]) -> Event:
        """Event that triggers when any of ``events`` triggers."""
        from .process import AnyOf

        return AnyOf(self, list(events))

    # -- scheduling --------------------------------------------------------

    def _enqueue(self, event: Event, priority: int, delay: float = 0.0) -> None:
        """Put a triggered event on the queue, ``delay`` seconds from now."""
        self._seq += 1
        heapq.heappush(self._queue, (self._now + delay, priority, self._seq, event))

    def schedule_callback(self, delay: float, callback: Callable[[], None]) -> Event:
        """Schedule a plain callable to run after ``delay`` seconds.

        Convenience wrapper used by non-process components (e.g. the network
        fabric delivering messages).  Returns the underlying event.
        """
        event = Timeout(self, delay)
        event.callbacks.append(lambda _evt: callback())
        return event

    # -- execution ---------------------------------------------------------

    def step(self) -> None:
        """Process the single next event.

        Raises :class:`IndexError` if the queue is empty and re-raises any
        un-defused event failure.
        """
        self._drop_cancelled_head()
        self._now, _prio, _seq, event = heapq.heappop(self._queue)
        if self._tracer is not None:
            self._tracer.observe(self._now, event)

        callbacks, event.callbacks = event.callbacks, None
        for callback in callbacks:
            callback(event)

        if not event._ok and not event._defused:
            exc = event._value
            if isinstance(exc, BaseException):
                raise exc
            raise SimulationError(f"event failed with non-exception {exc!r}")

    def run(self, until: Optional[float] = None) -> None:
        """Run until the queue is exhausted or ``until`` is reached.

        If ``until`` is given, the clock is advanced exactly to ``until``
        even when no event is scheduled at that time.
        """
        if until is not None and until < self._now:
            raise ValueError(f"until={until!r} is in the past (now={self._now!r})")
        try:
            while True:
                self._drop_cancelled_head()
                if not self._queue:
                    break
                if until is not None and self._queue[0][0] > until:
                    break
                self.step()
        except StopSimulation:
            return
        if until is not None:
            self._now = max(self._now, until)

    def stop(self) -> None:
        """Stop :meth:`run` from inside a callback or process."""
        raise StopSimulation()
