"""Optional simulation observability.

Attaching an :class:`EventTracer` to a :class:`~repro.sim.core.Simulator`
records what the event loop processes — event counts by type, processing
rate over simulated time, and (optionally) a bounded tail of recent
events for post-mortem debugging of stuck or runaway models.

Tracing is strictly opt-in and adds a single attribute check to the hot
loop when disabled.

Example::

    sim = Simulator()
    tracer = EventTracer(sim, keep_last=50)
    ... run ...
    print(tracer.summary())
"""

from __future__ import annotations

from collections import Counter, deque
from typing import Deque, List, Optional, Tuple

from .core import Event, Simulator

__all__ = ["EventTracer"]


class EventTracer:
    """Counts (and optionally records) every processed event.

    Args:
        sim: the simulator to attach to (one tracer per simulator).
        keep_last: size of the recent-event ring buffer; 0 disables
            recording and keeps only counters.
    """

    def __init__(self, sim: Simulator, keep_last: int = 0) -> None:
        if getattr(sim, "_tracer", None) is not None:
            raise ValueError("simulator already has a tracer")
        self.sim = sim
        self.counts: Counter = Counter()
        self.total = 0
        self.first_time: Optional[float] = None
        self.last_time: Optional[float] = None
        self._ring: Optional[Deque[Tuple[float, str]]] = (
            deque(maxlen=keep_last) if keep_last > 0 else None
        )
        sim._tracer = self

    # Called by Simulator.step for every processed event.
    def observe(self, now: float, event: Event) -> None:
        kind = type(event).__name__
        self.counts[kind] += 1
        self.total += 1
        if self.first_time is None:
            self.first_time = now
        self.last_time = now
        if self._ring is not None:
            self._ring.append((now, kind))

    def detach(self) -> None:
        """Stop tracing."""
        if getattr(self.sim, "_tracer", None) is self:
            self.sim._tracer = None

    @property
    def recent(self) -> List[Tuple[float, str]]:
        """The tail of processed events (empty when recording disabled)."""
        return list(self._ring) if self._ring is not None else []

    def events_per_sim_second(self) -> float:
        """Processing density over the observed simulated span."""
        if self.first_time is None or self.last_time == self.first_time:
            return 0.0
        return self.total / (self.last_time - self.first_time)

    def publish(self, registry, **labels) -> None:
        """Publish per-event-type counts into a metrics registry.

        Emits one ``sim_events`` counter per processed event type plus a
        ``sim_events_per_sim_second`` gauge; ``labels`` are attached to
        every series.  This is how ``Observation(deep=True)`` folds the
        kernel's event stream into the same registry the replay metrics
        live in.
        """
        for kind, count in sorted(self.counts.items()):
            registry.counter("sim_events", kind=kind, **labels).inc(count)
        registry.gauge("sim_events_per_sim_second", **labels).set(
            self.events_per_sim_second()
        )

    def summary(self) -> str:
        """Human-readable one-screen digest."""
        lines = [f"{self.total} events over "
                 f"[{self.first_time}, {self.last_time}] sim-seconds"]
        for kind, count in self.counts.most_common():
            lines.append(f"  {kind:16s} {count}")
        return "\n".join(lines)
