"""Discrete-event simulation kernel.

Public surface::

    from repro.sim import Simulator, Interrupt, Resource, Store, RngRegistry

    sim = Simulator()

    def proc(sim):
        yield sim.timeout(1.0)
        return "done"

    p = sim.process(proc(sim))
    sim.run()
    assert p.value == "done"
"""

from .core import (
    Callback,
    Event,
    Interrupt,
    SimulationError,
    Simulator,
    StopSimulation,
    Timeout,
)
from .process import AllOf, AnyOf, ConditionValue, Process
from .resources import Request, Resource, Store
from .rng import RngRegistry
from .tracing import EventTracer

__all__ = [
    "Simulator",
    "Event",
    "Timeout",
    "Callback",
    "Process",
    "Interrupt",
    "SimulationError",
    "StopSimulation",
    "AllOf",
    "AnyOf",
    "ConditionValue",
    "Resource",
    "Request",
    "Store",
    "RngRegistry",
    "EventTracer",
]
