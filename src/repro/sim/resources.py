"""Shared resources for simulation processes.

Two primitives cover everything the reproduction needs:

* :class:`Resource` — a counted resource (e.g. a server CPU, a disk arm)
  with FIFO queueing.  Used by the cost models to serialise work and to
  measure utilisation.
* :class:`Store` — an unbounded FIFO mailbox of items.  Used for request
  queues and message inboxes.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Deque, List, Optional

from .core import Event, Simulator

__all__ = ["Resource", "Request", "Store"]


class Request(Event):
    """A pending claim on a :class:`Resource`; usable as a context manager."""

    __slots__ = ("resource",)

    def __init__(self, resource: "Resource") -> None:
        super().__init__(resource.sim)
        self.resource = resource
        resource._queue.append(self)
        resource._grant()

    def __enter__(self) -> "Request":
        return self

    def __exit__(self, exc_type, exc_val, exc_tb) -> None:
        self.resource.release(self)

    def cancel(self) -> None:
        """Withdraw an un-granted request (used on interrupt)."""
        self.resource.release(self)


class Resource:
    """A counted resource with FIFO queueing.

    Usage::

        with resource.request() as req:
            yield req
            yield sim.timeout(work)

    Utilisation accounting: the resource records total busy time (summed
    over units in use), which :class:`repro.metrics.iostat.IostatSampler`
    turns into an iostat-style utilisation percentage.
    """

    def __init__(self, sim: Simulator, capacity: int = 1) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity!r}")
        self.sim = sim
        self.capacity = capacity
        self._users: List[Request] = []
        self._queue: Deque[Request] = deque()
        self._busy_time = 0.0
        self._last_change = sim.now

    # -- accounting ---------------------------------------------------------

    @property
    def count(self) -> int:
        """Number of units currently in use."""
        return len(self._users)

    @property
    def queue_length(self) -> int:
        """Number of requests waiting for a unit."""
        return len(self._queue)

    def busy_time(self) -> float:
        """Cumulative unit-seconds of use up to the current instant."""
        return self._busy_time + self.count * (self.sim.now - self._last_change)

    def _account(self) -> None:
        now = self.sim.now
        self._busy_time += self.count * (now - self._last_change)
        self._last_change = now

    # -- protocol -----------------------------------------------------------

    def request(self) -> Request:
        """Queue a claim for one unit; the returned event triggers on grant."""
        return Request(self)

    def release(self, request: Request) -> None:
        """Return a unit (or withdraw an un-granted request)."""
        if request in self._users:
            self._account()
            self._users.remove(request)
            self._grant()
        else:
            try:
                self._queue.remove(request)
            except ValueError:
                pass  # releasing twice is a no-op

    def _grant(self) -> None:
        while self._queue and len(self._users) < self.capacity:
            request = self._queue.popleft()
            self._account()
            self._users.append(request)
            request.succeed()


class Store:
    """Unbounded FIFO store of items with blocking ``get``.

    ``put`` never blocks (the reproduction's queues are open-ended, like a
    listen backlog); ``get`` returns an event that triggers with the oldest
    item once one is available.
    """

    def __init__(self, sim: Simulator) -> None:
        self.sim = sim
        self._items: Deque[Any] = deque()
        self._getters: Deque[Event] = deque()

    def __len__(self) -> int:
        return len(self._items)

    @property
    def items(self) -> tuple:
        """Snapshot of queued items (oldest first)."""
        return tuple(self._items)

    def put(self, item: Any) -> None:
        """Add an item, waking the oldest waiting getter if any."""
        # Skip getters that were cancelled (triggered externally).
        while self._getters:
            getter = self._getters.popleft()
            if not getter.triggered:
                getter.succeed(item)
                return
        self._items.append(item)

    def get(self) -> Event:
        """Return an event that triggers with the next available item."""
        event = Event(self.sim)
        if self._items:
            event.succeed(self._items.popleft())
        else:
            self._getters.append(event)
        return event

    def try_get(self) -> Optional[Any]:
        """Non-blocking get; returns ``None`` when empty."""
        if self._items:
            return self._items.popleft()
        return None

    def clear(self) -> int:
        """Drop all queued items, returning how many were dropped."""
        dropped = len(self._items)
        self._items.clear()
        return dropped
