"""Deterministic per-purpose random-number streams.

Every stochastic component (trace generator, modifier, latency jitter,
failure injector, ...) draws from its own named stream so that changing how
one component consumes randomness never perturbs another.  All streams are
derived from a single master seed, making whole experiments reproducible
from one integer.
"""

from __future__ import annotations

import hashlib
import random
from typing import Dict

__all__ = ["RngRegistry"]


class RngRegistry:
    """Registry of named, independently-seeded ``random.Random`` streams."""

    def __init__(self, seed: int = 0) -> None:
        self.seed = int(seed)
        self._streams: Dict[str, random.Random] = {}

    def stream(self, name: str) -> random.Random:
        """Return the stream for ``name``, creating it deterministically.

        The stream's seed is derived from ``(master seed, name)`` via
        SHA-256, so streams are stable across runs and independent of the
        order in which they are first requested.
        """
        stream = self._streams.get(name)
        if stream is None:
            digest = hashlib.sha256(f"{self.seed}:{name}".encode()).digest()
            stream = random.Random(int.from_bytes(digest[:8], "big"))
            self._streams[name] = stream
        return stream

    def fork(self, salt: str) -> "RngRegistry":
        """Derive a new registry whose streams are independent of ours.

        Used by parameter sweeps: each configuration forks the base registry
        with a distinct salt.
        """
        digest = hashlib.sha256(f"{self.seed}:fork:{salt}".encode()).digest()
        return RngRegistry(int.from_bytes(digest[:8], "big"))

    def __repr__(self) -> str:
        return f"RngRegistry(seed={self.seed}, streams={sorted(self._streams)})"
