"""The network fabric: registration, delivery, failures and partitions.

Delivery semantics model a TCP connection at the granularity the paper
cares about:

* A send to a reachable, live node is delivered after the latency model's
  one-way delay; the event returned by :meth:`Network.send` succeeds at the
  moment of delivery (the sender can treat that as "the TCP send
  completed").
* A send to a down node or across a partition fails with
  :class:`Unreachable` after ``connect_timeout`` seconds, mirroring a
  refused/timed-out connection.  Fire-and-forget senders may ignore the
  returned event; the failure is pre-defused so it never crashes the run.
* Reachability is also re-checked at delivery time, so a node that dies (or
  a partition that forms) while a message is in flight loses the message.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, List, Optional, Set, Tuple

from ..sim import Event, Simulator
from .latency import LanModel, LatencyModel
from .message import Address, Message
from .stats import NetworkStats

__all__ = ["Network", "Unreachable"]


class Unreachable(Exception):
    """Raised (via the send event) when a message cannot be delivered."""

    def __init__(self, message: Message, reason: str) -> None:
        super().__init__(f"{message!r} undeliverable: {reason}")
        self.message = message
        self.reason = reason


class Network:
    """Connects registered nodes and moves :class:`Message`s between them."""

    def __init__(
        self,
        sim: Simulator,
        latency: Optional[LatencyModel] = None,
        stats: Optional[NetworkStats] = None,
        connect_timeout: float = 3.0,
    ) -> None:
        self.sim = sim
        self.latency = latency or LanModel()
        self.stats = stats or NetworkStats()
        self.connect_timeout = connect_timeout
        self._handlers: Dict[Address, Callable[[Message], None]] = {}
        self._down: Set[Address] = set()
        self._partitions: List[Tuple[frozenset, frozenset]] = []

    # -- topology -----------------------------------------------------------

    def register(self, address: Address, handler: Callable[[Message], None]) -> None:
        """Attach a node; ``handler(message)`` runs at each delivery."""
        if address in self._handlers:
            raise ValueError(f"address {address!r} already registered")
        self._handlers[address] = handler

    def unregister(self, address: Address) -> None:
        """Detach a node entirely (it becomes unknown, not merely down)."""
        self._handlers.pop(address, None)

    @property
    def addresses(self) -> Tuple[Address, ...]:
        """All registered addresses."""
        return tuple(self._handlers)

    # -- failures -----------------------------------------------------------

    def set_down(self, address: Address) -> None:
        """Mark a node as crashed; sends to it fail until :meth:`set_up`."""
        self._down.add(address)

    def set_up(self, address: Address) -> None:
        """Bring a crashed node back."""
        self._down.discard(address)

    def is_up(self, address: Address) -> bool:
        """True when the node is registered and not crashed."""
        return address in self._handlers and address not in self._down

    def partition(self, group_a: Iterable[Address], group_b: Iterable[Address]) -> None:
        """Cut connectivity between every pair across the two groups."""
        self._partitions.append((frozenset(group_a), frozenset(group_b)))

    def heal(self) -> None:
        """Remove all partitions."""
        self._partitions.clear()

    def is_reachable(self, src: Address, dst: Address) -> bool:
        """True when no partition separates ``src`` from ``dst``."""
        for group_a, group_b in self._partitions:
            if (src in group_a and dst in group_b) or (
                src in group_b and dst in group_a
            ):
                return False
        return True

    # -- transport ------------------------------------------------------------

    def send(self, message: Message) -> Event:
        """Send a message; returns an event tracking the outcome.

        The event succeeds with the message at delivery time, or fails with
        :class:`Unreachable` after the connect timeout.  The failure is
        pre-defused: senders that do not wait on the event are not crashed
        by it (the channel layer is the place for retry logic).
        """
        outcome = Event(self.sim)

        def fail(reason: str, delay: float) -> None:
            def do_fail() -> None:
                self.stats.record_drop(message)
                outcome._defused = True
                outcome.fail(Unreachable(message, reason))

            self.sim.schedule_callback(delay, do_fail)

        if message.dst not in self._handlers:
            fail("unknown address", self.connect_timeout)
            return outcome
        if message.dst in self._down or not self.is_reachable(message.src, message.dst):
            fail("host unreachable", self.connect_timeout)
            return outcome

        def deliver() -> None:
            # Re-check at delivery time: the destination may have crashed or
            # been partitioned away while the message was in flight.
            if message.dst in self._down or not self.is_reachable(
                message.src, message.dst
            ):
                self.stats.record_drop(message)
                outcome._defused = True
                outcome.fail(Unreachable(message, "lost in flight"))
                return
            self.stats.record_delivery(message)
            outcome.succeed(message)
            self._handlers[message.dst](message)

        self.sim.schedule_callback(self.latency.delay(message), deliver)
        return outcome
