"""The network fabric: registration, delivery, failures and partitions.

Delivery semantics model a TCP connection at the granularity the paper
cares about:

* A send to a reachable, live node is delivered after the latency model's
  one-way delay; the event returned by :meth:`Network.send` succeeds at the
  moment of delivery (the sender can treat that as "the TCP send
  completed").
* A send to a down node or across a partition fails with
  :class:`Unreachable` after ``connect_timeout`` seconds, mirroring a
  refused/timed-out connection.  Fire-and-forget senders may ignore the
  returned event; the failure is pre-defused so it never crashes the run.
* A crashed *sender* cannot transmit either: its sends fail the same way,
  so a process that outlives its host (e.g. an invalidation fan-out whose
  server died mid-loop) retries instead of teleporting messages.
* Reachability is also re-checked at delivery time, so a node that dies (or
  a partition that forms) while a message is in flight loses the message.

Chaos extensions:

* Partitions are individually removable: :meth:`Network.partition` returns
  a handle, and :meth:`Network.heal` takes an optional handle so
  overlapping partition faults heal independently.
* Per-link faults (:class:`LinkFault`): seeded probabilistic message loss
  and duplication plus latency spikes/jitter (which reorder messages) on a
  directed ``src -> dst`` link, with ``"*"`` wildcards.  Losses are
  recorded with a reason so chaos reports can reconcile sent vs delivered.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Callable, Dict, Iterable, Optional, Set, Tuple

from ..sim import Event, Simulator
from .latency import LanModel, LatencyModel
from .message import Address, Message
from .stats import NetworkStats

__all__ = ["Network", "Unreachable", "LinkFault"]


class Unreachable(Exception):
    """Raised (via the send event) when a message cannot be delivered."""

    def __init__(self, message: Message, reason: str) -> None:
        super().__init__(f"{message!r} undeliverable: {reason}")
        self.message = message
        self.reason = reason


@dataclass(frozen=True)
class LinkFault:
    """Probabilistic misbehaviour injected on one directed link.

    Attributes:
        drop_prob: probability a message on the link is silently lost
            (the sender sees a connect-timeout failure, like a TCP send
            that never got its ACK; reliable channels retry).
        dup_prob: probability a delivered message is delivered twice
            (receivers must be idempotent).
        extra_delay: fixed latency spike added to every message.
        jitter: uniform [0, jitter] extra seconds per message; enough
            jitter reorders back-to-back messages.
    """

    drop_prob: float = 0.0
    dup_prob: float = 0.0
    extra_delay: float = 0.0
    jitter: float = 0.0

    def __post_init__(self) -> None:
        if not 0.0 <= self.drop_prob <= 1.0 or not 0.0 <= self.dup_prob <= 1.0:
            raise ValueError("probabilities must be within [0, 1]")
        if self.extra_delay < 0 or self.jitter < 0:
            raise ValueError("extra_delay and jitter must be non-negative")


class Network:
    """Connects registered nodes and moves :class:`Message`s between them."""

    def __init__(
        self,
        sim: Simulator,
        latency: Optional[LatencyModel] = None,
        stats: Optional[NetworkStats] = None,
        connect_timeout: float = 3.0,
        fast_sends: bool = True,
    ) -> None:
        self.sim = sim
        self.latency = latency or LanModel()
        self.stats = stats or NetworkStats()
        self.connect_timeout = connect_timeout
        #: Allow the zero-allocation route for ``send(..., wait=False)``.
        #: Disabled by the differential tests to force the general path.
        self.fast_sends = fast_sends
        self._handlers: Dict[Address, Callable[[Message], None]] = {}
        self._down: Set[Address] = set()
        self._partitions: Dict[int, Tuple[frozenset, frozenset]] = {}
        self._partition_seq = 0
        # (src, dst) -> (LinkFault, rng); "*" acts as a wildcard side.
        self._link_faults: Dict[Tuple[Address, Address],
                                Tuple[LinkFault, random.Random]] = {}

    # -- topology -----------------------------------------------------------

    def register(self, address: Address, handler: Callable[[Message], None]) -> None:
        """Attach a node; ``handler(message)`` runs at each delivery."""
        if address in self._handlers:
            raise ValueError(f"address {address!r} already registered")
        self._handlers[address] = handler

    def unregister(self, address: Address) -> None:
        """Detach a node entirely (it becomes unknown, not merely down)."""
        self._handlers.pop(address, None)

    @property
    def addresses(self) -> Tuple[Address, ...]:
        """All registered addresses."""
        return tuple(self._handlers)

    # -- failures -----------------------------------------------------------

    def set_down(self, address: Address) -> None:
        """Mark a node as crashed; sends to it fail until :meth:`set_up`."""
        self._down.add(address)

    def set_up(self, address: Address) -> None:
        """Bring a crashed node back."""
        self._down.discard(address)

    def is_up(self, address: Address) -> bool:
        """True when the node is registered and not crashed."""
        return address in self._handlers and address not in self._down

    def partition(
        self, group_a: Iterable[Address], group_b: Iterable[Address]
    ) -> int:
        """Cut connectivity between every pair across the two groups.

        Returns a handle that :meth:`heal` accepts, so overlapping
        partitions (chaos schedules) can be removed independently.
        """
        self._partition_seq += 1
        self._partitions[self._partition_seq] = (
            frozenset(group_a),
            frozenset(group_b),
        )
        return self._partition_seq

    def heal(self, handle: Optional[int] = None) -> None:
        """Remove one partition (by handle) or all of them (no handle)."""
        if handle is None:
            self._partitions.clear()
        else:
            self._partitions.pop(handle, None)

    def is_reachable(self, src: Address, dst: Address) -> bool:
        """True when no partition separates ``src`` from ``dst``."""
        for group_a, group_b in self._partitions.values():
            if (src in group_a and dst in group_b) or (
                src in group_b and dst in group_a
            ):
                return False
        return True

    # -- link faults ---------------------------------------------------------

    def set_link_fault(
        self,
        src: Address,
        dst: Address,
        fault: LinkFault,
        rng: Optional[random.Random] = None,
    ) -> None:
        """Install a :class:`LinkFault` on the directed ``src -> dst`` link.

        ``"*"`` on either side matches any address.  Replaces any fault
        already installed on the same (src, dst) pair.
        """
        self._link_faults[(src, dst)] = (fault, rng or random.Random(0))

    def clear_link_fault(self, src: Address, dst: Address) -> None:
        """Remove the fault installed on the directed ``src -> dst`` link."""
        self._link_faults.pop((src, dst), None)

    def _fault_for(
        self, src: Address, dst: Address
    ) -> Optional[Tuple[LinkFault, random.Random]]:
        for key in ((src, dst), (src, "*"), ("*", dst), ("*", "*")):
            hit = self._link_faults.get(key)
            if hit is not None:
                return hit
        return None

    # -- transport ------------------------------------------------------------

    def _deliver_nowait(self, message: Message) -> None:
        """Delivery leg of the fire-and-forget route (no outcome event)."""
        if message.dst in self._down:
            self.stats.record_loss(message, "destination died in flight")
            return
        if not self.is_reachable(message.src, message.dst):
            self.stats.record_loss(message, "partition formed in flight")
            return
        self.stats.record_delivery(message)
        self._handlers[message.dst](message)

    def _drop_nowait(self, message: Message) -> None:
        """Connect-timeout leg of the fire-and-forget route."""
        self.stats.record_drop(message)

    def send(self, message: Message, wait: bool = True) -> Optional[Event]:
        """Send a message; returns an event tracking the outcome.

        The event succeeds with the message at delivery time, or fails with
        :class:`Unreachable` after the connect timeout.  The failure is
        pre-defused: senders that do not wait on the event are not crashed
        by it (the channel layer is the place for retry logic).

        ``wait=False`` declares that the caller discards the outcome
        (fire-and-forget).  When no link fault or tracer is attached the
        send then takes a zero-allocation route — one pooled callback
        entry, no :class:`Event` construction — and returns ``None``.
        Stats, delivery-time reachability re-checks and timing are
        identical to the general path; only the no-op processing of the
        unobserved outcome event disappears, so replay results are
        unchanged event-for-event.
        """
        if (
            not wait
            and self.fast_sends
            and self.sim._tracer is None
            and not self._link_faults
        ):
            if message.dst not in self._handlers or (
                message.src in self._down
                or message.dst in self._down
                or not self.is_reachable(message.src, message.dst)
            ):
                self.sim.call_later(self.connect_timeout, self._drop_nowait, message)
                return None
            self.stats.record_send(message)
            self.sim.call_later(
                self.latency.delay(message), self._deliver_nowait, message
            )
            return None

        outcome = Event(self.sim)

        def fail(reason: str, delay: float, lost: bool = False) -> None:
            def do_fail() -> None:
                if lost:
                    self.stats.record_loss(message, reason)
                else:
                    self.stats.record_drop(message)
                outcome._defused = True
                outcome.fail(Unreachable(message, reason))

            self.sim.schedule_callback(delay, do_fail)

        if message.dst not in self._handlers:
            fail("unknown address", self.connect_timeout)
            return outcome
        if (
            message.src in self._down
            or message.dst in self._down
            or not self.is_reachable(message.src, message.dst)
        ):
            fail("host unreachable", self.connect_timeout)
            return outcome

        fault_hit = self._fault_for(message.src, message.dst)
        self.stats.record_send(message)

        delay = self.latency.delay(message)
        duplicate_delay: Optional[float] = None
        if fault_hit is not None:
            fault, rng = fault_hit
            if fault.drop_prob > 0 and rng.random() < fault.drop_prob:
                # The segment vanished: the sender times out waiting for
                # the ACK, exactly like a connect failure, but the loss is
                # recorded as such for sent-vs-delivered reconciliation.
                fail("link fault", self.connect_timeout, lost=True)
                return outcome
            delay += fault.extra_delay
            if fault.jitter > 0:
                delay += rng.uniform(0.0, fault.jitter)
            if fault.dup_prob > 0 and rng.random() < fault.dup_prob:
                duplicate_delay = fault.extra_delay + self.latency.delay(message)
                if fault.jitter > 0:
                    duplicate_delay += rng.uniform(0.0, fault.jitter)

        def in_flight_loss_reason() -> Optional[str]:
            if message.dst in self._down:
                return "destination died in flight"
            if not self.is_reachable(message.src, message.dst):
                return "partition formed in flight"
            return None

        def deliver() -> None:
            # Re-check at delivery time: the destination may have crashed or
            # been partitioned away while the message was in flight.
            reason = in_flight_loss_reason()
            if reason is not None:
                self.stats.record_loss(message, reason)
                outcome._defused = True
                outcome.fail(Unreachable(message, "lost in flight"))
                return
            self.stats.record_delivery(message)
            outcome.succeed(message)
            self._handlers[message.dst](message)

        def deliver_duplicate() -> None:
            if in_flight_loss_reason() is not None:
                return  # the duplicate just vanishes; nobody tracks it
            self.stats.record_duplicate(message)
            self._handlers[message.dst](message)

        self.sim.schedule_callback(delay, deliver)
        if duplicate_delay is not None:
            self.sim.schedule_callback(duplicate_delay, deliver_duplicate)
        return outcome
