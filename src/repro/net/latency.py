"""Latency models for the network fabric.

The paper's testbed is five SPARC-20s on a 100 Mb/s Ethernet; our default
:class:`LanModel` matches that (sub-millisecond propagation plus
size/bandwidth transmission time).  :class:`WanModel` adds per-pair
round-trip bases with jitter for the paper's "how would this look on the
real Internet" extrapolations.
"""

from __future__ import annotations

import random
from typing import Optional

from .message import Message

__all__ = [
    "LatencyModel",
    "LanModel",
    "WanModel",
    "FixedLatency",
    "PerturbedLatency",
]


class LatencyModel:
    """Interface: one-way delivery delay for a message."""

    def delay(self, message: Message) -> float:
        """One-way latency, in seconds, for ``message``."""
        raise NotImplementedError


class FixedLatency(LatencyModel):
    """Constant one-way delay; handy for deterministic unit tests."""

    def __init__(self, seconds: float) -> None:
        if seconds < 0:
            raise ValueError(f"negative latency {seconds!r}")
        self.seconds = seconds

    def delay(self, message: Message) -> float:
        return self.seconds


class LanModel(LatencyModel):
    """Fast-Ethernet-like LAN: propagation + transmission time.

    Defaults approximate the paper's 100 Mb/s Ethernet testbed.

    Args:
        propagation: fixed per-message overhead (switching, protocol stack).
        bandwidth_bps: link bandwidth in bits/second.
        size_scale: divide message sizes by this factor when computing
            transmission time, mirroring the paper's methodology of storing
            100x-scaled documents while *accounting* full-size bytes.
    """

    def __init__(
        self,
        propagation: float = 0.0005,
        bandwidth_bps: float = 100e6,
        size_scale: float = 1.0,
    ) -> None:
        if bandwidth_bps <= 0:
            raise ValueError("bandwidth must be positive")
        if size_scale <= 0:
            raise ValueError("size_scale must be positive")
        self.propagation = propagation
        self.bandwidth_bps = bandwidth_bps
        self.size_scale = size_scale

    def delay(self, message: Message) -> float:
        bits = 8.0 * message.size / self.size_scale
        return self.propagation + bits / self.bandwidth_bps


class WanModel(LatencyModel):
    """Wide-area model: base one-way delay with jitter plus transmission.

    Used for the paper's extrapolation arguments (Section 5.2: "How would
    the relative comparison of the response times change in the real
    Internet?").

    Args:
        base_delay: mean one-way propagation delay (seconds).
        jitter: exponential jitter scale added per message (seconds).
        bandwidth_bps: bottleneck bandwidth.
        rng: random stream for jitter; deterministic when provided.
        size_scale: see :class:`LanModel`.
    """

    def __init__(
        self,
        base_delay: float = 0.05,
        jitter: float = 0.02,
        bandwidth_bps: float = 1.5e6,
        rng: Optional[random.Random] = None,
        size_scale: float = 1.0,
    ) -> None:
        if bandwidth_bps <= 0:
            raise ValueError("bandwidth must be positive")
        self.base_delay = base_delay
        self.jitter = jitter
        self.bandwidth_bps = bandwidth_bps
        self.rng = rng or random.Random(0)
        self.size_scale = size_scale

    def delay(self, message: Message) -> float:
        bits = 8.0 * message.size / self.size_scale
        jitter = self.rng.expovariate(1.0 / self.jitter) if self.jitter > 0 else 0.0
        return self.base_delay + jitter + bits / self.bandwidth_bps


class PerturbedLatency(LatencyModel):
    """A base model perturbed by a fixed spike plus seeded jitter.

    Used by the chaos harness to model latency spikes and message
    reordering on a faulted link: the extra uniform jitter makes two
    back-to-back messages' delivery order a coin flip, which is exactly
    the reordering a congested path produces.

    Args:
        base: the underlying latency model.
        extra_delay: fixed seconds added to every message.
        jitter: uniform [0, jitter] seconds added per message.
        rng: random stream for jitter; deterministic when provided.
    """

    def __init__(
        self,
        base: LatencyModel,
        extra_delay: float = 0.0,
        jitter: float = 0.0,
        rng: Optional[random.Random] = None,
    ) -> None:
        if extra_delay < 0 or jitter < 0:
            raise ValueError("extra_delay and jitter must be non-negative")
        self.base = base
        self.extra_delay = extra_delay
        self.jitter = jitter
        self.rng = rng or random.Random(0)

    def delay(self, message: Message) -> float:
        extra = self.extra_delay
        if self.jitter > 0:
            extra += self.rng.uniform(0.0, self.jitter)
        return self.base.delay(message) + extra
