"""Message and byte accounting for the network fabric.

The paper's primary metric is "total number and bytes of messages, counting
all messages needed to service HTTP requests and to maintain cache
consistency" — this module provides exactly that, bucketed by message
category so the Table 3/4 rows (GETs, If-Modified-Since, 200s, 304s,
invalidations) fall straight out.

For chaos/fault runs the fabric additionally reconciles sends against
deliveries: every message accepted for transmission is *sent*; a sent
message that never reaches its handler is *lost* (with a recorded reason:
destination died in flight, a partition formed, or an injected link fault
ate it).  Connect-time refusals (unknown address, host already down or
partitioned at send time) remain *dropped* — the sender learns about those
synchronously, so they are not silent losses.
"""

from __future__ import annotations

from collections import Counter
from typing import Dict

from .message import Message

__all__ = ["NetworkStats"]


class NetworkStats:
    """Counts delivered messages and bytes, per category and in total."""

    def __init__(self) -> None:
        self._messages: Counter = Counter()
        self._bytes: Counter = Counter()
        self._dropped: Counter = Counter()
        self._sent: Counter = Counter()
        self._lost: Counter = Counter()
        self._lost_reasons: Counter = Counter()
        self._duplicates: Counter = Counter()
        self._batches: Counter = Counter()
        self._batched_payloads: Counter = Counter()

    # -- recording ----------------------------------------------------------

    def record_send(self, message: Message) -> None:
        """Account one message accepted for transmission."""
        self._sent[message.category] += 1

    def record_delivery(self, message: Message) -> None:
        """Account one successfully delivered message.

        Batched messages (those carrying a ``pairs`` payload, e.g. the
        sharded accelerator's coalesced INVALIDATEs) are additionally
        counted as one batch plus their per-(url, client) payload count,
        so batching savings can be read directly off the stats.
        """
        self._messages[message.category] += 1
        self._bytes[message.category] += message.size
        pairs = getattr(message, "pairs", None)
        if pairs is not None:
            self._batches[message.category] += 1
            self._batched_payloads[message.category] += sum(
                len(cids) for _url, cids in pairs
            )

    def record_drop(self, message: Message) -> None:
        """Account one message refused at connect time (sender saw it)."""
        self._dropped[message.category] += 1

    def record_loss(self, message: Message, reason: str) -> None:
        """Account one *sent* message that silently vanished in flight.

        Also counted by :meth:`record_drop` (the send's outcome event still
        fails), so ``total_dropped`` keeps meaning "all failed deliveries"
        while ``messages_lost`` isolates the silent, post-send subset chaos
        reports reconcile against ``messages_sent``.
        """
        self._dropped[message.category] += 1
        self._lost[message.category] += 1
        self._lost_reasons[reason] += 1

    def record_duplicate(self, message: Message) -> None:
        """Account one extra delivery injected by a duplication fault."""
        self._duplicates[message.category] += 1

    # -- queries ------------------------------------------------------------

    @property
    def total_messages(self) -> int:
        """All delivered messages, across categories."""
        return sum(self._messages.values())

    @property
    def total_bytes(self) -> int:
        """All delivered bytes, across categories."""
        return sum(self._bytes.values())

    @property
    def total_dropped(self) -> int:
        """All messages that failed delivery (node down / partition)."""
        return sum(self._dropped.values())

    @property
    def messages_sent(self) -> int:
        """All messages accepted for transmission."""
        return sum(self._sent.values())

    @property
    def messages_lost(self) -> int:
        """Sent messages that were silently lost in flight."""
        return sum(self._lost.values())

    @property
    def duplicates_delivered(self) -> int:
        """Extra deliveries caused by duplication faults."""
        return sum(self._duplicates.values())

    @property
    def batches_delivered(self) -> int:
        """Delivered messages that carried a batched payload."""
        return sum(self._batches.values())

    @property
    def batched_payloads_delivered(self) -> int:
        """Individual payload items delivered inside batched messages."""
        return sum(self._batched_payloads.values())

    def batches(self, category: str) -> int:
        """Delivered batched-message count for one category."""
        return self._batches[category]

    def batched_payloads(self, category: str) -> int:
        """Delivered batched payload-item count for one category."""
        return self._batched_payloads[category]

    def messages(self, category: str) -> int:
        """Delivered message count for one category."""
        return self._messages[category]

    def bytes(self, category: str) -> int:
        """Delivered byte count for one category."""
        return self._bytes[category]

    def dropped(self, category: str) -> int:
        """Dropped message count for one category."""
        return self._dropped[category]

    def lost(self, category: str) -> int:
        """In-flight loss count for one category."""
        return self._lost[category]

    def lost_by_reason(self) -> Dict[str, int]:
        """Snapshot ``{loss reason: count}`` for chaos reconciliation."""
        return dict(self._lost_reasons)

    def by_category(self) -> Dict[str, int]:
        """Snapshot ``{category: delivered message count}``."""
        return dict(self._messages)

    def bytes_by_category(self) -> Dict[str, int]:
        """Snapshot ``{category: delivered bytes}``."""
        return dict(self._bytes)

    def publish(self, registry, **labels) -> None:
        """Publish per-category wire accounting into a metrics registry.

        Emits ``net_messages`` / ``net_bytes`` counters per message
        category (the Table 3/4 rows), plus loss/duplicate counters when
        a fault campaign produced any.  ``labels`` (e.g. ``protocol=``,
        ``trace=``) are attached to every series.
        """
        for category, count in sorted(self._messages.items()):
            registry.counter(
                "net_messages", category=category, **labels
            ).inc(count)
        for category, size in sorted(self._bytes.items()):
            registry.counter("net_bytes", category=category, **labels).inc(size)
        for category, count in sorted(self._lost.items()):
            if count:
                registry.counter(
                    "net_lost", category=category, **labels
                ).inc(count)
        for reason, count in sorted(self._lost_reasons.items()):
            registry.counter("net_lost_by_reason", reason=reason, **labels).inc(
                count
            )
        for category, count in sorted(self._duplicates.items()):
            if count:
                registry.counter(
                    "net_duplicates", category=category, **labels
                ).inc(count)
        for category, count in sorted(self._batches.items()):
            if count:
                registry.counter(
                    "net_batches", category=category, **labels
                ).inc(count)
        for category, count in sorted(self._batched_payloads.items()):
            if count:
                registry.counter(
                    "net_batched_payloads", category=category, **labels
                ).inc(count)

    def __repr__(self) -> str:
        return (
            f"NetworkStats(messages={self.total_messages}, "
            f"bytes={self.total_bytes}, sent={self.messages_sent}, "
            f"lost={self.messages_lost}, dropped={self.total_dropped})"
        )
