"""Message and byte accounting for the network fabric.

The paper's primary metric is "total number and bytes of messages, counting
all messages needed to service HTTP requests and to maintain cache
consistency" — this module provides exactly that, bucketed by message
category so the Table 3/4 rows (GETs, If-Modified-Since, 200s, 304s,
invalidations) fall straight out.
"""

from __future__ import annotations

from collections import Counter
from typing import Dict

from .message import Message

__all__ = ["NetworkStats"]


class NetworkStats:
    """Counts delivered messages and bytes, per category and in total."""

    def __init__(self) -> None:
        self._messages: Counter = Counter()
        self._bytes: Counter = Counter()
        self._dropped: Counter = Counter()

    # -- recording ----------------------------------------------------------

    def record_delivery(self, message: Message) -> None:
        """Account one successfully delivered message."""
        self._messages[message.category] += 1
        self._bytes[message.category] += message.size

    def record_drop(self, message: Message) -> None:
        """Account one message that could not be delivered."""
        self._dropped[message.category] += 1

    # -- queries ------------------------------------------------------------

    @property
    def total_messages(self) -> int:
        """All delivered messages, across categories."""
        return sum(self._messages.values())

    @property
    def total_bytes(self) -> int:
        """All delivered bytes, across categories."""
        return sum(self._bytes.values())

    @property
    def total_dropped(self) -> int:
        """All messages that failed delivery (node down / partition)."""
        return sum(self._dropped.values())

    def messages(self, category: str) -> int:
        """Delivered message count for one category."""
        return self._messages[category]

    def bytes(self, category: str) -> int:
        """Delivered byte count for one category."""
        return self._bytes[category]

    def dropped(self, category: str) -> int:
        """Dropped message count for one category."""
        return self._dropped[category]

    def by_category(self) -> Dict[str, int]:
        """Snapshot ``{category: delivered message count}``."""
        return dict(self._messages)

    def bytes_by_category(self) -> Dict[str, int]:
        """Snapshot ``{category: delivered bytes}``."""
        return dict(self._bytes)

    def __repr__(self) -> str:
        return (
            f"NetworkStats(messages={self.total_messages}, "
            f"bytes={self.total_bytes}, dropped={self.total_dropped})"
        )
