"""Reliable delivery on top of the best-effort fabric.

The paper sends invalidation messages over TCP "and when the TCP message
fails, use periodic retry" (Section 4, failure handling).
:class:`ReliableChannel` packages exactly that: a generator helper that a
simulation process yields from until the message is finally delivered.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from .message import Message
from .network import Network, Unreachable

__all__ = ["ReliableChannel", "DeliveryReport", "DeliveryFailed"]


class DeliveryFailed(Exception):
    """Raised when ``max_retries`` is exhausted without a delivery."""

    def __init__(self, message: Message, attempts: int) -> None:
        super().__init__(f"{message!r} undelivered after {attempts} attempts")
        self.message = message
        self.attempts = attempts


@dataclass
class DeliveryReport:
    """Outcome of a reliable send."""

    message: Message
    attempts: int
    delivered_at: float


class ReliableChannel:
    """TCP-with-periodic-retry delivery.

    Args:
        network: the fabric to send over.
        retry_interval: seconds between attempts after a failure.
        max_retries: give up (raise :class:`DeliveryFailed`) after this many
            *re*-tries; ``None`` retries forever, matching the paper.
    """

    def __init__(
        self,
        network: Network,
        retry_interval: float = 30.0,
        max_retries: Optional[int] = None,
    ) -> None:
        if retry_interval <= 0:
            raise ValueError("retry_interval must be positive")
        self.network = network
        self.retry_interval = retry_interval
        self.max_retries = max_retries

    def deliver(self, message: Message):
        """Generator: yield from inside a process to send reliably.

        Returns a :class:`DeliveryReport` once the message lands.
        """
        sim = self.network.sim
        attempts = 0
        while True:
            attempts += 1
            try:
                yield self.network.send(message)
            except Unreachable:
                if self.max_retries is not None and attempts > self.max_retries:
                    raise DeliveryFailed(message, attempts)
                yield sim.timeout(self.retry_interval)
                continue
            return DeliveryReport(
                message=message, attempts=attempts, delivered_at=sim.now
            )
