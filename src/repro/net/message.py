"""Network message model.

A :class:`Message` is the unit the network fabric moves between nodes.  The
HTTP layer (:mod:`repro.http`) subclasses it with request/response/INVALIDATE
semantics; the fabric itself only cares about source, destination, wire size
and an accounting category.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Optional

__all__ = ["Address", "Message"]

#: Node addresses are plain strings (e.g. ``"server"``, ``"proxy-2"``).
Address = str

_message_ids = itertools.count(1)


@dataclass
class Message:
    """A message in flight between two nodes.

    Attributes:
        src: sending node's address.
        dst: receiving node's address.
        size: wire size in bytes (headers + body), used for byte accounting
            and transmission-time computation.
        category: accounting bucket (``"get"``, ``"ims"``, ``"reply-200"``,
            ``"reply-304"``, ``"invalidate"``, ...).
        payload: opaque application data.
        reply_to: correlation id of the request this message answers, if any.
    """

    src: Address
    dst: Address
    size: int
    category: str = "other"
    payload: Any = None
    reply_to: Optional[int] = None
    msg_id: int = field(default_factory=lambda: next(_message_ids))

    def __post_init__(self) -> None:
        if self.size < 0:
            raise ValueError(f"negative message size {self.size!r}")

    def __repr__(self) -> str:
        return (
            f"<Message #{self.msg_id} {self.category} "
            f"{self.src}->{self.dst} {self.size}B>"
        )
