"""Simulated network substrate: fabric, latency models, reliable channel."""

from .channel import DeliveryFailed, DeliveryReport, ReliableChannel
from .latency import FixedLatency, LanModel, LatencyModel, PerturbedLatency, WanModel
from .message import Address, Message
from .network import LinkFault, Network, Unreachable
from .stats import NetworkStats

__all__ = [
    "Address",
    "Message",
    "Network",
    "Unreachable",
    "LinkFault",
    "NetworkStats",
    "LatencyModel",
    "LanModel",
    "WanModel",
    "FixedLatency",
    "PerturbedLatency",
    "ReliableChannel",
    "DeliveryReport",
    "DeliveryFailed",
]
