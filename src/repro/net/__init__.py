"""Simulated network substrate: fabric, latency models, reliable channel."""

from .channel import DeliveryFailed, DeliveryReport, ReliableChannel
from .latency import FixedLatency, LanModel, LatencyModel, WanModel
from .message import Address, Message
from .network import Network, Unreachable
from .stats import NetworkStats

__all__ = [
    "Address",
    "Message",
    "Network",
    "Unreachable",
    "NetworkStats",
    "LatencyModel",
    "LanModel",
    "WanModel",
    "FixedLatency",
    "ReliableChannel",
    "DeliveryReport",
    "DeliveryFailed",
]
