"""Failure injection for the Section 4 failure scenarios.

Three scenarios, each with a scheduled injection and recovery:

1. **Proxy failure** — the proxy misses invalidations while down; on
   recovery it marks all cache entries questionable.
2. **Server-site failure** — accelerator + HTTPD die together; volatile
   site lists are lost; on recovery the persistent known-sites log drives
   INVALIDATE-by-server messages to every proxy ever seen.
3. **Network partition** — invalidations cannot cross the cut; the
   reliable channel retries periodically until the partition heals.

The chaos harness (:mod:`repro.chaos`) extends the model past Section 4:
cold proxy restarts (cache wiped), server crashes that destroy the
persistent site log, probabilistic per-link loss/duplication/latency
faults, and clock skew on a proxy host's lease/TTL arithmetic.

:class:`FailureInjector` schedules these against a running simulation; it
is deliberately independent of the replay harness so both unit tests and
full experiments can use it.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Iterable, List, Optional

from ..net import LinkFault, Network
from ..proxy import ProxyCache
from ..server import ServerSite
from ..sim import Simulator

__all__ = ["FailureEvent", "FailureInjector"]


@dataclass(frozen=True)
class FailureEvent:
    """A recorded injection or recovery, for assertions and reports."""

    time: float
    kind: str
    target: str


@dataclass
class FailureInjector:
    """Schedules crashes, recoveries and partitions."""

    sim: Simulator
    network: Network
    log: List[FailureEvent] = field(default_factory=list)

    def _record(self, kind: str, target: str) -> None:
        self.log.append(FailureEvent(time=self.sim.now, kind=kind, target=target))

    # -- proxy ---------------------------------------------------------------

    def schedule_proxy_crash(
        self, proxy: ProxyCache, at: float, recover_at: float, cold: bool = False
    ) -> None:
        """Crash a proxy at ``at`` and recover it at ``recover_at``.

        A warm restart (default) keeps the on-disk cache and marks every
        entry questionable; ``cold=True`` wipes the cache instead.
        """
        if recover_at <= at:
            raise ValueError("recovery must follow the crash")

        def crash() -> None:
            proxy.crash()
            self._record("proxy-crash", proxy.address)

        def recover() -> None:
            flagged = proxy.recover(cold=cold)
            kind = (
                "proxy-recover(cold)"
                if cold
                else f"proxy-recover({flagged} questionable)"
            )
            self._record(kind, proxy.address)

        self.sim.schedule_callback(at - self.sim.now, crash)
        self.sim.schedule_callback(recover_at - self.sim.now, recover)

    # -- server site -----------------------------------------------------------

    def schedule_server_crash(
        self,
        server: ServerSite,
        at: float,
        recover_at: float,
        lose_sitelog: bool = False,
    ) -> None:
        """Crash the server site at ``at``; recover (with the
        INVALIDATE-by-server fan-out) at ``recover_at``.

        ``lose_sitelog=True`` destroys the persistent known-sites log as
        well; recovery then broadcasts to the server's ``proxy_roster``.
        """
        if recover_at <= at:
            raise ValueError("recovery must follow the crash")

        def crash() -> None:
            server.crash(lose_sitelog=lose_sitelog)
            kind = "server-crash(sitelog lost)" if lose_sitelog else "server-crash"
            self._record(kind, server.address)

        def recover() -> None:
            server.recover()
            self._record("server-recover", server.address)

        self.sim.schedule_callback(at - self.sim.now, crash)
        self.sim.schedule_callback(recover_at - self.sim.now, recover)

    # -- accelerator shards ---------------------------------------------------

    def schedule_shard_crash(
        self,
        cluster,
        shard: str,
        at: float,
        recover_at: float,
        lose_sitelog: bool = False,
    ) -> None:
        """Crash one accelerator shard at ``at``; recover it at
        ``recover_at``.

        While the shard is down the cluster's hash ring routes its
        documents to the clockwise successor; on recovery the ring
        rebalances and site-list entries registered at failover shards
        hand back to the recovered owner.
        """
        if recover_at <= at:
            raise ValueError("recovery must follow the crash")

        def crash() -> None:
            cluster.crash_shard(shard, lose_sitelog=lose_sitelog)
            kind = "shard-crash(sitelog lost)" if lose_sitelog else "shard-crash"
            self._record(kind, shard)

        def recover() -> None:
            cluster.recover_shard(shard)
            self._record("shard-recover", shard)

        self.sim.schedule_callback(at - self.sim.now, crash)
        self.sim.schedule_callback(recover_at - self.sim.now, recover)

    def schedule_shard_rebalance(
        self, cluster, shard: str, at: float, until: float
    ) -> None:
        """Drain a shard out of the hash ring from ``at`` to ``until``.

        A drained shard stays up (it can still flush dirty state and
        answer in-flight work) but receives no new routes; restoring it
        triggers a rebalance that migrates site lists back.
        """
        if until <= at:
            raise ValueError("drain window must end after it starts")

        def drain() -> None:
            cluster.drain_shard(shard)
            self._record("shard-drain", shard)

        def restore() -> None:
            cluster.restore_shard(shard)
            self._record("shard-restore", shard)

        self.sim.schedule_callback(at - self.sim.now, drain)
        self.sim.schedule_callback(until - self.sim.now, restore)

    # -- partition ----------------------------------------------------------

    def schedule_partition(
        self,
        group_a: Iterable[str],
        group_b: Iterable[str],
        at: float,
        heal_at: float,
    ) -> None:
        """Partition two groups at ``at``; heal *that* partition at
        ``heal_at`` (overlapping partitions heal independently)."""
        if heal_at <= at:
            raise ValueError("heal must follow the partition")
        group_a, group_b = list(group_a), list(group_b)
        handle: List[int] = []

        def cut() -> None:
            handle.append(self.network.partition(group_a, group_b))
            self._record("partition", f"{group_a}|{group_b}")

        def heal() -> None:
            self.network.heal(handle[0] if handle else None)
            self._record("heal", f"{group_a}|{group_b}")

        self.sim.schedule_callback(at - self.sim.now, cut)
        self.sim.schedule_callback(heal_at - self.sim.now, heal)

    # -- link faults ---------------------------------------------------------

    def schedule_link_fault(
        self,
        src: str,
        dst: str,
        at: float,
        until: float,
        drop_prob: float = 0.0,
        dup_prob: float = 0.0,
        extra_delay: float = 0.0,
        jitter: float = 0.0,
        rng: Optional[random.Random] = None,
    ) -> None:
        """Degrade the directed ``src -> dst`` link from ``at`` to ``until``.

        ``"*"`` on either side matches any address.  Probabilistic loss,
        duplication and latency perturbation are all seeded through
        ``rng`` so schedules replay deterministically.
        """
        if until <= at:
            raise ValueError("fault must end after it starts")
        fault = LinkFault(
            drop_prob=drop_prob,
            dup_prob=dup_prob,
            extra_delay=extra_delay,
            jitter=jitter,
        )

        def install() -> None:
            self.network.set_link_fault(src, dst, fault, rng=rng)
            self._record(
                "link-fault"
                f"(drop={drop_prob},dup={dup_prob},"
                f"delay={extra_delay},jitter={jitter})",
                f"{src}->{dst}",
            )

        def clear() -> None:
            self.network.clear_link_fault(src, dst)
            self._record("link-heal", f"{src}->{dst}")

        self.sim.schedule_callback(at - self.sim.now, install)
        self.sim.schedule_callback(until - self.sim.now, clear)

    # -- clock skew ----------------------------------------------------------

    def schedule_clock_skew(
        self, proxy: ProxyCache, at: float, until: float, skew: float
    ) -> None:
        """Skew a proxy host's clock by ``skew`` seconds over a window.

        Positive skew makes the host's clock run *ahead* (leases/TTLs
        expire early there — safe); negative skew runs it behind (the
        dangerous direction leases must tolerate via ``lease_grace``).
        """
        if until <= at:
            raise ValueError("skew window must end after it starts")

        def apply() -> None:
            proxy.clock_skew = skew
            self._record(f"clock-skew({skew:+g}s)", proxy.address)

        def reset() -> None:
            proxy.clock_skew = 0.0
            self._record("clock-skew(reset)", proxy.address)

        self.sim.schedule_callback(at - self.sim.now, apply)
        self.sim.schedule_callback(until - self.sim.now, reset)
