"""Failure injection for the Section 4 failure scenarios.

Three scenarios, each with a scheduled injection and recovery:

1. **Proxy failure** — the proxy misses invalidations while down; on
   recovery it marks all cache entries questionable.
2. **Server-site failure** — accelerator + HTTPD die together; volatile
   site lists are lost; on recovery the persistent known-sites log drives
   INVALIDATE-by-server messages to every proxy ever seen.
3. **Network partition** — invalidations cannot cross the cut; the
   reliable channel retries periodically until the partition heals.

:class:`FailureInjector` schedules these against a running simulation; it
is deliberately independent of the replay harness so both unit tests and
full experiments can use it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, List

from ..net import Network
from ..proxy import ProxyCache
from ..server import ServerSite
from ..sim import Simulator

__all__ = ["FailureEvent", "FailureInjector"]


@dataclass(frozen=True)
class FailureEvent:
    """A recorded injection or recovery, for assertions and reports."""

    time: float
    kind: str
    target: str


@dataclass
class FailureInjector:
    """Schedules crashes, recoveries and partitions."""

    sim: Simulator
    network: Network
    log: List[FailureEvent] = field(default_factory=list)

    def _record(self, kind: str, target: str) -> None:
        self.log.append(FailureEvent(time=self.sim.now, kind=kind, target=target))

    # -- proxy ---------------------------------------------------------------

    def schedule_proxy_crash(
        self, proxy: ProxyCache, at: float, recover_at: float
    ) -> None:
        """Crash a proxy at ``at`` and recover it at ``recover_at``."""
        if recover_at <= at:
            raise ValueError("recovery must follow the crash")

        def crash() -> None:
            proxy.crash()
            self._record("proxy-crash", proxy.address)

        def recover() -> None:
            flagged = proxy.recover()
            self._record(f"proxy-recover({flagged} questionable)", proxy.address)

        self.sim.schedule_callback(at - self.sim.now, crash)
        self.sim.schedule_callback(recover_at - self.sim.now, recover)

    # -- server site -----------------------------------------------------------

    def schedule_server_crash(
        self, server: ServerSite, at: float, recover_at: float
    ) -> None:
        """Crash the server site at ``at``; recover (with the
        INVALIDATE-by-server fan-out) at ``recover_at``."""
        if recover_at <= at:
            raise ValueError("recovery must follow the crash")

        def crash() -> None:
            server.crash()
            self._record("server-crash", server.address)

        def recover() -> None:
            server.recover()
            self._record("server-recover", server.address)

        self.sim.schedule_callback(at - self.sim.now, crash)
        self.sim.schedule_callback(recover_at - self.sim.now, recover)

    # -- partition ----------------------------------------------------------

    def schedule_partition(
        self,
        group_a: Iterable[str],
        group_b: Iterable[str],
        at: float,
        heal_at: float,
    ) -> None:
        """Partition two groups at ``at``; heal all partitions at
        ``heal_at``."""
        if heal_at <= at:
            raise ValueError("heal must follow the partition")
        group_a, group_b = list(group_a), list(group_b)

        def cut() -> None:
            self.network.partition(group_a, group_b)
            self._record("partition", f"{group_a}|{group_b}")

        def heal() -> None:
            self.network.heal()
            self._record("heal", "all")

        self.sim.schedule_callback(at - self.sim.now, cut)
        self.sim.schedule_callback(heal_at - self.sim.now, heal)
