"""Failure injection (crashes, recoveries, partitions)."""

from .injector import FailureEvent, FailureInjector

__all__ = ["FailureInjector", "FailureEvent"]
