"""``repro.obs`` — the observability and paper-fidelity reporting layer.

Three pieces, each usable on its own:

* :class:`MetricsRegistry` (:mod:`repro.obs.registry`) — named, labelled
  counter/gauge/timer series unifying the scattered ``repro.metrics`` /
  ``repro.net`` accounting, with no-op handles (:data:`NULL_REGISTRY`)
  so instrumented code costs nothing measurable when observation is off.
* :class:`SpanSink` / :class:`Span` (:mod:`repro.obs.spans`) — a JSONL
  event-trace of the request lifecycle (client → proxy → accelerator →
  invalidate fan-out) with deterministic sampling, browsable via
  ``python -m repro trace``.
* :func:`collect_report` / :func:`render_report`
  (:mod:`repro.obs.report`) — the five-trace × three-protocol matrix
  rendered side-by-side with the paper's published numbers as
  ``RESULTS.md`` (``python -m repro report``).

:class:`Observation` binds the first two to one replay run::

    from repro.obs import Observation, SpanSink

    obs = Observation(sink=SpanSink("spans.jsonl", sample=0.5))
    result = run_experiment(ExperimentConfig(..., observation=obs))
    obs.close()
    print(obs.registry.render())

Fast-path contract: a plain :class:`Observation` records from seams the
replay already passes through (the per-request counters call, the
fan-out timer), so the PR-3 zero-allocation fast path stays active and
observed runs are bit-identical to unobserved ones.  Only
``Observation(deep=True)`` attaches a kernel event tracer, which by
design trades the fast paths for full event visibility.
"""

from .observe import Observation, capture_result
from .registry import (
    NULL_REGISTRY,
    Counter,
    Gauge,
    MetricsRegistry,
    NullRegistry,
    Timer,
)
from .report import (
    REPORT_EXPERIMENTS,
    REPORT_PROTOCOLS,
    ClaimCheck,
    ReportData,
    build_manifest,
    check_report,
    collect_report,
    delta_pct,
    experiment_label,
    format_delta,
    load_checkpoint_results,
    render_report,
)
from .spans import Span, SpanSink, filter_spans, format_timeline, read_spans

__all__ = [
    # registry
    "MetricsRegistry",
    "NullRegistry",
    "NULL_REGISTRY",
    "Counter",
    "Gauge",
    "Timer",
    # spans
    "Span",
    "SpanSink",
    "read_spans",
    "filter_spans",
    "format_timeline",
    # observation
    "Observation",
    "capture_result",
    # reporting
    "ReportData",
    "ClaimCheck",
    "REPORT_EXPERIMENTS",
    "REPORT_PROTOCOLS",
    "experiment_label",
    "delta_pct",
    "format_delta",
    "build_manifest",
    "collect_report",
    "load_checkpoint_results",
    "render_report",
    "check_report",
]
