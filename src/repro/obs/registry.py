"""Named, labelled metric series behind one registry.

The replay stack already measures everything the paper tabulates, but it
does so in four unrelated shapes: :class:`repro.metrics.ReplayCounters`
(request outcomes), :class:`repro.metrics.LatencyStats` (latency
reservoirs), :class:`repro.metrics.IostatSampler` (server load) and
:class:`repro.net.NetworkStats` (wire accounting).  A
:class:`MetricsRegistry` unifies them: every quantity becomes a named
series with string labels (``protocol=...``, ``site=...``, ``phase=...``)
and one of three handle types:

* :class:`Counter` — monotonically increasing count (``inc``);
* :class:`Gauge` — last-write-wins value (``set``);
* :class:`Timer` — a :class:`~repro.metrics.LatencyStats` distribution
  (``observe``).

Handles are cheap plain objects fetched with
``registry.counter("requests", protocol="ttl", site="proxy-0")``;
fetching the same (name, labels) pair twice returns the same handle, so
producers in different layers accumulate into one series.

``NULL_REGISTRY`` is a registry whose handles do nothing: code can be
written unconditionally against a registry and pay a no-op method call
when observation is off.  The replay's zero-allocation fast path does not
even pay that — when :class:`repro.obs.Observation` is not attached, no
registry call sites run at all (see :mod:`repro.obs.observe`).
"""

from __future__ import annotations

from typing import Any, Dict, Iterator, List, Optional, Tuple

from ..metrics import LatencyStats

__all__ = [
    "Counter",
    "Gauge",
    "Timer",
    "MetricsRegistry",
    "NullRegistry",
    "NULL_REGISTRY",
]

#: Canonical key for one series: name plus sorted ``(label, value)`` pairs.
SeriesKey = Tuple[str, Tuple[Tuple[str, str], ...]]


def _series_key(name: str, labels: Dict[str, Any]) -> SeriesKey:
    return name, tuple(sorted((k, str(v)) for k, v in labels.items()))


class Counter:
    """A monotonically increasing count for one (name, labels) series."""

    __slots__ = ("name", "labels", "value")

    def __init__(self, name: str, labels: Dict[str, str]) -> None:
        self.name = name
        self.labels = labels
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        """Add ``amount`` (default 1) to the series."""
        self.value += amount

    def __repr__(self) -> str:
        return f"Counter({self.name}, {self.labels}, value={self.value})"


class Gauge:
    """A last-write-wins value for one (name, labels) series."""

    __slots__ = ("name", "labels", "value")

    def __init__(self, name: str, labels: Dict[str, str]) -> None:
        self.name = name
        self.labels = labels
        self.value = 0.0

    def set(self, value: float) -> None:
        """Record the current value of the series."""
        self.value = value

    def __repr__(self) -> str:
        return f"Gauge({self.name}, {self.labels}, value={self.value})"


class Timer:
    """A latency/duration distribution for one (name, labels) series.

    Wraps a :class:`~repro.metrics.LatencyStats`, so mean/min/max and
    reservoir percentiles come along for free.
    """

    __slots__ = ("name", "labels", "stats")

    def __init__(self, name: str, labels: Dict[str, str]) -> None:
        self.name = name
        self.labels = labels
        self.stats = LatencyStats()

    def observe(self, seconds: float) -> None:
        """Record one duration sample, in seconds."""
        self.stats.record(seconds)

    def __repr__(self) -> str:
        return f"Timer({self.name}, {self.labels}, {self.stats!r})"


class _NullHandle:
    """A handle that accepts every recording call and does nothing."""

    __slots__ = ()

    def inc(self, amount: int = 1) -> None:  # noqa: D102 - interface no-op
        pass

    def set(self, value: float) -> None:  # noqa: D102 - interface no-op
        pass

    def observe(self, seconds: float) -> None:  # noqa: D102 - interface no-op
        pass


_NULL_HANDLE = _NullHandle()


class MetricsRegistry:
    """Holds every metric series of one observed run.

    The registry is deliberately not thread- or process-aware: one replay
    runs in one process, and parallel sweeps each build their own
    registry (see :mod:`repro.replay.parallel` — an
    :class:`~repro.obs.Observation` is not picklable and therefore not
    shipped to sweep workers).
    """

    #: Null registries report ``False`` so call sites can skip expensive
    #: series preparation entirely.
    enabled = True

    def __init__(self) -> None:
        self._counters: Dict[SeriesKey, Counter] = {}
        self._gauges: Dict[SeriesKey, Gauge] = {}
        self._timers: Dict[SeriesKey, Timer] = {}

    # -- handle access ------------------------------------------------------

    def counter(self, name: str, **labels: Any) -> Counter:
        """Get (or create) the counter for ``(name, labels)``."""
        key = _series_key(name, labels)
        handle = self._counters.get(key)
        if handle is None:
            handle = self._counters[key] = Counter(name, dict(key[1]))
        return handle

    def gauge(self, name: str, **labels: Any) -> Gauge:
        """Get (or create) the gauge for ``(name, labels)``."""
        key = _series_key(name, labels)
        handle = self._gauges.get(key)
        if handle is None:
            handle = self._gauges[key] = Gauge(name, dict(key[1]))
        return handle

    def timer(self, name: str, **labels: Any) -> Timer:
        """Get (or create) the timer for ``(name, labels)``."""
        key = _series_key(name, labels)
        handle = self._timers.get(key)
        if handle is None:
            handle = self._timers[key] = Timer(name, dict(key[1]))
        return handle

    # -- queries ------------------------------------------------------------

    def value(self, name: str, **labels: Any) -> Optional[float]:
        """The current value of a counter or gauge series, else ``None``."""
        key = _series_key(name, labels)
        if key in self._counters:
            return self._counters[key].value
        if key in self._gauges:
            return self._gauges[key].value
        return None

    def total(self, name: str, **labels: Any) -> float:
        """Sum of every counter series named ``name`` matching ``labels``.

        Labels given act as a filter; series carrying extra labels still
        match.  ``registry.total("requests", protocol="ttl")`` sums the
        per-site, per-phase request counters of one protocol.
        """
        want = {k: str(v) for k, v in labels.items()}
        out = 0.0
        for (series_name, series_labels), handle in self._counters.items():
            if series_name != name:
                continue
            have = dict(series_labels)
            if all(have.get(k) == v for k, v in want.items()):
                out += handle.value
        return out

    def series(self) -> Iterator[Tuple[str, str, Dict[str, str], Any]]:
        """Iterate ``(kind, name, labels, handle)`` over every series."""
        for key, handle in sorted(self._counters.items()):
            yield "counter", key[0], dict(key[1]), handle
        for key, handle in sorted(self._gauges.items()):
            yield "gauge", key[0], dict(key[1]), handle
        for key, handle in sorted(self._timers.items()):
            yield "timer", key[0], dict(key[1]), handle

    def __len__(self) -> int:
        return len(self._counters) + len(self._gauges) + len(self._timers)

    def to_dict(self) -> Dict[str, List[Dict[str, Any]]]:
        """JSON-compatible snapshot of every series."""
        counters = [
            {"name": key[0], "labels": dict(key[1]), "value": handle.value}
            for key, handle in sorted(self._counters.items())
        ]
        gauges = [
            {"name": key[0], "labels": dict(key[1]), "value": handle.value}
            for key, handle in sorted(self._gauges.items())
        ]
        timers = [
            {
                "name": key[0],
                "labels": dict(key[1]),
                **handle.stats.summary(),
            }
            for key, handle in sorted(self._timers.items())
        ]
        return {"counters": counters, "gauges": gauges, "timers": timers}

    def render(self) -> str:
        """Human-readable dump, one series per line, sorted by name."""
        lines: List[str] = []
        for kind, name, labels, handle in self.series():
            label_text = ",".join(f"{k}={v}" for k, v in sorted(labels.items()))
            if kind == "timer":
                stats = handle.stats
                value = (
                    f"n={stats.count} mean={stats.mean:.4f} "
                    f"min={stats.min:.4f} max={stats.max:.4f}"
                )
            else:
                value = f"{handle.value:g}"
            lines.append(f"{name}{{{label_text}}} {value}")
        return "\n".join(lines)


class NullRegistry(MetricsRegistry):
    """A registry whose handles silently discard every recording.

    Useful as a default argument: code written against a registry runs
    unchanged (one no-op method call per recording) when nobody is
    observing.
    """

    enabled = False

    def counter(self, name: str, **labels: Any) -> Counter:
        """Return the shared do-nothing handle."""
        return _NULL_HANDLE  # type: ignore[return-value]

    def gauge(self, name: str, **labels: Any) -> Gauge:
        """Return the shared do-nothing handle."""
        return _NULL_HANDLE  # type: ignore[return-value]

    def timer(self, name: str, **labels: Any) -> Timer:
        """Return the shared do-nothing handle."""
        return _NULL_HANDLE  # type: ignore[return-value]


#: Shared inert registry (it holds no state, so sharing is safe).
NULL_REGISTRY = NullRegistry()
