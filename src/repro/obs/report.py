"""Paper-fidelity reporting: ``RESULTS.md`` generation.

The paper's argument is carried by five tables; this module runs (or
loads) the six-experiment x three-protocol matrix behind Tables 3-5 and
renders every table side-by-side with the paper's published numbers:

* **Table 1** — the analytical message model, recomputed exactly from
  the paper's example r/m stream;
* **Table 2** — trace summaries versus the published workload
  characteristics;
* **Tables 3-4** — the replay matrix (messages, bytes, latency, server
  load, staleness) plus a pass/fail checklist of the paper's Section 5.2
  claims (most of the paper's numeric cells are unreadable in the
  available text, so the prose claims are the reproduction target —
  see ``EXPERIMENTS.md``);
* **Table 5** — invalidation costs (site-list storage, fan-out time).

Every report carries a manifest — git SHA, master seed, scale, and
content digests of the configuration and the results — so a committed
``RESULTS.md`` names the exact runs it came from and two same-seed runs
render byte-identical reports.

Published numbers are scaled by the run's workload scale where they are
extensive quantities (request counts, files modified, storage); intensive
quantities (average sizes, latencies orderings, utilisation orderings)
are compared directly or via the claims checklist.
"""

from __future__ import annotations

import glob
import hashlib
import json
import os
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

__all__ = [
    "REPORT_EXPERIMENTS",
    "REPORT_PROTOCOLS",
    "ReportData",
    "ClaimCheck",
    "experiment_label",
    "delta_pct",
    "format_delta",
    "build_manifest",
    "collect_report",
    "load_checkpoint_results",
    "render_report",
    "check_report",
]

#: The paper's six replay experiments: (paper table, trace, lifetime days).
REPORT_EXPERIMENTS: Tuple[Tuple[int, str, float], ...] = (
    (3, "EPA", 50.0),
    (3, "SASK", 14.0),
    (3, "ClarkNet", 50.0),
    (4, "NASA", 7.0),
    (4, "SDSC", 25.0),
    (4, "SDSC", 2.5),
)

#: Protocol column order (CLI names; see repro.cli.PROTOCOL_FACTORIES).
REPORT_PROTOCOLS: Tuple[str, ...] = ("polling", "invalidation", "ttl")

#: The paper's example request/modification stream (Table 1).
PAPER_STREAM = "r r r m m m r r m r r r m m r"

#: Table 2 published rows: trace -> (requests, files, avg KB, pop max,
#: pop mean).  File counts are derived from the Tables 3-4 headers (the
#: cells are unreadable); see EXPERIMENTS.md.
PAPER_TABLE2: Dict[str, Tuple[int, int, float, int, float]] = {
    "EPA": (40_658, 3_600, 21.0, 1_642, 8.2),
    "SDSC": (25_430, 1_430, 14.0, 1_020, 12.0),
    "ClarkNet": (61_703, 4_800, 13.0, 680, 8.0),
    "NASA": (61_823, 1_008, 44.0, 3_138, 31.0),
    "SASK": (51_471, 2_009, 12.0, 1_155, 14.0),
}

#: Tables 3-4 published "files modified" headers.
PAPER_FILES_MODIFIED: Dict[Tuple[str, float], int] = {
    ("EPA", 50.0): 72,
    ("SASK", 14.0): 1_148,
    ("ClarkNet", 50.0): 40,
    ("NASA", 7.0): 144,
    ("SDSC", 25.0): 57,
    ("SDSC", 2.5): 576,
}

#: Table 5 published site-list storage, in bytes.
PAPER_SITELIST_STORAGE: Dict[Tuple[str, float], int] = {
    ("EPA", 50.0): 1_048_576,  # "1.0 MB"
    ("SASK", 14.0): 621 * 1024,
    ("ClarkNet", 50.0): int(1.6 * 1_048_576),
    ("NASA", 7.0): 742 * 1024,
    ("SDSC", 25.0): 489 * 1024,
    ("SDSC", 2.5): 474 * 1024,
}

#: Table 5's "bytes of storage per request" band, as printed in the paper.
PAPER_BYTES_PER_REQUEST = (20.0, 30.0)


def experiment_label(trace: str, days: float, protocol: str) -> str:
    """Sweep-point label for one matrix cell (``EPA-50d/polling``).

    Matches the labels ``repro table`` writes, so checkpoints from either
    command are interchangeable.
    """
    return f"{trace}-{days:g}d/{protocol}"


@dataclass(frozen=True)
class ClaimCheck:
    """One Section 5.2 claim evaluated against the measured matrix."""

    claim: str
    ok: bool
    evidence: str


@dataclass
class ReportData:
    """Everything :func:`render_report` needs for one report."""

    scale: float
    seed: int
    experiments: Sequence[Tuple[int, str, float]]
    #: label (see :func:`experiment_label`) -> ExperimentResult.
    results: Dict[str, object]
    #: trace name -> TraceSummary for the replayed (scaled) traces.
    summaries: Dict[str, object]
    manifest: Dict[str, object] = field(default_factory=dict)


# ---------------------------------------------------------------------------
# arithmetic
# ---------------------------------------------------------------------------

def delta_pct(ours: float, paper: float) -> Optional[float]:
    """Percentage difference of ``ours`` versus the paper's value.

    Returns ``None`` when the paper value is zero/absent (no meaningful
    percentage).
    """
    if paper is None or paper == 0:
        return None
    return (ours - paper) / paper * 100.0


def format_delta(ours: float, paper: float) -> str:
    """Render the paper-vs-ours delta as a signed percentage string."""
    delta = delta_pct(ours, paper)
    if delta is None:
        return "n/a"
    return f"{delta:+.1f}%"


def _digest(payload: object) -> str:
    """Short stable content digest of a JSON-serialisable payload."""
    text = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(text.encode()).hexdigest()[:16]


def build_manifest(
    scale: float,
    seed: int,
    experiments: Sequence[Tuple[int, str, float]],
    results: Dict[str, object],
    git_sha: Optional[str] = None,
    generated: Optional[str] = None,
) -> Dict[str, object]:
    """Provenance block for one report.

    Deterministic by construction: two runs with the same seed, scale and
    code produce identical manifests (``generated`` is only present when
    a caller explicitly passes a timestamp — the committed ``RESULTS.md``
    omits it so report regeneration is diff-clean).
    """
    from ..bench import git_sha as bench_git_sha
    from ..replay import result_to_dict

    config = {
        "scale": scale,
        "seed": seed,
        "experiments": [list(e) for e in experiments],
        "protocols": list(REPORT_PROTOCOLS),
    }
    results_payload = {
        label: result_to_dict(result) for label, result in sorted(results.items())
    }
    manifest: Dict[str, object] = {
        "git_sha": git_sha if git_sha is not None else bench_git_sha(),
        "seed": seed,
        "scale": scale,
        "points": len(results),
        "config_digest": _digest(config),
        "results_digest": _digest(results_payload),
    }
    if generated is not None:
        manifest["generated"] = generated
    return manifest


# ---------------------------------------------------------------------------
# collection: run the matrix, or load it from checkpoints
# ---------------------------------------------------------------------------

def load_checkpoint_results(
    directory: str,
    experiments: Sequence[Tuple[int, str, float]] = REPORT_EXPERIMENTS,
) -> Dict[str, object]:
    """Load the report matrix from a sweep checkpoint directory.

    Accepts checkpoints written by ``repro report --checkpoint-dir``,
    ``repro table`` or ``repro sweep`` (same label convention).  Raises
    ``ValueError`` when any required (trace, lifetime, protocol) cell is
    missing, naming the absent labels.
    """
    from ..replay.serialize import read_checkpoint

    found: Dict[str, object] = {}
    for path in sorted(glob.glob(os.path.join(directory, "*.json"))):
        try:
            label, result = read_checkpoint(path)
        except (ValueError, KeyError, json.JSONDecodeError):
            continue  # not a checkpoint (e.g. a stray BENCH_*.json)
        if label is not None:
            found[label] = result
    wanted = [
        experiment_label(trace, days, proto)
        for _table, trace, days in experiments
        for proto in REPORT_PROTOCOLS
    ]
    missing = [label for label in wanted if label not in found]
    if missing:
        raise ValueError(
            f"checkpoint dir {directory!r} is missing {len(missing)} "
            f"point(s): {', '.join(missing)}"
        )
    return {label: found[label] for label in wanted}


def collect_report(
    scale: float = 0.1,
    seed: int = 42,
    experiments: Sequence[Tuple[int, str, float]] = REPORT_EXPERIMENTS,
    runner: Optional[object] = None,
    from_checkpoints: Optional[str] = None,
    git_sha: Optional[str] = None,
    generated: Optional[str] = None,
    progress: Optional[Callable[[str], None]] = None,
    shards: int = 1,
    batch_window: float = 0.0,
    batch_max: int = 0,
) -> ReportData:
    """Assemble one report: run (or load) the matrix and its summaries.

    Args:
        scale: workload scale in (0, 1]; published extensive quantities
            are compared against ``paper * scale``.
        seed: master seed shared by every matrix point.
        experiments: (table, trace, lifetime-days) rows to include.
        runner: optional :class:`repro.replay.ParallelSweepRunner`.
        from_checkpoints: load results from this checkpoint directory
            instead of replaying.
        git_sha / generated: manifest overrides (tests pin these).
        progress: optional line sink for status output.
        shards / batch_window / batch_max: accelerator-cluster knobs;
            ``shards=1`` (the default) keeps the paper's single
            accelerator and the report byte-identical to earlier
            releases.  A sharded matrix adds a shard-balance panel.
    """
    from ..api import run_sweep
    from ..replay import ExperimentConfig
    from ..sim import RngRegistry
    from ..traces import generate_trace, summarize
    from ..traces import profile as lookup_profile
    from ..workload import DAYS

    say = progress or (lambda line: None)
    traces: Dict[str, object] = {}
    for _table, trace_name, _days in experiments:
        if trace_name not in traces:
            profile = lookup_profile(trace_name)
            if scale != 1.0:
                profile = profile.scaled(scale)
            traces[trace_name] = generate_trace(profile, RngRegistry(seed=seed))
    summaries = {name: summarize(trace) for name, trace in traces.items()}

    if from_checkpoints is not None:
        say(f"loading matrix from checkpoints in {from_checkpoints}")
        results = load_checkpoint_results(from_checkpoints, experiments)
    else:
        from ..api import build_protocol

        _table0, trace0, days0 = experiments[0]
        base = ExperimentConfig(
            trace=traces[trace0],
            protocol=build_protocol(REPORT_PROTOCOLS[0]),
            mean_lifetime=days0 * DAYS,
            seed=seed,
            shards=shards,
            batch_window=batch_window,
            batch_max=batch_max,
        )
        points = [
            (
                experiment_label(trace_name, days, proto),
                {
                    "trace": traces[trace_name],
                    "mean_lifetime": days * DAYS,
                    "protocol": build_protocol(proto),
                },
            )
            for _table, trace_name, days in experiments
            for proto in REPORT_PROTOCOLS
        ]
        say(f"replaying {len(points)} matrix point(s) at scale {scale:g}")
        swept = run_sweep(base, points, runner=runner)
        results = {point.label: point.result for point in swept}

    manifest = build_manifest(
        scale, seed, experiments, results, git_sha=git_sha, generated=generated
    )
    return ReportData(
        scale=scale,
        seed=seed,
        experiments=experiments,
        results=results,
        summaries=summaries,
        manifest=manifest,
    )


# ---------------------------------------------------------------------------
# claims: the Section 5.2 checklist
# ---------------------------------------------------------------------------

def _triples(data: ReportData):
    """Yield ((trace, days), {protocol: result}) per experiment."""
    for _table, trace, days in data.experiments:
        yield (trace, days), {
            proto: data.results[experiment_label(trace, days, proto)]
            for proto in REPORT_PROTOCOLS
        }


def evaluate_claims(data: ReportData) -> List[ClaimCheck]:
    """Evaluate the paper's Section 5.2 claims on the measured matrix."""
    checks: List[ClaimCheck] = []
    overhead: List[float] = []
    ok = True
    for _key, row in _triples(data):
        others = max(
            row["invalidation"].total_messages, row["ttl"].total_messages
        )
        ok = ok and row["polling"].total_messages > others
        if row["invalidation"].total_messages:
            overhead.append(
                row["polling"].total_messages
                / row["invalidation"].total_messages
                - 1.0
            )
    checks.append(
        ClaimCheck(
            "Polling sends 10-50% more messages than the other approaches",
            ok,
            f"polling overhead vs invalidation: "
            f"{min(overhead) * 100:+.0f}% to {max(overhead) * 100:+.0f}%"
            if overhead
            else "no data",
        )
    )

    ok, worst = True, 0.0
    for _key, row in _triples(data):
        ratio = (
            row["invalidation"].total_messages / row["ttl"].total_messages
            if row["ttl"].total_messages
            else 0.0
        )
        worst = max(worst, ratio)
        ok = ok and ratio <= 1.06
    checks.append(
        ClaimCheck(
            "Invalidation sends a similar number of messages to TTL "
            "(within ~6%) or fewer",
            ok,
            f"worst invalidation/TTL message ratio: {worst:.2f}",
        )
    )

    ok, worst_spread = True, 0.0
    for _key, row in _triples(data):
        sizes = [row[p].message_bytes for p in REPORT_PROTOCOLS]
        spread = (max(sizes) - min(sizes)) / min(sizes) if min(sizes) else 0.0
        worst_spread = max(worst_spread, spread)
        ok = ok and spread <= 0.05
    checks.append(
        ClaimCheck(
            "Message bytes are nearly identical across approaches",
            ok,
            f"worst cross-protocol byte spread: {worst_spread * 100:.1f}%",
        )
    )

    ok = all(
        row["polling"].min_latency
        > max(row["invalidation"].min_latency, row["ttl"].min_latency)
        for _key, row in _triples(data)
    )
    checks.append(
        ClaimCheck(
            "Polling has the highest minimum response time "
            "(a server contact per request)",
            ok,
            "polling min latency highest in every experiment"
            if ok
            else "ordering broken in at least one experiment",
        )
    )

    ok = all(
        row["invalidation"].avg_latency <= row["ttl"].avg_latency * 1.05
        for _key, row in _triples(data)
    )
    checks.append(
        ClaimCheck(
            "Invalidation's average response time is similar to or lower "
            "than TTL's",
            ok,
            "holds (within 5%) in every experiment"
            if ok
            else "invalidation slower than TTL somewhere",
        )
    )

    ok = all(
        row["polling"].cpu_utilization
        >= max(row["invalidation"].cpu_utilization, row["ttl"].cpu_utilization)
        for _key, row in _triples(data)
    )
    checks.append(
        ClaimCheck(
            "Polling induces the highest server CPU utilisation",
            ok,
            "polling CPU highest in every experiment"
            if ok
            else "ordering broken in at least one experiment",
        )
    )

    violations = sum(
        row[p].violations
        for _key, row in _triples(data)
        for p in ("polling", "invalidation")
    )
    ttl_stale = sum(row["ttl"].stale_serves for _key, row in _triples(data))
    checks.append(
        ClaimCheck(
            "Strong protocols never serve stale data after write "
            "completion; only adaptive TTL returns stale documents",
            violations == 0,
            f"strong-protocol violations: {violations}; "
            f"adaptive TTL stale serves: {ttl_stale}",
        )
    )
    return checks


# ---------------------------------------------------------------------------
# rendering
# ---------------------------------------------------------------------------

def _table1_rows() -> List[Tuple[str, str, str, str]]:
    """Recompute the Table 1 identities on the paper's example stream."""
    from ..core import simulate_stream, symbolic_counts
    from ..core.analysis import timed_stream_from_ops
    from ..workload import count_r_ri, parse_stream

    ops = parse_stream(PAPER_STREAM)
    counts = count_r_ri(ops)
    reads, intervals = counts.reads, counts.intervals
    events = timed_stream_from_ops(ops, spacing=3600.0)
    measured = {
        name: simulate_stream(events, name)
        for name in ("polling", "invalidation", "ttl")
    }
    bound = symbolic_counts("invalidation", reads, intervals).control_messages
    rows = [
        ("Read runs RI in the example stream", "4", str(intervals), "exact"),
        (
            "Polling control messages (2R - RI)",
            str(2 * reads - intervals),
            str(measured["polling"].control_messages),
            "exact",
        ),
        (
            "Invalidation control messages (<= 2 RI)",
            str(bound),
            str(measured["invalidation"].control_messages),
            "exact",
        ),
        (
            "Strong protocols' file transfers (= RI, the minimum)",
            str(intervals),
            f"{measured['polling'].file_transfers} / "
            f"{measured['invalidation'].file_transfers}",
            "exact",
        ),
        (
            "Adaptive TTL file transfers (RI - stale hits)",
            f"{intervals} - stale",
            f"{measured['ttl'].file_transfers} "
            f"(stale hits {intervals - measured['ttl'].file_transfers})",
            "identity",
        ),
    ]
    return rows


def _fmt_bytes(n: float) -> str:
    """Bytes -> human-readable KB/MB string."""
    if n >= 1_048_576:
        return f"{n / 1_048_576:.1f} MB"
    return f"{n / 1024:.0f} KB"


def render_report(data: ReportData) -> str:
    """Render one :class:`ReportData` as the ``RESULTS.md`` markdown."""
    scale = data.scale
    lines: List[str] = []
    add = lines.append

    add("# RESULTS — paper tables vs. this reproduction")
    add("")
    add(
        "Generated by `python -m repro report`.  Published *extensive* "
        f"quantities (request counts, modifications, storage) are scaled "
        f"by the run's workload scale (**{scale:g}**) before deltas are "
        "taken; latency/utilisation absolutes are modelled (the paper: "
        'its load numbers "are only meaningful for comparison purposes"), '
        "so cross-protocol *orderings* are checked instead — the claims "
        "checklist under Tables 3–4.  Known deviations are catalogued in "
        "[EXPERIMENTS.md](EXPERIMENTS.md)."
    )
    add("")

    # -- manifest ----------------------------------------------------------
    add("## Run manifest")
    add("")
    add("| Field | Value |")
    add("|---|---|")
    for key in (
        "git_sha",
        "seed",
        "scale",
        "points",
        "config_digest",
        "results_digest",
        "generated",
    ):
        if key in data.manifest:
            add(f"| {key} | `{data.manifest[key]}` |")
    add("")

    # -- table 1 -----------------------------------------------------------
    add("## Table 1 — analytical message model (exact)")
    add("")
    add(f"Example stream `{PAPER_STREAM}`, one event per hour.")
    add("")
    add("| Quantity | Paper | Ours | Status |")
    add("|---|---|---|---|")
    for quantity, paper, ours, status in _table1_rows():
        add(f"| {quantity} | {paper} | {ours} | {status} |")
    add("")

    # -- table 2 -----------------------------------------------------------
    add("## Table 2 — trace characteristics")
    add("")
    add(
        f"| Trace | Requests (paper×{scale:g} / ours / Δ) "
        f"| Files (paper×{scale:g} / ours / Δ) "
        "| Avg size (paper / ours / Δ) | Popularity max/mean (paper / ours) |"
    )
    add("|---|---|---|---|---|")
    seen = []
    for _table, trace_name, _days in data.experiments:
        if trace_name in seen or trace_name not in data.summaries:
            continue
        seen.append(trace_name)
        summary = data.summaries[trace_name]
        paper_req, paper_files, paper_kb, paper_pmax, paper_pmean = (
            PAPER_TABLE2[trace_name]
        )
        req_target = paper_req * scale
        files_target = paper_files * scale
        ours_kb = summary.avg_file_size / 1024.0
        pop = (
            f"{paper_pmax}/{paper_pmean:g} / "
            f"{summary.popularity_max}/{summary.popularity_mean:.1f}"
        )
        add(
            f"| {trace_name} "
            f"| {req_target:,.0f} / {summary.total_requests:,} / "
            f"{format_delta(summary.total_requests, req_target)} "
            f"| {files_target:,.0f} / {summary.num_files:,} / "
            f"{format_delta(summary.num_files, files_target)} "
            f"| {paper_kb:.0f} KB / {ours_kb:.1f} KB / "
            f"{format_delta(ours_kb, paper_kb)} "
            f"| {pop} |"
        )
    add("")
    if scale != 1.0:
        add(
            "Popularity columns are shown unscaled: sub-sampling a trace "
            "thins per-document client sets non-linearly, so they are only "
            "directly comparable at scale 1.0."
        )
        add("")

    # -- tables 3-4 --------------------------------------------------------
    add("## Tables 3–4 — trace replays (the paper's core result)")
    add("")
    for (trace_name, days), row in _triples(data):
        paper_mods = PAPER_FILES_MODIFIED.get((trace_name, days))
        any_result = row[REPORT_PROTOCOLS[0]]
        add(f"### {trace_name}, mean lifetime {days:g} days (Table "
            f"{[t for t, tr, d in data.experiments if tr == trace_name and d == days][0]})")
        add("")
        if paper_mods is not None:
            target = paper_mods * scale
            add(
                f"Files modified: paper {paper_mods} × {scale:g} = "
                f"{target:,.0f}, ours {any_result.files_modified} "
                f"({format_delta(any_result.files_modified, target)}); "
                f"{any_result.total_requests:,} requests replayed."
            )
            add("")
        add(
            "| Metric | polling | invalidation | ttl |"
        )
        add("|---|---|---|---|")
        metric_rows = [
            ("Messages", lambda r: f"{r.total_messages:,}"),
            ("Message Kbytes", lambda r: f"{r.message_bytes / 1024:,.0f}"),
            ("Avg response time (s)", lambda r: f"{r.avg_latency:.3f}"),
            ("Min response time (s)", lambda r: f"{r.min_latency:.3f}"),
            ("Max response time (s)", lambda r: f"{r.max_latency:.2f}"),
            ("Server CPU", lambda r: f"{r.cpu_utilization:.1%}"),
            ("Disk reads/s", lambda r: f"{r.disk_reads_per_sec:.2f}"),
            ("Disk writes/s", lambda r: f"{r.disk_writes_per_sec:.2f}"),
            ("Cache hits", lambda r: f"{r.hits:,}"),
            ("Stale serves", lambda r: f"{r.stale_serves:,}"),
            ("Violations", lambda r: f"{r.violations:,}"),
        ]
        for metric_name, fmt in metric_rows:
            cells = " | ".join(fmt(row[p]) for p in REPORT_PROTOCOLS)
            add(f"| {metric_name} | {cells} |")
        add("")

    add("### Section 5.2 claims checklist")
    add("")
    add("| Claim | Verdict | Evidence |")
    add("|---|---|---|")
    for check in evaluate_claims(data):
        verdict = "PASS" if check.ok else "FAIL"
        add(f"| {check.claim} | **{verdict}** | {check.evidence} |")
    add("")

    # -- table 5 -----------------------------------------------------------
    add("## Table 5 — invalidation costs")
    add("")
    add(
        f"| Experiment | Storage (paper×{scale:g} / ours / Δ) "
        "| Bytes per request (paper / ours) "
        "| Fan-out avg (s) | Fan-out max (s) |"
    )
    add("|---|---|---|---|---|")
    lo, hi = PAPER_BYTES_PER_REQUEST
    for (trace_name, days), row in _triples(data):
        inval = row["invalidation"]
        paper_storage = PAPER_SITELIST_STORAGE.get((trace_name, days))
        if paper_storage is None:
            continue
        target = paper_storage * scale
        per_request = (
            inval.sitelist_storage_bytes / inval.total_requests
            if inval.total_requests
            else 0.0
        )
        add(
            f"| {trace_name}-{days:g}d "
            f"| {_fmt_bytes(target)} / {_fmt_bytes(inval.sitelist_storage_bytes)} "
            f"/ {format_delta(inval.sitelist_storage_bytes, target)} "
            f"| {lo:g}–{hi:g} / {per_request:.1f} "
            f"| {inval.invalidation_time_avg:.3f} "
            f"| {inval.invalidation_time_max:.2f} |"
        )
    add("")
    add(
        "The shape the paper argues from: storage is small (tens of bytes "
        "per request) but the *maximum* fan-out time grows with the "
        "modification rate — the motivation for Section 6's two-tier "
        "leases."
    )
    add("")

    # -- cluster shard balance (only for sharded runs) ---------------------
    clustered = {
        label: result.cluster
        for label, result in sorted(data.results.items())
        if getattr(result, "cluster", None) is not None
    }
    if clustered:
        first = next(iter(clustered.values()))
        add("## Cluster shard balance")
        add("")
        add(
            f"Accelerator tier: {first['shards']} shards "
            f"(batch window {first['batch_window']:g}s, "
            f"batch cap {first['batch_max'] or 'none'}).  The imbalance "
            "ratio is max/mean requests routed per shard; 1.00 is a "
            "perfectly even consistent-hash split."
        )
        add("")
        add(
            "| Experiment | Imbalance | Handoffs | Batches | "
            "Invalidations batched | Busiest shard |"
        )
        add("|---|---|---|---|---|---|")
        for label, cluster in clustered.items():
            busiest = max(
                cluster["per_shard"].items(),
                key=lambda item: item[1]["requests_routed"],
            )
            add(
                f"| {label} | {cluster['imbalance_ratio']:.2f}x "
                f"| {cluster['handoffs']} "
                f"| {cluster['batches_delivered']} "
                f"| {cluster['batched_invalidations_delivered']} "
                f"| {busiest[0]} ({busiest[1]['requests_routed']} routed) |"
            )
        add("")
    return "\n".join(lines)


# ---------------------------------------------------------------------------
# --check smoke
# ---------------------------------------------------------------------------

#: Reduced matrix used by ``repro report --check``.
CHECK_EXPERIMENTS: Tuple[Tuple[int, str, float], ...] = ((3, "EPA", 50.0),)


def check_report(
    out: Optional[object] = None, scale: float = 0.02, seed: int = 42
) -> int:
    """CI smoke: tiny synthetic matrix end to end; returns an exit code.

    Replays one trace under the three protocols at a very small scale,
    renders the full report, and asserts (a) every section is present,
    (b) the manifest is deterministic across two same-seed builds, and
    (c) the delta arithmetic is sane.  Prints one line per check.
    """
    import sys

    out = out or sys.stdout
    say = lambda line: print(line, file=out)  # noqa: E731
    data = collect_report(
        scale=scale, seed=seed, experiments=CHECK_EXPERIMENTS, git_sha="check"
    )
    text = render_report(data)
    problems: List[str] = []
    for heading in (
        "## Run manifest",
        "## Table 1",
        "## Table 2",
        "## Tables 3–4",
        "## Table 5",
        "claims checklist",
    ):
        if heading not in text:
            problems.append(f"missing section: {heading}")
    manifest_again = build_manifest(
        scale, seed, CHECK_EXPERIMENTS, data.results, git_sha="check"
    )
    if manifest_again != data.manifest:
        problems.append("manifest not deterministic for identical results")
    if delta_pct(110.0, 100.0) != 10.0 or delta_pct(1.0, 0.0) is not None:
        problems.append("delta arithmetic broken")
    if problems:
        for problem in problems:
            say(f"report check FAILED: {problem}")
        return 1
    say(
        f"report check OK: {len(data.results)} point(s) at scale "
        f"{scale:g}, {len(text.splitlines())} report lines, "
        f"manifest {data.manifest['results_digest']}"
    )
    return 0
