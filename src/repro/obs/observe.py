"""Binding observability to one replay run.

An :class:`Observation` carries a :class:`~repro.obs.MetricsRegistry`
and (optionally) a :class:`~repro.obs.SpanSink` into
:func:`repro.replay.run_experiment` via
``ExperimentConfig(observation=...)``.  The runner calls the hooks in
this module at well-chosen seams:

* every completed request is folded into per-``(protocol, site, phase)``
  counter/timer series and emitted as a ``request`` span — from the same
  ``counters.record(outcome)`` call both the fast *and* the general
  client paths already make, so observing does not disturb the
  zero-allocation fast path (PR 3) and fast/slow runs stay bit-identical;
* every accelerator INVALIDATE fan-out becomes an ``invalidation`` span
  plus a fan-out timer (via :attr:`repro.server.ServerSite.fanout_listener`);
* at the end of the run, the wire accounting, per-proxy counters, server
  load and the scalar result fields are published into the registry, so
  one snapshot (``observation.registry.to_dict()``) holds everything the
  paper's tables print.

Phases: requests are labelled ``warmup`` (first 10% of trace time),
``steady`` (the rest) or ``drain`` (after the coordinator finished, while
in-flight work completes).  The phase is *derived* from the coordinator's
trace clock — attaching an observation schedules no events of its own,
so observed and unobserved runs process identical event sequences.

``deep=True`` additionally attaches a :class:`repro.sim.EventTracer` to
the kernel.  That sees every processed event, and therefore (by design —
see :mod:`repro.sim.tracing`) disables the pooled-timer and
fire-and-forget fast paths for the run.  Results are still identical;
only the kernel's speed differs.  Use it for post-mortems, not for
routine metrics.
"""

from __future__ import annotations

from typing import Any, Optional

from .registry import MetricsRegistry
from .spans import SpanSink

__all__ = ["Observation", "capture_result"]

#: Fraction of trace time labelled as warm-up.
WARMUP_FRACTION = 0.1


class _RecordingCounters:
    """Wraps one :class:`~repro.metrics.ReplayCounters` for one proxy site.

    ``record`` first feeds the wrapped counters (keeping replay results
    untouched), then folds the outcome into registry series and emits a
    ``request`` span.  Every other attribute is delegated, so the wrapper
    is a drop-in stand-in wherever the raw counters object is used.
    """

    __slots__ = ("_inner", "_obs", "_site")

    def __init__(self, inner: Any, obs: "Observation", site: str) -> None:
        self._inner = inner
        self._obs = obs
        self._site = site

    def record(self, outcome: Any) -> None:
        """Fold one request outcome into the counters and the registry."""
        self._inner.record(outcome)
        self._obs.record_request(outcome, self._site)

    def __getattr__(self, name: str) -> Any:
        return getattr(self._inner, name)


class Observation:
    """Observability configuration and state for one replay run.

    Args:
        registry: destination for metric series (default: a fresh
            :class:`~repro.obs.MetricsRegistry`).
        sink: optional :class:`~repro.obs.SpanSink` receiving the
            structured event trace; ``None`` records metrics only.
        deep: also attach a kernel :class:`~repro.sim.EventTracer`
            (disables the kernel fast paths for this run; results are
            unchanged, speed is not).
        deep_keep_last: ring-buffer size for the deep tracer's recent
            events.

    One observation observes one run: pass a fresh instance per
    ``run_experiment`` call.  Observations are not picklable and are
    therefore not supported with :class:`repro.replay.ParallelSweepRunner`
    workers — observe serial runs, or aggregate parallel sweeps from
    their checkpointed results instead (``repro report``).
    """

    def __init__(
        self,
        registry: Optional[MetricsRegistry] = None,
        sink: Optional[SpanSink] = None,
        deep: bool = False,
        deep_keep_last: int = 64,
    ) -> None:
        self.registry = registry if registry is not None else MetricsRegistry()
        self.sink = sink
        self.deep = deep
        self.deep_keep_last = deep_keep_last
        self.tracer = None
        self.protocol = ""
        self.trace_name = ""
        self._coordinator = None
        self._duration = 0.0
        self._bound = False

    # -- wiring (called by run_experiment) ---------------------------------

    def bind(
        self,
        sim: Any,
        protocol: str,
        trace_name: str,
        coordinator: Any,
        duration: float,
    ) -> None:
        """Attach to one run; called once by ``run_experiment``."""
        if self._bound:
            raise ValueError(
                "Observation already bound to a run; use one per experiment"
            )
        self._bound = True
        self.protocol = protocol
        self.trace_name = trace_name
        self._coordinator = coordinator
        self._duration = duration
        if self.deep:
            from ..sim.tracing import EventTracer

            self.tracer = EventTracer(sim, keep_last=self.deep_keep_last)

    def phase(self) -> str:
        """Current replay phase, derived from the coordinator's clock."""
        if self._coordinator is None or self._duration <= 0:
            return "steady"
        trace_time = self._coordinator.trace_time
        if trace_time >= self._duration:
            return "drain"
        if trace_time < WARMUP_FRACTION * self._duration:
            return "warmup"
        return "steady"

    def wrap_counters(self, counters: Any, site: str) -> _RecordingCounters:
        """Wrap the shared replay counters for one proxy site."""
        return _RecordingCounters(counters, self, site)

    # -- recording hooks ----------------------------------------------------

    def record_request(self, outcome: Any, site: str) -> None:
        """Fold one request outcome into series and (maybe) a span."""
        registry = self.registry
        protocol = self.protocol
        phase = self.phase()
        if outcome.failed:
            action = "failed"
        elif outcome.hit:
            action = "hit"
        elif outcome.validated:
            action = "validate"
        else:
            action = "miss"
        registry.counter(
            "requests", protocol=protocol, site=site, phase=phase,
            action=action,
        ).inc()
        if outcome.stale_served:
            registry.counter(
                "stale_serves", protocol=protocol, site=site, phase=phase
            ).inc()
        if outcome.violation:
            registry.counter(
                "violations", protocol=protocol, site=site, phase=phase
            ).inc()
        if not outcome.failed:
            registry.timer(
                "request_latency", protocol=protocol, site=site
            ).observe(outcome.latency)
        if self.sink is not None:
            attrs = {
                "site": site,
                "client": outcome.client_id,
                "protocol": protocol,
                "phase": phase,
                "action": action,
                "status": outcome.status,
                "bytes": outcome.body_bytes,
            }
            if outcome.stale_served:
                attrs["stale"] = True
            if outcome.violation:
                attrs["violation"] = True
            self.sink.emit(
                "request", outcome.url, outcome.started, outcome.finished,
                **attrs,
            )

    def fanout_listener(
        self, url: str, started: float, ended: float, sites: int
    ) -> None:
        """Record one INVALIDATE fan-out (the server's hook target)."""
        phase = self.phase()
        self.registry.counter(
            "invalidation_fanouts", protocol=self.protocol, phase=phase
        ).inc()
        self.registry.timer(
            "invalidation_fanout_time", protocol=self.protocol
        ).observe(ended - started)
        if self.sink is not None:
            self.sink.emit(
                "invalidation", url, started, ended,
                protocol=self.protocol, phase=phase, sites=sites,
            )

    # -- end of run ---------------------------------------------------------

    def finish(
        self,
        sim: Any,
        result: Any,
        network_stats: Any,
        server: Any,
        proxies: Any,
        iostat: Any,
    ) -> None:
        """Publish the end-of-run aggregates into the registry."""
        labels = {"protocol": self.protocol, "trace": self.trace_name}
        network_stats.publish(self.registry, **labels)
        for proxy in proxies:
            proxy.publish_metrics(self.registry, protocol=self.protocol)
        gauges = self.registry
        gauges.gauge("server_cpu_utilization", **labels).set(
            iostat.cpu_utilization()
        )
        gauges.gauge("server_disk_utilization", **labels).set(
            iostat.disk_utilization()
        )
        gauges.gauge("server_disk_reads_per_sec", **labels).set(
            iostat.disk_reads_per_sec()
        )
        gauges.gauge("server_disk_writes_per_sec", **labels).set(
            iostat.disk_writes_per_sec()
        )
        gauges.gauge("sitelist_storage_bytes", **labels).set(
            server.table.storage_bytes()
        )
        gauges.gauge("sitelist_entries", **labels).set(
            server.table.total_entries()
        )
        cluster = getattr(result, "cluster", None)
        if cluster is not None:
            gauges.gauge("cluster_shards", **labels).set(cluster["shards"])
            gauges.gauge("cluster_imbalance_ratio", **labels).set(
                cluster["imbalance_ratio"]
            )
            gauges.gauge("cluster_handoffs", **labels).set(cluster["handoffs"])
            gauges.gauge("cluster_batches_delivered", **labels).set(
                cluster["batches_delivered"]
            )
            for shard_name, row in cluster["per_shard"].items():
                shard_labels = dict(labels, shard=shard_name)
                for metric in (
                    "requests_routed",
                    "invalidations_sent",
                    "batches_sent",
                    "sitelist_entries",
                    "sitelist_evictions",
                ):
                    gauges.gauge(f"shard_{metric}", **shard_labels).set(
                        row[metric]
                    )
        capture_result(self.registry, result)
        if self.tracer is not None:
            self.tracer.publish(self.registry, **labels)
        if self.sink is not None:
            self.sink.emit(
                "run",
                f"{self.trace_name}/{self.protocol}",
                0.0,
                sim.now,
                protocol=self.protocol,
                trace=self.trace_name,
                requests=result.total_requests,
                messages=result.total_messages,
            )

    def close(self) -> None:
        """Detach the deep tracer (if any) and close the span sink."""
        if self.tracer is not None:
            self.tracer.detach()
        if self.sink is not None:
            self.sink.close()


#: Scalar result fields published as gauges by :func:`capture_result`.
_RESULT_GAUGES = (
    "total_requests",
    "files_modified",
    "gets",
    "ims",
    "replies_200",
    "replies_304",
    "invalidations",
    "total_messages",
    "message_bytes",
    "invalidations_sent",
    "origin_requests",
    "wall_time",
)


def capture_result(registry: MetricsRegistry, result: Any) -> None:
    """Fold an :class:`~repro.replay.ExperimentResult` into gauge series.

    Lets checkpointed or archived results be loaded into the same
    registry shape live runs produce — the unification ``repro report``
    builds on.
    """
    labels = {"protocol": result.protocol, "trace": result.trace_name}
    for name in _RESULT_GAUGES:
        registry.gauge(f"result_{name}", **labels).set(getattr(result, name))
    registry.gauge("result_hits", **labels).set(result.hits)
    registry.gauge("result_stale_serves", **labels).set(result.stale_serves)
    registry.gauge("result_violations", **labels).set(result.violations)
    registry.gauge("result_avg_latency", **labels).set(result.avg_latency)
