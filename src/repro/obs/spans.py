"""Structured event spans: the request-lifecycle trace.

A *span* is one timed thing that happened during a replay — a client
request travelling client → proxy (→ accelerator), an INVALIDATE fan-out
travelling accelerator → proxies, a whole run.  Spans are written as one
JSON object per line (JSONL) so timelines can be grepped, streamed and
diffed without loading a run into memory.

Schema (one line per span)::

    {"kind": "request", "name": "/doc/3", "start": 12.01, "end": 12.13,
     "site": "proxy-1", "client": "c42", "action": "hit", ...}

``kind`` and ``name`` plus ``start``/``end`` (simulated seconds) are
always present; everything else is a free-form attribute.  The kinds the
replay emits are:

* ``request`` — one client request; attributes: ``site``, ``client``,
  ``protocol``, ``phase``, ``action`` (``hit`` / ``miss`` / ``validate``
  / ``failed``), ``status``, ``bytes``, ``stale`` and ``violation``
  (only when true).
* ``invalidation`` — one accelerator fan-out; attributes: ``protocol``,
  ``sites`` (entries notified), ``phase``.
* ``run`` — the whole replay, emitted once at the end; attributes:
  ``protocol``, ``trace``, ``requests``, ``messages``.

Sampling: ``SpanSink(..., sample=0.25)`` keeps every fourth span of each
kind, deterministically (a per-kind stride counter, no RNG), so two runs
of the same experiment emit identical files.  All spans are *counted*
whether or not they are written.
"""

from __future__ import annotations

import json
import math
from collections import Counter as _Counter
from dataclasses import dataclass, field
from typing import Any, Dict, IO, Iterable, Iterator, List, Optional, Union

__all__ = [
    "Span",
    "SpanSink",
    "read_spans",
    "filter_spans",
    "format_timeline",
]


@dataclass
class Span:
    """One timed event loaded back from a span file."""

    kind: str
    name: str
    start: float
    end: float
    attrs: Dict[str, Any] = field(default_factory=dict)

    @property
    def duration(self) -> float:
        """Span length in simulated seconds."""
        return self.end - self.start

    def to_dict(self) -> Dict[str, Any]:
        """Flatten back into the JSONL object form."""
        return {
            "kind": self.kind,
            "name": self.name,
            "start": self.start,
            "end": self.end,
            **self.attrs,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "Span":
        """Build a span from one parsed JSONL object."""
        attrs = {
            k: v
            for k, v in data.items()
            if k not in ("kind", "name", "start", "end")
        }
        return cls(
            kind=data["kind"],
            name=data["name"],
            start=float(data["start"]),
            end=float(data["end"]),
            attrs=attrs,
        )


class SpanSink:
    """Writes spans as JSONL, with deterministic per-kind sampling.

    Args:
        out: a path (opened and owned by the sink) or an open text
            file-like object (borrowed; not closed by :meth:`close`).
        sample: fraction of spans to keep per kind, in (0, 1].  Sampling
            is a deterministic stride — span ``i`` of a kind is written
            when ``ceil((i+1)*sample) > ceil(i*sample)`` — so repeated
            runs produce identical files and the first span of every
            kind is always kept (a rare kind never vanishes entirely).
    """

    def __init__(self, out: Union[str, IO[str]], sample: float = 1.0) -> None:
        if not 0.0 < sample <= 1.0:
            raise ValueError("sample must be in (0, 1]")
        self.sample = sample
        self.counts: _Counter = _Counter()
        self.written: _Counter = _Counter()
        if isinstance(out, str):
            self._fh: Optional[IO[str]] = open(out, "w")
            self._owns = True
        else:
            self._fh = out
            self._owns = False

    def emit(
        self, kind: str, name: str, start: float, end: float, **attrs: Any
    ) -> bool:
        """Record one span; returns True when it was actually written."""
        seen = self.counts[kind]
        self.counts[kind] = seen + 1
        keep = math.ceil((seen + 1) * self.sample) > math.ceil(
            seen * self.sample
        )
        if not keep or self._fh is None:
            return False
        record: Dict[str, Any] = {
            "kind": kind,
            "name": name,
            "start": round(start, 6),
            "end": round(end, 6),
        }
        record.update(attrs)
        self._fh.write(json.dumps(record) + "\n")
        self.written[kind] += 1
        return True

    @property
    def total_seen(self) -> int:
        """Spans offered to the sink (written or sampled away)."""
        return sum(self.counts.values())

    @property
    def total_written(self) -> int:
        """Spans actually written to the file."""
        return sum(self.written.values())

    def close(self) -> None:
        """Flush and, when the sink opened the file itself, close it."""
        if self._fh is None:
            return
        self._fh.flush()
        if self._owns:
            self._fh.close()
        self._fh = None


def read_spans(source: Union[str, IO[str]]) -> Iterator[Span]:
    """Stream spans back from a JSONL file (path or open handle)."""
    if isinstance(source, str):
        with open(source, "r") as fh:
            yield from read_spans(fh)
        return
    for line in source:
        line = line.strip()
        if line:
            yield Span.from_dict(json.loads(line))


def filter_spans(
    spans: Iterable[Span],
    kind: Optional[str] = None,
    contains: Optional[str] = None,
    since: Optional[float] = None,
    until: Optional[float] = None,
    min_duration: Optional[float] = None,
) -> List[Span]:
    """Filter a span stream on kind / substring / time window.

    ``contains`` matches the span name or any ``key=value`` attribute
    rendering (so ``contains="action=miss"`` and ``contains="/doc/3"``
    both work); ``since``/``until`` select spans whose interval overlaps
    the window; ``min_duration`` keeps only spans at least that long
    (seconds).
    """
    out: List[Span] = []
    for span in spans:
        if kind is not None and span.kind != kind:
            continue
        if contains is not None:
            haystack = " ".join(
                [span.name]
                + [f"{k}={span.attrs[k]}" for k in sorted(span.attrs)]
            )
            if contains not in haystack:
                continue
        if since is not None and span.end < since:
            continue
        if until is not None and span.start > until:
            continue
        if min_duration is not None and span.duration < min_duration:
            continue
        out.append(span)
    return out


def format_timeline(spans: Iterable[Span], limit: int = 50) -> str:
    """Render spans as a start-ordered text timeline.

    One line per span: start time, duration, kind, name and the most
    interesting attributes.  ``limit`` caps the output (0 = unlimited);
    a trailing line reports how many spans were elided.
    """
    ordered = sorted(spans, key=lambda s: (s.start, s.end, s.kind, s.name))
    shown = ordered if limit <= 0 else ordered[:limit]
    lines: List[str] = []
    for span in shown:
        attrs = " ".join(
            f"{k}={span.attrs[k]}" for k in sorted(span.attrs)
        )
        lines.append(
            f"{span.start:12.4f}s  +{span.duration:9.4f}s  "
            f"{span.kind:12s} {span.name}  {attrs}".rstrip()
        )
    elided = len(ordered) - len(shown)
    if elided > 0:
        lines.append(f"... {elided} more span(s); raise --limit to see them")
    if not lines:
        lines.append("(no spans matched)")
    return "\n".join(lines)
