"""Unified facade: one import for protocols, experiments and sweeps.

Every front-end in this repository — the CLI, the benchmark harness,
the chaos campaign, the examples — needs the same three things: a
protocol by name, an experiment run from a config, and a sweep over a
grid of configs.  Historically each of them kept its own protocol-name
table and imported the runner from a different depth of the package.
This module is the single seam they now share::

    from repro.api import build_protocol, run_experiment, run_sweep

    protocol = build_protocol("invalidation", multicast=True)
    result = run_experiment(ExperimentConfig(trace=trace, protocol=protocol))

Design rules:

* **Names are the CLI names.**  ``build_protocol`` accepts exactly the
  strings ``python -m repro replay --protocol`` accepts, so scripts and
  shell pipelines agree on spelling.
* **Errors teach.**  Unknown protocol names and unknown keyword
  arguments raise ``ValueError`` with a did-you-mean suggestion and the
  full list of valid choices, mirroring
  :meth:`repro.replay.ExperimentConfig.validate`.
* **No new behaviour.**  :func:`run_experiment` and :func:`run_sweep`
  delegate to :mod:`repro.replay`; the facade adds discovery and
  validation, never semantics.

Old entry points keep working: ``repro.cli.PROTOCOL_FACTORIES`` still
resolves (via a shim that warns once per process) and the
``repro.core`` factory functions remain importable, undeprecated — the
facade wraps them rather than replacing them.
"""

from __future__ import annotations

import difflib
import inspect
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from .core import (
    adaptive_lease,
    adaptive_ttl,
    fixed_ttl,
    invalidation,
    lease_invalidation,
    piggyback_invalidation,
    poll_every_time,
    two_tier_lease,
)
from .core.protocol import Protocol
from .replay import ExperimentConfig, ExperimentResult
from .replay import run_experiment as _run_experiment
from .replay import sweep as _sweep
from .replay.sweep import SweepPoint, SweepResult

__all__ = [
    "PROTOCOLS",
    "protocol_names",
    "build_protocol",
    "run_experiment",
    "run_sweep",
]


def _decoupled_invalidation(
    retry_interval: float = 30.0, max_retries: Optional[int] = None
) -> Protocol:
    """Invalidation with the blocking prototype send decoupled."""
    return invalidation(
        blocking=False, retry_interval=retry_interval, max_retries=max_retries
    )


def _multicast_invalidation(
    retry_interval: float = 30.0, max_retries: Optional[int] = None
) -> Protocol:
    """Invalidation with one INVALIDATE per proxy host (multicast)."""
    return invalidation(
        multicast=True, retry_interval=retry_interval, max_retries=max_retries
    )


#: Protocol name -> zero-config factory.  The names are the CLI names;
#: each factory also accepts that protocol family's keyword arguments
#: (``build_protocol`` validates them against the signature).
PROTOCOLS: Dict[str, Callable[..., Protocol]] = {
    "ttl": adaptive_ttl,
    "adaptive-ttl": adaptive_ttl,
    "fixed-ttl": fixed_ttl,
    "polling": poll_every_time,
    "invalidation": invalidation,
    "invalidation-decoupled": _decoupled_invalidation,
    "invalidation-multicast": _multicast_invalidation,
    "lease": lease_invalidation,
    "adaptive-lease": adaptive_lease,
    "two-tier": two_tier_lease,
    "psi": piggyback_invalidation,
}


def protocol_names() -> List[str]:
    """All protocol names :func:`build_protocol` accepts, sorted."""
    return sorted(PROTOCOLS)


def _unknown(label: str, value: str, choices: Sequence[str]) -> str:
    """Build an unknown-``label`` error message with a typo suggestion."""
    suggestion = difflib.get_close_matches(str(value), list(choices), n=1)
    hint = f"; did you mean {suggestion[0]!r}?" if suggestion else ""
    options = ", ".join(repr(c) for c in sorted(choices))
    return f"unknown {label} {value!r}{hint} (choose from {options})"


def build_protocol(name: str, **config: Any) -> Protocol:
    """Build a protocol by its CLI name, with validated keyword config.

    Args:
        name: one of :func:`protocol_names` (e.g. ``"invalidation"``,
            ``"two-tier"``).
        config: keyword arguments forwarded to that protocol's factory
            (e.g. ``retry_interval=10.0`` for the invalidation family,
            ``ttl=600.0`` for ``fixed-ttl``).

    Raises:
        ValueError: on an unknown name or an unknown keyword argument,
            with a did-you-mean suggestion when one is close enough.
    """
    factory = PROTOCOLS.get(name)
    if factory is None:
        raise ValueError(_unknown("protocol", name, list(PROTOCOLS)))
    if config:
        accepted = [
            p.name
            for p in inspect.signature(factory).parameters.values()
            if p.kind in (p.POSITIONAL_OR_KEYWORD, p.KEYWORD_ONLY)
        ]
        for key in config:
            if key not in accepted:
                raise ValueError(
                    _unknown(f"{name!r} option", key, accepted)
                    if accepted
                    else f"protocol {name!r} takes no options (got {key!r})"
                )
    return factory(**config)


def run_experiment(config: ExperimentConfig) -> ExperimentResult:
    """Run one experiment; the facade's front door to the replay testbed.

    Validates the configuration (a second time — construction already
    validates — so configs mutated via ``dataclasses.replace`` chains
    are re-checked at the point of use), then delegates to
    :func:`repro.replay.run_experiment` unchanged.
    """
    config.validate()
    return _run_experiment(config)


def run_sweep(
    base: ExperimentConfig,
    points: Sequence[SweepPoint],
    runner: Optional[object] = None,
    derive_seeds: bool = False,
) -> List[SweepResult]:
    """Run an experiment grid; the facade's front door to sweeps.

    Args:
        base: the configuration every point derives from.
        points: ``(label, {field: value, ...})`` override tuples.
        runner: ``None`` for the default serial executor, or a
            sweep-level executor such as
            :class:`repro.replay.ParallelSweepRunner`.
        derive_seeds: give each point its own label-derived seed.
    """
    base.validate()
    if runner is None:
        return _sweep(base, points, derive_seeds=derive_seeds)
    return _sweep(base, points, runner=runner, derive_seeds=derive_seeds)


#: (old path, new path) rows for the migration table in ``docs/api.md``.
MIGRATIONS: Tuple[Tuple[str, str], ...] = (
    ("repro.cli.PROTOCOL_FACTORIES[name]()", "repro.api.build_protocol(name)"),
    ("repro.replay.run_experiment(config)", "repro.api.run_experiment(config)"),
    ("repro.replay.sweep(base, points)", "repro.api.run_sweep(base, points)"),
)
