"""iostat-style server load measurement.

The paper measures server load "as CPU and disk utilization using iostat"
over the replay.  :class:`IostatSampler` snapshots the server's CPU/disk
resource busy time and operation counters at a fixed period, yielding the
same three numbers the tables print: average CPU utilisation, disk reads
per second, disk writes per second — computed over replay wall time.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from ..server.httpd import ServerSite
from ..sim import Interrupt, Simulator

__all__ = ["IostatSample", "IostatSampler"]


@dataclass(frozen=True)
class IostatSample:
    """One sampling window."""

    time: float
    cpu_utilization: float
    disk_utilization: float
    disk_reads_per_sec: float
    disk_writes_per_sec: float


class IostatSampler:
    """Periodically samples a :class:`ServerSite`'s load.

    Args:
        sim: the simulator.
        server: the server site to watch.
        period: sampling period in (simulated) seconds.
    """

    def __init__(self, sim: Simulator, server: ServerSite, period: float = 60.0) -> None:
        if period <= 0:
            raise ValueError("period must be positive")
        self.sim = sim
        self.server = server
        self.period = period
        self.samples: List[IostatSample] = []
        self._started = sim.now
        self._last_cpu_busy = server.cpu.busy_time()
        self._last_disk_busy = server.disk.busy_time()
        self._last_reads = server.disk_reads
        self._last_writes = server.disk_writes
        self.process = sim.process(self._run())

    def _run(self):
        tick = None
        try:
            while True:
                tick = self.sim.timeout(self.period)
                yield tick
                self._take_sample()
        except Interrupt:
            # Retire the abandoned tick: a live timeout would idle the
            # clock forward to the next sampling boundary during drain.
            if tick is not None and not tick.processed:
                tick.cancel()
            return

    def stop(self) -> None:
        """Stop sampling (the replay is over).

        Must be called before draining the event queue: a live sampler
        keeps the simulation ticking forever.
        """
        if self.process.is_alive:
            self.process.interrupt()

    def _take_sample(self) -> None:
        cpu_busy = self.server.cpu.busy_time()
        disk_busy = self.server.disk.busy_time()
        reads = self.server.disk_reads
        writes = self.server.disk_writes
        self.samples.append(
            IostatSample(
                time=self.sim.now,
                cpu_utilization=(cpu_busy - self._last_cpu_busy) / self.period,
                disk_utilization=(disk_busy - self._last_disk_busy) / self.period,
                disk_reads_per_sec=(reads - self._last_reads) / self.period,
                disk_writes_per_sec=(writes - self._last_writes) / self.period,
            )
        )
        self._last_cpu_busy = cpu_busy
        self._last_disk_busy = disk_busy
        self._last_reads = reads
        self._last_writes = writes

    # -- whole-run aggregates (what the tables print) -------------------------

    def elapsed(self) -> float:
        """Wall time observed so far."""
        return self.sim.now - self._started

    def cpu_utilization(self) -> float:
        """Average CPU utilisation over the whole run."""
        elapsed = self.elapsed()
        return self.server.cpu.busy_time() / elapsed if elapsed > 0 else 0.0

    def disk_utilization(self) -> float:
        """Average disk utilisation over the whole run."""
        elapsed = self.elapsed()
        return self.server.disk.busy_time() / elapsed if elapsed > 0 else 0.0

    def disk_reads_per_sec(self) -> float:
        """Average disk reads/second over the whole run."""
        elapsed = self.elapsed()
        return self.server.disk_reads / elapsed if elapsed > 0 else 0.0

    def disk_writes_per_sec(self) -> float:
        """Average disk writes/second over the whole run."""
        elapsed = self.elapsed()
        return self.server.disk_writes / elapsed if elapsed > 0 else 0.0
