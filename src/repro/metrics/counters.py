"""Replay counters: the rows of Tables 3-4.

:class:`ReplayCounters` folds the per-request outcomes produced by the
proxies into the quantities the paper tabulates.  Message and byte totals
come from the network layer (:class:`repro.net.NetworkStats`) — they are
measured on the wire, not inferred.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..proxy.proxy import RequestOutcome
from .latency import LatencyStats

__all__ = ["ReplayCounters"]


@dataclass
class ReplayCounters:
    """Outcome-derived counters for one protocol replay."""

    requests: int = 0
    hits: int = 0
    misses: int = 0
    transfers: int = 0
    validations: int = 0
    served_from_cache: int = 0
    stale_serves: int = 0
    violations: int = 0
    failed: int = 0
    body_bytes_from_cache: int = 0
    body_bytes_transferred: int = 0
    latency: LatencyStats = field(default_factory=LatencyStats)
    #: How outdated stale serves were (empty for strong protocols).
    staleness: LatencyStats = field(default_factory=LatencyStats)

    def record(self, outcome: RequestOutcome) -> None:
        """Fold one request outcome in."""
        self.requests += 1
        if outcome.failed:
            self.failed += 1
            return
        if outcome.hit:
            self.hits += 1
        else:
            self.misses += 1
        if outcome.transfer:
            self.transfers += 1
            self.body_bytes_transferred += outcome.body_bytes
        if outcome.validated:
            self.validations += 1
        if outcome.served_from_cache:
            self.served_from_cache += 1
            self.body_bytes_from_cache += outcome.body_bytes
        if outcome.stale_served:
            self.stale_serves += 1
            self.staleness.record(outcome.staleness_age)
        if outcome.violation:
            self.violations += 1
        self.latency.record(outcome.latency)

    @property
    def hit_ratio(self) -> float:
        """Hits / completed requests."""
        completed = self.requests - self.failed
        return self.hits / completed if completed else 0.0
