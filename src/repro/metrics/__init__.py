"""Measurement layer: counters, latency stats, iostat-style sampling."""

from .counters import ReplayCounters
from .iostat import IostatSample, IostatSampler
from .latency import LatencyStats

__all__ = ["ReplayCounters", "LatencyStats", "IostatSampler", "IostatSample"]
