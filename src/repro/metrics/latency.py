"""Streaming latency statistics (avg / min / max / percentiles).

Tables 3-4 report average, minimum and maximum client response times; we
additionally keep a bounded reservoir so percentiles can be reported
without storing every sample of a 60k-request replay.
"""

from __future__ import annotations

import math
import random
from typing import List

__all__ = ["LatencyStats"]


class LatencyStats:
    """Online mean/min/max plus reservoir-sampled percentiles."""

    def __init__(self, reservoir_size: int = 4096, seed: int = 0) -> None:
        if reservoir_size < 1:
            raise ValueError("reservoir_size must be >= 1")
        self.count = 0
        self.total = 0.0
        self.minimum = math.inf
        self.maximum = -math.inf
        self._reservoir: List[float] = []
        self._reservoir_size = reservoir_size
        self._rng = random.Random(seed)

    def record(self, value: float) -> None:
        """Add one sample."""
        if value < 0:
            raise ValueError(f"negative latency {value!r}")
        self.count += 1
        self.total += value
        self.minimum = min(self.minimum, value)
        self.maximum = max(self.maximum, value)
        if len(self._reservoir) < self._reservoir_size:
            self._reservoir.append(value)
        else:
            slot = self._rng.randrange(self.count)
            if slot < self._reservoir_size:
                self._reservoir[slot] = value

    @property
    def mean(self) -> float:
        """Average latency (0.0 when empty)."""
        return self.total / self.count if self.count else 0.0

    @property
    def min(self) -> float:
        """Smallest sample (0.0 when empty)."""
        return self.minimum if self.count else 0.0

    @property
    def max(self) -> float:
        """Largest sample (0.0 when empty)."""
        return self.maximum if self.count else 0.0

    def percentile(self, p: float) -> float:
        """Approximate p-th percentile from the reservoir, p in [0, 100]."""
        if not 0 <= p <= 100:
            raise ValueError("p must be in [0, 100]")
        if not self._reservoir:
            return 0.0
        ordered = sorted(self._reservoir)
        index = min(len(ordered) - 1, int(round(p / 100.0 * (len(ordered) - 1))))
        return ordered[index]

    def summary(self) -> dict:
        """JSON-compatible digest: mean/min/max plus reservoir percentiles.

        The canonical flattened form used by result serialization
        (:mod:`repro.replay.serialize`) and by metric-registry snapshots
        (:meth:`repro.obs.MetricsRegistry.to_dict`).
        """
        return {
            "mean": self.mean,
            "min": self.min,
            "max": self.max,
            "p50": self.percentile(50),
            "p95": self.percentile(95),
            "p99": self.percentile(99),
            "count": self.count,
        }

    def state_dict(self) -> dict:
        """JSON-compatible full state (for checkpoint round-trips)."""
        return {
            "count": self.count,
            "total": self.total,
            "min": self.minimum if self.count else None,
            "max": self.maximum if self.count else None,
            "reservoir": list(self._reservoir),
            "reservoir_size": self._reservoir_size,
        }

    @classmethod
    def from_state(cls, state: dict) -> "LatencyStats":
        """Rebuild stats saved with :meth:`state_dict`.

        Mean/min/max/percentiles are restored exactly; only the reservoir
        RNG restarts, which affects nothing unless more samples are
        recorded afterwards.
        """
        stats = cls(reservoir_size=state.get("reservoir_size", 4096))
        stats.count = int(state["count"])
        stats.total = float(state["total"])
        if stats.count:
            stats.minimum = float(state["min"])
            stats.maximum = float(state["max"])
        stats._reservoir = [float(v) for v in state.get("reservoir", [])]
        return stats

    def merge(self, other: "LatencyStats") -> None:
        """Fold another stats object into this one."""
        self.count += other.count
        self.total += other.total
        self.minimum = min(self.minimum, other.minimum)
        self.maximum = max(self.maximum, other.maximum)
        for value in other._reservoir:
            if len(self._reservoir) < self._reservoir_size:
                self._reservoir.append(value)
            else:
                slot = self._rng.randrange(self.count)
                if slot < self._reservoir_size:
                    self._reservoir[slot] = value

    def __repr__(self) -> str:
        return (
            f"LatencyStats(n={self.count}, mean={self.mean:.4f}, "
            f"min={self.min:.4f}, max={self.max:.4f})"
        )
