"""repro — reproduction of Liu & Cao, "Maintaining Strong Cache
Consistency in the World-Wide Web" (ICDCS 1997).

The package implements the paper's three consistency approaches (adaptive
TTL, polling-every-time, server-driven invalidation), the lease-augmented
and two-tier refinements of Section 6, and the full trace-replay testbed
used to compare them — all on a from-scratch discrete-event simulator.

Quickest start::

    from repro import (
        ExperimentConfig, run_experiment, format_comparison_table,
        adaptive_ttl, poll_every_time, invalidation,
        PROFILES, generate_trace, RngRegistry, DAYS,
    )

    trace = generate_trace(PROFILES["EPA"].scaled(0.1), RngRegistry(seed=42))
    results = [
        run_experiment(ExperimentConfig(trace=trace, protocol=p,
                                        mean_lifetime=5 * DAYS))
        for p in (adaptive_ttl(), poll_every_time(), invalidation())
    ]
    print(format_comparison_table(results))

Subpackages: :mod:`repro.sim` (DES kernel), :mod:`repro.net` (network),
:mod:`repro.http` (message model), :mod:`repro.server` (origin server +
accelerator), :mod:`repro.proxy` (proxy cache), :mod:`repro.core`
(protocols + Table 1 analysis), :mod:`repro.traces` (trace substrate),
:mod:`repro.workload` (modifier), :mod:`repro.replay` (testbed harness),
:mod:`repro.metrics`, :mod:`repro.failures`.
"""

from .api import PROTOCOLS, build_protocol, protocol_names, run_sweep
from .api import run_experiment
from .core import (
    DEFAULT_LEASE,
    MessageCounts,
    Protocol,
    adaptive_lease,
    adaptive_ttl,
    fixed_ttl,
    invalidation,
    lease_invalidation,
    piggyback_invalidation,
    poll_every_time,
    predict_message_counts,
    simulate_stream,
    symbolic_counts,
    two_tier_lease,
)
from .failures import FailureInjector
from .replay import (
    ExperimentConfig,
    ExperimentResult,
    format_comparison_table,
    format_invalidation_costs,
)
from .sim import RngRegistry, Simulator
from .traces import PROFILES, Trace, TraceProfile, generate_trace, read_clf, summarize
from .workload import DAYS

__version__ = "1.0.0"

__all__ = [
    "__version__",
    # protocols
    "Protocol",
    "adaptive_ttl",
    "fixed_ttl",
    "poll_every_time",
    "invalidation",
    "lease_invalidation",
    "two_tier_lease",
    "adaptive_lease",
    "piggyback_invalidation",
    "DEFAULT_LEASE",
    # analysis
    "MessageCounts",
    "symbolic_counts",
    "simulate_stream",
    "predict_message_counts",
    # facade
    "PROTOCOLS",
    "build_protocol",
    "protocol_names",
    "run_sweep",
    # replay
    "ExperimentConfig",
    "ExperimentResult",
    "run_experiment",
    "format_comparison_table",
    "format_invalidation_costs",
    # traces & workload
    "Trace",
    "TraceProfile",
    "PROFILES",
    "generate_trace",
    "summarize",
    "read_clf",
    "DAYS",
    # infrastructure
    "Simulator",
    "RngRegistry",
    "FailureInjector",
]
