#!/usr/bin/env python
"""Table 1: the analytical message model, symbolic vs. simulated.

Evaluates the paper's Section 3 formulas on the paper's own example
stream ("r r r m m m r r m r r r m m r") and on random streams, showing:

* both strong protocols do the minimum RI file transfers;
* invalidation uses at most 2*RI control messages;
* adaptive TTL's transfer savings are exactly its stale intervals.

Usage::

    python examples/analytical_model.py
"""

import random

from repro import simulate_stream, symbolic_counts
from repro.core import AdaptiveTtlPolicy, timed_stream_from_ops
from repro.workload import count_r_ri, parse_stream

PAPER_STREAM = "r r r m m m r r m r r r m m r"


def show(title, counts):
    print(f"  {title:20s} GETs={counts.gets:3d} IMS={counts.ims:3d} "
          f"304s={counts.replies_304:3d} invals={counts.invalidations:3d} "
          f"transfers={counts.file_transfers:3d} control={counts.control_messages:3d}"
          + (f" stale={counts.stale_hits}" if counts.stale_hits else ""))


def main() -> None:
    ops = parse_stream(PAPER_STREAM)
    rc = count_r_ri(ops)
    print(f'Paper example stream: "{PAPER_STREAM}"')
    print(f"R = {rc.reads}, RI = {rc.intervals}\n")

    print("Symbolic (Table 1 formulas):")
    show("polling", symbolic_counts("polling", rc.reads, rc.intervals))
    show("invalidation", symbolic_counts("invalidation", rc.reads, rc.intervals))

    print("\nExact protocol state machines on the same stream:")
    events = timed_stream_from_ops(ops, spacing=3600.0)
    show("polling", simulate_stream(events, "polling"))
    show("invalidation", simulate_stream(events, "invalidation"))
    ttl = AdaptiveTtlPolicy(factor=0.5, min_ttl=0.0)
    show("adaptive TTL", simulate_stream(events, "ttl", ttl_policy=ttl,
                                         initial_age=10 * 3600.0))

    print("\nRandom streams — checking the Section 3 bounds:")
    rng = random.Random(7)
    for i in range(5):
        ops = [rng.choice("rrm") for _ in range(40)]
        rc = count_r_ri(ops)
        events = timed_stream_from_ops(ops, spacing=600.0)
        inval = simulate_stream(events, "invalidation")
        poll = simulate_stream(events, "polling")
        ttl_counts = simulate_stream(events, "ttl", ttl_policy=ttl,
                                     initial_age=7200.0)
        assert inval.file_transfers == rc.intervals
        assert poll.file_transfers == rc.intervals
        assert inval.control_messages <= 2 * rc.intervals
        assert ttl_counts.file_transfers == rc.intervals - ttl_counts.stale_hits
        print(f"  stream {i}: R={rc.reads:2d} RI={rc.intervals:2d}  "
              f"inval control={inval.control_messages:2d} (<= {2 * rc.intervals})  "
              f"TTL transfers={ttl_counts.file_transfers:2d} "
              f"(RI - {ttl_counts.stale_hits} stale intervals)")
    print("\nAll Table 1 identities hold.")


if __name__ == "__main__":
    main()
