#!/usr/bin/env python
"""Tour of the extension protocols beyond the paper's three.

Runs one scaled workload under six consistency schemes and prints a
single comparison: the paper's three, the two Section 6 lease variants,
and the PSI follow-up — plus a hierarchical run showing the Worrell
effect on the origin server.

Usage::

    python examples/extensions_tour.py [scale]
"""

import sys

from repro import (
    DAYS,
    ExperimentConfig,
    PROFILES,
    RngRegistry,
    generate_trace,
)
from repro.api import build_protocol, run_experiment


def main() -> None:
    scale = float(sys.argv[1]) if len(sys.argv) > 1 else 0.1
    profile = PROFILES["SDSC"].scaled(scale)
    lifetime = 2.5 * DAYS
    trace = generate_trace(profile, RngRegistry(seed=42))
    print(f"SDSC-like workload: {profile.total_requests} requests, "
          f"{profile.num_files} files, 2.5-day lifetimes\n")

    schemes = [
        ("poll-every-time", build_protocol("polling")),
        ("adaptive TTL", build_protocol("ttl")),
        ("invalidation", build_protocol("invalidation")),
        ("invalidation (multicast)", build_protocol("invalidation-multicast")),
        ("lease invalidation (10m)",
         build_protocol("lease", lease_duration=600.0)),
        ("two-tier lease", build_protocol("two-tier", lease_duration=1e9)),
        ("PSI (piggyback)", build_protocol("psi")),
    ]

    print(f"{'scheme':28s}{'msgs':>8s}{'stale':>7s}{'maxlat':>8s}"
          f"{'CPU':>7s}{'sitelist':>10s}")
    for label, protocol in schemes:
        result = run_experiment(
            ExperimentConfig(trace=trace, protocol=protocol,
                             mean_lifetime=lifetime)
        )
        print(f"{label:28s}{result.total_messages:>8d}"
              f"{result.stale_serves:>7d}{result.max_latency:>8.2f}"
              f"{result.cpu_utilization:>7.1%}{result.sitelist_entries:>10d}")

    # The Worrell configuration: a hierarchy in front of the server.
    flat = run_experiment(
        ExperimentConfig(trace=trace, protocol=build_protocol("invalidation"),
                         mean_lifetime=lifetime)
    )
    hier = run_experiment(
        ExperimentConfig(trace=trace, protocol=build_protocol("invalidation"),
                         mean_lifetime=lifetime, hierarchy_parents=2)
    )
    print("\nHierarchy (2 parents) vs flat, invalidation:")
    print(f"  origin transfers  {flat.origin_replies_200:6d} -> "
          f"{hier.origin_replies_200:6d}")
    print(f"  server fan-outs   {flat.invalidations_sent:6d} -> "
          f"{hier.invalidations_sent:6d} "
          f"(+{hier.parent_invalidations_forwarded} forwarded by parents)")
    print(f"  server site list  {flat.sitelist_entries:6d} -> "
          f"{hier.sitelist_entries:6d} entries")


if __name__ == "__main__":
    main()
