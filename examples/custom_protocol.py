#!/usr/bin/env python
"""Build your own consistency protocol.

Everything in the testbed is shared; a protocol is just a client policy
(serve vs validate) paired with a server-side AcceleratorConfig.  This
example implements *probabilistic validation* — serve the cached copy,
but with probability p validate first (a knob between adaptive TTL's
"never ask" and polling's "always ask") — and races it against the
built-ins.

Usage::

    python examples/custom_protocol.py [scale]
"""

import random
import sys

from repro import (
    DAYS,
    ExperimentConfig,
    PROFILES,
    Protocol,
    RngRegistry,
    adaptive_ttl,
    generate_trace,
    invalidation,
    poll_every_time,
    run_experiment,
)
from repro.core import SERVE, VALIDATE, ClientPolicy
from repro.server import AcceleratorConfig


class ProbabilisticValidation(ClientPolicy):
    """Serve from cache; validate with probability ``p`` per hit."""

    def __init__(self, p: float, seed: int = 0) -> None:
        if not 0 <= p <= 1:
            raise ValueError("p must be in [0, 1]")
        self.name = f"prob-validate({p:g})"
        self.p = p
        self.rng = random.Random(seed)

    def action(self, entry, now):
        return VALIDATE if self.rng.random() < self.p else SERVE

    def is_hit(self, outcome):
        return outcome.served_from_cache


def probabilistic_validation(p: float) -> Protocol:
    """Package the policy as a runnable protocol."""
    return Protocol(
        name=f"prob-validate({p:g})",
        client_policy=ProbabilisticValidation(p),
        accelerator=AcceleratorConfig(invalidation=False),
        strong=False,  # a skipped validation can serve stale data
    )


def main() -> None:
    scale = float(sys.argv[1]) if len(sys.argv) > 1 else 0.08
    profile = PROFILES["SDSC"].scaled(scale)
    trace = generate_trace(profile, RngRegistry(seed=42))
    lifetime = 2.5 * DAYS

    print(f"{'protocol':24s}{'messages':>10s}{'stale':>7s}{'avg lat':>9s}")
    for protocol in (
        adaptive_ttl(),
        probabilistic_validation(0.25),
        probabilistic_validation(0.75),
        poll_every_time(),
        invalidation(),
    ):
        result = run_experiment(
            ExperimentConfig(trace=trace, protocol=protocol,
                             mean_lifetime=lifetime)
        )
        print(f"{protocol.name:24s}{result.total_messages:>10d}"
              f"{result.stale_serves:>7d}{result.avg_latency:>9.3f}")

    print("\nProbabilistic validation interpolates between TTL and polling —")
    print("and invalidation still beats the whole family on both axes.")


if __name__ == "__main__":
    main()
