#!/usr/bin/env python
"""Walk through the paper's three failure scenarios (Section 4).

1. A proxy crashes, misses an invalidation, recovers, and revalidates its
   (questionable) entries instead of serving stale data.
2. The server site crashes, a document changes during the outage, and the
   recovery fan-out (INVALIDATE carrying the server address) makes every
   proxy revalidate.
3. A network partition blocks an invalidation; TCP-with-periodic-retry
   delivers it after the heal.

Usage::

    python examples/failure_recovery.py
"""

from repro import FailureInjector, RngRegistry, Simulator, invalidation
from repro.net import FixedLatency, Network
from repro.proxy import Cache, ProxyCache
from repro.server import FileStore, ServerSite


def build():
    sim = Simulator()
    net = Network(sim, latency=FixedLatency(0.001), connect_timeout=0.5)
    fs = FileStore.from_catalog({"/index.html": 4096, "/paper.ps": 200_000})
    protocol = invalidation(retry_interval=5.0)
    server = ServerSite(sim, net, "server", fs, accel=protocol.accelerator)
    proxy = ProxyCache(
        sim, net, "proxy-0", "server",
        policy=protocol.client_policy,
        cache=Cache(),
        oracle=lambda url: fs.get(url).last_modified,
    )
    return sim, net, fs, server, proxy


def fetch(sim, proxy, client, url, label):
    holder = {}

    def driver(sim):
        holder["o"] = yield from proxy.request(client, url)

    sim.process(driver(sim))
    sim.run()
    o = holder["o"]
    how = (
        "FAILED" if o.failed
        else "served from cache" if (o.served_from_cache and not o.validated)
        else f"validated ({o.status})" if o.validated
        else "fetched (200)"
    )
    print(f"    [{label}] {client} GET {url}: {how}"
          f"{'  ** STALE **' if o.stale_served else ''}")
    return o


def scenario_proxy_crash():
    print("Scenario 1: proxy crash misses an invalidation")
    sim, net, fs, server, proxy = build()
    injector = FailureInjector(sim=sim, network=net)
    fetch(sim, proxy, "alice", "/index.html", "t0")
    injector.schedule_proxy_crash(proxy, at=sim.now + 1, recover_at=sim.now + 60)
    sim.run(until=sim.now + 2)
    print("    proxy crashed; modifying /index.html on the server")
    fs.modify("/index.html", now=sim.now)
    server.check_in("/index.html")
    sim.run(until=sim.now + 120)  # recovery + retried delivery
    o = fetch(sim, proxy, "alice", "/index.html", "after recovery")
    assert not o.stale_served
    print("    -> no stale data despite the missed invalidation\n")


def scenario_server_crash():
    print("Scenario 2: server-site crash and recovery fan-out")
    sim, net, fs, server, proxy = build()
    injector = FailureInjector(sim=sim, network=net)
    fetch(sim, proxy, "bob", "/index.html", "t0")
    fetch(sim, proxy, "bob", "/paper.ps", "t0")
    injector.schedule_server_crash(server, at=sim.now + 1, recover_at=sim.now + 30)
    sim.run(until=sim.now + 2)
    print("    server down; /index.html changes during the outage")
    fs.modify("/index.html", now=sim.now)
    sim.run(until=sim.now + 60)
    print(f"    recovery sent INVALIDATE-by-server; proxy received "
          f"{proxy.server_invalidations_received}, all entries questionable")
    o1 = fetch(sim, proxy, "bob", "/index.html", "after recovery")
    o2 = fetch(sim, proxy, "bob", "/paper.ps", "after recovery")
    assert o1.status == 200 and o2.status == 304
    assert not o1.stale_served
    print("    -> changed doc re-fetched, unchanged doc revalidated\n")


def scenario_partition():
    print("Scenario 3: network partition, periodic TCP retry")
    sim, net, fs, server, proxy = build()
    injector = FailureInjector(sim=sim, network=net)
    fetch(sim, proxy, "carol", "/index.html", "t0")
    injector.schedule_partition(
        {"server"}, {"proxy-0"}, at=sim.now + 1, heal_at=sim.now + 40
    )
    sim.run(until=sim.now + 2)
    print("    partition up; modifying /index.html (invalidation will retry)")
    fs.modify("/index.html", now=sim.now)
    server.check_in("/index.html")
    sim.run(until=sim.now + 80)
    print(f"    invalidations delivered after heal: {proxy.invalidations_received}")
    o = fetch(sim, proxy, "carol", "/index.html", "after heal")
    assert o.transfer and not o.stale_served
    print("    -> strong consistency preserved across the partition\n")


def main() -> None:
    scenario_proxy_crash()
    scenario_server_crash()
    scenario_partition()
    print("All three failure scenarios handled without stale serves.")


if __name__ == "__main__":
    main()
