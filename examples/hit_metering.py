#!/usr/bin/env python
"""Hit metering: caching without losing access counts (Section 7).

The paper notes that commercial sites resist caching because it hides
accesses; it proposes merging invalidation with hit-metering protocols.
This example runs a proxy with a hit meter against an invalidation
server and shows the origin's usage ledger reconstructing the true
per-document access counts from direct requests plus piggybacked
reports.

Usage::

    python examples/hit_metering.py
"""

from collections import Counter

from repro import RngRegistry, Simulator, invalidation
from repro.metering import HitMeter
from repro.net import FixedLatency, Network
from repro.proxy import Cache, ProxyCache
from repro.server import FileStore, ServerSite


def main() -> None:
    sim = Simulator()
    net = Network(sim, latency=FixedLatency(0.001))
    fs = FileStore.from_catalog({"/news": 8000, "/paper": 40000, "/logo": 900})
    protocol = invalidation()
    server = ServerSite(sim, net, "server", fs, accel=protocol.accelerator)
    meter = HitMeter()
    proxy = ProxyCache(
        sim, net, "proxy-0", "server",
        policy=protocol.client_policy, cache=Cache(), meter=meter,
    )

    rng = RngRegistry(seed=7).stream("clients")
    urls = list(fs.urls)
    true_counts = Counter()

    def browse(sim):
        for _ in range(400):
            client = f"c{rng.randrange(6)}"
            url = rng.choice(urls)
            true_counts[url] += 1
            yield from proxy.request(client, url)
            yield sim.timeout(rng.uniform(0.1, 2.0))
            # Occasionally a document changes, forcing fresh contacts
            # that carry the piggybacked hit reports upstream.
            if rng.random() < 0.03:
                victim = rng.choice(urls)
                fs.modify(victim, now=sim.now)
                server.check_in(victim)

    sim.process(browse(sim))
    sim.run()

    print(f"{'document':12s}{'true':>8s}{'direct':>8s}{'reported':>10s}"
          f"{'unreported':>12s}{'accounted':>11s}")
    for url in urls:
        direct = server.ledger.direct(url)
        reported = server.ledger.reported(url)
        pending = meter.pending(url)
        accounted = direct + reported + pending
        print(f"{url:12s}{true_counts[url]:>8d}{direct:>8d}{reported:>10d}"
              f"{pending:>12d}{accounted:>11d}")
        assert accounted == true_counts[url], "conservation law violated!"

    hidden = meter.total_recorded
    print(f"\nWithout metering the origin would have missed {hidden} accesses "
          f"({hidden / sum(true_counts.values()):.0%} of all traffic).")
    print("Ledger + unreported residue == true counts for every document.")


if __name__ == "__main__":
    main()
