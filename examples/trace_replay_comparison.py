#!/usr/bin/env python
"""Replay any of the paper's five traces and print Tables 3/4/5 rows.

This is the closest runnable analogue of the paper's evaluation: pick a
trace (EPA, SDSC, ClarkNet, NASA, SASK), a mean file lifetime in days,
and a scale factor, then compare the three consistency approaches.

Usage::

    python examples/trace_replay_comparison.py [trace] [lifetime_days] [scale]

Defaults: SDSC, 2.5 days, 0.2 — the paper's high-modification SDSC run at
a fifth of full volume (about a minute of runtime).  For paper-scale
numbers use scale 1.0 (several minutes), or run the benchmarks in
``benchmarks/``.
"""

import sys

from repro import (
    DAYS,
    ExperimentConfig,
    PROFILES,
    RngRegistry,
    format_comparison_table,
    format_invalidation_costs,
    generate_trace,
)
from repro.api import build_protocol, run_experiment
from repro.traces import profile as lookup_profile


def main() -> None:
    trace_name = sys.argv[1] if len(sys.argv) > 1 else "SDSC"
    lifetime_days = float(sys.argv[2]) if len(sys.argv) > 2 else 2.5
    scale = float(sys.argv[3]) if len(sys.argv) > 3 else 0.2

    profile = lookup_profile(trace_name).scaled(scale)
    # Keep the modification count of the full-scale experiment: lifetime
    # scales with the file count (mods = duration * files / lifetime).
    mean_lifetime = lifetime_days * DAYS * scale

    print(f"Trace {profile.name}: {profile.total_requests} requests, "
          f"{profile.num_files} files, lifetime {lifetime_days:g} days "
          f"(scaled to {mean_lifetime / DAYS:.2f})")
    trace = generate_trace(profile, RngRegistry(seed=42))

    results = []
    for protocol in (build_protocol(name)
                     for name in ("polling", "invalidation", "ttl")):
        print(f"  replaying {protocol.name}...")
        results.append(
            run_experiment(
                ExperimentConfig(
                    trace=trace, protocol=protocol, mean_lifetime=mean_lifetime
                )
            )
        )

    print()
    print(format_comparison_table(results))
    print()
    print(format_invalidation_costs([results[1]]))


if __name__ == "__main__":
    main()
