#!/usr/bin/env python
"""Quickstart: compare the three consistency approaches on a small trace.

Generates a scaled-down EPA-like workload, replays it under adaptive TTL,
polling-every-time and invalidation, and prints a Table 3/4-style
comparison.  Runs in a few seconds.

Usage::

    python examples/quickstart.py [scale]

``scale`` (default 0.05) is the fraction of the full EPA trace to use.
"""

import sys

from repro import (
    DAYS,
    ExperimentConfig,
    PROFILES,
    RngRegistry,
    format_comparison_table,
    generate_trace,
)
from repro.api import build_protocol, run_experiment


def main() -> None:
    scale = float(sys.argv[1]) if len(sys.argv) > 1 else 0.05
    profile = PROFILES["EPA"].scaled(scale)

    # Scale the mean lifetime with the trace so the modification count
    # matches the paper's EPA experiment (72 modifications at full scale).
    mean_lifetime = 50 * DAYS * scale

    print(f"Generating {profile.name}: {profile.total_requests} requests, "
          f"{profile.num_files} documents...")
    trace = generate_trace(profile, RngRegistry(seed=42))

    results = []
    for protocol in (build_protocol(name)
                     for name in ("polling", "invalidation", "ttl")):
        print(f"Replaying under {protocol.name}...")
        config = ExperimentConfig(
            trace=trace, protocol=protocol, mean_lifetime=mean_lifetime
        )
        results.append(run_experiment(config))

    print()
    print(format_comparison_table(results))
    print()
    inval, ttl = results[1], results[2]
    polling = results[0]
    print("Headline checks (paper Section 5.2):")
    print(f"  polling sends {polling.total_messages / inval.total_messages - 1:+.0%} "
          "messages vs invalidation")
    print(f"  invalidation vs adaptive TTL messages: "
          f"{inval.total_messages / ttl.total_messages - 1:+.0%}")
    print(f"  stale serves - TTL: {ttl.stale_serves}, "
          f"polling: {polling.stale_serves}, invalidation: {inval.stale_serves}")


if __name__ == "__main__":
    main()
