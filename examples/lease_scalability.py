#!/usr/bin/env python
"""Section 6: how leases bound invalidation's site lists.

Replays a SASK-like workload under three server-side policies and prints
the site-list economics the paper discusses:

* simple invalidation — site lists grow with every request;
* lease-augmented invalidation — the server forgets clients whose lease
  expired, bounding storage to the last lease window;
* two-tier leases — only clients that ask about a document a *second*
  time are remembered, trading a few extra If-Modified-Since requests for
  drastically smaller site lists (the paper: SASK 20k -> 2489 entries,
  max list 1155 -> 473, for 2489 extra IMS).

Usage::

    python examples/lease_scalability.py [scale]
"""

import sys

from repro import (
    DAYS,
    ExperimentConfig,
    PROFILES,
    RngRegistry,
    generate_trace,
)
from repro.api import build_protocol, run_experiment


def main() -> None:
    scale = float(sys.argv[1]) if len(sys.argv) > 1 else 0.1
    profile = PROFILES["SASK"].scaled(scale)
    mean_lifetime = 14 * DAYS * scale
    trace = generate_trace(profile, RngRegistry(seed=42))
    print(f"SASK-like workload: {profile.total_requests} requests, "
          f"{profile.num_files} files\n")

    protocols = [
        ("simple invalidation", build_protocol("invalidation")),
        # Wall-time lease of 20 minutes ~ a sizeable fraction of the
        # compressed replay, mirroring a multi-day lease on the real trace.
        ("lease-augmented (20 min)",
         build_protocol("lease", lease_duration=1200.0)),
        ("two-tier (long lease)", build_protocol("two-tier", lease_duration=1e9)),
    ]

    header = (f"{'policy':28s}{'entries':>9s}{'storage':>10s}"
              f"{'max list':>10s}{'IMS':>8s}{'invals':>8s}")
    print(header)
    baseline_ims = None
    for label, protocol in protocols:
        result = run_experiment(
            ExperimentConfig(
                trace=trace, protocol=protocol, mean_lifetime=mean_lifetime
            )
        )
        if baseline_ims is None:
            baseline_ims = result.ims
        print(
            f"{label:28s}{result.sitelist_entries:9d}"
            f"{result.sitelist_storage_bytes / 1024:9.1f}K"
            f"{result.sitelist_max_len:10d}"
            f"{result.ims:8d}{result.invalidations:8d}"
        )
    print("\nTwo-tier trades the extra IMS column for the entries column —")
    print("the paper's Section 6 trade-off.")


if __name__ == "__main__":
    main()
