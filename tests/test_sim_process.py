"""Unit tests for generator processes, joins, interrupts, and conditions."""

import pytest

from repro.sim import (
    AllOf,
    AnyOf,
    Interrupt,
    SimulationError,
    Simulator,
)


def test_process_runs_and_returns_value():
    sim = Simulator()

    def proc(sim):
        yield sim.timeout(2.0)
        return "finished"

    p = sim.process(proc(sim))
    sim.run()
    assert p.processed
    assert p.value == "finished"
    assert not p.is_alive


def test_process_sees_timeout_values():
    sim = Simulator()
    got = []

    def proc(sim):
        value = yield sim.timeout(1.0, value="tick")
        got.append(value)

    sim.process(proc(sim))
    sim.run()
    assert got == ["tick"]


def test_join_waits_for_child():
    sim = Simulator()
    log = []

    def child(sim):
        yield sim.timeout(3.0)
        return 99

    def parent(sim):
        result = yield sim.process(child(sim))
        log.append((sim.now, result))

    sim.process(parent(sim))
    sim.run()
    assert log == [(3.0, 99)]


def test_exception_in_process_propagates_to_joiner():
    sim = Simulator()
    caught = []

    def child(sim):
        yield sim.timeout(1.0)
        raise ValueError("child died")

    def parent(sim):
        try:
            yield sim.process(child(sim))
        except ValueError as exc:
            caught.append(str(exc))

    sim.process(parent(sim))
    sim.run()
    assert caught == ["child died"]


def test_unjoined_process_exception_escapes_run():
    sim = Simulator()

    def proc(sim):
        yield sim.timeout(1.0)
        raise KeyError("oops")

    sim.process(proc(sim))
    with pytest.raises(KeyError):
        sim.run()


def test_yield_non_event_is_error():
    sim = Simulator()

    def proc(sim):
        yield 42

    sim.process(proc(sim))
    with pytest.raises(SimulationError):
        sim.run()


def test_process_of_non_generator_rejected():
    sim = Simulator()
    with pytest.raises(TypeError):
        sim.process(lambda: None)


def test_waiting_on_already_processed_event():
    sim = Simulator()
    log = []
    evt = sim.event()
    evt.succeed("early")

    def late(sim):
        yield sim.timeout(5.0)
        value = yield evt  # already processed by now
        log.append((sim.now, value))

    sim.process(late(sim))
    sim.run()
    assert log == [(5.0, "early")]


def test_interrupt_delivers_cause():
    sim = Simulator()
    log = []

    def victim(sim):
        try:
            yield sim.timeout(100.0)
        except Interrupt as i:
            log.append((sim.now, i.cause))

    def attacker(sim, target):
        yield sim.timeout(2.0)
        target.interrupt("reason")

    v = sim.process(victim(sim))
    sim.process(attacker(sim, v))
    sim.run()
    assert log == [(2.0, "reason")]


def test_interrupt_detaches_from_target():
    sim = Simulator()
    log = []

    def victim(sim):
        timeout = sim.timeout(10.0)
        try:
            yield timeout
        except Interrupt:
            pass
        # Wait on the same timeout again after the interrupt.
        yield timeout
        log.append(sim.now)

    def attacker(sim, target):
        yield sim.timeout(1.0)
        target.interrupt()

    v = sim.process(victim(sim))
    sim.process(attacker(sim, v))
    sim.run()
    assert log == [10.0]


def test_interrupt_terminated_process_raises():
    sim = Simulator()

    def quick(sim):
        yield sim.timeout(0.0)

    p = sim.process(quick(sim))
    sim.run()
    with pytest.raises(SimulationError):
        p.interrupt()


def test_all_of_waits_for_all():
    sim = Simulator()
    log = []

    def proc(sim):
        t1 = sim.timeout(1.0, value="a")
        t2 = sim.timeout(4.0, value="b")
        results = yield AllOf(sim, [t1, t2])
        log.append((sim.now, results[t1], results[t2]))

    sim.process(proc(sim))
    sim.run()
    assert log == [(4.0, "a", "b")]


def test_any_of_fires_on_first():
    sim = Simulator()
    log = []

    def proc(sim):
        fast = sim.timeout(1.0, value="fast")
        slow = sim.timeout(9.0, value="slow")
        results = yield AnyOf(sim, [fast, slow])
        log.append((sim.now, fast in results, slow in results))

    sim.process(proc(sim))
    sim.run()
    assert log == [(1.0, True, False)]


def test_condition_operators():
    sim = Simulator()
    log = []

    def proc(sim):
        t1 = sim.timeout(1.0)
        t2 = sim.timeout(2.0)
        yield t1 & t2
        log.append(sim.now)
        t3 = sim.timeout(1.0)
        t4 = sim.timeout(5.0)
        yield t3 | t4
        log.append(sim.now)

    sim.process(proc(sim))
    sim.run()
    assert log == [2.0, 3.0]


def test_empty_all_of_triggers_immediately():
    sim = Simulator()
    log = []

    def proc(sim):
        result = yield AllOf(sim, [])
        log.append(len(result))

    sim.process(proc(sim))
    sim.run()
    assert log == [0]


def test_condition_value_mapping_api():
    sim = Simulator()
    holder = {}

    def proc(sim):
        t = sim.timeout(1.0, value="x")
        holder["cv"] = yield AllOf(sim, [t])
        holder["t"] = t

    sim.process(proc(sim))
    sim.run()
    cv, t = holder["cv"], holder["t"]
    assert cv[t] == "x"
    assert list(cv) == [t]
    assert cv.todict() == {t: "x"}
    with pytest.raises(KeyError):
        _ = cv[sim.event()]


def test_condition_failure_propagates():
    sim = Simulator()
    caught = []

    def failing(sim):
        yield sim.timeout(1.0)
        raise RuntimeError("inner")

    def proc(sim):
        try:
            yield AllOf(sim, [sim.process(failing(sim)), sim.timeout(10.0)])
        except RuntimeError as exc:
            caught.append(str(exc))

    sim.process(proc(sim))
    sim.run()
    assert caught == ["inner"]


def test_nested_processes_interleave_deterministically():
    sim = Simulator()
    order = []

    def worker(sim, name, delay):
        yield sim.timeout(delay)
        order.append(name)

    sim.process(worker(sim, "a", 1.0))
    sim.process(worker(sim, "b", 1.0))
    sim.process(worker(sim, "c", 0.5))
    sim.run()
    assert order == ["c", "a", "b"]


def test_active_process_visible_during_resume():
    sim = Simulator()
    seen = []

    def proc(sim):
        seen.append(sim.active_process)
        yield sim.timeout(1.0)

    p = sim.process(proc(sim))
    sim.run()
    assert seen == [p]
    assert sim.active_process is None
