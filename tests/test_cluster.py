"""Sharded accelerator cluster tests.

Four layers of guarantees:

1. **Differential** — ``shards=1`` runs produce serialized results with
   no cluster artefacts, identical between the fast and slow simulation
   paths, for every protocol family (the bit-identity contract with the
   pre-cluster harness).
2. **Hash ring** — consistent hashing moves only the departed node's
   keys (~K/N of them), reverts exactly on rejoin, and ``exclude``
   walks clockwise to the node that would own the key if the excluded
   shard were gone (failover == temporary removal).
3. **Batching** — the fan-out coalescer flushes on exact ``batch_max``
   fill, on the ``batch_window`` timer, deduplicates repeated
   modifications of one document inside a window, and a 4-shard batched
   replay delivers every obligation of the unbatched run in fewer
   messages.
4. **Failover + eviction** — the shard-crash chaos schedule replays
   with zero auditor violations, shard faults without a cluster are
   rejected loudly, and the site-list lease-grace eviction counts and
   reclaims correctly.
"""

import math

import pytest

from repro.chaos.faults import Fault, FaultSchedule, apply_schedule, random_schedule
from repro.core.adaptive_ttl import adaptive_ttl
from repro.core.invalidation import invalidation
from repro.core.leases import lease_invalidation, two_tier_lease
from repro.core.polling import poll_every_time
from repro.net import FixedLatency, Network
from repro.proxy import Cache, ProxyCache
from repro.replay.experiment import ExperimentConfig, run_experiment
from repro.replay.serialize import result_to_dict
from repro.server import FileStore
from repro.server.cluster import AcceleratorShard, HashRing
from repro.server.sitelist import InvalidationTable
from repro.sim import RngRegistry, Simulator
from repro.traces import generate_trace, profile

PROTOCOLS = [
    adaptive_ttl,
    poll_every_time,
    invalidation,
    lease_invalidation,
    two_tier_lease,
]

_TRACES = {}


def _trace(trace_seed: int):
    if trace_seed not in _TRACES:
        _TRACES[trace_seed] = generate_trace(
            profile("EPA").scaled(0.02), RngRegistry(seed=trace_seed)
        )
    return _TRACES[trace_seed]


def _replay(factory, fast: bool, **overrides) -> dict:
    config = ExperimentConfig(
        trace=_trace(3),
        protocol=factory(),
        mean_lifetime=7 * 86400.0,
        seed=11,
        fast_path=fast,
        **overrides,
    )
    return result_to_dict(run_experiment(config))


def _comparable(data: dict) -> dict:
    data.pop("wall_seconds", None)
    data.pop("timestamp", None)
    return data


# -- 1. differential: shards=1 is the legacy single accelerator ------------


@pytest.mark.parametrize("factory", PROTOCOLS, ids=lambda f: f.__name__)
def test_shards_one_differential(factory):
    slow = _comparable(_replay(factory, fast=False, shards=1))
    fast = _comparable(_replay(factory, fast=True, shards=1))
    assert fast == slow
    # No cluster artefacts may leak into the serialized result: its key
    # set feeds the results digest, which must stay byte-identical to
    # the pre-cluster harness for single-accelerator runs.
    assert "cluster" not in slow
    # sitelist_evictions serializes only when nonzero, and must agree
    # between the two paths (covered by the dict equality above).


# -- 2. hash ring ----------------------------------------------------------

_KEYS = [f"/doc/{i}.html" for i in range(2000)]
_NODES = tuple(f"shard-{i}" for i in range(8))


def test_ring_owner_deterministic_across_instances():
    a = HashRing(_NODES, vnodes=64)
    b = HashRing(_NODES, vnodes=64)
    assert [a.owner(k) for k in _KEYS] == [b.owner(k) for k in _KEYS]
    # Insertion order must not matter either.
    c = HashRing(tuple(reversed(_NODES)), vnodes=64)
    assert [a.owner(k) for k in _KEYS] == [c.owner(k) for k in _KEYS]


def test_ring_remove_moves_only_departed_keys():
    ring = HashRing(_NODES, vnodes=64)
    before = {k: ring.owner(k) for k in _KEYS}
    ring.remove_node("shard-3")
    after = {k: ring.owner(k) for k in _KEYS}
    moved = [k for k in _KEYS if before[k] != after[k]]
    # Exactly the departed shard's keys move — nobody else's.
    assert set(moved) == {k for k in _KEYS if before[k] == "shard-3"}
    assert all(after[k] != "shard-3" for k in _KEYS)
    # And roughly K/N of the keyspace moves (1/8 = 12.5% expected; wide
    # tolerance for vnode placement variance).
    fraction = len(moved) / len(_KEYS)
    assert 0.04 < fraction < 0.30


def test_ring_rejoin_reverts_exactly():
    ring = HashRing(_NODES, vnodes=64)
    before = {k: ring.owner(k) for k in _KEYS}
    ring.remove_node("shard-5")
    ring.add_node("shard-5")
    assert {k: ring.owner(k) for k in _KEYS} == before


def test_ring_exclude_equals_removal():
    ring = HashRing(_NODES, vnodes=64)
    removed = HashRing(tuple(n for n in _NODES if n != "shard-2"), vnodes=64)
    for key in _KEYS[:200]:
        assert ring.owner(key, exclude=("shard-2",)) == removed.owner(key)


def test_ring_len_and_nodes():
    ring = HashRing(_NODES, vnodes=64)
    assert set(ring.nodes) == set(_NODES)
    ring.remove_node("shard-0")
    ring.remove_node("shard-0")  # idempotent
    assert "shard-0" not in ring.nodes
    assert len(ring) == len(_NODES) - 1


# -- 3. batching boundary cases (manual testbed, one shard) ----------------


def _build_shard(batch_window: float, batch_max: int):
    sim = Simulator()
    net = Network(sim, latency=FixedLatency(0.001), connect_timeout=0.5)
    fs = FileStore.from_catalog(
        {"/a.html": 4096, "/b.html": 2048, "/c.html": 1024}
    )
    protocol = invalidation(retry_interval=5.0)
    shard = AcceleratorShard(
        sim, net, "server", fs, accel=protocol.accelerator,
        batch_window=batch_window, batch_max=batch_max,
    )
    proxy = ProxyCache(
        sim, net, "proxy-0", "server",
        policy=protocol.client_policy,
        cache=Cache(),
        oracle=lambda url: fs.get(url).last_modified,
    )
    return sim, fs, shard, proxy


def _fetch(sim, proxy, client, url):
    holder = {}

    def driver(sim):
        holder["o"] = yield from proxy.request(client, url)

    sim.process(driver(sim))
    sim.run()
    return holder["o"]


def test_batch_max_exact_fill_flushes_immediately():
    sim, fs, shard, proxy = _build_shard(batch_window=1000.0, batch_max=2)
    _fetch(sim, proxy, "alice", "/a.html")
    _fetch(sim, proxy, "alice", "/b.html")
    fs.modify("/a.html", now=sim.now)
    shard.check_in("/a.html")
    assert shard.batches_sent == 0  # below the cap: still buffering
    fs.modify("/b.html", now=sim.now)
    shard.check_in("/b.html")  # hits batch_max -> immediate flush
    sim.run(until=sim.now + 1.0)
    assert shard.batches_sent == 1
    assert shard.invalidations_sent == 1
    assert shard.batched_invalidations == 2
    assert proxy.batched_invalidations_received == 2
    assert not shard._pending_inval  # both obligations closed


def test_batch_window_timer_flushes():
    sim, fs, shard, proxy = _build_shard(batch_window=5.0, batch_max=0)
    _fetch(sim, proxy, "bob", "/a.html")
    t0 = sim.now
    fs.modify("/a.html", now=t0)
    shard.check_in("/a.html")
    sim.run(until=t0 + 4.0)
    assert shard.invalidations_sent == 0  # window still open
    assert shard._pending_inval  # obligation already owed
    sim.run(until=t0 + 6.0)
    assert shard.batches_sent == 1
    assert shard.batched_invalidations == 1
    assert not shard._pending_inval


def test_batch_dedups_repeated_modification():
    sim, fs, shard, proxy = _build_shard(batch_window=5.0, batch_max=0)
    _fetch(sim, proxy, "carol", "/a.html")
    t0 = sim.now
    fs.modify("/a.html", now=t0)
    shard.check_in("/a.html")
    fs.modify("/a.html", now=t0)
    shard.check_in("/a.html")  # same (url, client) inside the window
    sim.run(until=t0 + 6.0)
    assert shard.batches_sent == 1
    assert shard.batched_invalidations == 1  # deduplicated
    assert not shard._pending_inval


def test_unbatched_shard_uses_legacy_fanout():
    sim, fs, shard, proxy = _build_shard(batch_window=0.0, batch_max=0)
    assert not shard.batching
    _fetch(sim, proxy, "dave", "/a.html")
    fs.modify("/a.html", now=sim.now)
    shard.check_in("/a.html")
    sim.run(until=sim.now + 1.0)
    assert shard.invalidations_sent == 1
    assert shard.batches_sent == 0  # per-entry path, no batch counters


# -- 4. cluster replays: fan-out reduction and shard-crash chaos -----------


def test_cluster_batched_fanout_reduction():
    unbatched = _replay(invalidation, fast=True, shards=4)
    batched = _replay(
        invalidation, fast=True, shards=4, batch_window=1.0, batch_max=32
    )
    # Same workload, same obligations — fewer wire messages.
    assert batched["invalidations_sent"] < unbatched["invalidations_sent"]
    # Every invalidation of the unbatched run rides inside some batch.
    assert (
        batched["cluster"]["batched_invalidations_delivered"]
        == unbatched["invalidations_sent"]
    )
    assert batched["cluster"]["batches_delivered"] > 0
    assert unbatched["cluster"]["imbalance_ratio"] >= 1.0
    # Batching changes message packing, not request routing.
    def routed(data):
        return {
            name: shard["requests_routed"]
            for name, shard in data["cluster"]["per_shard"].items()
        }

    assert routed(batched) == routed(unbatched)
    assert sum(routed(batched).values()) > 0
    for data in (unbatched, batched):
        assert data["cluster"]["shards"] == 4


_CHAOS_FAULTS = (
    Fault("shard_crash", 60.0, 200.0, target="shard-1",
          params={"lose_sitelog": False}),
    Fault("shard_rebalance", 250.0, 400.0, target="shard-2"),
    Fault("shard_crash", 300.0, 450.0, target="shard-3",
          params={"lose_sitelog": True}),
)


def test_shard_crash_chaos_stays_strong():
    schedule = FaultSchedule(seed=0, horizon=500.0, faults=_CHAOS_FAULTS)
    config = ExperimentConfig(
        trace=_trace(3),
        protocol=invalidation(),
        mean_lifetime=7 * 86400.0,
        seed=11,
        shards=4,
        batch_window=1.0,
        batch_max=32,
        fault_schedule=schedule,
        audit=True,
    )
    result = run_experiment(config)
    assert result.chaos["violation_count"] == 0
    assert result.cluster["shard_crashes"] == 2
    assert result.cluster["rebalances"] >= 1
    assert result.cluster["handoffs"] > 0  # failover actually exercised


def test_shard_faults_require_cluster():
    schedule = FaultSchedule(
        seed=0, horizon=100.0,
        faults=(Fault("shard_crash", 10.0, 50.0, target="shard-1"),),
    )
    with pytest.raises(ValueError, match="no accelerator cluster"):
        apply_schedule(schedule, injector=None, server=None, proxies={},
                       cluster=None)
    rebalance = FaultSchedule(
        seed=0, horizon=100.0,
        faults=(Fault("shard_rebalance", 10.0, 50.0, target="shard-1"),),
    )
    with pytest.raises(ValueError, match="no accelerator cluster"):
        apply_schedule(rebalance, injector=None, server=None, proxies={},
                       cluster=None)


def test_random_schedule_shard_kinds_gated():
    proxies = ["proxy-0", "proxy-1"]
    # Without shards the sampling stream never draws shard kinds (and
    # stays bit-identical to the pre-cluster harness).
    for seed in range(30):
        schedule = random_schedule(seed, 1000.0, proxies)
        assert all(
            not f.kind.startswith("shard_") for f in schedule.faults
        )
    # With shards, some seed draws one.
    shards = [f"shard-{i}" for i in range(4)]
    assert any(
        any(f.kind.startswith("shard_") for f in
            random_schedule(seed, 1000.0, proxies, shards=shards).faults)
        for seed in range(30)
    )


# -- 5. site-list lease-grace eviction -------------------------------------


def test_purge_url_counts_and_reclaims():
    table = InvalidationTable()
    table.register("/a", "c1", "proxy-0", now=0.0, lease_expires=10.0)
    table.register("/a", "c2", "proxy-0", now=0.0, lease_expires=10.0)
    assert table.purge_url("/a", cutoff=20.0) == 2
    assert table.evictions == 2
    # The empty list object is reclaimed outright.
    assert table.total_entries() == 0
    assert table.storage_bytes() == 0


def test_purge_url_keeps_live_entries():
    table = InvalidationTable()
    table.register("/a", "c1", "proxy-0", now=0.0, lease_expires=10.0)
    table.register("/a", "c2", "proxy-0", now=0.0, lease_expires=math.inf)
    assert table.purge_url("/a", cutoff=20.0) == 1
    assert table.evictions == 1
    assert "c2" in table.site_list("/a")


def test_evict_round_budget_and_rotation():
    table = InvalidationTable()
    for i in range(3):
        table.register(f"/u{i}", "c", "proxy-0", now=0.0, lease_expires=10.0)
    # Budget of 2 sweeps two URLs this round, the third next round.
    assert table.evict_round(cutoff=20.0, budget=2) == 2
    assert table.evictions == 2
    assert table.evict_round(cutoff=20.0, budget=2) == 1
    assert table.evictions == 3
    assert table.total_entries() == 0
    # An idle table keeps returning zero.
    assert table.evict_round(cutoff=20.0, budget=2) == 0


def test_evict_round_requeues_surviving_lists():
    table = InvalidationTable()
    table.register("/mixed", "dead", "proxy-0", now=0.0, lease_expires=10.0)
    table.register("/mixed", "live", "proxy-0", now=0.0, lease_expires=math.inf)
    assert table.evict_round(cutoff=20.0, budget=8) == 1
    # The survivor's list stays, and stays in rotation for future rounds.
    assert "live" in table.site_list("/mixed")
    assert table.evict_round(cutoff=20.0, budget=8) == 0
    assert "live" in table.site_list("/mixed")


def test_table_wide_purge_does_not_count_as_eviction():
    table = InvalidationTable()
    table.register("/a", "c1", "proxy-0", now=0.0, lease_expires=10.0)
    assert table.purge_expired(20.0) == 1
    assert table.evictions == 0  # legacy purge is not the eviction path


def test_lease_run_reports_evictions_consistently():
    data = _replay(lease_invalidation, fast=True, shards=1)
    evictions = data.get("sitelist_evictions", 0)
    # The field serializes only when nonzero (digest preservation).
    assert ("sitelist_evictions" in data) == (evictions > 0)
    assert evictions >= 0
