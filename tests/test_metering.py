"""Tests for hit metering (Section 7 integration)."""

import pytest

from repro.core import adaptive_ttl, invalidation
from repro.metering import HitMeter, UsageLedger
from repro.net import FixedLatency, Network
from repro.proxy import Cache, ProxyCache
from repro.server import FileStore, ServerSite
from repro.sim import Simulator


class TestHitMeter:
    def test_record_and_take(self):
        meter = HitMeter()
        meter.record("/a")
        meter.record("/a")
        meter.record("/b")
        assert meter.pending("/a") == 2
        assert meter.take("/a") == 2
        assert meter.take("/a") == 0
        assert meter.total_pending == 1
        assert meter.total_recorded == 3
        assert meter.total_reported == 2

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            HitMeter().record("/a", count=-1)


class TestUsageLedger:
    def test_direct_and_reported(self):
        ledger = UsageLedger()
        ledger.record_request("/a")
        ledger.record_request("/a")
        ledger.record_reported_hits("/a", 5)
        assert ledger.direct("/a") == 2
        assert ledger.reported("/a") == 5
        assert ledger.total("/a") == 7
        assert ledger.grand_total() == 7

    def test_top(self):
        ledger = UsageLedger()
        ledger.record_request("/hot")
        ledger.record_reported_hits("/hot", 10)
        ledger.record_request("/cold")
        assert ledger.top(1) == [("/hot", 11)]

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            UsageLedger().record_reported_hits("/a", -1)


class TestEndToEnd:
    def build(self, protocol):
        sim = Simulator()
        net = Network(sim, latency=FixedLatency(0.001), connect_timeout=0.5)
        fs = FileStore.from_catalog({"/a": 1000})
        server = ServerSite(sim, net, "server", fs, accel=protocol.accelerator)
        meter = HitMeter()
        proxy = ProxyCache(
            sim, net, "proxy-0", "server",
            policy=protocol.client_policy, cache=Cache(), meter=meter,
        )
        return sim, fs, server, proxy, meter

    def drive(self, sim, proxy, requests):
        def driver(sim):
            for client, url in requests:
                yield from proxy.request(client, url)

        sim.process(driver(sim))
        sim.run()

    def test_invalidation_hits_metered_and_reported(self):
        sim, fs, server, proxy, meter = self.build(invalidation())
        # Fetch, then three local serves, then a modification forces a
        # refetch which piggybacks the count.
        self.drive(sim, proxy, [("c1", "/a")] * 4)
        assert meter.pending("/a") == 3
        assert server.ledger.direct("/a") == 1
        fs.modify("/a", now=sim.now)
        server.check_in("/a")
        sim.run()
        self.drive(sim, proxy, [("c1", "/a")])
        assert server.ledger.reported("/a") == 3
        assert server.ledger.direct("/a") == 2

    def test_conservation_law(self):
        """Ledger + unreported residue == true access count."""
        sim, fs, server, proxy, meter = self.build(adaptive_ttl())
        requests = [("c1", "/a")] * 7 + [("c2", "/a")] * 4
        self.drive(sim, proxy, requests)
        assert server.ledger.total("/a") + meter.pending("/a") == len(requests)

    def test_metering_off_by_default(self):
        sim = Simulator()
        net = Network(sim, latency=FixedLatency(0.001))
        fs = FileStore.from_catalog({"/a": 100})
        protocol = invalidation()
        server = ServerSite(sim, net, "server", fs, accel=protocol.accelerator)
        proxy = ProxyCache(
            sim, net, "proxy-0", "server",
            policy=protocol.client_policy, cache=Cache(),
        )

        def driver(sim):
            yield from proxy.request("c1", "/a")
            yield from proxy.request("c1", "/a")

        sim.process(driver(sim))
        sim.run()
        # Without a meter, only direct requests are counted.
        assert server.ledger.total("/a") == 1
        assert server.ledger.reported("/a") == 0
