"""Chaos harness tests: schedules, auditor, campaign, CLI, mutation."""

import json

import pytest

from repro.chaos import (
    MAX_CLOCK_SKEW,
    ConsistencyAuditor,
    Fault,
    FaultSchedule,
    random_schedule,
    run_campaign,
    shrink_schedule,
)
from repro.cli import main
from repro.core import adaptive_ttl, invalidation, lease_invalidation
from repro.proxy.proxy import ProxyCache
from repro.replay import (
    ExperimentConfig,
    result_from_dict,
    result_to_dict,
    run_experiment,
)
from repro.sim import RngRegistry
from repro.traces import PROFILES, generate_trace
from repro.workload import DAYS

SCALE = 0.01
LIFETIME = 5 * DAYS
PROXIES = ["proxy-0", "proxy-1", "proxy-2", "proxy-3"]


@pytest.fixture(scope="module")
def tiny_trace():
    return generate_trace(PROFILES["EPA"].scaled(SCALE), RngRegistry(seed=11))


def config_for(trace, protocol, **kw):
    return ExperimentConfig(
        trace=trace, protocol=protocol, mean_lifetime=LIFETIME, seed=11, **kw
    )


class TestFaultValidation:
    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            Fault(kind="meteor", at=1.0, until=2.0)

    def test_empty_window_rejected(self):
        with pytest.raises(ValueError):
            Fault(kind="proxy_crash", at=2.0, until=2.0)

    def test_negative_start_rejected(self):
        with pytest.raises(ValueError):
            Fault(kind="proxy_crash", at=-1.0, until=2.0)


class TestScheduleSampling:
    def test_deterministic_in_seed(self):
        a = random_schedule(99, horizon=500.0, proxies=PROXIES)
        b = random_schedule(99, horizon=500.0, proxies=PROXIES)
        assert a == b

    def test_different_seeds_differ(self):
        schedules = {
            random_schedule(s, horizon=500.0, proxies=PROXIES).to_json()
            for s in range(20)
        }
        assert len(schedules) > 1

    def test_fault_count_bounds(self):
        for seed in range(30):
            sched = random_schedule(
                seed, horizon=500.0, proxies=PROXIES, max_faults=4
            )
            assert 1 <= len(sched) <= 4

    def test_faults_heal_inside_horizon(self):
        for seed in range(30):
            sched = random_schedule(seed, horizon=500.0, proxies=PROXIES)
            for fault in sched.faults:
                assert 0 < fault.at < fault.until <= 0.95 * 500.0 + 1e-9

    def test_clock_skew_bounded(self):
        for seed in range(50):
            sched = random_schedule(seed, horizon=500.0, proxies=PROXIES)
            for fault in sched.faults:
                if fault.kind == "clock_skew":
                    assert abs(fault.params["skew"]) <= MAX_CLOCK_SKEW

    def test_validates_inputs(self):
        with pytest.raises(ValueError):
            random_schedule(1, horizon=0.0, proxies=PROXIES)
        with pytest.raises(ValueError):
            random_schedule(1, horizon=10.0, proxies=[])
        with pytest.raises(ValueError):
            random_schedule(1, horizon=10.0, proxies=PROXIES, min_faults=0)


class TestScheduleSerialization:
    def test_json_roundtrip(self):
        sched = random_schedule(7, horizon=400.0, proxies=PROXIES)
        assert FaultSchedule.from_json(sched.to_json()) == sched

    def test_json_is_plain_data(self):
        sched = random_schedule(7, horizon=400.0, proxies=PROXIES)
        payload = json.loads(sched.to_json())
        assert set(payload) == {"seed", "horizon", "faults"}

    def test_without_removes_one_fault(self):
        sched = random_schedule(3, horizon=400.0, proxies=PROXIES, min_faults=2)
        smaller = sched.without(0)
        assert len(smaller) == len(sched) - 1
        assert smaller.faults == sched.faults[1:]

    def test_describe_covers_every_fault(self):
        sched = random_schedule(5, horizon=400.0, proxies=PROXIES)
        assert len(sched.describe()) == len(sched)


class TestExperimentIntegration:
    @pytest.fixture(scope="class")
    def faulted_result(self, tiny_trace):
        base = config_for(tiny_trace, invalidation(), audit=True)
        baseline = run_experiment(base)
        sched = random_schedule(
            21, horizon=max(baseline.wall_time, 1.0), proxies=PROXIES
        )
        config = config_for(
            tiny_trace, invalidation(), audit=True, fault_schedule=sched
        )
        return run_experiment(config)

    def test_chaos_block_present(self, faulted_result):
        chaos = faulted_result.chaos
        assert chaos is not None
        assert chaos["strong"] is True
        assert chaos["serves"] > 0
        assert "network" in chaos and "schedule" in chaos and "fault_log" in chaos

    def test_strong_protocol_stays_clean(self, faulted_result):
        assert faulted_result.chaos["violation_count"] == 0
        assert faulted_result.chaos["violations"] == []

    def test_fault_log_records_injections(self, faulted_result):
        kinds = [e["kind"] for e in faulted_result.chaos["fault_log"]]
        assert kinds  # at least one fault fired

    def test_schedule_accepted_as_dict(self, tiny_trace):
        sched = random_schedule(5, horizon=50.0, proxies=PROXIES)
        config = config_for(
            tiny_trace, invalidation(), audit=True,
            fault_schedule=sched.to_dict(),
        )
        result = run_experiment(config)
        assert result.chaos["schedule"] == sched.to_dict()

    def test_chaos_survives_serialization(self, faulted_result):
        data = result_to_dict(faulted_result)
        rebuilt = result_from_dict(data)
        assert rebuilt.chaos == faulted_result.chaos

    def test_no_chaos_block_without_hooks(self, tiny_trace):
        result = run_experiment(config_for(tiny_trace, invalidation()))
        assert result.chaos is None
        assert "chaos" not in result_to_dict(result)

    def test_weak_protocol_staleness_is_allowed(self, tiny_trace):
        config = config_for(tiny_trace, adaptive_ttl(), audit=True)
        result = run_experiment(config)
        chaos = result.chaos
        assert chaos["strong"] is False
        assert chaos["violation_count"] == 0
        if chaos["stale_serves"]:
            assert chaos["allowed_staleness"] == {
                "weak-protocol": chaos["stale_serves"]
            }


class TestAuditorUnit:
    class _Server:
        up = True

        def write_pending(self, url, client_id):
            return False

        def recovery_pending(self, proxy):
            return False

        def change_pending_detection(self, url):
            return False

    class _Proxy:
        address = "proxy-0"

        class sim:
            now = 1.0

    class _Entry:
        url = "/a"
        client_id = "c1"

    class _Outcome:
        validated = False
        violation = False
        stale_served = True
        staleness_age = 3.0

    def test_unexcused_staleness_is_violation(self):
        auditor = ConsistencyAuditor(self._Server(), strong=True)
        auditor.on_serve(self._Proxy(), self._Entry(), self._Outcome())
        assert auditor.violation_count == 1
        assert auditor.violations[0].kind == "silent-staleness"

    def test_origin_down_excuses(self):
        server = self._Server()
        server.up = False
        auditor = ConsistencyAuditor(server, strong=True)
        auditor.on_serve(self._Proxy(), self._Entry(), self._Outcome())
        assert auditor.violation_count == 0
        assert auditor.allowed["origin-down"] == 1

    def test_validated_serve_ignored(self):
        outcome = self._Outcome()
        outcome.validated = True
        auditor = ConsistencyAuditor(self._Server(), strong=True)
        auditor.on_serve(self._Proxy(), self._Entry(), outcome)
        assert auditor.violation_count == 0
        assert auditor.stale_serves == 0


class TestCampaign:
    def test_strong_campaign_clean(self, tiny_trace):
        base = config_for(tiny_trace, invalidation())
        report = run_campaign(base, num_schedules=3, seed=7)
        assert report.ok
        assert report.total_violations == 0
        assert len(report.verdicts) == 4  # baseline + 3 schedules
        assert report.reproducers == {}

    def test_lease_campaign_clean_with_grace(self, tiny_trace):
        # Leases + sampled clock skew: only safe because the campaign
        # raises lease_grace above MAX_CLOCK_SKEW.
        base = config_for(tiny_trace, lease_invalidation())
        report = run_campaign(base, num_schedules=3, seed=7)
        assert report.ok

    def test_weak_campaign_reports_staleness_not_violations(self, tiny_trace):
        base = config_for(tiny_trace, adaptive_ttl())
        report = run_campaign(base, num_schedules=3, seed=7)
        assert report.ok  # staleness is the weak protocol's trade-off
        allowed = report.allowed_staleness()
        assert set(allowed) <= {"weak-protocol"}

    def test_report_round_trips_to_json(self, tiny_trace):
        base = config_for(tiny_trace, invalidation())
        report = run_campaign(base, num_schedules=2, seed=7)
        payload = json.loads(json.dumps(report.to_dict()))
        assert payload["ok"] is True
        assert len(payload["verdicts"]) == 3

    def test_rejects_empty_campaign(self, tiny_trace):
        with pytest.raises(ValueError):
            run_campaign(config_for(tiny_trace, invalidation()), num_schedules=0)


class TestMutationIsCaught:
    """Deliberately break the protocol; the auditor must notice and the
    shrinker must produce a tiny reproducer."""

    @pytest.fixture()
    def drop_url_invalidates(self, monkeypatch):
        original = ProxyCache._handle_invalidate

        def broken(self, message):
            if message.url is not None:
                return  # INVALIDATE-by-URL silently dropped: the bug
            return original(self, message)

        monkeypatch.setattr(ProxyCache, "_handle_invalidate", broken)

    def test_violation_detected_and_shrunk(self, tiny_trace, drop_url_invalidates):
        base = config_for(tiny_trace, invalidation())
        report = run_campaign(base, num_schedules=2, seed=7)
        assert not report.ok
        assert report.total_violations > 0
        assert report.verdicts[0].label == "baseline"
        # Every violation the details recorded is a silent-staleness one.
        kinds = {
            v["kind"] for verdict in report.verdicts for v in verdict.violations
        }
        assert kinds <= {"silent-staleness"}
        # The shrunk reproducers are minimal: the bug needs no faults at
        # all, so greedy removal must get (well) under three faults.
        assert report.reproducers
        for repro in report.reproducers.values():
            assert repro["violation_count"] > 0
            assert len(repro["schedule"]["faults"]) <= 3

    def test_shrink_is_a_fixpoint(self, tiny_trace, drop_url_invalidates):
        import dataclasses

        base = config_for(tiny_trace, invalidation(), audit=True)
        # Some schedules mask the bug (e.g. a cold restart discards the
        # stale copy), so scan for one that reproduces it.
        for seed in range(13, 33):
            sched = random_schedule(
                seed, horizon=400.0, proxies=PROXIES, min_faults=3
            )
            shrunk, count = shrink_schedule(base, sched)
            if count > 0:
                break
        else:
            pytest.fail("no sampled schedule reproduced the mutation")
        # No single further removal may keep the violation alive.
        for index in range(len(shrunk)):
            candidate = dataclasses.replace(
                base, fault_schedule=shrunk.without(index), audit=True
            )
            chaos = run_experiment(candidate).chaos
            assert chaos["violation_count"] == 0


class TestChaosCli:
    def test_clean_campaign_exits_zero(self, capsys):
        code = main(
            [
                "chaos",
                "--schedules", "2",
                "--scale", str(SCALE),
                "--lifetime-days", "5",
                "--protocol", "invalidation",
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "CLEAN" in out

    def test_json_output(self, capsys):
        code = main(
            [
                "chaos",
                "--schedules", "2",
                "--scale", str(SCALE),
                "--lifetime-days", "5",
                "--protocol", "ttl",
                "--json",
            ]
        )
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["strong"] is False
        assert payload["ok"] is True
