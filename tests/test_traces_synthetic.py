"""Tests for synthetic trace generation and calibration."""

import pytest

from repro.sim import RngRegistry
from repro.traces import (
    PROFILES,
    generate_trace,
    profile,
    summarize,
)


@pytest.fixture(scope="module")
def epa_small():
    prof = PROFILES["EPA"].scaled(0.05)
    return prof, generate_trace(prof, RngRegistry(seed=7))


def test_profile_lookup_case_insensitive():
    assert profile("epa").name == "EPA"
    assert profile("ClarkNet").name == "ClarkNet"
    with pytest.raises(KeyError):
        profile("nope")


def test_all_five_paper_profiles_present():
    assert set(PROFILES) == {"EPA", "SDSC", "ClarkNet", "NASA", "SASK"}


def test_derived_file_counts_match_design():
    # DESIGN.md §3: F = mods * L / T recovered from Tables 3-4 headers.
    assert PROFILES["EPA"].num_files == 3600
    assert PROFILES["SASK"].num_files == 2009
    assert PROFILES["ClarkNet"].num_files == 4800
    assert PROFILES["NASA"].num_files == 1008
    assert PROFILES["SDSC"].num_files == 1430


def test_generated_trace_counts(epa_small):
    prof, trace = epa_small
    assert len(trace) == prof.total_requests
    assert len(trace.documents) == prof.num_files


def test_generated_trace_time_ordered_within_duration(epa_small):
    prof, trace = epa_small
    times = [r.timestamp for r in trace.records]
    assert times == sorted(times)
    assert 0 <= times[0] and times[-1] <= prof.duration


def test_generated_trace_deterministic():
    prof = PROFILES["SDSC"].scaled(0.03)
    a = generate_trace(prof, RngRegistry(seed=5))
    b = generate_trace(prof, RngRegistry(seed=5))
    assert a.records == b.records
    assert a.documents == b.documents


def test_generated_trace_seed_sensitivity():
    prof = PROFILES["SDSC"].scaled(0.03)
    a = generate_trace(prof, RngRegistry(seed=5))
    b = generate_trace(prof, RngRegistry(seed=6))
    assert a.records != b.records


def test_mean_file_size_matches_profile(epa_small):
    prof, trace = epa_small
    mean = sum(trace.documents.values()) / len(trace.documents)
    assert mean == pytest.approx(prof.mean_file_size, rel=0.05)


def test_revisits_present(epa_small):
    _prof, trace = epa_small
    pairs = set()
    revisits = 0
    for record in trace.records:
        key = (record.client, record.url)
        if key in pairs:
            revisits += 1
        pairs.add(key)
    # Temporal locality must exist (it drives proxy cache hits).
    assert revisits > 0.1 * len(trace.records)


def test_full_scale_calibration_epa():
    """Full EPA generation matches Table 2 popularity within 15%."""
    prof = PROFILES["EPA"]
    summary = summarize(generate_trace(prof, RngRegistry(seed=42)))
    assert summary.total_requests == 40658
    assert summary.num_files == 3600
    assert summary.popularity_max == pytest.approx(prof.popularity_max, rel=0.15)
    assert summary.popularity_mean == pytest.approx(prof.popularity_mean, rel=0.15)


def test_scaled_profile_validation():
    with pytest.raises(ValueError):
        PROFILES["EPA"].scaled(0.0)
    with pytest.raises(ValueError):
        PROFILES["EPA"].scaled(1.5)
    assert PROFILES["EPA"].scaled(1.0) is PROFILES["EPA"]


def test_scaled_profile_shrinks_consistently():
    prof = PROFILES["NASA"].scaled(0.1)
    assert prof.total_requests == pytest.approx(6182, abs=2)
    assert prof.num_files == pytest.approx(101, abs=1)
    assert prof.duration == PROFILES["NASA"].duration


def test_summary_row_formatting(epa_small):
    _prof, trace = epa_small
    row = summarize(trace).row()
    assert "EPA" in row and "KB" in row
