"""Docstring gate for the public API packages.

An AST-level equivalent of pydocstyle's missing-docstring rules
(D100–D104), scoped — like the ruff configuration in pyproject.toml —
to the packages whose public API the docs promise is documented:
``repro.replay``, ``repro.chaos`` and ``repro.sim.core``.  It runs from
the source alone, so the gate holds even where ruff is not installed.
"""

import ast
import os
from typing import Iterator, List, Tuple

import pytest

REPO = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
SRC = os.path.join(REPO, "src")

#: Audited files: every module under these packages plus the kernel.
AUDITED = (
    os.path.join("repro", "replay"),
    os.path.join("repro", "chaos"),
    os.path.join("repro", "sim", "core.py"),
)


def audited_files() -> List[str]:
    out: List[str] = []
    for entry in AUDITED:
        path = os.path.join(SRC, entry)
        if os.path.isfile(path):
            out.append(path)
            continue
        for root, _dirs, files in os.walk(path):
            out.extend(
                os.path.join(root, name)
                for name in sorted(files)
                if name.endswith(".py")
            )
    assert out, "audited packages not found"
    return out


def _public(name: str) -> bool:
    return not name.startswith("_")


def missing_docstrings(path: str) -> Iterator[Tuple[str, str]]:
    """Yield ``(code, location)`` per missing public docstring in a file."""
    with open(path, "r") as handle:
        tree = ast.parse(handle.read(), filename=path)
    relative = os.path.relpath(path, SRC)
    if ast.get_docstring(tree) is None:
        code = "D104" if path.endswith("__init__.py") else "D100"
        yield code, f"{relative}:1 module"
    for node in tree.body:
        if isinstance(node, ast.ClassDef) and _public(node.name):
            if ast.get_docstring(node) is None:
                yield "D101", f"{relative}:{node.lineno} class {node.name}"
            for item in node.body:
                if (
                    isinstance(
                        item, (ast.FunctionDef, ast.AsyncFunctionDef)
                    )
                    and _public(item.name)
                    and ast.get_docstring(item) is None
                ):
                    yield (
                        "D102",
                        f"{relative}:{item.lineno} method "
                        f"{node.name}.{item.name}",
                    )
        elif isinstance(
            node, (ast.FunctionDef, ast.AsyncFunctionDef)
        ) and _public(node.name):
            if ast.get_docstring(node) is None:
                yield (
                    "D103",
                    f"{relative}:{node.lineno} function {node.name}",
                )


@pytest.mark.parametrize(
    "path", audited_files(), ids=lambda p: os.path.relpath(p, SRC)
)
def test_public_api_has_docstrings(path):
    missing = list(missing_docstrings(path))
    assert not missing, "missing docstrings:\n" + "\n".join(
        f"  {code} {where}" for code, where in missing
    )
