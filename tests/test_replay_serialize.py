"""Tests for result JSON serialization and sweep checkpoints."""

import io
import json
import os

import pytest

from repro.core import invalidation
from repro.replay import (
    ExperimentConfig,
    read_checkpoint,
    read_results_json,
    result_from_dict,
    result_to_dict,
    results_to_json,
    run_experiment,
    write_checkpoint,
    write_results_json,
)
from repro.sim import RngRegistry
from repro.traces import PROFILES, generate_trace
from repro.workload import DAYS


@pytest.fixture(scope="module")
def result():
    trace = generate_trace(PROFILES["SDSC"].scaled(0.02), RngRegistry(seed=6))
    return run_experiment(
        ExperimentConfig(
            trace=trace, protocol=invalidation(), mean_lifetime=3 * DAYS
        )
    )


def test_dict_has_all_table_fields(result):
    data = result_to_dict(result)
    for field in ("protocol", "total_messages", "message_bytes",
                  "cpu_utilization", "sitelist_entries", "wall_time"):
        assert field in data
    assert data["counters"]["requests"] == result.counters.requests
    assert data["latency"]["max"] == result.max_latency
    assert data["latency"]["p50"] <= data["latency"]["p99"]
    assert data["counters"]["violations"] == 0


def test_json_round_trip(result):
    text = results_to_json([result, result])
    loaded = json.loads(text)
    assert len(loaded) == 2
    assert loaded[0]["protocol"] == "invalidation"
    assert loaded[0] == loaded[1]


def test_write_and_read(result):
    buffer = io.StringIO()
    assert write_results_json([result], buffer) == 1
    buffer.seek(0)
    loaded = read_results_json(buffer)
    assert loaded[0]["total_messages"] == result.total_messages


def test_read_rejects_non_list():
    with pytest.raises(ValueError):
        read_results_json(io.StringIO('{"not": "a list"}'))


def test_json_is_plain_data(result):
    # No objects sneak through: encoding must succeed with the strict
    # default encoder.
    json.dumps(result_to_dict(result))


# -- checkpoints ----------------------------------------------------------


def test_checkpoint_round_trip_is_exact(result, tmp_path):
    """A restored result must be metric-for-metric identical, latency
    percentiles included (the reservoir travels with the checkpoint)."""
    path = tmp_path / "ckpt.json"
    write_checkpoint(result, str(path), label="point-a")
    label, restored = read_checkpoint(str(path))
    assert label == "point-a"
    assert result_to_dict(restored) == result_to_dict(result)
    assert restored.counters.latency.percentile(99) == (
        result.counters.latency.percentile(99)
    )


def test_checkpoint_atomic_no_tmp_left_behind(result, tmp_path):
    write_checkpoint(result, str(tmp_path / "c.json"))
    assert os.listdir(tmp_path) == ["c.json"]


def test_checkpoint_rejects_wrong_version(result, tmp_path):
    path = tmp_path / "c.json"
    write_checkpoint(result, str(path))
    data = json.loads(path.read_text())
    data["version"] = 999
    path.write_text(json.dumps(data))
    with pytest.raises(ValueError, match="version"):
        read_checkpoint(str(path))


def test_result_from_dict_without_restore_block(result):
    """Plain result_to_dict payloads (no reservoir state) still load,
    with summary statistics reconstructed from the dict."""
    rebuilt = result_from_dict(result_to_dict(result))
    assert rebuilt.total_messages == result.total_messages
    assert rebuilt.avg_latency == pytest.approx(result.avg_latency)
    assert rebuilt.max_latency == result.max_latency
    assert rebuilt.counters.requests == result.counters.requests
