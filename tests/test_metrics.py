"""Unit tests for latency stats, counters and the iostat sampler."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.metrics import IostatSampler, LatencyStats, ReplayCounters
from repro.net import FixedLatency, Network
from repro.proxy import RequestOutcome
from repro.server import FileStore, ServerSite
from repro.sim import Simulator


class TestLatencyStats:
    def test_empty(self):
        stats = LatencyStats()
        assert stats.mean == 0.0
        assert stats.min == 0.0
        assert stats.max == 0.0
        assert stats.percentile(50) == 0.0

    def test_basic_aggregates(self):
        stats = LatencyStats()
        for v in (1.0, 2.0, 3.0):
            stats.record(v)
        assert stats.count == 3
        assert stats.mean == pytest.approx(2.0)
        assert stats.min == 1.0
        assert stats.max == 3.0

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            LatencyStats().record(-1.0)

    def test_reservoir_size_validation(self):
        with pytest.raises(ValueError):
            LatencyStats(reservoir_size=0)

    def test_percentile_bounds(self):
        stats = LatencyStats()
        stats.record(5.0)
        with pytest.raises(ValueError):
            stats.percentile(101)
        assert stats.percentile(0) == 5.0
        assert stats.percentile(100) == 5.0

    def test_percentiles_exact_when_under_reservoir(self):
        stats = LatencyStats()
        for v in range(101):
            stats.record(float(v))
        assert stats.percentile(50) == pytest.approx(50.0)
        assert stats.percentile(90) == pytest.approx(90.0)

    def test_percentile_approximation_large_stream(self):
        stats = LatencyStats(reservoir_size=2048, seed=3)
        for v in range(20_000):
            stats.record(float(v % 1000))
        assert stats.percentile(50) == pytest.approx(500, abs=60)

    def test_merge(self):
        a, b = LatencyStats(), LatencyStats()
        a.record(1.0)
        b.record(9.0)
        a.merge(b)
        assert a.count == 2
        assert a.mean == pytest.approx(5.0)
        assert a.max == 9.0

    @given(st.lists(st.floats(min_value=0, max_value=1e6), min_size=1, max_size=300))
    def test_mean_within_min_max(self, values):
        stats = LatencyStats()
        for v in values:
            stats.record(v)
        # Summation rounding can put the mean a few ulps outside [min, max].
        eps = 1e-9 * max(1.0, stats.max)
        assert stats.min - eps <= stats.mean <= stats.max + eps
        assert stats.count == len(values)


class TestReplayCounters:
    def outcome(self, **kw):
        base = dict(
            url="/a", client_id="c", started=0.0, finished=0.5,
        )
        base.update(kw)
        return RequestOutcome(**base)

    def test_hit_and_miss_counting(self):
        counters = ReplayCounters()
        counters.record(self.outcome(hit=True, served_from_cache=True, body_bytes=10))
        counters.record(self.outcome(hit=False, transfer=True, body_bytes=20))
        assert counters.requests == 2
        assert counters.hits == 1
        assert counters.misses == 1
        assert counters.transfers == 1
        assert counters.body_bytes_transferred == 20
        assert counters.body_bytes_from_cache == 10
        assert counters.hit_ratio == 0.5

    def test_failed_requests_excluded_from_latency(self):
        counters = ReplayCounters()
        counters.record(self.outcome(failed=True))
        assert counters.failed == 1
        assert counters.latency.count == 0
        assert counters.hit_ratio == 0.0

    def test_stale_and_validation_counting(self):
        counters = ReplayCounters()
        counters.record(
            self.outcome(hit=True, served_from_cache=True, stale_served=True,
                         validated=False)
        )
        counters.record(self.outcome(hit=True, served_from_cache=True, validated=True))
        assert counters.stale_serves == 1
        assert counters.validations == 1


class TestIostatSampler:
    def test_period_validation(self):
        sim = Simulator()
        net = Network(sim)
        fs = FileStore.from_catalog({"/a": 100})
        server = ServerSite(sim, net, "server", fs)
        with pytest.raises(ValueError):
            IostatSampler(sim, server, period=0)

    def test_utilization_tracks_busy_time(self):
        sim = Simulator()
        net = Network(sim, latency=FixedLatency(0.0))
        fs = FileStore.from_catalog({"/a": 100})
        server = ServerSite(sim, net, "server", fs)
        sampler = IostatSampler(sim, server, period=10.0)

        def load(sim):
            # Hold the CPU for 30 of the first 60 seconds.
            with server.cpu.request() as req:
                yield req
                yield sim.timeout(30.0)

        sim.process(load(sim))
        sim.run(until=60.0)
        assert sampler.cpu_utilization() == pytest.approx(0.5)
        assert len(sampler.samples) == 6
        # First three windows fully busy; later ones idle.
        assert sampler.samples[0].cpu_utilization == pytest.approx(1.0)
        assert sampler.samples[5].cpu_utilization == pytest.approx(0.0)

    def test_disk_rates(self):
        sim = Simulator()
        net = Network(sim, latency=FixedLatency(0.0))
        fs = FileStore.from_catalog({"/a": 100})
        server = ServerSite(sim, net, "server", fs)
        sampler = IostatSampler(sim, server, period=10.0)
        server.disk_reads = 40
        server.disk_writes = 20
        sim.run(until=20.0)
        assert sampler.disk_reads_per_sec() == pytest.approx(2.0)
        assert sampler.disk_writes_per_sec() == pytest.approx(1.0)

    def test_stop_prevents_further_ticks(self):
        sim = Simulator()
        net = Network(sim)
        fs = FileStore.from_catalog({"/a": 100})
        server = ServerSite(sim, net, "server", fs)
        sampler = IostatSampler(sim, server, period=10.0)
        sim.run(until=25.0)
        sampler.stop()
        sim.run()  # drains without ticking to 30
        assert sim.now == 25.0
        assert len(sampler.samples) == 2
