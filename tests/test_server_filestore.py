"""Unit tests for the document file store."""

import random

import pytest

from repro.server import Document, FileStore


def store_with(urls):
    return FileStore({u: Document(url=u, size=s, last_modified=0.0) for u, s in urls.items()})


def test_from_catalog_basic():
    fs = FileStore.from_catalog({"/a": 100, "/b": 200})
    assert len(fs) == 2
    assert "/a" in fs
    assert fs.get("/a").size == 100
    assert fs.get("/a").last_modified == 0.0
    assert set(fs.urls) == {"/a", "/b"}
    assert set(iter(fs)) == {"/a", "/b"}


def test_from_catalog_initial_ages_exponential():
    rng = random.Random(1)
    fs = FileStore.from_catalog(
        {f"/u{i}": 10 for i in range(2000)}, mean_initial_age=100.0, rng=rng
    )
    ages = [-fs.get(u).last_modified for u in fs.urls]
    assert all(a >= 0 for a in ages)
    assert sum(ages) / len(ages) == pytest.approx(100.0, rel=0.15)


def test_modify_bumps_mtime_and_version():
    fs = store_with({"/a": 100})
    doc = fs.modify("/a", now=50.0)
    assert doc.last_modified == 50.0
    assert doc.version == 1
    assert fs.modification_count == 1
    fs.modify("/a", now=60.0)
    assert fs.get("/a").version == 2


def test_modified_since():
    fs = store_with({"/a": 100})
    fs.modify("/a", now=10.0)
    assert fs.modified_since("/a", 5.0)
    assert not fs.modified_since("/a", 10.0)
    assert not fs.modified_since("/a", 15.0)


def test_age():
    fs = store_with({"/a": 100})
    fs.modify("/a", now=10.0)
    assert fs.age("/a", now=35.0) == 25.0
    assert fs.age("/a", now=5.0) == 0.0


def test_unknown_url_raises():
    fs = store_with({"/a": 100})
    with pytest.raises(KeyError):
        fs.get("/nope")
    with pytest.raises(KeyError):
        fs.modify("/nope", 1.0)
