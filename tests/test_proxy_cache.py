"""Unit tests for cache entries and the bounded cache."""

import math

import pytest

from repro.proxy import Cache, CacheEntry, entry_key


def entry(url="/a", client="c1", size=100, lm=0.0, expires=math.inf, fetched=0.0):
    return CacheEntry(
        url=url,
        client_id=client,
        size=size,
        last_modified=lm,
        fetched_at=fetched,
        expires=expires,
    )


class TestEntry:
    def test_key_format(self):
        assert entry_key("/a", "c1") == "/a@c1"
        assert entry().key == "/a@c1"

    def test_ttl_freshness(self):
        e = entry(expires=10.0)
        assert e.fresh_by_ttl(5.0)
        assert not e.fresh_by_ttl(10.0)

    def test_lease_validity(self):
        e = entry()
        e.lease_expires = 10.0
        assert e.lease_valid(10.0)
        assert not e.lease_valid(10.1)
        assert entry().lease_valid(1e12)  # default: infinite


class TestCacheBasics:
    def test_capacity_validation(self):
        with pytest.raises(ValueError):
            Cache(capacity_bytes=0)

    def test_put_get_roundtrip(self):
        cache = Cache()
        e = entry()
        assert cache.put(e, now=0.0)
        assert cache.get(e.key, now=1.0) is e
        assert e.last_used == 1.0
        assert len(cache) == 1
        assert cache.used_bytes == 100

    def test_get_missing_returns_none(self):
        assert Cache().get("/nope@c", now=0.0) is None

    def test_separate_clients_separate_entries(self):
        cache = Cache()
        cache.put(entry(client="c1"), now=0.0)
        cache.put(entry(client="c2"), now=0.0)
        assert len(cache) == 2

    def test_replace_updates_bytes(self):
        cache = Cache()
        cache.put(entry(size=100), now=0.0)
        cache.put(entry(size=250), now=1.0)
        assert len(cache) == 1
        assert cache.used_bytes == 250

    def test_remove_returns_freed_bytes(self):
        cache = Cache()
        e = entry(size=70)
        cache.put(e, now=0.0)
        assert cache.remove(e.key) == 70
        assert cache.remove(e.key) == 0
        assert cache.used_bytes == 0

    def test_oversized_document_not_cached(self):
        cache = Cache(capacity_bytes=50)
        assert cache.put(entry(size=100), now=0.0) is False
        assert len(cache) == 0
        assert cache.uncacheable == 1

    def test_mark_all_questionable(self):
        cache = Cache()
        cache.put(entry(client="c1"), now=0.0)
        cache.put(entry(client="c2"), now=0.0)
        assert cache.mark_all_questionable() == 2
        assert all(cache.peek(k).questionable for k in cache.keys())

    def test_clear(self):
        cache = Cache()
        cache.put(entry(), now=0.0)
        cache.clear()
        assert len(cache) == 0
        assert cache.used_bytes == 0


class TestLruReplacement:
    def test_evicts_least_recently_used(self):
        cache = Cache(capacity_bytes=300)
        e1, e2, e3 = (entry(url=f"/u{i}", size=100) for i in range(3))
        cache.put(e1, now=0.0)
        cache.put(e2, now=1.0)
        cache.put(e3, now=2.0)
        cache.get(e1.key, now=3.0)  # refresh e1
        cache.put(entry(url="/u4", size=100), now=4.0)
        assert e2.key not in cache  # e2 was LRU
        assert e1.key in cache
        assert cache.evictions == 1

    def test_evicts_multiple_until_fit(self):
        cache = Cache(capacity_bytes=300)
        for i in range(3):
            cache.put(entry(url=f"/u{i}", size=100), now=float(i))
        cache.put(entry(url="/big", size=250), now=5.0)
        assert cache.used_bytes <= 300
        assert "/big@c1" in cache
        assert cache.evictions == 3


class TestExpiredFirstReplacement:
    def test_expired_entry_evicted_before_lru(self):
        cache = Cache(capacity_bytes=300, expired_first=True)
        fresh_old = entry(url="/old", size=100, expires=1000.0)
        expired_recent = entry(url="/exp", size=100, expires=5.0)
        cache.put(fresh_old, now=0.0)
        cache.put(expired_recent, now=1.0)
        cache.put(entry(url="/x", size=100), now=2.0)
        # At now=10, /exp is expired even though /old is older by LRU.
        cache.put(entry(url="/new", size=100), now=10.0)
        assert expired_recent.key not in cache
        assert fresh_old.key in cache
        assert cache.expired_evictions == 1

    def test_earliest_expiry_evicted_first(self):
        cache = Cache(capacity_bytes=200, expired_first=True)
        e_late = entry(url="/late", size=100, expires=8.0)
        e_early = entry(url="/early", size=100, expires=3.0)
        cache.put(e_late, now=0.0)
        cache.put(e_early, now=1.0)
        cache.put(entry(url="/new", size=100), now=10.0)
        assert e_early.key not in cache
        assert e_late.key in cache

    def test_falls_back_to_lru_when_nothing_expired(self):
        cache = Cache(capacity_bytes=200, expired_first=True)
        e1 = entry(url="/a", size=100, expires=100.0)
        e2 = entry(url="/b", size=100, expires=100.0)
        cache.put(e1, now=0.0)
        cache.put(e2, now=1.0)
        cache.put(entry(url="/c", size=100, expires=100.0), now=2.0)
        assert e1.key not in cache  # LRU victim
        assert cache.expired_evictions == 0

    def test_stale_heap_records_skipped_after_refresh(self):
        cache = Cache(capacity_bytes=200, expired_first=True)
        e = entry(url="/a", size=100, expires=5.0)
        cache.put(e, now=0.0)
        # Refresh the same document with a later expiry.
        e2 = entry(url="/a", size=100, expires=50.0)
        cache.put(e2, now=1.0)
        other = entry(url="/b", size=100, expires=50.0)
        cache.put(other, now=2.0)
        # now=10: the old heap record (expires=5) is stale; nothing is
        # really expired, so LRU evicts /a (oldest recency is /a at t=1).
        cache.put(entry(url="/c", size=100, expires=60.0), now=10.0)
        assert cache.expired_evictions == 0
        assert len(cache) == 2

    def test_inplace_ttl_refresh_keeps_entry_visible_to_expired_first(self):
        """Regression: a TTL policy extends entry.expires *in place* on
        revalidation; without note_expiry_update the entry's only heap
        record went stale and the entry could never again be picked as
        an expired victim — a fresh LRU entry was evicted instead."""
        cache = Cache(capacity_bytes=200, expired_first=True)
        refreshed = entry(url="/a", size=100, expires=100.0)
        fresh = entry(url="/b", size=100, expires=1000.0)
        cache.put(refreshed, now=0.0)
        cache.put(fresh, now=1.0)
        # Revalidation at t=150 extends /a's deadline in place to 200.
        refreshed.expires = 200.0
        assert cache.note_expiry_update(refreshed.key)
        # Make /b the LRU victim so plain LRU would evict the *fresh* copy.
        cache.get(refreshed.key, now=250.0)
        # t=300: /a is expired again (200 < 300); expired-first must pick
        # it over the fresh-but-LRU /b.
        cache.put(entry(url="/c", size=100, expires=1000.0), now=300.0)
        assert refreshed.key not in cache
        assert fresh.key in cache
        assert cache.expired_evictions == 1

    def test_interleaved_insert_update_remove_evict_accounting(self):
        """Interleave every mutation; stale heap tuples must neither
        select phantom victims nor inflate expired_evictions."""
        cache = Cache(capacity_bytes=300, expired_first=True)
        a = entry(url="/a", size=100, expires=10.0)
        cache.put(a, now=0.0)
        # Update /a twice with identical expiry (duplicate heap tuples).
        cache.put(entry(url="/a", size=100, expires=10.0), now=1.0)
        cache.put(entry(url="/a", size=100, expires=10.0), now=2.0)
        # Remove it outright (e.g. an INVALIDATE), then re-insert fresh.
        assert cache.remove(entry_key("/a", "c1")) == 100
        cache.put(entry(url="/a", size=100, expires=500.0), now=3.0)
        cache.put(entry(url="/b", size=100, expires=20.0), now=4.0)
        cache.put(entry(url="/c", size=100, expires=1000.0), now=5.0)
        # t=50: /b is the only expired entry.  The three stale /a tuples
        # (expires=10) sort first but must all be skipped — the live /a
        # now expires at 500.
        cache.put(entry(url="/d", size=100, expires=1000.0), now=50.0)
        assert entry_key("/b", "c1") not in cache
        assert entry_key("/a", "c1") in cache
        assert cache.expired_evictions == 1
        assert cache.evictions == 1
        # Second eviction at t=60: nothing expired; must fall back to
        # LRU (/a, inserted at t=3) without touching expired_evictions.
        cache.put(entry(url="/e", size=100, expires=1000.0), now=60.0)
        assert entry_key("/a", "c1") not in cache
        assert cache.expired_evictions == 1
        assert cache.evictions == 2
        assert cache.used_bytes == 300 and len(cache) == 3

    def test_note_expiry_update_unknown_key(self):
        cache = Cache(capacity_bytes=200, expired_first=True)
        assert not cache.note_expiry_update("/nope@c1")

    def test_heap_compaction_bounds_stale_tuples(self):
        cache = Cache(capacity_bytes=10_000, expired_first=True)
        e = entry(url="/hot", size=100, expires=10.0)
        cache.put(e, now=0.0)
        # Thousands of in-place refreshes must not grow the heap without
        # bound (each pushes a tuple; compaction rebuilds from live
        # entries once stale tuples dominate).
        for i in range(5000):
            e.expires = 10.0 + i
            cache.note_expiry_update(e.key)
        assert len(cache._expiry_heap) <= 4 * len(cache._entries) + 64
        # The surviving record still reflects the latest expiry.
        cache.put(entry(url="/filler", size=9900, expires=1e9), now=1.0)
        assert e.key in cache
