"""Tests for the optional event tracer."""

import pytest

from repro.sim import EventTracer, Simulator


def test_counts_processed_events():
    sim = Simulator()
    tracer = EventTracer(sim)

    def proc(sim):
        yield sim.timeout(1.0)
        yield sim.timeout(2.0)

    sim.process(proc(sim))
    sim.run()
    assert tracer.total > 0
    assert tracer.counts["Timeout"] == 2
    assert tracer.counts["Process"] == 1
    assert tracer.first_time == 0.0
    assert tracer.last_time == 3.0


def test_ring_buffer_bounded():
    sim = Simulator()
    tracer = EventTracer(sim, keep_last=3)
    for i in range(10):
        sim.timeout(float(i))
    sim.run()
    assert len(tracer.recent) == 3
    assert tracer.recent[-1][0] == 9.0


def test_recording_disabled_by_default():
    sim = Simulator()
    tracer = EventTracer(sim)
    sim.timeout(1.0)
    sim.run()
    assert tracer.recent == []


def test_one_tracer_per_simulator():
    sim = Simulator()
    EventTracer(sim)
    with pytest.raises(ValueError):
        EventTracer(sim)


def test_detach_stops_observing():
    sim = Simulator()
    tracer = EventTracer(sim)
    sim.timeout(1.0)
    sim.run()
    seen = tracer.total
    tracer.detach()
    sim.timeout(1.0)
    sim.run()
    assert tracer.total == seen
    # A new tracer may now attach.
    EventTracer(sim)


def test_rate_and_summary():
    sim = Simulator()
    tracer = EventTracer(sim)
    for i in range(11):
        sim.timeout(float(i))
    sim.run()
    assert tracer.events_per_sim_second() == pytest.approx(1.1)
    assert "Timeout" in tracer.summary()
    assert "11 events" in tracer.summary()


def test_rate_degenerate_cases():
    sim = Simulator()
    tracer = EventTracer(sim)
    assert tracer.events_per_sim_second() == 0.0
    sim.timeout(0.0)
    sim.run()
    assert tracer.events_per_sim_second() == 0.0  # zero span
