"""Tests for the benchmark regression gate (repro.bench comparisons)."""

from repro.bench import compare_bench, git_sha, missing_baselines


def payload(benchmarks, machine_score=1.0):
    return {
        "schema": 1,
        "kind": "kernel",
        "machine_score": machine_score,
        "benchmarks": benchmarks,
    }


def bench(rate):
    return {"events_per_sec": rate}


class TestCompareBench:
    def test_no_regression(self):
        new = payload({"a": bench(1000.0), "b": bench(500.0)})
        old = payload({"a": bench(1000.0), "b": bench(500.0)})
        assert compare_bench(new, old) == []

    def test_regression_detected(self):
        new = payload({"a": bench(500.0)})
        old = payload({"a": bench(1000.0)})
        failures = compare_bench(new, old, tolerance=0.15)
        assert len(failures) == 1
        assert "a:" in failures[0]

    def test_slowdown_within_tolerance_passes(self):
        new = payload({"a": bench(900.0)})
        old = payload({"a": bench(1000.0)})
        assert compare_bench(new, old, tolerance=0.15) == []

    def test_baseline_missing_new_variant_no_error(self):
        # A baseline written before a benchmark variant existed must not
        # crash the gate; the new variant is simply not gated.
        new = payload({"a": bench(1000.0), "brand_new": bench(10.0)})
        old = payload({"a": bench(1000.0)})
        assert compare_bench(new, old) == []

    def test_new_run_missing_old_variant_skipped(self):
        new = payload({"a": bench(1000.0)})
        old = payload({"a": bench(1000.0), "retired": bench(5.0)})
        assert compare_bench(new, old) == []

    def test_machine_score_normalisation(self):
        # Same normalised rate on a half-speed machine: not a regression.
        new = payload({"a": bench(500.0)}, machine_score=0.5)
        old = payload({"a": bench(1000.0)}, machine_score=1.0)
        assert compare_bench(new, old) == []

    def test_malformed_baseline_tolerated(self):
        new = payload({"a": bench(1000.0)})
        assert compare_bench(new, {}) == []
        assert compare_bench(new, {"benchmarks": None}) == []
        assert compare_bench({}, payload({"a": bench(1.0)})) == []


class TestMissingBaselines:
    def test_names_new_variants_sorted(self):
        new = payload({"zeta": bench(1.0), "alpha": bench(2.0),
                       "old": bench(3.0)})
        old = payload({"old": bench(3.0)})
        assert missing_baselines(new, old) == ["alpha", "zeta"]

    def test_empty_when_baseline_covers_all(self):
        new = payload({"a": bench(1.0)})
        old = payload({"a": bench(1.0), "extra": bench(2.0)})
        assert missing_baselines(new, old) == []

    def test_tolerates_malformed_payloads(self):
        assert missing_baselines({}, {}) == []
        assert missing_baselines(
            payload({"a": bench(1.0)}), {"benchmarks": None}
        ) == ["a"]


def test_git_sha_returns_string():
    sha = git_sha()
    assert isinstance(sha, str)
    assert sha
