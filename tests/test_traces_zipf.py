"""Unit and property tests for the Zipf sampler."""

import random

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.traces import ZipfSampler


def test_validation():
    rng = random.Random(0)
    with pytest.raises(ValueError):
        ZipfSampler(0, 1.0, rng)
    with pytest.raises(ValueError):
        ZipfSampler(10, -0.5, rng)


def test_single_item_always_zero():
    sampler = ZipfSampler(1, 1.0, random.Random(0))
    assert all(sampler.sample() == 0 for _ in range(20))


def test_samples_in_range():
    sampler = ZipfSampler(50, 0.8, random.Random(1))
    assert all(0 <= s < 50 for s in sampler.sample_many(1000))


def test_probabilities_sum_to_one():
    sampler = ZipfSampler(100, 1.0, random.Random(2))
    assert sum(sampler.probability(k) for k in range(100)) == pytest.approx(1.0)


def test_probability_monotone_decreasing():
    sampler = ZipfSampler(20, 0.9, random.Random(3))
    probs = [sampler.probability(k) for k in range(20)]
    assert probs == sorted(probs, reverse=True)


def test_probability_index_bounds():
    sampler = ZipfSampler(5, 1.0, random.Random(0))
    with pytest.raises(IndexError):
        sampler.probability(5)
    with pytest.raises(IndexError):
        sampler.probability(-1)


def test_alpha_zero_uniform():
    sampler = ZipfSampler(4, 0.0, random.Random(0))
    for k in range(4):
        assert sampler.probability(k) == pytest.approx(0.25)


def test_empirical_frequencies_track_probabilities():
    sampler = ZipfSampler(10, 1.0, random.Random(42))
    counts = [0] * 10
    n = 50_000
    for s in sampler.sample_many(n):
        counts[s] += 1
    for k in range(10):
        assert counts[k] / n == pytest.approx(sampler.probability(k), rel=0.15)


def test_expected_counts_scale():
    sampler = ZipfSampler(3, 1.0, random.Random(0))
    expected = sampler.expected_counts(600)
    assert sum(expected) == pytest.approx(600)
    assert expected[0] > expected[1] > expected[2]


@given(
    st.integers(min_value=1, max_value=200),
    st.floats(min_value=0.0, max_value=2.5),
    st.integers(min_value=0, max_value=1000),
)
def test_sampler_deterministic_per_seed(n, alpha, seed):
    a = ZipfSampler(n, alpha, random.Random(seed)).sample_many(20)
    b = ZipfSampler(n, alpha, random.Random(seed)).sample_many(20)
    assert a == b
    assert all(0 <= s < n for s in a)
