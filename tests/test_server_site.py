"""Integration-level tests for the ServerSite (HTTPD + accelerator)."""


import pytest

from repro.http import (
    NOT_MODIFIED,
    OK,
    HttpResponse,
    Invalidate,
    make_get,
    make_ims,
)
from repro.net import FixedLatency, Network
from repro.server import AcceleratorConfig, FileStore, ServerSite
from repro.sim import Simulator


def setup_site(accel=None, docs=None, latency=0.001):
    sim = Simulator()
    net = Network(sim, latency=FixedLatency(latency), connect_timeout=0.5)
    fs = FileStore.from_catalog(docs or {"/a": 1000, "/b": 5000})
    site = ServerSite(sim, net, "server", fs, accel=accel)
    inbox = []
    net.register("proxy", inbox.append)
    return sim, net, fs, site, inbox


def replies(inbox):
    return [m for m in inbox if isinstance(m, HttpResponse)]


def invalidates(inbox):
    return [m for m in inbox if isinstance(m, Invalidate)]


def test_get_returns_200_with_body():
    sim, net, fs, site, inbox = setup_site()
    net.send(make_get("proxy", "server", "/a", client_id="c1"))
    sim.run()
    (reply,) = replies(inbox)
    assert reply.status == OK
    assert reply.body_bytes == 1000
    assert site.replies_200 == 1
    assert site.requests_handled == 1
    assert site.disk_reads == 1
    assert site.disk_writes >= 1  # request log


def test_ims_unmodified_returns_304_without_disk_read():
    sim, net, fs, site, inbox = setup_site()
    net.send(make_ims("proxy", "server", "/a", client_id="c1", ims_timestamp=0.0))
    sim.run()
    (reply,) = replies(inbox)
    assert reply.status == NOT_MODIFIED
    assert site.replies_304 == 1
    assert site.disk_reads == 0


def test_ims_after_modification_returns_200():
    sim, net, fs, site, inbox = setup_site()
    fs.modify("/a", now=10.0)
    net.send(make_ims("proxy", "server", "/a", client_id="c1", ims_timestamp=0.0))
    sim.run()
    (reply,) = replies(inbox)
    assert reply.status == OK
    assert reply.last_modified == 10.0


def test_server_cpu_and_disk_accumulate():
    sim, net, fs, site, inbox = setup_site()
    for i in range(5):
        net.send(make_get("proxy", "server", "/a", client_id=f"c{i}"))
    sim.run()
    assert site.cpu.busy_time() > 0
    assert site.disk.busy_time() > 0
    assert len(replies(inbox)) == 5


def test_invalidation_disabled_does_not_track_sites():
    sim, net, fs, site, inbox = setup_site(accel=AcceleratorConfig(invalidation=False))
    net.send(make_get("proxy", "server", "/a", client_id="c1"))
    sim.run()
    assert site.table.total_entries() == 0
    site.check_in("/a")
    sim.run()
    assert invalidates(inbox) == []


class TestInvalidation:
    def test_get_registers_site(self):
        sim, net, fs, site, inbox = setup_site(accel=AcceleratorConfig(invalidation=True))
        net.send(make_get("proxy", "server", "/a", client_id="c1"))
        sim.run()
        assert site.table.total_entries() == 1
        assert "c1" in site.known_sites

    def test_check_in_sends_invalidations_to_registered_sites(self):
        sim, net, fs, site, inbox = setup_site(accel=AcceleratorConfig(invalidation=True))
        net.send(make_get("proxy", "server", "/a", client_id="c1"))
        net.send(make_get("proxy", "server", "/a", client_id="c2"))
        net.send(make_get("proxy", "server", "/b", client_id="c3"))
        sim.run()
        fs.modify("/a", now=sim.now)
        site.check_in("/a")
        sim.run()
        invs = invalidates(inbox)
        assert {i.client_id for i in invs} == {"c1", "c2"}
        assert all(i.url == "/a" for i in invs)
        assert site.invalidations_sent == 2
        # Sites are forgotten once invalidated.
        assert len(site.table.site_list("/a")) == 0
        assert len(site.invalidation_times) == 1

    def test_browser_based_detection(self):
        sim, net, fs, site, inbox = setup_site(accel=AcceleratorConfig(invalidation=True))
        net.send(make_get("proxy", "server", "/a", client_id="c1"))
        sim.run()
        # No change yet: check returns False and sends nothing.
        site.check_document("/a")
        assert site.check_document("/a") is False
        fs.modify("/a", now=sim.now + 1)
        assert site.check_document("/a") is True
        sim.run()
        assert len(invalidates(inbox)) == 1

    def test_blocking_send_stalls_new_requests(self):
        """With blocking_send, a request arriving mid-fan-out waits."""
        accel = AcceleratorConfig(invalidation=True, blocking_send=True)
        sim, net, fs, site, inbox = setup_site(accel=accel)
        # Register many sites for /a.
        for i in range(50):
            net.send(make_get("proxy", "server", "/a", client_id=f"c{i}"))
        sim.run()
        baseline_replies = len(replies(inbox))
        fs.modify("/a", now=sim.now)
        site.check_in("/a")
        # A request that lands during the fan-out...
        net.send(make_get("proxy", "server", "/b", client_id="x"))
        sim.run()
        fanout = site.invalidation_times[0]
        reply_b = [r for r in replies(inbox)[baseline_replies:] if r.url == "/b"]
        assert len(reply_b) == 1
        # ...was answered only after the fan-out finished (it stalls).
        assert fanout > 0.05

    def test_decoupled_send_does_not_hold_accept_lock(self):
        accel = AcceleratorConfig(invalidation=True, blocking_send=False)
        sim, net, fs, site, inbox = setup_site(accel=accel)
        for i in range(50):
            net.send(make_get("proxy", "server", "/a", client_id=f"c{i}"))
        sim.run()
        fs.modify("/a", now=sim.now)
        site.check_in("/a")
        sim.run()
        assert site.invalidations_sent == 50


class TestLeases:
    def test_lease_expiry_granted_on_replies(self):
        accel = AcceleratorConfig(
            invalidation=True, lease_get=100.0, lease_ims=100.0, grant_leases=True
        )
        sim, net, fs, site, inbox = setup_site(accel=accel)
        net.send(make_get("proxy", "server", "/a", client_id="c1"))
        sim.run()
        (reply,) = replies(inbox)
        assert reply.lease_expires == pytest.approx(sim.now, abs=101.0)
        assert reply.lease_expires is not None

    def test_expired_lease_not_invalidated(self):
        accel = AcceleratorConfig(
            invalidation=True, lease_get=1.0, lease_ims=1.0, grant_leases=True
        )
        sim, net, fs, site, inbox = setup_site(accel=accel)
        net.send(make_get("proxy", "server", "/a", client_id="c1"))
        sim.run()
        # Let the lease lapse, then modify.
        sim.run(until=sim.now + 10.0)
        fs.modify("/a", now=sim.now)
        site.check_in("/a")
        sim.run()
        assert invalidates(inbox) == []

    def test_two_tier_zero_get_lease_not_registered(self):
        accel = AcceleratorConfig(
            invalidation=True, lease_get=0.0, lease_ims=100.0, grant_leases=True
        )
        sim, net, fs, site, inbox = setup_site(accel=accel)
        net.send(make_get("proxy", "server", "/a", client_id="c1"))
        sim.run()
        assert site.table.total_entries() == 0
        (reply,) = replies(inbox)
        # Zero lease: expires immediately (client must validate next time).
        assert reply.lease_expires is not None
        # The validation earns a full lease and registration.
        net.send(
            make_ims("proxy", "server", "/a", client_id="c1", ims_timestamp=0.0)
        )
        sim.run()
        assert site.table.total_entries() == 1


class TestCrashRecovery:
    def test_crash_loses_volatile_site_lists(self):
        sim, net, fs, site, inbox = setup_site(accel=AcceleratorConfig(invalidation=True))
        net.send(make_get("proxy", "server", "/a", client_id="c1"))
        sim.run()
        assert site.table.total_entries() == 1
        site.crash()
        assert site.table.total_entries() == 0
        assert "c1" in site.known_sites  # persistent log survives

    def test_recovery_sends_invalidate_by_server_to_each_proxy(self):
        sim, net, fs, site, inbox = setup_site(accel=AcceleratorConfig(invalidation=True))
        other_inbox = []
        net.register("proxy2", other_inbox.append)
        net.send(make_get("proxy", "server", "/a", client_id="c1"))
        net.send(make_get("proxy", "server", "/b", client_id="c2"))
        net.send(make_get("proxy2", "server", "/a", client_id="c3"))
        sim.run()
        site.crash()
        recovery = site.recover()
        sim.run()
        assert recovery.processed
        # One INVALIDATE-by-server per proxy host (deduplicated).
        invs1 = [m for m in invalidates(inbox) if m.server == "server"]
        invs2 = [m for m in invalidates(other_inbox) if m.server == "server"]
        assert len(invs1) == 1
        assert len(invs2) == 1

    def test_crashed_server_unreachable(self):
        sim, net, fs, site, inbox = setup_site()
        site.crash()
        net.send(make_get("proxy", "server", "/a", client_id="c1"))
        sim.run()
        assert replies(inbox) == []
        assert net.stats.total_dropped == 1
