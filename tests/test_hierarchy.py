"""Tests for hierarchical caching with invalidation (Worrell config)."""


from repro.core import invalidation
from repro.hierarchy import ParentProxy
from repro.net import FixedLatency, Network
from repro.proxy import Cache, ProxyCache
from repro.server import FileStore, ServerSite
from repro.sim import Simulator


def build(num_children=2):
    sim = Simulator()
    net = Network(sim, latency=FixedLatency(0.001), connect_timeout=0.5)
    fs = FileStore.from_catalog({"/a": 1000, "/b": 2000})
    protocol = invalidation(retry_interval=5.0)
    server = ServerSite(sim, net, "server", fs, accel=protocol.accelerator)
    parent = ParentProxy(sim, net, "parent", "server")
    children = [
        ProxyCache(
            sim,
            net,
            f"child-{i}",
            "parent",  # children talk to the parent, not the server
            policy=protocol.client_policy,
            cache=Cache(),
            oracle=lambda url: fs.get(url).last_modified,
        )
        for i in range(num_children)
    ]
    return sim, net, fs, server, parent, children


def request(sim, proxy, client, url):
    holder = {}

    def driver(sim):
        holder["o"] = yield from proxy.request(client, url)

    sim.process(driver(sim))
    sim.run()
    return holder["o"]


class TestRequestPath:
    def test_child_miss_fetches_through_parent(self):
        sim, net, fs, server, parent, children = build()
        outcome = request(sim, children[0], "c1", "/a")
        assert outcome.transfer
        assert outcome.body_bytes == 1000
        assert parent.upstream_fetches == 1
        assert server.requests_handled == 1

    def test_second_child_served_from_parent_cache(self):
        sim, net, fs, server, parent, children = build()
        request(sim, children[0], "c1", "/a")
        outcome = request(sim, children[1], "c2", "/a")
        assert outcome.transfer  # child miss, but...
        assert server.requests_handled == 1  # ...no second server hit
        assert parent.upstream_fetches == 1
        assert parent.requests_served == 2

    def test_child_hit_served_locally(self):
        sim, net, fs, server, parent, children = build()
        request(sim, children[0], "c1", "/a")
        outcome = request(sim, children[0], "c1", "/a")
        assert outcome.served_from_cache
        assert not outcome.validated
        assert parent.requests_served == 1  # only the first reached it

    def test_server_tracks_parents_not_clients(self):
        sim, net, fs, server, parent, children = build()
        request(sim, children[0], "c1", "/a")
        request(sim, children[1], "c2", "/a")
        request(sim, children[0], "c3", "/a")
        # Server site list: exactly one entry (the parent).
        assert server.table.total_entries() == 1
        # Parent interest: the three real clients.
        assert len(parent.interest.site_list("/a")) == 3


class TestInvalidationPropagation:
    def test_invalidation_reaches_children_through_parent(self):
        sim, net, fs, server, parent, children = build()
        request(sim, children[0], "c1", "/a")
        request(sim, children[1], "c2", "/a")
        fs.modify("/a", now=sim.now)
        server.check_in("/a")
        sim.run()
        # Server sent ONE invalidation (to the parent)...
        assert server.invalidations_sent == 1
        # ...the parent forwarded to both interested children.
        assert parent.invalidations_forwarded == 2
        assert children[0].invalidations_received == 1
        assert children[1].invalidations_received == 1

    def test_end_to_end_strong_consistency(self):
        sim, net, fs, server, parent, children = build()
        request(sim, children[0], "c1", "/a")
        fs.modify("/a", now=sim.now)
        server.check_in("/a")
        sim.run()
        outcome = request(sim, children[0], "c1", "/a")
        assert outcome.transfer  # copy was invalidated -> refetched
        assert not outcome.stale_served
        assert not outcome.violation
        # The refetch went through the parent, which also refetched.
        assert parent.upstream_fetches == 2

    def test_uninterested_child_not_notified(self):
        sim, net, fs, server, parent, children = build()
        request(sim, children[0], "c1", "/a")
        request(sim, children[1], "c2", "/b")
        fs.modify("/a", now=sim.now)
        server.check_in("/a")
        sim.run()
        assert children[0].invalidations_received == 1
        assert children[1].invalidations_received == 0

    def test_interest_cleared_after_forwarding(self):
        sim, net, fs, server, parent, children = build()
        request(sim, children[0], "c1", "/a")
        fs.modify("/a", now=sim.now)
        server.check_in("/a")
        sim.run()
        assert len(parent.interest.site_list("/a")) == 0


class TestServerRecoveryThroughHierarchy:
    def test_server_form_forwarded_to_all_children(self):
        sim, net, fs, server, parent, children = build()
        request(sim, children[0], "c1", "/a")
        request(sim, children[1], "c2", "/b")
        server.crash()
        fs.modify("/a", now=sim.now + 1)
        server.recover()
        sim.run()
        # Parent got the server-form invalidate and forwarded it.
        assert children[0].server_invalidations_received == 1
        assert children[1].server_invalidations_received == 1
        # Child copies questionable: next access revalidates end-to-end.
        o = request(sim, children[0], "c1", "/a")
        assert o.validated
        assert not o.stale_served


class TestParentFailure:
    def test_parent_recovery_marks_children_questionable(self):
        sim, net, fs, server, parent, children = build()
        request(sim, children[0], "c1", "/a")
        parent.crash()
        # Modification while the parent is down: the server's
        # invalidation to the parent retries...
        fs.modify("/a", now=sim.now + 1)
        server.check_in("/a")
        sim.run(until=sim.now + 2.0)
        recovery = parent.recover()
        sim.run()
        assert recovery.processed
        # The child was told to distrust everything.
        assert children[0].server_invalidations_received == 1
        outcome = request(sim, children[0], "c1", "/a")
        assert not outcome.stale_served
        assert not outcome.violation

    def test_requests_fail_while_parent_down(self):
        sim, net, fs, server, parent, children = build()
        parent.crash()
        outcome = request(sim, children[0], "c1", "/a")
        assert outcome.failed
