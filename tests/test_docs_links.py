"""Docs health: every relative link in README.md and docs/ resolves.

Runs the same stdlib checker CI uses (tools/check_markdown_links.py),
plus structural checks on the docs index.
"""

import os
import subprocess
import sys

import pytest

REPO = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
CHECKER = os.path.join(REPO, "tools", "check_markdown_links.py")

#: The documentation pages docs/index.md must link.
DOCS_PAGES = (
    "architecture.md",
    "protocols.md",
    "api-overview.md",
    "replaying-real-traces.md",
    "parallel-sweeps.md",
    "chaos.md",
    "performance.md",
    "observability.md",
    "api.md",
    "cluster.md",
)


def run_checker(*paths):
    return subprocess.run(
        [sys.executable, CHECKER, *paths],
        capture_output=True,
        text=True,
        cwd=REPO,
        timeout=60,
    )


def test_readme_and_docs_links_resolve():
    proc = run_checker("README.md", "docs")
    assert proc.returncode == 0, (
        f"broken markdown links:\n{proc.stdout}{proc.stderr}"
    )


def test_checker_flags_broken_links(tmp_path):
    page = tmp_path / "page.md"
    page.write_text("see [missing](./no-such-file.md) and [ok](page.md)\n")
    proc = run_checker(str(page))
    assert proc.returncode == 1
    assert "no-such-file.md" in proc.stdout


def test_checker_skips_external_and_fenced(tmp_path):
    page = tmp_path / "page.md"
    page.write_text(
        "[web](https://example.com) [anchor](#section)\n"
        "```\n[not a link](./missing.md)\n```\n"
    )
    proc = run_checker(str(page))
    assert proc.returncode == 0


@pytest.mark.parametrize("page", DOCS_PAGES)
def test_index_links_every_docs_page(page):
    with open(os.path.join(REPO, "docs", "index.md")) as handle:
        index = handle.read()
    assert f"({page})" in index, f"docs/index.md does not link {page}"


def test_docs_pages_exist():
    for page in DOCS_PAGES:
        assert os.path.exists(os.path.join(REPO, "docs", page))
