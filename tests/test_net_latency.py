"""Unit tests for the latency models."""

import random

import pytest

from repro.net import FixedLatency, LanModel, Message, WanModel


def msg(size=1000):
    return Message(src="a", dst="b", size=size)


class TestFixedLatency:
    def test_constant(self):
        model = FixedLatency(0.25)
        assert model.delay(msg(1)) == 0.25
        assert model.delay(msg(10**9)) == 0.25

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            FixedLatency(-0.1)


class TestLanModel:
    def test_propagation_plus_transmission(self):
        model = LanModel(propagation=0.001, bandwidth_bps=8000.0)
        # 1000 bytes = 8000 bits = 1 second at 8 kb/s.
        assert model.delay(msg(1000)) == pytest.approx(1.001)

    def test_default_is_fast_ethernet_scale(self):
        model = LanModel()
        # A 10 KB transfer on 100 Mb/s: sub-millisecond transmission.
        assert model.delay(msg(10 * 1024)) < 0.005

    def test_size_scale_divides_transmission_time(self):
        plain = LanModel(propagation=0.0, bandwidth_bps=1e6)
        scaled = LanModel(propagation=0.0, bandwidth_bps=1e6, size_scale=100.0)
        assert scaled.delay(msg(100_000)) == pytest.approx(
            plain.delay(msg(100_000)) / 100.0
        )

    def test_validation(self):
        with pytest.raises(ValueError):
            LanModel(bandwidth_bps=0)
        with pytest.raises(ValueError):
            LanModel(size_scale=0)


class TestWanModel:
    def test_base_delay_dominates_small_messages(self):
        model = WanModel(base_delay=0.08, jitter=0.0, bandwidth_bps=1e9)
        assert model.delay(msg(100)) == pytest.approx(0.08, rel=0.01)

    def test_jitter_varies_but_is_bounded_below(self):
        model = WanModel(base_delay=0.05, jitter=0.01, rng=random.Random(1))
        delays = [model.delay(msg(100)) for _ in range(200)]
        assert all(d >= 0.05 for d in delays)
        assert len(set(delays)) > 100  # actually random

    def test_jitter_deterministic_per_seed(self):
        a = WanModel(jitter=0.02, rng=random.Random(7))
        b = WanModel(jitter=0.02, rng=random.Random(7))
        assert [a.delay(msg()) for _ in range(10)] == [
            b.delay(msg()) for _ in range(10)
        ]

    def test_bandwidth_validation(self):
        with pytest.raises(ValueError):
            WanModel(bandwidth_bps=-1)


class TestEventCancel:
    """Kernel cancellation edge cases surfaced by the reply-timeout fix."""

    def test_cancelled_timeout_does_not_advance_clock(self):
        from repro.sim import Simulator

        sim = Simulator()
        timer = sim.timeout(100.0)
        sim.timeout(1.0)
        timer.cancel()
        sim.run()
        assert sim.now == 1.0

    def test_cancel_processed_event_rejected(self):
        from repro.sim import SimulationError, Simulator

        sim = Simulator()
        timer = sim.timeout(1.0)
        sim.run()
        with pytest.raises(SimulationError):
            timer.cancel()

    def test_peek_skips_cancelled_head(self):
        from repro.sim import Simulator

        sim = Simulator()
        first = sim.timeout(1.0)
        sim.timeout(5.0)
        first.cancel()
        assert sim.peek() == 5.0
