"""Tests for the parallel, resumable sweep runner.

The expensive determinism/speedup assertions live in
``benchmarks/test_parallel_sweep.py``; here we cover the machinery with
a small real sweep plus cheap injected experiment functions.
"""

import os

import pytest

from repro.core import invalidation, poll_every_time
from repro.replay import (
    ExperimentConfig,
    ExperimentResult,
    ParallelSweepRunner,
    SweepPointFailed,
    result_to_dict,
    sweep,
)
from repro.replay.parallel import checkpoint_filename
from repro.sim import RngRegistry
from repro.traces import PROFILES, generate_trace
from repro.workload import DAYS


@pytest.fixture(scope="module")
def base_config():
    trace = generate_trace(PROFILES["SDSC"].scaled(0.02), RngRegistry(seed=8))
    return ExperimentConfig(
        trace=trace, protocol=invalidation(), mean_lifetime=3 * DAYS
    )


POINTS = [
    ("invalidation", {}),
    ("polling", {"protocol": poll_every_time()}),
    ("tiny-cache", {"proxy_cache_bytes": 1 << 20}),
]


def _fake_result(config: ExperimentConfig) -> ExperimentResult:
    return ExperimentResult(
        protocol=config.protocol.name,
        trace_name=config.trace.name,
        mean_lifetime=config.mean_lifetime,
        total_requests=int(config.seed),
        files_modified=0,
    )


def _sleepy_experiment(config):
    import time

    time.sleep(30.0)
    return _fake_result(config)


def _crash_once_experiment(config):
    sentinel = os.environ["REPRO_TEST_CRASH_SENTINEL"]
    if not os.path.exists(sentinel):
        with open(sentinel, "w") as handle:
            handle.write("crashed\n")
        os._exit(3)  # simulated hard worker crash (no exception, no result)
    return _fake_result(config)


def _failing_experiment(config):
    raise RuntimeError("deterministic experiment bug")


def test_parallel_matches_serial_bit_for_bit(base_config):
    serial = sweep(base_config, POINTS)
    lines = []
    runner = ParallelSweepRunner(workers=2, progress=lines.append)
    parallel = sweep(base_config, POINTS, runner=runner)
    assert [r.label for r in parallel] == [r.label for r in serial]
    for s, p in zip(serial, parallel):
        assert result_to_dict(p.result) == result_to_dict(s.result)
    # Progress lines name every point with its worker and wall time.
    assert len(lines) == len(POINTS)
    assert all("worker=" in line and "wall=" in line for line in lines)


def test_checkpoints_written_and_resumed(base_config, tmp_path):
    ckpt = tmp_path / "ckpt"
    runner = ParallelSweepRunner(workers=2, checkpoint_dir=str(ckpt))
    first = sweep(base_config, POINTS, runner=runner)
    files = sorted(os.listdir(ckpt))
    assert files == sorted(
        checkpoint_filename(i, label) for i, (label, _) in enumerate(POINTS)
    )
    # Resume: every point comes from its checkpoint; the experiment
    # function must never run (it would raise).
    lines = []
    resumed_runner = ParallelSweepRunner(
        workers=2,
        checkpoint_dir=str(ckpt),
        resume=True,
        experiment_fn=_failing_experiment,
        progress=lines.append,
    )
    resumed = sweep(base_config, POINTS, runner=resumed_runner)
    assert [r.label for r in resumed] == [r.label for r in first]
    for a, b in zip(first, resumed):
        assert result_to_dict(b.result) == result_to_dict(a.result)
    assert all("resumed from checkpoint" in line for line in lines)


def test_partial_checkpoints_resume_remaining(base_config, tmp_path):
    ckpt = tmp_path / "ckpt"
    runner = ParallelSweepRunner(workers=1, checkpoint_dir=str(ckpt))
    full = sweep(base_config, POINTS, runner=runner)
    # Drop the middle checkpoint: a resumed sweep reruns only that point.
    removed = ckpt / checkpoint_filename(1, POINTS[1][0])
    removed.unlink()
    resumed = sweep(
        base_config,
        POINTS,
        runner=ParallelSweepRunner(
            workers=1, checkpoint_dir=str(ckpt), resume=True
        ),
    )
    assert removed.exists()
    for a, b in zip(full, resumed):
        assert result_to_dict(b.result) == result_to_dict(a.result)


def test_retry_on_worker_crash(base_config, tmp_path):
    sentinel = tmp_path / "crash-once"
    os.environ["REPRO_TEST_CRASH_SENTINEL"] = str(sentinel)
    try:
        lines = []
        runner = ParallelSweepRunner(
            workers=1,
            retries=1,
            experiment_fn=_crash_once_experiment,
            progress=lines.append,
        )
        results = sweep(base_config, [("crashy", {"seed": 7})], runner=runner)
        assert sentinel.exists()
        assert results[0].result.total_requests == 7
        assert any("retrying" in line for line in lines)
    finally:
        del os.environ["REPRO_TEST_CRASH_SENTINEL"]


def test_crash_exhausts_retries(base_config):
    runner = ParallelSweepRunner(
        workers=1, retries=1, experiment_fn=_always_crash_experiment
    )
    with pytest.raises(SweepPointFailed, match="doomed"):
        sweep(base_config, [("doomed", {})], runner=runner)


def _always_crash_experiment(config):
    os._exit(3)


def test_per_point_timeout(base_config):
    runner = ParallelSweepRunner(
        workers=1, timeout=0.3, retries=0, experiment_fn=_sleepy_experiment
    )
    with pytest.raises(SweepPointFailed, match="timed out"):
        sweep(base_config, [("slowpoke", {})], runner=runner)


def test_deterministic_exception_fails_fast(base_config):
    runner = ParallelSweepRunner(
        workers=1, retries=5, experiment_fn=_failing_experiment
    )
    with pytest.raises(SweepPointFailed, match="deterministic experiment bug"):
        sweep(base_config, [("buggy", {})], runner=runner)


def test_runner_validation():
    with pytest.raises(ValueError):
        ParallelSweepRunner(workers=0)
    with pytest.raises(ValueError):
        ParallelSweepRunner(timeout=0)
    with pytest.raises(ValueError):
        ParallelSweepRunner(retries=-1)
    with pytest.raises(ValueError):
        ParallelSweepRunner(resume=True)  # resume needs a checkpoint_dir


def test_checkpoint_filename_slugs():
    assert checkpoint_filename(3, "64MB cache / v2") == "point-0003-64MB-cache-v2.json"
    assert checkpoint_filename(0, "***") == "point-0000-point.json"
