"""Unit tests for TraceRecord and Trace."""

import pytest

from repro.traces import Trace, TraceRecord


def rec(t, client="c1", url="/a"):
    return TraceRecord(timestamp=t, client=client, url=url)


def test_record_validation():
    with pytest.raises(ValueError):
        TraceRecord(timestamp=-1.0, client="c", url="/a")
    with pytest.raises(ValueError):
        TraceRecord(timestamp=0.0, client="", url="/a")
    with pytest.raises(ValueError):
        TraceRecord(timestamp=0.0, client="c", url="")


def test_records_order_by_timestamp():
    assert rec(1.0) < rec(2.0)
    assert sorted([rec(3.0), rec(1.0), rec(2.0)])[0].timestamp == 1.0


def test_trace_requires_time_order():
    with pytest.raises(ValueError):
        Trace(
            name="t",
            records=[rec(2.0), rec(1.0)],
            documents={"/a": 100},
            duration=10.0,
        )


def test_trace_requires_known_documents():
    with pytest.raises(ValueError):
        Trace(name="t", records=[rec(1.0, url="/missing")], documents={}, duration=5.0)


def test_trace_requires_positive_duration():
    with pytest.raises(ValueError):
        Trace(name="t", records=[], documents={}, duration=0.0)


def test_trace_iteration_and_len():
    trace = Trace(
        name="t",
        records=[rec(1.0), rec(2.0)],
        documents={"/a": 100},
        duration=10.0,
    )
    assert len(trace) == 2
    assert [r.timestamp for r in trace] == [1.0, 2.0]


def test_trace_clients_first_seen_order():
    trace = Trace(
        name="t",
        records=[rec(1.0, client="b"), rec(2.0, client="a"), rec(3.0, client="b")],
        documents={"/a": 100},
        duration=10.0,
    )
    assert trace.clients == ["b", "a"]


def test_trace_urls_include_unrequested_documents():
    trace = Trace(
        name="t",
        records=[rec(1.0, url="/a")],
        documents={"/a": 100, "/never": 5},
        duration=10.0,
    )
    assert set(trace.urls) == {"/a", "/never"}


def test_slice_shrinks_duration_proportionally():
    records = [rec(float(i)) for i in range(10)]
    trace = Trace(name="t", records=records, documents={"/a": 1}, duration=100.0)
    small = trace.slice(5)
    assert len(small) == 5
    assert small.duration == pytest.approx(50.0)


def test_slice_noop_when_large_enough():
    trace = Trace(name="t", records=[rec(1.0)], documents={"/a": 1}, duration=10.0)
    assert trace.slice(100) is trace
