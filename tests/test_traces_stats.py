"""Tests for the trace analytics module."""

import pytest

from repro.sim import RngRegistry
from repro.traces import (
    PROFILES,
    Trace,
    TraceRecord,
    client_activity,
    fit_zipf_alpha,
    generate_trace,
    interarrival_stats,
    popularity_curve,
    request_interval_stats,
)
from repro.workload import Modification


def make_trace(records, docs):
    return Trace(name="t", records=sorted(records), documents=docs, duration=100.0)


def rec(t, client, url):
    return TraceRecord(timestamp=t, client=client, url=url)


class TestPopularity:
    def test_curve_sorted_descending(self):
        trace = make_trace(
            [rec(1, "c", "/a"), rec(2, "c", "/a"), rec(3, "c", "/b")],
            {"/a": 1, "/b": 1},
        )
        assert popularity_curve(trace) == [2, 1]

    def test_fit_recovers_synthetic_alpha(self):
        # Build counts exactly proportional to 1/rank^0.9.
        curve = [int(10000 / (rank + 1) ** 0.9) for rank in range(200)]
        assert fit_zipf_alpha(curve) == pytest.approx(0.9, abs=0.05)

    def test_fit_degenerate(self):
        assert fit_zipf_alpha([]) == 0.0
        assert fit_zipf_alpha([5]) == 0.0

    def test_generated_trace_alpha_near_profile(self):
        profile = PROFILES["SDSC"].scaled(0.1)
        trace = generate_trace(profile, RngRegistry(seed=4))
        alpha = fit_zipf_alpha(popularity_curve(trace), max_rank=60)
        # Revisits flatten the head somewhat; expect the right ballpark.
        assert 0.4 < alpha < 1.6


class TestInterarrival:
    def test_simple(self):
        trace = make_trace(
            [rec(0, "c", "/a"), rec(2, "c", "/a"), rec(6, "c", "/a")],
            {"/a": 1},
        )
        mean, peak = interarrival_stats(trace)
        assert mean == pytest.approx(3.0)
        assert peak == 4.0

    def test_single_request(self):
        trace = make_trace([rec(1, "c", "/a")], {"/a": 1})
        assert interarrival_stats(trace) == (0.0, 0.0)


class TestClientActivity:
    def test_counts(self):
        trace = make_trace(
            [rec(1, "a", "/x"), rec(2, "a", "/x"), rec(3, "b", "/x")],
            {"/x": 1},
        )
        assert client_activity(trace) == [2, 1]


class TestIntervalStats:
    def test_no_modifications_single_interval_per_pair(self):
        trace = make_trace(
            [rec(1, "c", "/a"), rec(2, "c", "/a"), rec(3, "d", "/a")],
            {"/a": 1},
        )
        stats = request_interval_stats(trace, [])
        assert stats.pairs == 2
        assert stats.total_reads == 3
        assert stats.total_intervals == 2
        assert stats.repeat_reads == 1
        assert stats.repeat_fraction == pytest.approx(1 / 3)

    def test_modifications_split_intervals(self):
        trace = make_trace(
            [rec(1, "c", "/a"), rec(10, "c", "/a")],
            {"/a": 1},
        )
        stats = request_interval_stats(trace, [Modification(time=5.0, url="/a")])
        assert stats.total_intervals == 2
        assert stats.repeat_reads == 0
        assert stats.mean_interval_length == 1.0

    def test_matches_paper_repeat_structure(self):
        """Table 2 calibration implies ~30-50% repeat reads on SASK."""
        trace = generate_trace(PROFILES["SASK"].scaled(0.05), RngRegistry(seed=2))
        stats = request_interval_stats(trace, [])
        assert 0.25 < stats.repeat_fraction < 0.6
