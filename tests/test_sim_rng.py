"""Unit and property tests for the RNG registry."""

from hypothesis import given
from hypothesis import strategies as st

from repro.sim import RngRegistry


def test_same_name_same_stream_object():
    reg = RngRegistry(seed=1)
    assert reg.stream("a") is reg.stream("a")


def test_streams_reproducible_across_registries():
    a = RngRegistry(seed=42).stream("traffic")
    b = RngRegistry(seed=42).stream("traffic")
    assert [a.random() for _ in range(5)] == [b.random() for _ in range(5)]


def test_streams_independent_of_request_order():
    reg1 = RngRegistry(seed=7)
    x1 = reg1.stream("x")
    _ = reg1.stream("y")
    seq1 = [x1.random() for _ in range(3)]

    reg2 = RngRegistry(seed=7)
    _ = reg2.stream("y")
    x2 = reg2.stream("x")
    seq2 = [x2.random() for _ in range(3)]
    assert seq1 == seq2


def test_different_names_differ():
    reg = RngRegistry(seed=3)
    assert [reg.stream("a").random() for _ in range(3)] != [
        reg.stream("b").random() for _ in range(3)
    ]


def test_different_seeds_differ():
    assert RngRegistry(seed=1).stream("s").random() != RngRegistry(seed=2).stream(
        "s"
    ).random()


def test_fork_is_deterministic_and_distinct():
    base = RngRegistry(seed=5)
    f1 = base.fork("exp-a")
    f2 = RngRegistry(seed=5).fork("exp-a")
    assert f1.seed == f2.seed
    assert f1.seed != base.seed
    assert base.fork("exp-b").seed != f1.seed


@given(st.integers(min_value=0, max_value=2**32), st.text(min_size=1, max_size=20))
def test_stream_reproducibility_property(seed, name):
    first = RngRegistry(seed=seed).stream(name).random()
    second = RngRegistry(seed=seed).stream(name).random()
    assert first == second


def test_repr_lists_streams():
    reg = RngRegistry(seed=9)
    reg.stream("zeta")
    reg.stream("alpha")
    assert "alpha" in repr(reg)
    assert "9" in repr(reg)
