"""Tests for the extension features: fixed TTL, multicast invalidation,
WAN latency override."""

import pytest

from repro import fixed_ttl, invalidation
from repro.core import SERVE, VALIDATE, FixedTtlPolicy
from repro.core.fixed_ttl import fixed_ttl as fixed_ttl_factory
from repro.http import Invalidate, make_invalidate_multi, DEFAULT_WIRE
from repro.net import FixedLatency, Network, WanModel
from repro.proxy import Cache, CacheEntry, ProxyCache
from repro.server import FileStore, ServerSite
from repro.sim import Simulator


class TestFixedTtl:
    def test_validation(self):
        with pytest.raises(ValueError):
            FixedTtlPolicy(ttl=-1)

    def test_same_ttl_for_all_ages(self):
        policy = FixedTtlPolicy(ttl=100.0)
        entry = CacheEntry(
            url="/a", client_id="c", size=1, last_modified=0.0, fetched_at=0.0
        )

        class Reply:
            last_modified = 0.0

        policy.on_fill(entry, Reply(), now=50.0)
        assert entry.expires == 150.0
        policy.on_validated(entry, Reply(), now=400.0)
        assert entry.expires == 500.0

    def test_action(self):
        policy = FixedTtlPolicy(ttl=10.0)
        entry = CacheEntry(
            url="/a", client_id="c", size=1, last_modified=0.0, fetched_at=0.0,
            expires=10.0,
        )
        assert policy.action(entry, now=5.0) == SERVE
        assert policy.action(entry, now=10.0) == VALIDATE

    def test_protocol_bundle(self):
        protocol = fixed_ttl_factory(ttl=60.0)
        assert not protocol.strong
        assert protocol.expired_first_cache
        assert "60" in protocol.name
        assert fixed_ttl(30.0).client_policy.ttl == 30.0


class TestMulticastMessages:
    def test_multi_invalidate_size_scales_with_clients(self):
        one = make_invalidate_multi("s", "p", "/a", ["c1"])
        three = make_invalidate_multi("s", "p", "/a", ["c1", "c2", "c3"])
        assert one.size == DEFAULT_WIRE.invalidate
        assert three.size == DEFAULT_WIRE.invalidate + 2 * DEFAULT_WIRE.invalidate_per_client
        assert three.target_clients == ("c1", "c2", "c3")

    def test_multi_invalidate_requires_clients(self):
        with pytest.raises(ValueError):
            make_invalidate_multi("s", "p", "/a", [])

    def test_single_form_target_clients(self):
        inv = Invalidate(src="s", dst="p", size=10, url="/a", client_id="c7")
        assert inv.target_clients == ("c7",)

    def test_server_form_has_no_target_clients(self):
        inv = Invalidate(src="s", dst="p", size=10, server="s")
        assert inv.target_clients == ()


class TestMulticastInvalidation:
    def build(self, multicast):
        sim = Simulator()
        net = Network(sim, latency=FixedLatency(0.001), connect_timeout=0.5)
        fs = FileStore.from_catalog({"/a": 1000})
        protocol = invalidation(multicast=multicast)
        server = ServerSite(sim, net, "server", fs, accel=protocol.accelerator)
        proxy = ProxyCache(
            sim, net, "proxy-0", "server",
            policy=protocol.client_policy, cache=Cache(),
        )
        return sim, net, fs, server, proxy

    def seed_clients(self, sim, proxy, count):
        def driver(sim):
            for i in range(count):
                yield from proxy.request(f"c{i}", "/a")

        sim.process(driver(sim))
        sim.run()

    def test_one_message_per_proxy(self):
        sim, net, fs, server, proxy = self.build(multicast=True)
        self.seed_clients(sim, proxy, 5)
        fs.modify("/a", now=sim.now)
        server.check_in("/a")
        sim.run()
        # One multicast message covers all five clients.
        assert server.invalidations_sent == 1
        assert net.stats.messages("invalidate") == 1
        # All five copies are gone.
        assert len(proxy.cache) == 0
        assert len(server.table.site_list("/a")) == 0

    def test_unicast_sends_one_per_client(self):
        sim, net, fs, server, proxy = self.build(multicast=False)
        self.seed_clients(sim, proxy, 5)
        fs.modify("/a", now=sim.now)
        server.check_in("/a")
        sim.run()
        assert server.invalidations_sent == 5
        assert net.stats.messages("invalidate") == 5

    def test_multicast_protocol_name(self):
        assert invalidation(multicast=True).name == "invalidation-multicast"


class TestWanModel:
    def test_wan_latency_larger_than_lan(self):
        from repro.net import LanModel, Message

        lan = LanModel()
        wan = WanModel(base_delay=0.05, jitter=0.0)
        msg = Message(src="a", dst="b", size=1000)
        assert wan.delay(msg) > lan.delay(msg)

    def test_experiment_accepts_latency_override(self):
        from repro import (
            DAYS,
            ExperimentConfig,
            PROFILES,
            RngRegistry,
            generate_trace,
            poll_every_time,
            run_experiment,
        )

        trace = generate_trace(PROFILES["SDSC"].scaled(0.01), RngRegistry(seed=3))
        lan = run_experiment(
            ExperimentConfig(
                trace=trace, protocol=poll_every_time(), mean_lifetime=5 * DAYS
            )
        )
        wan = run_experiment(
            ExperimentConfig(
                trace=trace,
                protocol=poll_every_time(),
                mean_lifetime=5 * DAYS,
                latency_model=WanModel(
                    base_delay=0.08, jitter=0.02, size_scale=100.0
                ),
            )
        )
        # Polling contacts the server on every request: WAN latency must
        # dominate its response times.
        assert wan.avg_latency > 1.5 * lan.avg_latency
        assert wan.min_latency > lan.min_latency