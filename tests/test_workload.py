"""Tests for lifetimes, the modifier process, and r/m stream counting."""

import random

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.sim import Simulator
from repro.workload import (
    DAYS,
    Modifier,
    count_r_ri,
    expected_modifications,
    generate_schedule,
    mean_lifetime,
    merge_events,
    modification_interval,
    parse_stream,
)


class TestLifetime:
    def test_paper_epa_numbers(self):
        # EPA: 3600 files, 50-day lifetime, 1-day trace -> 72 modifications.
        interval = modification_interval(3600, 50 * DAYS)
        assert interval == pytest.approx(1200.0)
        assert expected_modifications(3600, 50 * DAYS, 1 * DAYS) == 72

    def test_paper_sask_numbers(self):
        # SASK: 2009 files, 14-day lifetime, 8-day trace -> 1148 mods.
        assert expected_modifications(2009, 14 * DAYS, 8 * DAYS) == 1148

    def test_paper_sdsc_both_lifetimes(self):
        assert expected_modifications(1430, 25 * DAYS, 1 * DAYS) == 57
        assert expected_modifications(1430, 2.5 * DAYS, 1 * DAYS) == 572

    def test_roundtrip(self):
        interval = modification_interval(100, 5000.0)
        assert mean_lifetime(100, interval) == pytest.approx(5000.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            modification_interval(0, 100.0)
        with pytest.raises(ValueError):
            modification_interval(10, 0.0)
        with pytest.raises(ValueError):
            mean_lifetime(10, -1.0)


class TestSchedule:
    def test_schedule_times_fixed_interval(self):
        sched = generate_schedule(
            ["/a", "/b"], duration=100.0, mean_lifetime_seconds=40.0,
            rng=random.Random(0),
        )
        times = [m.time for m in sched]
        assert times == [20.0, 40.0, 60.0, 80.0, 100.0]

    def test_schedule_urls_from_catalog(self):
        urls = ["/a", "/b", "/c"]
        sched = generate_schedule(urls, 1000.0, 30.0, random.Random(1))
        assert all(m.url in urls for m in sched)

    def test_schedule_deterministic(self):
        urls = [f"/u{i}" for i in range(10)]
        a = generate_schedule(urls, 500.0, 100.0, random.Random(3))
        b = generate_schedule(urls, 500.0, 100.0, random.Random(3))
        assert a == b

    def test_empty_urls_rejected(self):
        with pytest.raises(ValueError):
            generate_schedule([], 100.0, 10.0, random.Random(0))


class TestModifier:
    def test_touch_and_check_in_called_in_order(self):
        sim = Simulator()
        sched = generate_schedule(["/a"], 10.0, 5.0, random.Random(0))
        calls = []
        modifier = Modifier(
            sim,
            sched,
            touch=lambda url: calls.append(("touch", url, sim.now)),
            check_in=lambda url: calls.append(("check-in", url, sim.now)),
        )
        sim.run()
        assert calls == [
            ("touch", "/a", 5.0),
            ("check-in", "/a", 5.0),
            ("touch", "/a", 10.0),
            ("check-in", "/a", 10.0),
        ]
        assert modifier.modifications_applied == 2

    def test_check_in_optional(self):
        sim = Simulator()
        sched = generate_schedule(["/a"], 5.0, 5.0, random.Random(0))
        touched = []
        Modifier(sim, sched, touch=touched.append)
        sim.run()
        assert touched == ["/a"]


class TestStreams:
    def test_parse_stream(self):
        assert parse_stream("r r m r") == ["r", "r", "m", "r"]
        assert parse_stream("RRM") == ["r", "r", "m"]
        with pytest.raises(ValueError):
            parse_stream("r x m")

    def test_paper_example_ri_is_4(self):
        # Section 3: "r r r m m m r r m r r r m m r" has RI = 4.
        counts = count_r_ri(parse_stream("r r r m m m r r m r r r m m r"))
        assert counts.reads == 9
        assert counts.intervals == 4
        assert counts.repeats == 5

    def test_all_reads_single_interval(self):
        counts = count_r_ri(parse_stream("r r r r"))
        assert counts == count_r_ri(["r"] * 4)
        assert counts.intervals == 1

    def test_modifications_without_reads(self):
        counts = count_r_ri(parse_stream("m m m"))
        assert counts.reads == 0
        assert counts.intervals == 0

    def test_trailing_modification_does_not_add_interval(self):
        counts = count_r_ri(parse_stream("r m"))
        assert counts.intervals == 1

    def test_invalid_op_rejected(self):
        with pytest.raises(ValueError):
            count_r_ri(["r", "z"])

    def test_merge_events_modify_first_on_tie(self):
        stream = merge_events(read_times=[1.0, 2.0], modify_times=[2.0])
        assert stream == ["r", "m", "r"]

    @given(
        st.lists(st.sampled_from(["r", "m"]), max_size=200),
    )
    def test_ri_invariants(self, ops):
        counts = count_r_ri(ops)
        assert 0 <= counts.intervals <= counts.reads
        assert counts.reads == ops.count("r")
        # RI is at most one more than the number of modifications.
        assert counts.intervals <= ops.count("m") + 1
