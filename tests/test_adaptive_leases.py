"""Tests for the adaptive-lease controller and protocol."""

import pytest

from repro.core import adaptive_lease
from repro.net import FixedLatency, Network
from repro.replay import ExperimentConfig, run_experiment
from repro.server import (
    AdaptiveLeaseController,
    FileStore,
    ServerSite,
)
from repro.sim import RngRegistry, Simulator
from repro.traces import PROFILES, generate_trace
from repro.workload import DAYS


class TestControllerUnit:
    def build(self):
        sim = Simulator()
        net = Network(sim, latency=FixedLatency(0.001))
        fs = FileStore.from_catalog({f"/d{i}": 100 for i in range(50)})
        protocol = adaptive_lease(state_budget_bytes=280)  # 10 entries
        server = ServerSite(sim, net, "server", fs, accel=protocol.accelerator)
        return sim, server

    def test_validation(self):
        sim, server = self.build()
        with pytest.raises(ValueError):
            AdaptiveLeaseController(sim, server, state_budget_bytes=0)
        with pytest.raises(ValueError):
            AdaptiveLeaseController(sim, server, 100, shrink=1.5)
        with pytest.raises(ValueError):
            AdaptiveLeaseController(
                sim, server, 100, min_lease=100.0, initial_lease=10.0
            )

    def test_lease_shrinks_over_budget(self):
        sim, server = self.build()
        controller = AdaptiveLeaseController(
            sim, server, state_budget_bytes=280, period=10.0,
            initial_lease=1000.0,
        )
        # Register 20 sites (560 bytes > 280 budget).
        for i in range(20):
            server.table.register(f"/d{i}", f"c{i}", "p", now=0.0,
                                  lease_expires=1e9)
        sim.run(until=10.5)
        controller.stop()
        sim.run()
        assert controller.lease < 1000.0
        assert controller.history

    def test_lease_grows_when_under_budget(self):
        sim, server = self.build()
        controller = AdaptiveLeaseController(
            sim, server, state_budget_bytes=10_000, period=10.0,
            initial_lease=100.0, max_lease=500.0,
        )
        sim.run(until=80.5)
        controller.stop()
        sim.run()
        assert controller.lease == 500.0  # grew to the clamp (100 * 1.3^n)

    def test_override_drives_granted_leases(self):
        sim, server = self.build()
        server.lease_override = 42.0
        from repro.http import HttpResponse, make_get

        inbox = []
        server.network.register("proxy", inbox.append)
        server.network.send(make_get("proxy", "server", "/d0", client_id="c1"))
        sim.run()
        (reply,) = [m for m in inbox if isinstance(m, HttpResponse)]
        assert reply.lease_expires == pytest.approx(42.0, abs=1.0)

    def test_stop_prevents_further_ticks(self):
        sim, server = self.build()
        controller = AdaptiveLeaseController(
            sim, server, state_budget_bytes=1000, period=10.0
        )
        sim.run(until=25.0)
        controller.stop()
        sim.run()
        assert sim.now == 25.0
        assert len(controller.history) == 2


class TestAdaptiveLeaseReplay:
    def test_budget_respected_end_to_end(self):
        trace = generate_trace(PROFILES["SASK"].scaled(0.04), RngRegistry(seed=3))
        budget = 8 * 1024  # ~290 entries
        result = run_experiment(
            ExperimentConfig(
                trace=trace,
                protocol=adaptive_lease(state_budget_bytes=budget),
                mean_lifetime=5 * DAYS,
            )
        )
        # The controller keeps end-of-run storage in the budget's
        # neighbourhood (it reacts within one period).
        assert result.sitelist_storage_bytes < 2 * budget
        assert result.violations == 0
        # Leases force some validation traffic.
        assert result.ims > 0

    def test_factory_validation(self):
        with pytest.raises(ValueError):
            adaptive_lease(state_budget_bytes=0)
