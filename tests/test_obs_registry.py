"""Tests for the unified metrics registry (repro.obs.registry)."""

import pytest

from repro.obs import (
    NULL_REGISTRY,
    MetricsRegistry,
    NullRegistry,
)


class TestHandles:
    def test_counter_accumulates(self):
        reg = MetricsRegistry()
        c = reg.counter("requests", protocol="ttl")
        c.inc()
        c.inc(4)
        assert reg.value("requests", protocol="ttl") == 5

    def test_gauge_overwrites(self):
        reg = MetricsRegistry()
        g = reg.gauge("cache_bytes", site="proxy-1")
        g.set(100)
        g.set(42)
        assert reg.value("cache_bytes", site="proxy-1") == 42

    def test_timer_observes(self):
        reg = MetricsRegistry()
        t = reg.timer("latency")
        for v in (0.1, 0.2, 0.3):
            t.observe(v)
        assert t.stats.count == 3
        assert t.stats.mean == pytest.approx(0.2)

    def test_get_or_create_returns_same_handle(self):
        reg = MetricsRegistry()
        a = reg.counter("n", k="v")
        b = reg.counter("n", k="v")
        assert a is b
        a.inc()
        b.inc()
        assert reg.value("n", k="v") == 2
        assert len(reg) == 1

    def test_label_values_stringified(self):
        # counter(..., days=50) and counter(..., days="50") are one series.
        reg = MetricsRegistry()
        reg.counter("n", days=50).inc()
        reg.counter("n", days="50").inc()
        assert reg.value("n", days=50) == 2

    def test_label_order_irrelevant(self):
        reg = MetricsRegistry()
        reg.counter("n", a="1", b="2").inc()
        reg.counter("n", b="2", a="1").inc()
        assert reg.value("n", a="1", b="2") == 2
        assert len(reg) == 1


class TestQueries:
    def build(self):
        reg = MetricsRegistry()
        reg.counter("requests", protocol="ttl", site="p1").inc(3)
        reg.counter("requests", protocol="ttl", site="p2").inc(5)
        reg.counter("requests", protocol="polling", site="p1").inc(7)
        return reg

    def test_total_sums_across_labels(self):
        reg = self.build()
        assert reg.total("requests") == 15

    def test_total_filters_on_labels(self):
        reg = self.build()
        assert reg.total("requests", protocol="ttl") == 8
        assert reg.total("requests", protocol="ttl", site="p2") == 5
        assert reg.total("requests", protocol="lease") == 0

    def test_value_missing_series_is_none(self):
        reg = self.build()
        assert reg.value("requests", protocol="nope") is None

    def test_series_iterates_every_kind(self):
        reg = self.build()
        reg.gauge("cache_bytes").set(9)
        reg.timer("latency").observe(0.5)
        kinds = [kind for kind, _name, _labels, _h in reg.series()]
        assert kinds.count("counter") == 3
        assert kinds.count("gauge") == 1
        assert kinds.count("timer") == 1
        assert len(reg) == 5

    def test_to_dict_and_render(self):
        reg = self.build()
        reg.timer("latency").observe(0.5)
        data = reg.to_dict()
        assert len(data["counters"]) == 3
        assert data["timers"][0]["name"] == "latency"
        assert data["timers"][0]["count"] == 1
        text = reg.render()
        assert "requests{protocol=ttl,site=p2} 5" in text
        assert "latency" in text


class TestNullRegistry:
    def test_disabled_and_shared_handle(self):
        null = NullRegistry()
        assert null.enabled is False
        c = null.counter("anything", a=1)
        g = null.gauge("other")
        t = null.timer("t")
        # All no-op handles are the same object: zero allocation per call.
        assert c is g is t
        c.inc()
        g.set(5)
        t.observe(0.1)  # all silently ignored
        assert len(null) == 0

    def test_singleton_exists(self):
        assert isinstance(NULL_REGISTRY, NullRegistry)

    def test_real_registry_enabled(self):
        assert MetricsRegistry().enabled is True
