"""Property-based (stateful) tests of the cache's invariants."""

import math

from hypothesis import settings
from hypothesis import strategies as st
from hypothesis.stateful import (
    RuleBasedStateMachine,
    invariant,
    rule,
)

from repro.proxy import Cache, CacheEntry

CAPACITY = 1000


class CacheMachine(RuleBasedStateMachine):
    """Random put/get/remove/evict sequences against a bounded cache."""

    def __init__(self):
        super().__init__()
        self.cache = Cache(capacity_bytes=CAPACITY, expired_first=True)
        self.clock = 0.0
        self.model = {}  # key -> size of entries we believe are cached

    def _tick(self) -> float:
        self.clock += 1.0
        return self.clock

    @rule(
        doc=st.integers(min_value=0, max_value=9),
        client=st.integers(min_value=0, max_value=3),
        size=st.integers(min_value=1, max_value=400),
        ttl=st.floats(min_value=0.0, max_value=50.0),
    )
    def put(self, doc, client, size, ttl):
        now = self._tick()
        entry = CacheEntry(
            url=f"/d{doc}",
            client_id=f"c{client}",
            size=size,
            last_modified=0.0,
            fetched_at=now,
            expires=now + ttl,
        )
        accepted = self.cache.put(entry, now)
        assert accepted == (size <= CAPACITY)
        if accepted:
            # Rebuild the model from the cache's own key list: evictions
            # may have removed arbitrary other entries.
            self.model = {
                key: self.cache.peek(key).size for key in self.cache.keys()
            }
        assert entry.key in self.cache

    @rule(
        doc=st.integers(min_value=0, max_value=9),
        client=st.integers(min_value=0, max_value=3),
    )
    def get(self, doc, client):
        now = self._tick()
        key = f"/d{doc}@c{client}"
        entry = self.cache.get(key, now)
        if key in self.model:
            assert entry is not None
            assert entry.size == self.model[key]
            assert entry.last_used == now
        else:
            assert entry is None

    @rule(
        doc=st.integers(min_value=0, max_value=9),
        client=st.integers(min_value=0, max_value=3),
    )
    def remove(self, doc, client):
        key = f"/d{doc}@c{client}"
        freed = self.cache.remove(key)
        assert freed == self.model.pop(key, 0)

    @rule()
    def mark_questionable(self):
        flagged = self.cache.mark_all_questionable()
        assert flagged == len(self.model)

    @invariant()
    def bytes_accounting_consistent(self):
        assert self.cache.used_bytes == sum(
            self.cache.peek(key).size for key in self.cache.keys()
        )

    @invariant()
    def capacity_respected(self):
        assert self.cache.used_bytes <= CAPACITY

    @invariant()
    def model_subset_of_cache(self):
        for key, size in self.model.items():
            entry = self.cache.peek(key)
            assert entry is not None
            assert entry.size == size

    @invariant()
    def length_matches_model(self):
        assert len(self.cache) == len(self.model)


TestCacheStateMachine = CacheMachine.TestCase
TestCacheStateMachine.settings = settings(
    max_examples=60, stateful_step_count=40, deadline=None
)


def test_unbounded_cache_never_evicts():
    cache = Cache(capacity_bytes=None)
    for i in range(200):
        cache.put(
            CacheEntry(
                url=f"/d{i}", client_id="c", size=10_000, last_modified=0.0,
                fetched_at=float(i),
            ),
            now=float(i),
        )
    assert len(cache) == 200
    assert cache.evictions == 0


def test_infinite_expiry_entries_never_chosen_as_expired():
    cache = Cache(capacity_bytes=100, expired_first=True)
    for i in range(10):
        cache.put(
            CacheEntry(
                url=f"/d{i}", client_id="c", size=10, last_modified=0.0,
                fetched_at=float(i), expires=math.inf,
            ),
            now=float(i),
        )
    cache.put(
        CacheEntry(
            url="/new", client_id="c", size=50, last_modified=0.0,
            fetched_at=100.0, expires=math.inf,
        ),
        now=100.0,
    )
    assert cache.expired_evictions == 0
    assert cache.used_bytes <= 100
