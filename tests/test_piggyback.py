"""Tests for the piggyback-server-invalidation (PSI) extension."""


from repro.core import adaptive_ttl, piggyback_invalidation
from repro.net import FixedLatency, Network
from repro.proxy import Cache, CacheEntry, ProxyCache
from repro.server import FileStore, ServerSite
from repro.sim import Simulator


def build(protocol=None, docs=None):
    sim = Simulator()
    net = Network(sim, latency=FixedLatency(0.001), connect_timeout=0.5)
    fs = FileStore.from_catalog(docs or {"/a": 1000, "/b": 2000, "/c": 500})
    protocol = protocol or piggyback_invalidation()
    server = ServerSite(sim, net, "server", fs, accel=protocol.accelerator)
    proxy = ProxyCache(
        sim, net, "proxy-0", "server",
        policy=protocol.client_policy,
        cache=Cache(expired_first=protocol.expired_first_cache),
        oracle=lambda url: fs.get(url).last_modified,
    )
    return sim, net, fs, server, proxy


def request(sim, proxy, client, url):
    holder = {}

    def driver(sim):
        holder["o"] = yield from proxy.request(client, url)

    sim.process(driver(sim))
    sim.run()
    return holder["o"]


class TestCacheUrlIndex:
    def test_remove_url_drops_all_clients(self):
        cache = Cache()
        for client in ("c1", "c2", "c3"):
            cache.put(
                CacheEntry(url="/a", client_id=client, size=10,
                           last_modified=0.0, fetched_at=0.0),
                now=0.0,
            )
        cache.put(
            CacheEntry(url="/b", client_id="c1", size=10, last_modified=0.0,
                       fetched_at=0.0),
            now=0.0,
        )
        assert cache.remove_url("/a") == 3
        assert len(cache) == 1
        assert cache.remove_url("/a") == 0
        assert cache.used_bytes == 10

    def test_index_survives_eviction_and_replace(self):
        cache = Cache(capacity_bytes=30)
        for i in range(5):
            cache.put(
                CacheEntry(url=f"/d{i}", client_id="c", size=10,
                           last_modified=0.0, fetched_at=float(i)),
                now=float(i),
            )
        # Oldest entries evicted; remove_url on them returns 0.
        assert cache.remove_url("/d0") == 0
        assert cache.remove_url("/d4") == 1


class TestProtocolBundle:
    def test_factory(self):
        protocol = piggyback_invalidation(cap=7)
        assert protocol.accelerator.piggyback
        assert not protocol.accelerator.invalidation
        assert protocol.accelerator.piggyback_cap == 7
        assert protocol.needs_check_in
        assert not protocol.uses_invalidation
        assert not protocol.strong

    def test_plain_ttl_has_no_check_in(self):
        assert not adaptive_ttl().needs_check_in


class TestPiggybackFlow:
    def test_modified_urls_piggybacked_on_next_reply(self):
        sim, net, fs, server, proxy = build()
        request(sim, proxy, "c1", "/a")
        request(sim, proxy, "c1", "/b")
        fs.modify("/a", now=sim.now)
        server.check_in("/a")
        # Next contact (for /c) carries the /a invalidation.
        request(sim, proxy, "c1", "/c")
        assert server.piggybacked_urls == 1
        assert proxy.piggyback_copies_removed == 1
        # /a is gone from the cache, /b intact.
        assert proxy.cache.peek("/a@c1") is None
        assert proxy.cache.peek("/b@c1") is not None

    def test_requested_url_excluded_from_its_own_reply(self):
        sim, net, fs, server, proxy = build()
        request(sim, proxy, "c1", "/a")
        fs.modify("/a", now=sim.now)
        server.check_in("/a")
        # The refetch of /a itself must not list /a (it IS the fresh copy).
        old = fs.get("/a").last_modified
        # Force a validation by expiring the TTL.
        sim.run(until=sim.now + 3600.0)
        outcome = request(sim, proxy, "c1", "/a")
        assert outcome.status == 200
        assert proxy.cache.peek("/a@c1") is not None
        assert fs.get("/a").last_modified == old

    def test_all_clients_copies_dropped(self):
        sim, net, fs, server, proxy = build()
        request(sim, proxy, "c1", "/a")
        request(sim, proxy, "c2", "/a")
        fs.modify("/a", now=sim.now)
        server.check_in("/a")
        request(sim, proxy, "c3", "/b")  # any contact delivers the list
        assert proxy.piggyback_copies_removed == 2

    def test_psi_reduces_stale_window_vs_plain_ttl(self):
        """After a piggybacked drop, the next read fetches fresh data
        where plain TTL would have served stale."""
        # Plain adaptive TTL: long TTL -> stale serve.
        sim, net, fs, server, proxy = build(protocol=adaptive_ttl())
        fs.get("/a").last_modified = -10 * 86400.0
        request(sim, proxy, "c1", "/a")
        fs.modify("/a", now=sim.now + 1)
        sim.run(until=sim.now + 2)
        stale_ttl = request(sim, proxy, "c1", "/a").stale_served
        assert stale_ttl

        # PSI: an intervening contact delivers the invalidation.
        sim, net, fs, server, proxy = build()
        fs.get("/a").last_modified = -10 * 86400.0
        request(sim, proxy, "c1", "/a")
        fs.modify("/a", now=sim.now + 1)
        server.check_in("/a")
        sim.run(until=sim.now + 2)
        request(sim, proxy, "c1", "/b")  # contact -> piggyback applies
        outcome = request(sim, proxy, "c1", "/a")
        assert not outcome.stale_served
        assert outcome.transfer

    def test_cap_respected(self):
        docs = {f"/d{i}": 100 for i in range(30)}
        sim, net, fs, server, proxy = build(
            protocol=piggyback_invalidation(cap=5), docs=docs
        )
        request(sim, proxy, "c1", "/d0")
        for i in range(1, 25):
            fs.modify(f"/d{i}", now=sim.now)
            server.check_in(f"/d{i}")
        request(sim, proxy, "c1", "/d0")
        # Only the cap's worth of URLs travelled.
        assert server.piggybacked_urls <= 5

    def test_first_contact_carries_nothing(self):
        sim, net, fs, server, proxy = build()
        fs.modify("/b", now=1.0)
        server.check_in("/b")
        request(sim, proxy, "c1", "/a")
        assert server.piggybacked_urls == 0
