"""Unit tests for the network fabric: delivery, failures, partitions."""

import pytest

from repro.net import FixedLatency, Message, Network, Unreachable
from repro.sim import Simulator


def make_net(latency=0.0, connect_timeout=3.0):
    sim = Simulator()
    net = Network(sim, latency=FixedLatency(latency), connect_timeout=connect_timeout)
    return sim, net


def test_register_and_deliver():
    sim, net = make_net(latency=1.0)
    inbox = []
    net.register("b", inbox.append)
    net.send(Message(src="a", dst="b", size=100))
    sim.run()
    assert len(inbox) == 1
    assert inbox[0].src == "a"
    assert sim.now == 1.0


def test_duplicate_registration_rejected():
    sim, net = make_net()
    net.register("x", lambda m: None)
    with pytest.raises(ValueError):
        net.register("x", lambda m: None)


def test_send_event_succeeds_at_delivery_time():
    sim, net = make_net(latency=2.0)
    net.register("b", lambda m: None)
    times = []

    def sender(sim):
        msg = Message(src="a", dst="b", size=10)
        delivered = yield net.send(msg)
        times.append((sim.now, delivered is msg))

    sim.process(sender(sim))
    sim.run()
    assert times == [(2.0, True)]


def test_send_to_unknown_address_fails_after_timeout():
    sim, net = make_net(connect_timeout=3.0)
    outcomes = []

    def sender(sim):
        try:
            yield net.send(Message(src="a", dst="ghost", size=10))
        except Unreachable as exc:
            outcomes.append((sim.now, exc.reason))

    sim.process(sender(sim))
    sim.run()
    assert outcomes == [(3.0, "unknown address")]


def test_fire_and_forget_failure_does_not_crash_run():
    sim, net = make_net()
    net.send(Message(src="a", dst="ghost", size=10))
    sim.run()  # must not raise
    assert net.stats.total_dropped == 1


def test_send_to_down_node_fails():
    sim, net = make_net()
    net.register("b", lambda m: None)
    net.set_down("b")
    failures = []

    def sender(sim):
        try:
            yield net.send(Message(src="a", dst="b", size=10))
        except Unreachable:
            failures.append(sim.now)

    sim.process(sender(sim))
    sim.run()
    assert failures == [3.0]
    assert not net.is_up("b")


def test_node_recovery_restores_delivery():
    sim, net = make_net()
    inbox = []
    net.register("b", inbox.append)
    net.set_down("b")
    net.set_up("b")
    net.send(Message(src="a", dst="b", size=10))
    sim.run()
    assert len(inbox) == 1
    assert net.is_up("b")


def test_partition_blocks_both_directions():
    sim, net = make_net()
    net.register("a", lambda m: None)
    net.register("b", lambda m: None)
    net.partition({"a"}, {"b"})
    assert not net.is_reachable("a", "b")
    assert not net.is_reachable("b", "a")
    net.send(Message(src="a", dst="b", size=10))
    net.send(Message(src="b", dst="a", size=10))
    sim.run()
    assert net.stats.total_dropped == 2
    assert net.stats.total_messages == 0


def test_partition_leaves_other_pairs_connected():
    sim, net = make_net()
    inbox = []
    net.register("a", lambda m: None)
    net.register("b", lambda m: None)
    net.register("c", inbox.append)
    net.partition({"a"}, {"b"})
    assert net.is_reachable("a", "c")
    net.send(Message(src="a", dst="c", size=10))
    sim.run()
    assert len(inbox) == 1


def test_heal_restores_connectivity():
    sim, net = make_net()
    inbox = []
    net.register("a", lambda m: None)
    net.register("b", inbox.append)
    net.partition({"a"}, {"b"})
    net.heal()
    net.send(Message(src="a", dst="b", size=10))
    sim.run()
    assert len(inbox) == 1


def test_message_lost_in_flight_when_dst_dies():
    sim, net = make_net(latency=5.0)
    inbox = []
    net.register("b", inbox.append)
    net.send(Message(src="a", dst="b", size=10))
    sim.schedule_callback(1.0, lambda: net.set_down("b"))
    sim.run()
    assert inbox == []
    assert net.stats.total_dropped == 1


def test_stats_account_messages_and_bytes_by_category():
    sim, net = make_net()
    net.register("b", lambda m: None)
    net.send(Message(src="a", dst="b", size=100, category="get"))
    net.send(Message(src="a", dst="b", size=50, category="get"))
    net.send(Message(src="a", dst="b", size=7, category="invalidate"))
    sim.run()
    assert net.stats.messages("get") == 2
    assert net.stats.bytes("get") == 150
    assert net.stats.messages("invalidate") == 1
    assert net.stats.total_messages == 3
    assert net.stats.total_bytes == 157
    assert net.stats.by_category() == {"get": 2, "invalidate": 1}
    assert net.stats.bytes_by_category() == {"get": 150, "invalidate": 7}


def test_unregister_makes_address_unknown():
    sim, net = make_net()
    net.register("b", lambda m: None)
    net.unregister("b")
    assert "b" not in net.addresses
    net.send(Message(src="a", dst="b", size=10))
    sim.run()
    assert net.stats.total_dropped == 1


def test_negative_message_size_rejected():
    with pytest.raises(ValueError):
        Message(src="a", dst="b", size=-1)


def test_message_ids_unique():
    m1 = Message(src="a", dst="b", size=1)
    m2 = Message(src="a", dst="b", size=1)
    assert m1.msg_id != m2.msg_id
