"""Integration tests for the ProxyCache node with real protocols."""


from repro.core import (
    adaptive_ttl,
    invalidation,
    lease_invalidation,
    poll_every_time,
    two_tier_lease,
)
from repro.net import FixedLatency, Network
from repro.proxy import Cache, ProxyCache
from repro.server import FileStore, ServerSite
from repro.sim import Simulator


def build(protocol, docs=None, cache_bytes=None, latency=0.001):
    sim = Simulator()
    net = Network(sim, latency=FixedLatency(latency), connect_timeout=0.5)
    fs = FileStore.from_catalog(docs or {"/a": 1000, "/b": 2000})
    server = ServerSite(sim, net, "server", fs, accel=protocol.accelerator)
    cache = Cache(
        capacity_bytes=cache_bytes, expired_first=protocol.expired_first_cache
    )
    proxy = ProxyCache(
        sim,
        net,
        "proxy-0",
        "server",
        policy=protocol.client_policy,
        cache=cache,
        oracle=lambda url: fs.get(url).last_modified,
    )
    return sim, net, fs, server, proxy


def run_request(sim, proxy, client, url):
    holder = {}

    def driver(sim):
        holder["outcome"] = yield from proxy.request(client, url)

    sim.process(driver(sim))
    sim.run()
    return holder["outcome"]


class TestMissAndHit:
    def test_first_request_is_a_miss_with_transfer(self):
        sim, net, fs, server, proxy = build(poll_every_time())
        outcome = run_request(sim, proxy, "c1", "/a")
        assert outcome.fetched and outcome.transfer
        assert not outcome.had_cached_copy
        assert not outcome.hit
        assert outcome.body_bytes == 1000
        assert outcome.latency > 0

    def test_private_caches_per_client(self):
        sim, net, fs, server, proxy = build(invalidation())
        run_request(sim, proxy, "c1", "/a")
        outcome = run_request(sim, proxy, "c2", "/a")
        # Different real client: cache miss despite shared proxy.
        assert not outcome.had_cached_copy
        assert outcome.transfer


class TestPolling:
    def test_hit_validates_and_serves_on_304(self):
        sim, net, fs, server, proxy = build(poll_every_time())
        run_request(sim, proxy, "c1", "/a")
        outcome = run_request(sim, proxy, "c1", "/a")
        assert outcome.validated
        assert outcome.status == 304
        assert outcome.served_from_cache
        assert outcome.hit
        assert not outcome.stale_served

    def test_modified_document_transfers_but_counts_hit(self):
        sim, net, fs, server, proxy = build(poll_every_time())
        run_request(sim, proxy, "c1", "/a")
        fs.modify("/a", now=sim.now + 1)
        sim.run(until=sim.now + 2)
        outcome = run_request(sim, proxy, "c1", "/a")
        assert outcome.validated
        assert outcome.status == 200
        assert outcome.transfer
        # Paper: polling hit counts include hits on stale documents.
        assert outcome.hit
        assert not outcome.stale_served  # user never saw the stale copy

    def test_never_serves_stale(self):
        sim, net, fs, server, proxy = build(poll_every_time())
        for i in range(5):
            run_request(sim, proxy, "c1", "/a")
            fs.modify("/a", now=sim.now + 1)
            sim.run(until=sim.now + 2)
            outcome = run_request(sim, proxy, "c1", "/a")
            assert not outcome.stale_served


class TestAdaptiveTtl:
    def test_fresh_serve_without_server_contact(self):
        sim, net, fs, server, proxy = build(adaptive_ttl())
        # Age the document so it earns a decent TTL.
        fs.get("/a").last_modified = -86400.0
        run_request(sim, proxy, "c1", "/a")
        outcome = run_request(sim, proxy, "c1", "/a")
        assert outcome.served_from_cache
        assert not outcome.validated
        assert outcome.hit

    def test_expired_copy_validated(self):
        prot = adaptive_ttl(factor=0.2, min_ttl=0.0)
        sim, net, fs, server, proxy = build(prot)
        fs.get("/a").last_modified = -10.0  # tiny age -> tiny TTL
        run_request(sim, proxy, "c1", "/a")
        sim.run(until=sim.now + 100.0)
        outcome = run_request(sim, proxy, "c1", "/a")
        assert outcome.validated
        assert outcome.status == 304
        assert outcome.hit  # 304-refresh counts as hit

    def test_stale_hit_detected_by_oracle(self):
        sim, net, fs, server, proxy = build(adaptive_ttl())
        fs.get("/a").last_modified = -10 * 86400.0  # old -> long TTL
        run_request(sim, proxy, "c1", "/a")
        fs.modify("/a", now=sim.now + 1)
        sim.run(until=sim.now + 2)
        outcome = run_request(sim, proxy, "c1", "/a")
        # TTL still fresh, so the stale copy is served: a stale hit.
        assert outcome.served_from_cache
        assert outcome.stale_served


class TestInvalidation:
    def test_valid_copy_served_locally(self):
        sim, net, fs, server, proxy = build(invalidation())
        run_request(sim, proxy, "c1", "/a")
        outcome = run_request(sim, proxy, "c1", "/a")
        assert outcome.served_from_cache
        assert not outcome.validated
        assert outcome.hit

    def test_invalidate_deletes_copy_and_next_request_misses(self):
        sim, net, fs, server, proxy = build(invalidation())
        run_request(sim, proxy, "c1", "/a")
        fs.modify("/a", now=sim.now + 1)
        server.check_in("/a")
        sim.run()
        assert proxy.invalidations_received == 1
        outcome = run_request(sim, proxy, "c1", "/a")
        assert not outcome.had_cached_copy
        assert outcome.transfer
        assert not outcome.stale_served

    def test_strong_consistency_no_stale_serves(self):
        sim, net, fs, server, proxy = build(invalidation())
        for i in range(5):
            run_request(sim, proxy, "c1", "/a")
            fs.modify("/a", now=sim.now + 1)
            server.check_in("/a")
            sim.run()
            outcome = run_request(sim, proxy, "c1", "/a")
            assert not outcome.stale_served

    def test_unrelated_client_copy_unaffected(self):
        sim, net, fs, server, proxy = build(invalidation())
        run_request(sim, proxy, "c1", "/a")
        run_request(sim, proxy, "c1", "/b")
        fs.modify("/a", now=sim.now + 1)
        server.check_in("/a")
        sim.run()
        outcome = run_request(sim, proxy, "c1", "/b")
        assert outcome.served_from_cache


class TestLeases:
    def test_lease_expiry_forces_validation(self):
        prot = lease_invalidation(lease_duration=5.0)
        sim, net, fs, server, proxy = build(prot)
        run_request(sim, proxy, "c1", "/a")
        outcome = run_request(sim, proxy, "c1", "/a")
        assert outcome.served_from_cache and not outcome.validated
        sim.run(until=sim.now + 10.0)  # lease lapses
        outcome = run_request(sim, proxy, "c1", "/a")
        assert outcome.validated
        assert outcome.status == 304

    def test_validation_renews_lease(self):
        prot = lease_invalidation(lease_duration=5.0)
        sim, net, fs, server, proxy = build(prot)
        run_request(sim, proxy, "c1", "/a")
        sim.run(until=sim.now + 10.0)
        run_request(sim, proxy, "c1", "/a")  # IMS renews lease
        outcome = run_request(sim, proxy, "c1", "/a")
        assert outcome.served_from_cache and not outcome.validated

    def test_two_tier_first_get_not_registered_second_is(self):
        prot = two_tier_lease(lease_duration=100.0)
        sim, net, fs, server, proxy = build(prot)
        run_request(sim, proxy, "c1", "/a")
        assert server.table.total_entries() == 0
        outcome = run_request(sim, proxy, "c1", "/a")
        # Zero GET lease: second access must validate...
        assert outcome.validated and outcome.status == 304
        # ...which registers the site with a full lease.
        assert server.table.total_entries() == 1
        # Third access is served locally under the lease.
        outcome = run_request(sim, proxy, "c1", "/a")
        assert outcome.served_from_cache and not outcome.validated

    def test_two_tier_still_strongly_consistent(self):
        prot = two_tier_lease(lease_duration=100.0)
        sim, net, fs, server, proxy = build(prot)
        run_request(sim, proxy, "c1", "/a")
        run_request(sim, proxy, "c1", "/a")  # now registered
        fs.modify("/a", now=sim.now + 1)
        server.check_in("/a")
        sim.run()
        outcome = run_request(sim, proxy, "c1", "/a")
        assert outcome.transfer
        assert not outcome.stale_served


class TestFailures:
    def test_server_down_request_fails(self):
        sim, net, fs, server, proxy = build(poll_every_time())
        server.crash()
        outcome = run_request(sim, proxy, "c1", "/a")
        assert outcome.failed
        assert proxy.failed_requests == 1

    def test_proxy_recovery_marks_questionable_and_revalidates(self):
        sim, net, fs, server, proxy = build(invalidation())
        run_request(sim, proxy, "c1", "/a")
        proxy.crash()
        flagged = proxy.recover()
        assert flagged == 1
        outcome = run_request(sim, proxy, "c1", "/a")
        assert outcome.validated  # questionable copy revalidated
        assert outcome.status == 304
        assert proxy.questionable_validations == 1

    def test_server_recovery_invalidate_by_server(self):
        sim, net, fs, server, proxy = build(invalidation())
        run_request(sim, proxy, "c1", "/a")
        run_request(sim, proxy, "c1", "/b")
        server.crash()
        fs.modify("/a", now=sim.now + 1)  # changed while server down
        server.recover()
        sim.run()
        assert proxy.server_invalidations_received == 1
        # Both copies questionable now; /a validation returns 200.
        outcome = run_request(sim, proxy, "c1", "/a")
        assert outcome.validated and outcome.status == 200
        assert not outcome.stale_served
        outcome = run_request(sim, proxy, "c1", "/b")
        assert outcome.validated and outcome.status == 304
