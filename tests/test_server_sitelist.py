"""Unit tests for site lists, the invalidation table, known-sites log."""


from repro.server import (
    ENTRY_BYTES,
    InvalidationTable,
    KnownSitesLog,
    SiteList,
)


class TestSiteList:
    def test_register_and_len(self):
        lst = SiteList()
        lst.register("c1", "proxy-0", now=0.0)
        lst.register("c2", "proxy-1", now=1.0)
        assert len(lst) == 2
        assert "c1" in lst

    def test_reregistration_refreshes_lease(self):
        lst = SiteList()
        lst.register("c1", "p", now=0.0, lease_expires=10.0)
        lst.register("c1", "p", now=5.0, lease_expires=15.0)
        assert len(lst) == 1
        assert lst.live_entries(12.0)[0].lease_expires == 15.0

    def test_live_entries_respect_leases(self):
        lst = SiteList()
        lst.register("c1", "p", now=0.0, lease_expires=10.0)
        lst.register("c2", "p", now=0.0)  # infinite lease
        assert {e.client_id for e in lst.live_entries(5.0)} == {"c1", "c2"}
        assert {e.client_id for e in lst.live_entries(11.0)} == {"c2"}

    def test_purge_expired(self):
        lst = SiteList()
        lst.register("c1", "p", now=0.0, lease_expires=10.0)
        lst.register("c2", "p", now=0.0, lease_expires=20.0)
        assert lst.purge_expired(15.0) == 1
        assert len(lst) == 1

    def test_remove(self):
        lst = SiteList()
        lst.register("c1", "p", now=0.0)
        lst.remove("c1")
        lst.remove("c1")  # idempotent
        assert len(lst) == 0

    def test_storage_accounting(self):
        lst = SiteList()
        for i in range(5):
            lst.register(f"c{i}", "p", now=0.0)
        assert lst.storage_bytes() == 5 * ENTRY_BYTES


class TestInvalidationTable:
    def test_register_and_total_entries(self):
        table = InvalidationTable()
        table.register("/a", "c1", "p", now=0.0)
        table.register("/a", "c2", "p", now=0.0)
        table.register("/b", "c1", "p", now=0.0)
        assert table.total_entries() == 3
        assert table.storage_bytes() == 3 * ENTRY_BYTES

    def test_total_entries_live_only(self):
        table = InvalidationTable()
        table.register("/a", "c1", "p", now=0.0, lease_expires=10.0)
        table.register("/a", "c2", "p", now=0.0)
        assert table.total_entries(now=20.0) == 1

    def test_note_modification_returns_live_sites(self):
        table = InvalidationTable()
        table.register("/a", "c1", "p", now=0.0, lease_expires=5.0)
        table.register("/a", "c2", "p", now=0.0, lease_expires=50.0)
        live = table.note_modification("/a", now=10.0)
        assert [e.client_id for e in live] == ["c2"]
        assert "/a" in table.modified_urls

    def test_clear_after_invalidation(self):
        table = InvalidationTable()
        table.register("/a", "c1", "p", now=0.0)
        table.note_modification("/a", now=1.0)
        table.clear_after_invalidation("/a", ["c1"])
        assert table.total_entries() == 0

    def test_modified_list_lengths_stats(self):
        table = InvalidationTable()
        for i in range(4):
            table.register("/hot", f"c{i}", "p", now=0.0)
        table.register("/cold", "c0", "p", now=0.0)
        table.note_modification("/hot", now=1.0)
        table.note_modification("/cold", now=2.0)
        avg, peak = table.modified_list_lengths()
        assert avg == 2.5
        assert peak == 4

    def test_modified_list_lengths_empty(self):
        assert InvalidationTable().modified_list_lengths() == (0.0, 0)

    def test_max_list_length(self):
        table = InvalidationTable()
        assert table.max_list_length() == 0
        table.register("/a", "c1", "p", now=0.0)
        table.register("/a", "c2", "p", now=0.0)
        table.register("/b", "c1", "p", now=0.0)
        assert table.max_list_length() == 2

    def test_purge_expired_everywhere(self):
        table = InvalidationTable()
        table.register("/a", "c1", "p", now=0.0, lease_expires=1.0)
        table.register("/b", "c2", "p", now=0.0, lease_expires=1.0)
        assert table.purge_expired(now=2.0) == 2
        assert table.total_entries() == 0


class TestKnownSitesLog:
    def test_first_sight_costs_a_disk_write(self):
        log = KnownSitesLog()
        assert log.record("c1", "p0") is True
        assert log.record("c1", "p0") is False
        assert log.record("c2", "p1") is True
        assert log.disk_writes == 2
        assert len(log) == 2
        assert "c1" in log

    def test_all_sites(self):
        log = KnownSitesLog()
        log.record("c1", "p0")
        log.record("c2", "p1")
        assert sorted(log.all_sites()) == [("c1", "p0"), ("c2", "p1")]
