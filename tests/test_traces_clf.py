"""Unit tests for the Common Log Format reader/writer."""

import io

import pytest

from repro.traces import (
    Trace,
    TraceRecord,
    format_clf_line,
    parse_clf_line,
    read_clf,
    write_clf,
)

GOOD = 'host1 - - [01/Jul/1995:00:00:01 -0400] "GET /a.html HTTP/1.0" 200 6245'


def test_parse_good_line():
    entry = parse_clf_line(GOOD)
    assert entry is not None
    assert entry.host == "host1"
    assert entry.method == "GET"
    assert entry.url == "/a.html"
    assert entry.status == 200
    assert entry.size == 6245


def test_parse_dash_size():
    entry = parse_clf_line(GOOD.replace("6245", "-"))
    assert entry.size is None


def test_parse_malformed_returns_none():
    assert parse_clf_line("garbage line") is None
    assert parse_clf_line('host - - [bad] "GET" 200') is None


def test_parse_bad_timestamp_raises():
    line = GOOD.replace("01/Jul/1995", "99/Zzz/1995")
    with pytest.raises(ValueError):
        parse_clf_line(line)


def test_timezone_offset_applied():
    east = parse_clf_line(GOOD)
    utc = parse_clf_line(GOOD.replace("-0400", "+0000"))
    assert east.timestamp - utc.timestamp == pytest.approx(4 * 3600)


def test_read_clf_filters_and_rebases():
    lines = [
        GOOD,
        'h2 - - [01/Jul/1995:00:00:11 -0400] "POST /cgi HTTP/1.0" 200 17',
        'h2 - - [01/Jul/1995:00:00:21 -0400] "GET /b.html HTTP/1.0" 404 0',
        'h2 - - [01/Jul/1995:00:00:31 -0400] "GET /b.html HTTP/1.0" 200 99',
        "malformed",
    ]
    trace = read_clf(lines, name="mini")
    assert len(trace) == 2
    assert trace.records[0].timestamp == 0.0
    assert trace.records[1].timestamp == 30.0
    assert trace.documents == {"/a.html": 6245, "/b.html": 99}


def test_read_clf_304_kept_and_largest_size_wins():
    lines = [
        GOOD,
        'h2 - - [01/Jul/1995:00:01:01 -0400] "GET /a.html HTTP/1.0" 304 0',
        'h3 - - [01/Jul/1995:00:02:01 -0400] "GET /a.html HTTP/1.0" 200 9999',
    ]
    trace = read_clf(lines)
    assert len(trace) == 3
    assert trace.documents["/a.html"] == 9999


def test_read_clf_default_size_for_bodyless():
    lines = ['h - - [01/Jul/1995:00:00:01 -0400] "GET /x HTTP/1.0" 200 -']
    trace = read_clf(lines, default_size=777)
    assert trace.documents["/x"] == 777


def test_roundtrip_write_then_read():
    trace = Trace(
        name="rt",
        records=[
            TraceRecord(timestamp=0.0, client="c1", url="/a"),
            TraceRecord(timestamp=60.0, client="c2", url="/b"),
        ],
        documents={"/a": 100, "/b": 200},
        duration=120.0,
    )
    buf = io.StringIO()
    assert write_clf(trace, buf) == 2
    back = read_clf(buf.getvalue().splitlines(), name="rt")
    assert [r.client for r in back.records] == ["c1", "c2"]
    assert [r.timestamp for r in back.records] == [0.0, 60.0]
    assert back.documents == {"/a": 100, "/b": 200}


def test_format_clf_line_shape():
    line = format_clf_line(TraceRecord(timestamp=0.0, client="c", url="/u"), size=5)
    assert parse_clf_line(line) is not None
