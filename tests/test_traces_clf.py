"""Unit tests for the Common Log Format reader/writer."""

import io

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.traces import (
    Trace,
    TraceRecord,
    format_clf_line,
    parse_clf_line,
    read_clf,
    write_clf,
)

GOOD = 'host1 - - [01/Jul/1995:00:00:01 -0400] "GET /a.html HTTP/1.0" 200 6245'


def test_parse_good_line():
    entry = parse_clf_line(GOOD)
    assert entry is not None
    assert entry.host == "host1"
    assert entry.method == "GET"
    assert entry.url == "/a.html"
    assert entry.status == 200
    assert entry.size == 6245


def test_parse_dash_size():
    entry = parse_clf_line(GOOD.replace("6245", "-"))
    assert entry.size is None


def test_parse_malformed_returns_none():
    assert parse_clf_line("garbage line") is None
    assert parse_clf_line('host - - [bad] "GET" 200') is None


def test_parse_bad_timestamp_returns_none():
    # Malformed lines must be skippable, never fatal: a bad month or an
    # out-of-range day used to raise out of parse_clf_line.
    assert parse_clf_line(GOOD.replace("01/Jul/1995", "99/Zzz/1995")) is None
    assert parse_clf_line(GOOD.replace("01/Jul/1995", "31/Feb/1995")) is None
    assert parse_clf_line(GOOD.replace(":00:00:01", ":25:00:01")) is None


def test_parse_month_case_insensitive():
    assert parse_clf_line(GOOD.replace("Jul", "JUL")).timestamp == parse_clf_line(
        GOOD
    ).timestamp
    assert parse_clf_line(GOOD.replace("Jul", "jul")) is not None
    assert parse_clf_line(GOOD.replace("Jul", "July")) is not None


def test_parse_request_without_http_version():
    entry = parse_clf_line(GOOD.replace("GET /a.html HTTP/1.0", "GET /a.html"))
    assert entry is not None
    assert entry.method == "GET"
    assert entry.url == "/a.html"


def test_parse_request_with_spaces_in_url():
    entry = parse_clf_line(
        GOOD.replace("GET /a.html HTTP/1.0", "get /my docs/a.html HTTP/1.0")
    )
    assert entry is not None
    assert entry.method == "GET"
    assert entry.url == "/my docs/a.html"


def test_parse_request_method_only_returns_none():
    assert parse_clf_line(GOOD.replace("GET /a.html HTTP/1.0", "GET")) is None
    assert parse_clf_line(GOOD.replace("GET /a.html HTTP/1.0", "")) is None


def test_parse_odd_timezone_offsets():
    # Half-hour offsets are real (e.g. the paper's SASK trace is from
    # Saskatchewan); GMT spellings appear in some archive logs.
    base = parse_clf_line(GOOD.replace("-0400", "+0000"))
    half = parse_clf_line(GOOD.replace("-0400", "+0530"))
    assert half.timestamp - base.timestamp == pytest.approx(-5.5 * 3600)
    named = parse_clf_line(GOOD.replace("-0400", "GMT"))
    assert named.timestamp == base.timestamp
    # Garbage offsets invalidate the line instead of silently mis-parsing.
    assert parse_clf_line(GOOD.replace("-0400", "0400")) is None
    assert parse_clf_line(GOOD.replace("-0400", "-04:00")) is None
    assert parse_clf_line(GOOD.replace("-0400", "+0475")) is None
    assert parse_clf_line(GOOD.replace("-0400", "elsewhere")) is None


def test_parse_combined_format_trailing_fields():
    entry = parse_clf_line(GOOD + ' "http://ref/" "Mozilla/1.0"')
    assert entry is not None
    assert entry.size == 6245


def test_timezone_offset_applied():
    east = parse_clf_line(GOOD)
    utc = parse_clf_line(GOOD.replace("-0400", "+0000"))
    assert east.timestamp - utc.timestamp == pytest.approx(4 * 3600)


def test_read_clf_filters_and_rebases():
    lines = [
        GOOD,
        'h2 - - [01/Jul/1995:00:00:11 -0400] "POST /cgi HTTP/1.0" 200 17',
        'h2 - - [01/Jul/1995:00:00:21 -0400] "GET /b.html HTTP/1.0" 404 0',
        'h2 - - [01/Jul/1995:00:00:31 -0400] "GET /b.html HTTP/1.0" 200 99',
        "malformed",
    ]
    trace = read_clf(lines, name="mini")
    assert len(trace) == 2
    assert trace.records[0].timestamp == 0.0
    assert trace.records[1].timestamp == 30.0
    assert trace.documents == {"/a.html": 6245, "/b.html": 99}


def test_read_clf_304_kept_and_largest_size_wins():
    lines = [
        GOOD,
        'h2 - - [01/Jul/1995:00:01:01 -0400] "GET /a.html HTTP/1.0" 304 0',
        'h3 - - [01/Jul/1995:00:02:01 -0400] "GET /a.html HTTP/1.0" 200 9999',
    ]
    trace = read_clf(lines)
    assert len(trace) == 3
    assert trace.documents["/a.html"] == 9999


def test_read_clf_default_size_for_bodyless():
    lines = ['h - - [01/Jul/1995:00:00:01 -0400] "GET /x HTTP/1.0" 200 -']
    trace = read_clf(lines, default_size=777)
    assert trace.documents["/x"] == 777


def test_roundtrip_write_then_read():
    trace = Trace(
        name="rt",
        records=[
            TraceRecord(timestamp=0.0, client="c1", url="/a"),
            TraceRecord(timestamp=60.0, client="c2", url="/b"),
        ],
        documents={"/a": 100, "/b": 200},
        duration=120.0,
    )
    buf = io.StringIO()
    assert write_clf(trace, buf) == 2
    back = read_clf(buf.getvalue().splitlines(), name="rt")
    assert [r.client for r in back.records] == ["c1", "c2"]
    assert [r.timestamp for r in back.records] == [0.0, 60.0]
    assert back.documents == {"/a": 100, "/b": 200}


def test_format_clf_line_shape():
    line = format_clf_line(TraceRecord(timestamp=0.0, client="c", url="/u"), size=5)
    assert parse_clf_line(line) is not None


# -- property: write_clf -> read_clf round-trips whole traces -------------

_clients = st.sampled_from(["alpha.example.com", "beta", "10.0.0.7"])
_urls = st.sampled_from(["/", "/index.html", "/img/logo.gif", "/docs/a.txt"])


@st.composite
def _traces(draw):
    # Strictly-increasing integer timestamps starting at zero: CLF has
    # one-second resolution and read_clf rebases to the first request.
    gaps = draw(st.lists(st.integers(min_value=1, max_value=3600),
                         min_size=0, max_size=20))
    times = [0]
    for gap in gaps:
        times.append(times[-1] + gap)
    records = [
        TraceRecord(timestamp=float(t), client=draw(_clients), url=draw(_urls))
        for t in times
    ]
    documents = {
        url: draw(st.integers(min_value=1, max_value=1 << 20))
        for url in {r.url for r in records}
    }
    return Trace(name="prop", records=records, documents=documents,
                 duration=times[-1] + 1.0)


@given(_traces())
def test_clf_roundtrip_property(trace):
    buf = io.StringIO()
    assert write_clf(trace, buf) == len(trace.records)
    back = read_clf(buf.getvalue().splitlines(), name=trace.name)
    assert [(r.timestamp, r.client, r.url) for r in back.records] == [
        (r.timestamp, r.client, r.url) for r in trace.records
    ]
    assert back.documents == trace.documents
    assert back.duration == trace.records[-1].timestamp + 1.0
