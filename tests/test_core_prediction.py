"""Unit tests for trace-level message prediction."""

import random


from repro.core import pair_streams, predict_message_counts
from repro.traces import Trace, TraceRecord
from repro.workload import Modification, generate_schedule


def make_trace(records, docs=None):
    return Trace(
        name="t",
        records=sorted(records),
        documents=docs or {"/a": 100, "/b": 200},
        duration=1000.0,
    )


def rec(t, client, url):
    return TraceRecord(timestamp=t, client=client, url=url)


class TestPairStreams:
    def test_groups_by_client_and_url(self):
        trace = make_trace(
            [rec(1, "c1", "/a"), rec(2, "c2", "/a"), rec(3, "c1", "/b")]
        )
        streams = pair_streams(trace, [])
        assert set(streams) == {("c1", "/a"), ("c2", "/a"), ("c1", "/b")}

    def test_modifications_merged_per_url(self):
        trace = make_trace([rec(1, "c1", "/a"), rec(10, "c1", "/a")])
        mods = [Modification(time=5.0, url="/a"), Modification(time=7.0, url="/b")]
        streams = pair_streams(trace, mods)
        assert streams[("c1", "/a")] == [(1.0, "r"), (5.0, "m"), (10.0, "r")]

    def test_tie_modification_first(self):
        trace = make_trace([rec(5, "c1", "/a")])
        mods = [Modification(time=5.0, url="/a")]
        assert streams_ops(pair_streams(trace, mods)[("c1", "/a")]) == ["m", "r"]


def streams_ops(stream):
    return [op for _, op in stream]


class TestPrediction:
    def test_polling_counts_simple(self):
        # c1 reads /a three times, one modification in between.
        trace = make_trace(
            [rec(1, "c1", "/a"), rec(10, "c1", "/a"), rec(20, "c1", "/a")]
        )
        mods = [Modification(time=5.0, url="/a")]
        pred = predict_message_counts(trace, mods, "polling")
        assert pred.pairs == 1
        # GET, then IMS->200 (modified), then IMS->304.
        assert pred.counts.gets == 1
        assert pred.counts.ims == 2
        assert pred.counts.replies_304 == 1
        assert pred.counts.file_transfers == 2

    def test_invalidation_counts_simple(self):
        trace = make_trace(
            [rec(1, "c1", "/a"), rec(10, "c1", "/a"), rec(20, "c1", "/a")]
        )
        mods = [Modification(time=5.0, url="/a")]
        pred = predict_message_counts(trace, mods, "invalidation")
        assert pred.counts.gets == 2
        assert pred.counts.invalidations == 1
        assert pred.counts.file_transfers == 2

    def test_pairs_summed_independently(self):
        trace = make_trace(
            [rec(1, "c1", "/a"), rec(2, "c2", "/a"), rec(3, "c1", "/b")]
        )
        pred = predict_message_counts(trace, [], "polling")
        assert pred.pairs == 3
        # Three cold fetches, nothing else.
        assert pred.counts.gets == 3
        assert pred.counts.ims == 0
        assert pred.counts.file_transfers == 3

    def test_strong_protocols_agree_on_transfers(self):
        rng = random.Random(9)
        records = [
            rec(rng.uniform(0, 900), f"c{rng.randrange(5)}", f"/d{rng.randrange(3)}")
            for _ in range(200)
        ]
        docs = {f"/d{i}": 100 for i in range(3)}
        trace = make_trace(records, docs=docs)
        schedule = generate_schedule(sorted(docs), 900.0, 300.0, random.Random(1))
        polling = predict_message_counts(trace, schedule, "polling")
        inval = predict_message_counts(trace, schedule, "invalidation")
        assert polling.counts.file_transfers == inval.counts.file_transfers
        assert inval.counts.control_messages <= polling.counts.control_messages

    def test_ttl_prediction_reports_stale(self):
        trace = make_trace(
            [rec(1, "c1", "/a"), rec(10, "c1", "/a")]
        )
        mods = [Modification(time=5.0, url="/a")]
        from repro.core import AdaptiveTtlPolicy

        pred = predict_message_counts(
            trace, mods, "ttl",
            ttl_policy=AdaptiveTtlPolicy(factor=1.0, min_ttl=0.0),
            initial_age=1000.0,
        )
        assert pred.counts.stale_serves == 1
        assert pred.counts.stale_hits == 1
