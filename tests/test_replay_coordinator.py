"""Unit tests for the lock-step time coordinator."""

import pytest

from repro.replay import TimeCoordinator
from repro.sim import Simulator


def test_interval_validation():
    with pytest.raises(ValueError):
        TimeCoordinator(Simulator(), interval=0)


def test_requires_participants():
    sim = Simulator()
    coord = TimeCoordinator(sim)
    proc = sim.process(coord.run(100.0))
    with pytest.raises(ValueError):
        sim.run()
    assert proc.triggered


def test_intervals_cover_duration():
    sim = Simulator()
    coord = TimeCoordinator(sim, interval=300.0)
    windows = []

    def participant(start, end):
        windows.append((start, end))
        yield sim.timeout(1.0)

    coord.register(participant)
    sim.process(coord.run(1000.0))
    sim.run()
    assert windows == [(0.0, 300.0), (300.0, 600.0), (600.0, 900.0), (900.0, 1000.0)]
    assert coord.intervals_completed == 4
    assert coord.trace_time == 1000.0


def test_barrier_waits_for_slowest_participant():
    sim = Simulator()
    coord = TimeCoordinator(sim, interval=100.0)
    starts = []

    def fast(start, end):
        starts.append(("fast", start, sim.now))
        yield sim.timeout(1.0)

    def slow(start, end):
        starts.append(("slow", start, sim.now))
        yield sim.timeout(10.0)

    coord.register(fast)
    coord.register(slow)
    sim.process(coord.run(200.0))
    sim.run()
    # Interval 2 starts only after slow finished interval 1 (wall 10.0).
    assert ("fast", 100.0, 10.0) in starts
    assert sim.now == 20.0  # two intervals, each paced by `slow`


def test_wall_clock_decoupled_from_trace_time():
    sim = Simulator()
    coord = TimeCoordinator(sim, interval=300.0)

    def quick(start, end):
        yield sim.timeout(2.0)

    coord.register(quick)
    sim.process(coord.run(3000.0))
    sim.run()
    # 10 intervals x 2s wall each: trace time 3000, wall time 20.
    assert coord.trace_time == 3000.0
    assert sim.now == pytest.approx(20.0)
