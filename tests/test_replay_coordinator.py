"""Unit tests for the lock-step time coordinator."""

import pytest

from repro.replay import CoordinatorError, TimeCoordinator
from repro.sim import Simulator


def test_interval_validation():
    with pytest.raises(ValueError):
        TimeCoordinator(Simulator(), interval=0)


def test_requires_participants():
    sim = Simulator()
    coord = TimeCoordinator(sim)
    proc = sim.process(coord.run(100.0))
    with pytest.raises(ValueError):
        sim.run()
    assert proc.triggered


def test_intervals_cover_duration():
    sim = Simulator()
    coord = TimeCoordinator(sim, interval=300.0)
    windows = []

    def participant(start, end):
        windows.append((start, end))
        yield sim.timeout(1.0)

    coord.register(participant)
    sim.process(coord.run(1000.0))
    sim.run()
    assert windows == [(0.0, 300.0), (300.0, 600.0), (600.0, 900.0), (900.0, 1000.0)]
    assert coord.intervals_completed == 4
    assert coord.trace_time == 1000.0


def test_barrier_waits_for_slowest_participant():
    sim = Simulator()
    coord = TimeCoordinator(sim, interval=100.0)
    starts = []

    def fast(start, end):
        starts.append(("fast", start, sim.now))
        yield sim.timeout(1.0)

    def slow(start, end):
        starts.append(("slow", start, sim.now))
        yield sim.timeout(10.0)

    coord.register(fast)
    coord.register(slow)
    sim.process(coord.run(200.0))
    sim.run()
    # Interval 2 starts only after slow finished interval 1 (wall 10.0).
    assert ("fast", 100.0, 10.0) in starts
    assert sim.now == 20.0  # two intervals, each paced by `slow`


def test_final_partial_interval_counts():
    """duration % interval != 0: the short tail interval still counts."""
    sim = Simulator()
    coord = TimeCoordinator(sim, interval=300.0)
    windows = []

    def participant(start, end):
        windows.append((start, end))
        yield sim.timeout(1.0)

    coord.register(participant)
    sim.process(coord.run(750.0))
    sim.run()
    assert windows == [(0.0, 300.0), (300.0, 600.0), (600.0, 750.0)]
    assert coord.intervals_completed == 3
    assert coord.trace_time == 750.0


def test_duration_shorter_than_interval():
    sim = Simulator()
    coord = TimeCoordinator(sim, interval=300.0)
    windows = []

    def participant(start, end):
        windows.append((start, end))
        yield sim.timeout(1.0)

    coord.register(participant)
    sim.process(coord.run(10.0))
    sim.run()
    assert windows == [(0.0, 10.0)]
    assert coord.intervals_completed == 1
    assert coord.trace_time == 10.0


def test_participant_failure_mid_interval():
    """A raising participant fails the run cleanly; the progress counters
    stay at the last *completed* interval."""
    sim = Simulator()
    coord = TimeCoordinator(sim, interval=100.0)

    def healthy(start, end):
        yield sim.timeout(1.0)

    def flaky(start, end):
        yield sim.timeout(0.5)
        if start >= 100.0:  # fails during the second interval
            raise RuntimeError("driver lost its trace shard")
        yield sim.timeout(0.5)

    coord.register(healthy)
    coord.register(flaky)
    proc = sim.process(coord.run(300.0))
    with pytest.raises(CoordinatorError, match=r"\[100, 200\)"):
        sim.run()
    assert proc.triggered and not proc.ok
    assert isinstance(proc.value, CoordinatorError)
    assert coord.intervals_completed == 1
    assert coord.trace_time == 100.0
    # The simulator stays usable: surviving participants drain quietly.
    sim.run()


def test_two_participants_failing_same_interval():
    """The second failure must not escape the simulator as a raw
    exception after the coordinator already aborted (regression: late
    failures were never defused)."""
    sim = Simulator()
    coord = TimeCoordinator(sim, interval=100.0)

    def fail_fast(start, end):
        yield sim.timeout(0.5)
        raise RuntimeError("first")

    def fail_slow(start, end):
        yield sim.timeout(1.0)
        raise RuntimeError("second")

    coord.register(fail_fast)
    coord.register(fail_slow)
    sim.process(coord.run(300.0))
    with pytest.raises(CoordinatorError, match="first"):
        sim.run()
    assert coord.intervals_completed == 0
    assert coord.trace_time == 0.0
    # Draining the queue hits fail_slow's failure; it must be defused.
    sim.run()


def test_interval_too_small_to_advance():
    sim = Simulator(start_time=0.0)
    coord = TimeCoordinator(sim, interval=1e-13)
    coord.trace_time = 1e16  # resume far into a huge trace
    coord.register(lambda start, end: iter(()))
    sim.process(coord.run(1e16 + 10.0))
    with pytest.raises(CoordinatorError, match="too small"):
        sim.run()


def test_wall_clock_decoupled_from_trace_time():
    sim = Simulator()
    coord = TimeCoordinator(sim, interval=300.0)

    def quick(start, end):
        yield sim.timeout(2.0)

    coord.register(quick)
    sim.process(coord.run(3000.0))
    sim.run()
    # 10 intervals x 2s wall each: trace time 3000, wall time 20.
    assert coord.trace_time == 3000.0
    assert sim.now == pytest.approx(20.0)
