"""Tests for the Section 4 failure scenarios end-to-end.

The three scenarios the paper walks through (proxy failure, server-site
failure, network partition) are at the top; the chaos extensions (cold
restarts, site-log loss, link faults, clock skew, bounded retries) are
below them.
"""

import random

import pytest

from repro.core import invalidation
from repro.failures import FailureInjector
from repro.net import FixedLatency, Network
from repro.proxy import Cache, ProxyCache
from repro.server import FileStore, ServerSite
from repro.sim import Simulator


def build(max_retries=None):
    sim = Simulator()
    net = Network(sim, latency=FixedLatency(0.001), connect_timeout=0.5)
    fs = FileStore.from_catalog({"/a": 1000, "/b": 2000})
    protocol = invalidation(retry_interval=5.0, max_retries=max_retries)
    server = ServerSite(sim, net, "server", fs, accel=protocol.accelerator)
    proxy = ProxyCache(
        sim,
        net,
        "proxy-0",
        "server",
        policy=protocol.client_policy,
        cache=Cache(),
        oracle=lambda url: fs.get(url).last_modified,
    )
    return sim, net, fs, server, proxy, FailureInjector(sim=sim, network=net)


def request(sim, proxy, client, url):
    holder = {}

    def driver(sim):
        holder["o"] = yield from proxy.request(client, url)

    sim.process(driver(sim))
    sim.run()
    return holder["o"]


class TestValidation:
    def test_recovery_must_follow_crash(self):
        sim, net, fs, server, proxy, inj = build()
        with pytest.raises(ValueError):
            inj.schedule_proxy_crash(proxy, at=10.0, recover_at=5.0)
        with pytest.raises(ValueError):
            inj.schedule_server_crash(server, at=10.0, recover_at=10.0)
        with pytest.raises(ValueError):
            inj.schedule_partition({"a"}, {"b"}, at=3.0, heal_at=3.0)


class TestProxyFailure:
    def test_missed_invalidation_handled_by_questionable_marking(self):
        """Scenario 1: proxy down during invalidation; no stale serve."""
        sim, net, fs, server, proxy, inj = build()
        request(sim, proxy, "c1", "/a")

        inj.schedule_proxy_crash(proxy, at=sim.now + 1.0, recover_at=sim.now + 100.0)
        sim.run(until=sim.now + 2.0)

        # Modify while the proxy is down; invalidation can't reach it, but
        # the reliable channel keeps retrying.
        fs.modify("/a", now=sim.now)
        server.check_in("/a")
        sim.run(until=sim.now + 200.0)

        # After recovery the entry is questionable; whether or not the
        # retried INVALIDATE already arrived, the client never sees stale
        # data.
        outcome = request(sim, proxy, "c1", "/a")
        assert not outcome.stale_served
        assert outcome.status in (200, None) or outcome.validated

    def test_recovery_marks_everything_questionable(self):
        sim, net, fs, server, proxy, inj = build()
        request(sim, proxy, "c1", "/a")
        request(sim, proxy, "c1", "/b")
        inj.schedule_proxy_crash(proxy, at=sim.now + 1.0, recover_at=sim.now + 2.0)
        sim.run(until=sim.now + 3.0)
        events = [e.kind for e in inj.log]
        assert "proxy-crash" in events
        assert any(k.startswith("proxy-recover(2") for k in events)
        outcome = request(sim, proxy, "c1", "/b")
        assert outcome.validated  # questionable -> revalidate
        assert outcome.status == 304


class TestServerFailure:
    def test_modification_during_outage_not_served_stale(self):
        """Scenario 2: server dies, document changes, server recovers."""
        sim, net, fs, server, proxy, inj = build()
        request(sim, proxy, "c1", "/a")
        inj.schedule_server_crash(server, at=sim.now + 1.0, recover_at=sim.now + 50.0)
        sim.run(until=sim.now + 2.0)
        # "Modified" while down: e.g. restored from backup with new data.
        fs.modify("/a", now=sim.now)
        sim.run(until=sim.now + 100.0)
        # Recovery fan-out marked the proxy's entries questionable.
        assert proxy.server_invalidations_received == 1
        outcome = request(sim, proxy, "c1", "/a")
        assert outcome.validated
        assert outcome.status == 200
        assert not outcome.stale_served

    def test_site_lists_rebuilt_after_crash(self):
        sim, net, fs, server, proxy, inj = build()
        request(sim, proxy, "c1", "/a")
        assert server.table.total_entries() == 1
        inj.schedule_server_crash(server, at=sim.now + 1.0, recover_at=sim.now + 2.0)
        sim.run(until=sim.now + 5.0)
        assert server.table.total_entries() == 0  # volatile state lost
        request(sim, proxy, "c1", "/a")  # questionable -> IMS re-registers
        assert server.table.total_entries() == 1


class TestPartition:
    def test_invalidation_delivered_after_heal(self):
        """Scenario 3: TCP retry carries the invalidation across a heal."""
        sim, net, fs, server, proxy, inj = build()
        request(sim, proxy, "c1", "/a")
        inj.schedule_partition(
            {"server"}, {"proxy-0"}, at=sim.now + 1.0, heal_at=sim.now + 30.0
        )
        sim.run(until=sim.now + 2.0)
        fs.modify("/a", now=sim.now)
        server.check_in("/a")
        sim.run(until=sim.now + 60.0)
        assert proxy.invalidations_received == 1
        outcome = request(sim, proxy, "c1", "/a")
        assert outcome.transfer  # fresh copy fetched after invalidation
        assert not outcome.stale_served

    def test_requests_fail_during_partition(self):
        sim, net, fs, server, proxy, inj = build()
        inj.schedule_partition(
            {"server"}, {"proxy-0"}, at=sim.now + 1.0, heal_at=sim.now + 100.0
        )
        sim.run(until=sim.now + 2.0)
        outcome = request(sim, proxy, "c2", "/a")
        assert outcome.failed

    def test_overlapping_partitions_heal_independently(self):
        sim, net, fs, server, proxy, inj = build()
        inj.schedule_partition(
            {"server"}, {"proxy-0"}, at=sim.now + 1.0, heal_at=sim.now + 50.0
        )
        inj.schedule_partition(
            {"server"}, {"proxy-0"}, at=sim.now + 2.0, heal_at=sim.now + 10.0
        )
        # After the second partition heals, the first still blocks.
        sim.run(until=sim.now + 20.0)
        assert not net.is_reachable("server", "proxy-0")
        sim.run(until=sim.now + 60.0)
        assert net.is_reachable("server", "proxy-0")


class TestColdRestart:
    def test_cold_restart_wipes_cache(self):
        sim, net, fs, server, proxy, inj = build()
        request(sim, proxy, "c1", "/a")
        request(sim, proxy, "c1", "/b")
        inj.schedule_proxy_crash(
            proxy, at=sim.now + 1.0, recover_at=sim.now + 2.0, cold=True
        )
        sim.run(until=sim.now + 3.0)
        assert any(e.kind == "proxy-recover(cold)" for e in inj.log)
        outcome = request(sim, proxy, "c1", "/a")
        assert not outcome.had_cached_copy
        assert outcome.transfer and not outcome.stale_served

    def test_warm_restart_keeps_cache(self):
        sim, net, fs, server, proxy, inj = build()
        request(sim, proxy, "c1", "/a")
        inj.schedule_proxy_crash(
            proxy, at=sim.now + 1.0, recover_at=sim.now + 2.0, cold=False
        )
        sim.run(until=sim.now + 3.0)
        outcome = request(sim, proxy, "c1", "/a")
        assert outcome.had_cached_copy
        assert outcome.validated  # questionable -> revalidate first


class TestSiteLogLoss:
    def test_roster_recovery_after_sitelog_loss(self):
        """Server loses the persistent known-sites log: recovery must
        still reach every proxy, via the operator-configured roster."""
        sim, net, fs, server, proxy, inj = build()
        server.proxy_roster = {"proxy-0"}
        request(sim, proxy, "c1", "/a")
        inj.schedule_server_crash(
            server, at=sim.now + 1.0, recover_at=sim.now + 5.0,
            lose_sitelog=True,
        )
        sim.run(until=sim.now + 10.0)
        assert any("sitelog lost" in e.kind for e in inj.log)
        assert len(server.known_sites.all_sites()) == 0
        assert proxy.server_invalidations_received == 1  # roster reached it
        outcome = request(sim, proxy, "c1", "/a")
        assert outcome.validated and not outcome.stale_served

    def test_sitelog_loss_without_roster_misses_proxies(self):
        sim, net, fs, server, proxy, inj = build()
        request(sim, proxy, "c1", "/a")
        inj.schedule_server_crash(
            server, at=sim.now + 1.0, recover_at=sim.now + 5.0,
            lose_sitelog=True,
        )
        sim.run(until=sim.now + 10.0)
        assert proxy.server_invalidations_received == 0


class TestLinkFaults:
    def test_lossy_link_retries_until_delivery(self):
        """The reliable channel carries an INVALIDATE across a lossy link."""
        sim, net, fs, server, proxy, inj = build()
        request(sim, proxy, "c1", "/a")
        inj.schedule_link_fault(
            "server", "proxy-0", at=sim.now + 1.0, until=sim.now + 40.0,
            drop_prob=0.8, rng=random.Random(5),
        )
        sim.run(until=sim.now + 2.0)
        fs.modify("/a", now=sim.now)
        server.check_in("/a")
        sim.run(until=sim.now + 120.0)
        assert proxy.invalidations_received == 1
        assert net.stats.messages_lost > 0
        assert "link fault" in net.stats.lost_by_reason()
        outcome = request(sim, proxy, "c1", "/a")
        assert not outcome.stale_served

    def test_duplicating_link_is_idempotent(self):
        sim, net, fs, server, proxy, inj = build()
        request(sim, proxy, "c1", "/a")
        inj.schedule_link_fault(
            "server", "proxy-0", at=sim.now + 1.0, until=sim.now + 40.0,
            dup_prob=1.0, rng=random.Random(5),
        )
        sim.run(until=sim.now + 2.0)
        fs.modify("/a", now=sim.now)
        server.check_in("/a")
        sim.run(until=sim.now + 60.0)
        assert net.stats.duplicates_delivered > 0
        assert proxy.invalidations_received >= 1
        outcome = request(sim, proxy, "c1", "/a")
        assert outcome.transfer and not outcome.stale_served

    def test_injector_validates_window(self):
        sim, net, fs, server, proxy, inj = build()
        with pytest.raises(ValueError):
            inj.schedule_link_fault("server", "*", at=5.0, until=5.0)


class TestClockSkew:
    def test_skew_applied_and_reset(self):
        sim, net, fs, server, proxy, inj = build()
        inj.schedule_clock_skew(proxy, at=1.0, until=10.0, skew=-25.0)
        sim.run(until=5.0)
        assert proxy.clock_skew == -25.0
        sim.run(until=15.0)
        assert proxy.clock_skew == 0.0
        kinds = [e.kind for e in inj.log]
        assert any(k.startswith("clock-skew(-25") for k in kinds)
        assert "clock-skew(reset)" in kinds

    def test_skew_harmless_for_plain_invalidation(self):
        # Infinite leases: the local clock never decides anything.
        sim, net, fs, server, proxy, inj = build()
        request(sim, proxy, "c1", "/a")
        inj.schedule_clock_skew(proxy, at=sim.now + 1.0, until=sim.now + 50.0,
                                skew=-30.0)
        sim.run(until=sim.now + 2.0)
        outcome = request(sim, proxy, "c1", "/a")
        assert outcome.served_from_cache and not outcome.stale_served


class TestBoundedRetries:
    def test_abandoned_invalidation_flushed_on_contact(self):
        """With max_retries set, an undeliverable INVALIDATE is abandoned
        (entry turns dirty) and flushed when the proxy next contacts the
        server — never forgotten."""
        sim, net, fs, server, proxy, inj = build(max_retries=2)
        request(sim, proxy, "c1", "/a")
        inj.schedule_proxy_crash(
            proxy, at=sim.now + 1.0, recover_at=sim.now + 200.0
        )
        sim.run(until=sim.now + 2.0)
        fs.modify("/a", now=sim.now)
        server.check_in("/a")
        # 3 attempts x 5s retry interval pass long before recovery.
        sim.run(until=sim.now + 100.0)
        assert server.invalidations_abandoned == 1
        sim.run(until=sim.now + 150.0)  # proxy back up
        # First contact flushes the owed INVALIDATE before the reply.
        request(sim, proxy, "c1", "/b")
        sim.run()
        assert proxy.invalidations_received == 1
        assert server.invalidations_abandoned == 1  # not re-abandoned
        outcome = request(sim, proxy, "c1", "/a")
        assert not outcome.stale_served
