"""Tests for the Section 4 failure scenarios end-to-end."""

import pytest

from repro.core import invalidation
from repro.failures import FailureInjector
from repro.net import FixedLatency, Network
from repro.proxy import Cache, ProxyCache
from repro.server import FileStore, ServerSite
from repro.sim import Simulator


def build():
    sim = Simulator()
    net = Network(sim, latency=FixedLatency(0.001), connect_timeout=0.5)
    fs = FileStore.from_catalog({"/a": 1000, "/b": 2000})
    protocol = invalidation(retry_interval=5.0)
    server = ServerSite(sim, net, "server", fs, accel=protocol.accelerator)
    proxy = ProxyCache(
        sim,
        net,
        "proxy-0",
        "server",
        policy=protocol.client_policy,
        cache=Cache(),
        oracle=lambda url: fs.get(url).last_modified,
    )
    return sim, net, fs, server, proxy, FailureInjector(sim=sim, network=net)


def request(sim, proxy, client, url):
    holder = {}

    def driver(sim):
        holder["o"] = yield from proxy.request(client, url)

    sim.process(driver(sim))
    sim.run()
    return holder["o"]


class TestValidation:
    def test_recovery_must_follow_crash(self):
        sim, net, fs, server, proxy, inj = build()
        with pytest.raises(ValueError):
            inj.schedule_proxy_crash(proxy, at=10.0, recover_at=5.0)
        with pytest.raises(ValueError):
            inj.schedule_server_crash(server, at=10.0, recover_at=10.0)
        with pytest.raises(ValueError):
            inj.schedule_partition({"a"}, {"b"}, at=3.0, heal_at=3.0)


class TestProxyFailure:
    def test_missed_invalidation_handled_by_questionable_marking(self):
        """Scenario 1: proxy down during invalidation; no stale serve."""
        sim, net, fs, server, proxy, inj = build()
        request(sim, proxy, "c1", "/a")

        inj.schedule_proxy_crash(proxy, at=sim.now + 1.0, recover_at=sim.now + 100.0)
        sim.run(until=sim.now + 2.0)

        # Modify while the proxy is down; invalidation can't reach it, but
        # the reliable channel keeps retrying.
        fs.modify("/a", now=sim.now)
        server.check_in("/a")
        sim.run(until=sim.now + 200.0)

        # After recovery the entry is questionable; whether or not the
        # retried INVALIDATE already arrived, the client never sees stale
        # data.
        outcome = request(sim, proxy, "c1", "/a")
        assert not outcome.stale_served
        assert outcome.status in (200, None) or outcome.validated

    def test_recovery_marks_everything_questionable(self):
        sim, net, fs, server, proxy, inj = build()
        request(sim, proxy, "c1", "/a")
        request(sim, proxy, "c1", "/b")
        inj.schedule_proxy_crash(proxy, at=sim.now + 1.0, recover_at=sim.now + 2.0)
        sim.run(until=sim.now + 3.0)
        events = [e.kind for e in inj.log]
        assert "proxy-crash" in events
        assert any(k.startswith("proxy-recover(2") for k in events)
        outcome = request(sim, proxy, "c1", "/b")
        assert outcome.validated  # questionable -> revalidate
        assert outcome.status == 304


class TestServerFailure:
    def test_modification_during_outage_not_served_stale(self):
        """Scenario 2: server dies, document changes, server recovers."""
        sim, net, fs, server, proxy, inj = build()
        request(sim, proxy, "c1", "/a")
        inj.schedule_server_crash(server, at=sim.now + 1.0, recover_at=sim.now + 50.0)
        sim.run(until=sim.now + 2.0)
        # "Modified" while down: e.g. restored from backup with new data.
        fs.modify("/a", now=sim.now)
        sim.run(until=sim.now + 100.0)
        # Recovery fan-out marked the proxy's entries questionable.
        assert proxy.server_invalidations_received == 1
        outcome = request(sim, proxy, "c1", "/a")
        assert outcome.validated
        assert outcome.status == 200
        assert not outcome.stale_served

    def test_site_lists_rebuilt_after_crash(self):
        sim, net, fs, server, proxy, inj = build()
        request(sim, proxy, "c1", "/a")
        assert server.table.total_entries() == 1
        inj.schedule_server_crash(server, at=sim.now + 1.0, recover_at=sim.now + 2.0)
        sim.run(until=sim.now + 5.0)
        assert server.table.total_entries() == 0  # volatile state lost
        request(sim, proxy, "c1", "/a")  # questionable -> IMS re-registers
        assert server.table.total_entries() == 1


class TestPartition:
    def test_invalidation_delivered_after_heal(self):
        """Scenario 3: TCP retry carries the invalidation across a heal."""
        sim, net, fs, server, proxy, inj = build()
        request(sim, proxy, "c1", "/a")
        inj.schedule_partition(
            {"server"}, {"proxy-0"}, at=sim.now + 1.0, heal_at=sim.now + 30.0
        )
        sim.run(until=sim.now + 2.0)
        fs.modify("/a", now=sim.now)
        server.check_in("/a")
        sim.run(until=sim.now + 60.0)
        assert proxy.invalidations_received == 1
        outcome = request(sim, proxy, "c1", "/a")
        assert outcome.transfer  # fresh copy fetched after invalidation
        assert not outcome.stale_served

    def test_requests_fail_during_partition(self):
        sim, net, fs, server, proxy, inj = build()
        inj.schedule_partition(
            {"server"}, {"proxy-0"}, at=sim.now + 1.0, heal_at=sim.now + 100.0
        )
        sim.run(until=sim.now + 2.0)
        outcome = request(sim, proxy, "c2", "/a")
        assert outcome.failed
