"""Tests for the paper-fidelity report (repro.obs.report).

The golden-file test pins the full ``RESULTS.md`` rendering for a tiny
one-trace matrix.  Regenerate after an intentional rendering change::

    REGEN_REPORT_GOLDEN=1 PYTHONPATH=src python -m pytest \
        tests/test_report.py::TestGoldenReport -q
"""

import os

import pytest

from repro.obs.report import (
    CHECK_EXPERIMENTS,
    REPORT_PROTOCOLS,
    build_manifest,
    collect_report,
    delta_pct,
    experiment_label,
    format_delta,
    load_checkpoint_results,
    render_report,
)
from repro.replay.serialize import write_checkpoint

GOLDEN_PATH = os.path.join(
    os.path.dirname(__file__), "data", "RESULTS_golden.md"
)


@pytest.fixture(scope="module")
def report_data():
    """One tiny matrix run (EPA x three protocols at scale 0.02)."""
    return collect_report(
        scale=0.02, seed=42, experiments=CHECK_EXPERIMENTS, git_sha="testsha"
    )


class TestDeltaArithmetic:
    def test_delta_pct(self):
        assert delta_pct(110.0, 100.0) == pytest.approx(10.0)
        assert delta_pct(90.0, 100.0) == pytest.approx(-10.0)
        assert delta_pct(100.0, 100.0) == pytest.approx(0.0)

    def test_delta_pct_zero_paper_value(self):
        assert delta_pct(5.0, 0.0) is None
        assert delta_pct(5.0, None) is None

    def test_format_delta(self):
        assert format_delta(110.0, 100.0) == "+10.0%"
        assert format_delta(85.0, 100.0) == "-15.0%"
        assert format_delta(5.0, 0.0) == "n/a"

    def test_experiment_label(self):
        assert experiment_label("EPA", 50.0, "polling") == "EPA-50d/polling"
        assert experiment_label("SDSC", 2.5, "ttl") == "SDSC-2.5d/ttl"


class TestManifest:
    def test_deterministic_across_same_seed_runs(self):
        # Two full collect_report calls with the same seed must agree on
        # every digest (the determinism promise RESULTS.md rests on).
        runs = [
            collect_report(
                scale=0.02,
                seed=42,
                experiments=CHECK_EXPERIMENTS,
                git_sha="pinned",
            )
            for _ in range(2)
        ]
        assert runs[0].manifest == runs[1].manifest
        assert render_report(runs[0]) == render_report(runs[1])

    def test_seed_changes_results_digest(self, report_data):
        other = collect_report(
            scale=0.02, seed=43, experiments=CHECK_EXPERIMENTS,
            git_sha="testsha",
        )
        assert (
            other.manifest["results_digest"]
            != report_data.manifest["results_digest"]
        )
        # Config digest covers (scale, seed, matrix), so it moves too.
        assert (
            other.manifest["config_digest"]
            != report_data.manifest["config_digest"]
        )

    def test_generated_only_on_request(self, report_data):
        assert "generated" not in report_data.manifest
        stamped = build_manifest(
            0.02,
            42,
            CHECK_EXPERIMENTS,
            report_data.results,
            git_sha="testsha",
            generated="2026-08-05T00:00:00",
        )
        assert stamped["generated"] == "2026-08-05T00:00:00"
        unstamped = dict(stamped)
        del unstamped["generated"]
        assert unstamped == report_data.manifest


class TestCheckpointLoading:
    def test_roundtrip_via_checkpoints(self, report_data, tmp_path):
        for index, (label, result) in enumerate(
            sorted(report_data.results.items())
        ):
            write_checkpoint(
                result, str(tmp_path / f"point-{index:04d}.json"), label=label
            )
        loaded = collect_report(
            scale=0.02,
            seed=42,
            experiments=CHECK_EXPERIMENTS,
            from_checkpoints=str(tmp_path),
            git_sha="testsha",
        )
        assert loaded.manifest == report_data.manifest
        assert render_report(loaded) == render_report(report_data)

    def test_missing_points_named(self, report_data, tmp_path):
        label = experiment_label("EPA", 50.0, REPORT_PROTOCOLS[0])
        write_checkpoint(
            report_data.results[label], str(tmp_path / "only.json"),
            label=label,
        )
        with pytest.raises(ValueError) as err:
            load_checkpoint_results(str(tmp_path), CHECK_EXPERIMENTS)
        message = str(err.value)
        assert "EPA-50d/invalidation" in message
        assert "EPA-50d/ttl" in message

    def test_non_checkpoint_files_skipped(self, report_data, tmp_path):
        (tmp_path / "BENCH_kernel.json").write_text('{"schema": 1}')
        (tmp_path / "notes.json").write_text("[]")
        for index, (label, result) in enumerate(
            sorted(report_data.results.items())
        ):
            write_checkpoint(
                result, str(tmp_path / f"p{index}.json"), label=label
            )
        loaded = load_checkpoint_results(str(tmp_path), CHECK_EXPERIMENTS)
        assert set(loaded) == set(report_data.results)


class TestGoldenReport:
    def test_matches_golden_file(self, report_data):
        text = render_report(report_data)
        if os.environ.get("REGEN_REPORT_GOLDEN"):
            os.makedirs(os.path.dirname(GOLDEN_PATH), exist_ok=True)
            with open(GOLDEN_PATH, "w") as handle:
                handle.write(text)
        with open(GOLDEN_PATH) as handle:
            golden = handle.read()
        assert text == golden, (
            "RESULTS.md rendering changed; if intentional, regenerate with "
            "REGEN_REPORT_GOLDEN=1"
        )

    def test_report_sections_present(self, report_data):
        text = render_report(report_data)
        for heading in (
            "## Run manifest",
            "## Table 1",
            "## Table 2",
            "## Tables 3–4",
            "## Table 5",
            "claims checklist",
        ):
            assert heading in text
        assert "testsha" in text
