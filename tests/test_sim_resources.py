"""Unit tests for Resource and Store."""

import pytest

from repro.sim import Resource, Simulator, Store


def test_resource_capacity_validation():
    sim = Simulator()
    with pytest.raises(ValueError):
        Resource(sim, capacity=0)


def test_resource_serialises_users():
    sim = Simulator()
    res = Resource(sim, capacity=1)
    log = []

    def user(sim, name, hold):
        with res.request() as req:
            yield req
            log.append((name, "start", sim.now))
            yield sim.timeout(hold)
            log.append((name, "end", sim.now))

    sim.process(user(sim, "a", 2.0))
    sim.process(user(sim, "b", 3.0))
    sim.run()
    assert log == [
        ("a", "start", 0.0),
        ("a", "end", 2.0),
        ("b", "start", 2.0),
        ("b", "end", 5.0),
    ]


def test_resource_parallel_capacity():
    sim = Simulator()
    res = Resource(sim, capacity=2)
    ends = []

    def user(sim):
        with res.request() as req:
            yield req
            yield sim.timeout(1.0)
            ends.append(sim.now)

    for _ in range(4):
        sim.process(user(sim))
    sim.run()
    assert ends == [1.0, 1.0, 2.0, 2.0]


def test_resource_busy_time_accounting():
    sim = Simulator()
    res = Resource(sim, capacity=1)

    def user(sim):
        with res.request() as req:
            yield req
            yield sim.timeout(3.0)

    sim.process(user(sim))
    sim.run(until=10.0)
    assert res.busy_time() == pytest.approx(3.0)


def test_resource_busy_time_counts_in_flight_use():
    sim = Simulator()
    res = Resource(sim, capacity=1)

    def user(sim):
        with res.request() as req:
            yield req
            yield sim.timeout(8.0)

    sim.process(user(sim))
    sim.run(until=4.0)
    assert res.busy_time() == pytest.approx(4.0)


def test_resource_queue_length_and_count():
    sim = Simulator()
    res = Resource(sim, capacity=1)

    def holder(sim):
        with res.request() as req:
            yield req
            yield sim.timeout(5.0)

    def waiter(sim):
        with res.request() as req:
            yield req

    sim.process(holder(sim))
    sim.process(waiter(sim))
    sim.run(until=1.0)
    assert res.count == 1
    assert res.queue_length == 1


def test_resource_release_unknown_request_is_noop():
    sim = Simulator()
    res = Resource(sim, capacity=1)
    req = res.request()
    sim.run()
    res.release(req)
    res.release(req)  # double release tolerated
    assert res.count == 0


def test_store_put_then_get():
    sim = Simulator()
    store = Store(sim)
    store.put("x")
    got = []

    def getter(sim):
        item = yield store.get()
        got.append(item)

    sim.process(getter(sim))
    sim.run()
    assert got == ["x"]


def test_store_get_blocks_until_put():
    sim = Simulator()
    store = Store(sim)
    got = []

    def getter(sim):
        item = yield store.get()
        got.append((sim.now, item))

    def putter(sim):
        yield sim.timeout(4.0)
        store.put("late")

    sim.process(getter(sim))
    sim.process(putter(sim))
    sim.run()
    assert got == [(4.0, "late")]


def test_store_fifo_ordering():
    sim = Simulator()
    store = Store(sim)
    for item in ("a", "b", "c"):
        store.put(item)
    got = []

    def getter(sim):
        for _ in range(3):
            got.append((yield store.get()))

    sim.process(getter(sim))
    sim.run()
    assert got == ["a", "b", "c"]


def test_store_multiple_getters_fifo():
    sim = Simulator()
    store = Store(sim)
    got = []

    def getter(sim, name):
        item = yield store.get()
        got.append((name, item))

    sim.process(getter(sim, "first"))
    sim.process(getter(sim, "second"))

    def putter(sim):
        yield sim.timeout(1.0)
        store.put(1)
        store.put(2)

    sim.process(putter(sim))
    sim.run()
    assert got == [("first", 1), ("second", 2)]


def test_store_try_get_and_len():
    sim = Simulator()
    store = Store(sim)
    assert store.try_get() is None
    store.put("only")
    assert len(store) == 1
    assert store.try_get() == "only"
    assert len(store) == 0


def test_store_clear():
    sim = Simulator()
    store = Store(sim)
    store.put(1)
    store.put(2)
    assert store.clear() == 2
    assert len(store) == 0
    assert store.items == ()
