"""Unit tests for the simulation kernel's event loop and events."""

import pytest

from repro.sim import Event, SimulationError, Simulator, Timeout


def test_clock_starts_at_zero():
    sim = Simulator()
    assert sim.now == 0.0


def test_clock_custom_start():
    sim = Simulator(start_time=100.0)
    assert sim.now == 100.0


def test_timeout_advances_clock():
    sim = Simulator()
    sim.timeout(5.0)
    sim.run()
    assert sim.now == 5.0


def test_run_until_advances_clock_without_events():
    sim = Simulator()
    sim.run(until=42.0)
    assert sim.now == 42.0


def test_run_until_does_not_process_later_events():
    sim = Simulator()
    fired = []
    sim.schedule_callback(10.0, lambda: fired.append(sim.now))
    sim.run(until=5.0)
    assert fired == []
    assert sim.now == 5.0
    sim.run()
    assert fired == [10.0]


def test_run_until_past_raises():
    sim = Simulator()
    sim.run(until=10.0)
    with pytest.raises(ValueError):
        sim.run(until=5.0)


def test_negative_timeout_rejected():
    sim = Simulator()
    with pytest.raises(ValueError):
        sim.timeout(-1.0)


def test_event_succeed_value():
    sim = Simulator()
    evt = sim.event()
    assert not evt.triggered
    evt.succeed(7)
    assert evt.triggered
    assert evt.value == 7
    assert evt.ok


def test_event_double_trigger_rejected():
    sim = Simulator()
    evt = sim.event()
    evt.succeed()
    with pytest.raises(SimulationError):
        evt.succeed()
    with pytest.raises(SimulationError):
        evt.fail(RuntimeError())


def test_event_value_before_trigger_raises():
    sim = Simulator()
    evt = sim.event()
    with pytest.raises(SimulationError):
        _ = evt.value


def test_fail_requires_exception():
    sim = Simulator()
    evt = sim.event()
    with pytest.raises(TypeError):
        evt.fail("not an exception")


def test_unhandled_failure_propagates_from_run():
    sim = Simulator()
    evt = sim.event()
    evt.fail(RuntimeError("boom"))
    with pytest.raises(RuntimeError, match="boom"):
        sim.run()


def test_callbacks_run_on_processing():
    sim = Simulator()
    seen = []
    evt = sim.timeout(1.0, value="v")
    evt.callbacks.append(lambda e: seen.append(e.value))
    sim.run()
    assert seen == ["v"]
    assert evt.processed


def test_same_time_events_fifo_order():
    sim = Simulator()
    order = []
    for i in range(5):
        sim.schedule_callback(1.0, (lambda i=i: order.append(i)))
    sim.run()
    assert order == [0, 1, 2, 3, 4]


def test_events_process_in_time_order():
    sim = Simulator()
    order = []
    sim.schedule_callback(3.0, lambda: order.append(3))
    sim.schedule_callback(1.0, lambda: order.append(1))
    sim.schedule_callback(2.0, lambda: order.append(2))
    sim.run()
    assert order == [1, 2, 3]


def test_peek_reports_next_event_time():
    sim = Simulator()
    assert sim.peek() == float("inf")
    sim.timeout(4.0)
    assert sim.peek() == 4.0


def test_stop_simulation_from_callback():
    sim = Simulator()
    sim.schedule_callback(1.0, sim.stop)
    fired = []
    sim.schedule_callback(2.0, lambda: fired.append(True))
    sim.run()
    assert sim.now == 1.0
    assert fired == []
    sim.run()  # can continue afterwards
    assert fired == [True]


def test_timeout_repr_mentions_delay():
    sim = Simulator()
    assert "2.5" in repr(Timeout(sim, 2.5))


def test_event_repr():
    sim = Simulator()
    assert "Event" in repr(Event(sim))


# ---------------------------------------------------------------------------
# fast-path kernel additions: trigger guard, call_later, pooling, compaction
# ---------------------------------------------------------------------------


def test_trigger_on_already_triggered_raises():
    # Regression: trigger() used to skip the already-triggered guard that
    # succeed()/fail() have, silently overwriting the first value.
    sim = Simulator()
    src = sim.event().succeed("first")
    dst = sim.event()
    dst.trigger(src)
    other = sim.event().succeed("second")
    with pytest.raises(SimulationError):
        dst.trigger(other)
    assert dst.value == "first"


def test_call_later_runs_in_time_order_with_events():
    sim = Simulator()
    order = []
    sim.call_later(2.0, order.append, "cb2")
    evt = sim.timeout(1.0, value="t1")
    evt.callbacks.append(lambda e: order.append(e.value))
    sim.call_later(3.0, order.append, "cb3")
    sim.run()
    assert order == ["t1", "cb2", "cb3"]
    assert sim.now == 3.0


def test_call_later_cancel_is_inert():
    sim = Simulator()
    fired = []
    handle = sim.call_later(1.0, fired.append, True)
    handle.cancel()
    sim.run()
    assert fired == []
    assert sim.now == 0.0  # cancelled slots never advance the clock


def test_callback_handles_are_pooled():
    sim = Simulator()
    sim.call_later(1.0, lambda: None)
    sim.run()
    first = sim.call_later(1.0, lambda: None)
    # The recycled handle is handed out again instead of a new allocation.
    assert first in sim._cb_pool or not sim._cb_pool
    sim.run()
    second = sim.call_later(1.0, lambda: None)
    assert second is first
    sim.run()


def test_sleep_events_are_pooled():
    sim = Simulator()
    seen = []

    def proc(sim):
        for _ in range(3):
            evt = sim.sleep(1.0)
            seen.append(evt)
            yield evt

    sim.process(proc(sim))
    sim.run()
    assert sim.now == 3.0
    # The process grabs its next timer while the previous one is still
    # being stepped, so recycling shows up one sleep later: the third
    # sleep reuses the first timer object.
    assert seen[2] is seen[0]


def test_sleep_matches_timeout_semantics():
    sim = Simulator()
    times = []

    def proc(sim):
        yield sim.sleep(1.5)
        times.append(sim.now)
        yield sim.timeout(0.5)
        times.append(sim.now)
        yield sim.sleep(0.0)
        times.append(sim.now)

    sim.process(proc(sim))
    sim.run()
    assert times == [1.5, 2.0, 2.0]


def test_negative_sleep_rejected():
    sim = Simulator()
    with pytest.raises(ValueError):
        sim.sleep(-0.1)


def test_negative_call_later_rejected():
    sim = Simulator()
    with pytest.raises(ValueError):
        sim.call_later(-0.1, lambda: None)


def test_cancelled_timers_queue_stays_bounded():
    # Regression: cancelled entries were only discarded when they reached
    # the queue head, so a retry loop that cancels far-future timers on
    # every iteration grew the queue without bound.  Threshold compaction
    # keeps the depth proportional to the *live* entry count.
    sim = Simulator()
    live = sim.timeout(1e9)  # one live far-future event
    max_depth = 0
    for _ in range(5000):
        handle = sim.call_later(1e6, lambda: None)
        handle.cancel()
        max_depth = max(max_depth, sim.queue_depth)
    assert max_depth < 2 * 64 + 16  # bounded by the compaction floor
    assert sim.queue_depth <= max_depth
    assert not live.processed  # compaction never dropped the live event


def test_compaction_preserves_processing_order():
    sim = Simulator()
    order = []
    keep = []
    for i in range(200):
        handle = sim.call_later(float(i), order.append, i)
        if i % 3 == 0:
            keep.append(i)
        else:
            handle.cancel()
    sim.run()
    assert order == keep


def test_far_horizon_events_fire_in_order():
    # Delays far beyond the calendar window exercise the far heap and the
    # migration path in _advance_bucket.
    sim = Simulator()
    order = []
    delays = [0.5, 10_000.0, 3.0, 250.0, 100_000.0, 64.0]
    for d in delays:
        sim.call_later(d, order.append, d)
    sim.run()
    assert order == sorted(delays)
    assert sim.now == max(delays)


def test_queue_depth_counts_pending_entries():
    sim = Simulator()
    assert sim.queue_depth == 0
    sim.timeout(1.0)
    sim.call_later(2.0, lambda: None)
    assert sim.queue_depth == 2
    sim.run()
    assert sim.queue_depth == 0
