"""Unit tests for the simulation kernel's event loop and events."""

import pytest

from repro.sim import Event, SimulationError, Simulator, Timeout


def test_clock_starts_at_zero():
    sim = Simulator()
    assert sim.now == 0.0


def test_clock_custom_start():
    sim = Simulator(start_time=100.0)
    assert sim.now == 100.0


def test_timeout_advances_clock():
    sim = Simulator()
    sim.timeout(5.0)
    sim.run()
    assert sim.now == 5.0


def test_run_until_advances_clock_without_events():
    sim = Simulator()
    sim.run(until=42.0)
    assert sim.now == 42.0


def test_run_until_does_not_process_later_events():
    sim = Simulator()
    fired = []
    sim.schedule_callback(10.0, lambda: fired.append(sim.now))
    sim.run(until=5.0)
    assert fired == []
    assert sim.now == 5.0
    sim.run()
    assert fired == [10.0]


def test_run_until_past_raises():
    sim = Simulator()
    sim.run(until=10.0)
    with pytest.raises(ValueError):
        sim.run(until=5.0)


def test_negative_timeout_rejected():
    sim = Simulator()
    with pytest.raises(ValueError):
        sim.timeout(-1.0)


def test_event_succeed_value():
    sim = Simulator()
    evt = sim.event()
    assert not evt.triggered
    evt.succeed(7)
    assert evt.triggered
    assert evt.value == 7
    assert evt.ok


def test_event_double_trigger_rejected():
    sim = Simulator()
    evt = sim.event()
    evt.succeed()
    with pytest.raises(SimulationError):
        evt.succeed()
    with pytest.raises(SimulationError):
        evt.fail(RuntimeError())


def test_event_value_before_trigger_raises():
    sim = Simulator()
    evt = sim.event()
    with pytest.raises(SimulationError):
        _ = evt.value


def test_fail_requires_exception():
    sim = Simulator()
    evt = sim.event()
    with pytest.raises(TypeError):
        evt.fail("not an exception")


def test_unhandled_failure_propagates_from_run():
    sim = Simulator()
    evt = sim.event()
    evt.fail(RuntimeError("boom"))
    with pytest.raises(RuntimeError, match="boom"):
        sim.run()


def test_callbacks_run_on_processing():
    sim = Simulator()
    seen = []
    evt = sim.timeout(1.0, value="v")
    evt.callbacks.append(lambda e: seen.append(e.value))
    sim.run()
    assert seen == ["v"]
    assert evt.processed


def test_same_time_events_fifo_order():
    sim = Simulator()
    order = []
    for i in range(5):
        sim.schedule_callback(1.0, (lambda i=i: order.append(i)))
    sim.run()
    assert order == [0, 1, 2, 3, 4]


def test_events_process_in_time_order():
    sim = Simulator()
    order = []
    sim.schedule_callback(3.0, lambda: order.append(3))
    sim.schedule_callback(1.0, lambda: order.append(1))
    sim.schedule_callback(2.0, lambda: order.append(2))
    sim.run()
    assert order == [1, 2, 3]


def test_peek_reports_next_event_time():
    sim = Simulator()
    assert sim.peek() == float("inf")
    sim.timeout(4.0)
    assert sim.peek() == 4.0


def test_stop_simulation_from_callback():
    sim = Simulator()
    sim.schedule_callback(1.0, sim.stop)
    fired = []
    sim.schedule_callback(2.0, lambda: fired.append(True))
    sim.run()
    assert sim.now == 1.0
    assert fired == []
    sim.run()  # can continue afterwards
    assert fired == [True]


def test_timeout_repr_mentions_delay():
    sim = Simulator()
    assert "2.5" in repr(Timeout(sim, 2.5))


def test_event_repr():
    sim = Simulator()
    assert "Event" in repr(Event(sim))
