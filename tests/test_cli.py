"""Tests for the command-line interface."""

import io

import pytest

from repro.cli import PROTOCOL_FACTORIES, build_parser, main


def run_cli(*argv):
    out = io.StringIO()
    code = main(list(argv), out=out)
    return code, out.getvalue()


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_protocol_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["replay", "--protocol", "bogus"])

    def test_all_protocol_factories_construct(self):
        for name, factory in PROTOCOL_FACTORIES.items():
            protocol = factory()
            assert protocol.name, name


class TestAnalyze:
    def test_paper_stream_default(self):
        code, text = run_cli("analyze")
        assert code == 0
        assert "R = 9, RI = 4" in text
        assert "polling" in text and "invalidation" in text and "ttl" in text
        assert "<= 8" in text

    def test_custom_stream(self):
        code, text = run_cli("analyze", "--stream", "r m r")
        assert code == 0
        assert "R = 2, RI = 2" in text


class TestSummarize:
    def test_profile_summary(self):
        code, text = run_cli("summarize", "--trace", "SDSC", "--scale", "0.02")
        assert code == 0
        assert "SDSC" in text

    def test_clf_summary(self, tmp_path):
        log = tmp_path / "mini.log"
        log.write_text(
            'h1 - - [01/Jul/1995:00:00:01 -0400] "GET /a HTTP/1.0" 200 100\n'
            'h2 - - [01/Jul/1995:00:00:05 -0400] "GET /a HTTP/1.0" 200 100\n'
        )
        code, text = run_cli("summarize", "--clf", str(log))
        assert code == 0
        assert "req=      2" in text or "req=" in text


class TestGenerate:
    def test_roundtrip(self, tmp_path):
        out_path = tmp_path / "trace.log"
        code, text = run_cli(
            "generate", "--trace", "SDSC", "--scale", "0.02",
            "--out", str(out_path),
        )
        assert code == 0
        assert "wrote" in text
        # The generated CLF file is readable back.
        code, text = run_cli("summarize", "--clf", str(out_path))
        assert code == 0


class TestReplay:
    def test_replay_invalidation_prints_costs(self):
        code, text = run_cli(
            "replay", "--trace", "SDSC", "--scale", "0.02",
            "--protocol", "invalidation", "--lifetime-days", "2",
        )
        assert code == 0
        assert "Total Messages" in text
        assert "Invalidation costs" in text

    def test_replay_ttl_no_costs_block(self):
        code, text = run_cli(
            "replay", "--trace", "SDSC", "--scale", "0.02",
            "--protocol", "ttl", "--lifetime-days", "2",
        )
        assert code == 0
        assert "Invalidation costs" not in text

    def test_replay_json_output(self):
        import json

        code, text = run_cli(
            "replay", "--trace", "SDSC", "--scale", "0.02",
            "--protocol", "invalidation", "--lifetime-days", "2", "--json",
        )
        assert code == 0
        data = json.loads(text)
        assert data[0]["protocol"] == "invalidation"
        assert data[0]["counters"]["violations"] == 0

    def test_replay_with_hierarchy(self):
        code, text = run_cli(
            "replay", "--trace", "SDSC", "--scale", "0.02",
            "--protocol", "invalidation", "--lifetime-days", "2",
            "--hierarchy", "2",
        )
        assert code == 0
        assert "Total Messages" in text


class TestSweep:
    def test_serial_sweep_table(self):
        code, text = run_cli(
            "sweep", "--trace", "SDSC", "--scale", "0.02",
            "--protocols", "polling,invalidation", "--lifetime-days", "2",
        )
        assert code == 0
        assert "polling" in text and "invalidation" in text
        assert "total_messages" in text

    def test_parallel_matches_serial(self, tmp_path):
        argv = (
            "sweep", "--trace", "SDSC", "--scale", "0.02",
            "--protocols", "polling,invalidation", "--lifetimes", "2,5",
            "--json",
        )
        code, serial = run_cli(*argv)
        assert code == 0
        code, parallel = run_cli(
            *argv, "--parallel", "2",
            "--checkpoint-dir", str(tmp_path / "ckpt"),
        )
        assert code == 0
        import json

        assert json.loads(parallel) == json.loads(serial)
        # Resume: same output again, straight from the checkpoints.
        code, resumed = run_cli(
            *argv, "--parallel", "2", "--resume",
            "--checkpoint-dir", str(tmp_path / "ckpt"),
        )
        assert code == 0
        assert json.loads(resumed) == json.loads(serial)

    def test_unknown_protocol_fails_cleanly(self):
        code, text = run_cli("sweep", "--protocols", "polling,bogus")
        assert code == 2
        assert "bogus" in text

    def test_resume_without_checkpoint_dir_fails_cleanly(self):
        code, text = run_cli(
            "sweep", "--trace", "SDSC", "--scale", "0.02", "--resume"
        )
        assert code == 2
        assert "checkpoint" in text


class TestTable:
    def test_table4_lists_all_trace_rows(self):
        code, text = run_cli("table", "--table", "4", "--scale", "0.02")
        assert code == 0
        assert "Trace NASA, lifetime 7 days" in text
        assert "Trace SDSC, lifetime 25 days" in text
        assert "Trace SDSC, lifetime 2.5 days" in text
        for proto in ("poll-every-time", "invalidation", "adaptive-ttl"):
            assert proto in text


class TestCompare:
    def test_compare_three_protocols(self):
        code, text = run_cli(
            "compare", "--trace", "SDSC", "--scale", "0.02",
            "--lifetime-days", "2",
        )
        assert code == 0
        for name in ("poll-every-time", "invalidation", "adaptive-ttl"):
            assert name in text
