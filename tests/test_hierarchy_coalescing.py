"""Tests for upstream request coalescing at parent proxies."""

from repro.core import invalidation
from repro.hierarchy import ParentProxy
from repro.net import FixedLatency, Network
from repro.proxy import Cache, ProxyCache
from repro.server import FileStore, ServerSite
from repro.sim import Simulator


def build():
    sim = Simulator()
    # Slow LAN so concurrent misses genuinely overlap.
    net = Network(sim, latency=FixedLatency(0.05), connect_timeout=0.5)
    fs = FileStore.from_catalog({"/a": 1000, "/b": 500})
    protocol = invalidation()
    server = ServerSite(sim, net, "server", fs, accel=protocol.accelerator)
    parent = ParentProxy(sim, net, "parent", "server")
    children = [
        ProxyCache(
            sim, net, f"child-{i}", "parent",
            policy=protocol.client_policy, cache=Cache(),
        )
        for i in range(3)
    ]
    return sim, fs, server, parent, children


def test_concurrent_misses_share_one_upstream_fetch():
    sim, fs, server, parent, children = build()
    outcomes = []

    def driver(sim, child, client):
        outcome = yield from child.request(client, "/a")
        outcomes.append(outcome)

    for i, child in enumerate(children):
        sim.process(driver(sim, child, f"c{i}"))
    sim.run()
    assert len(outcomes) == 3
    assert all(o.transfer and o.body_bytes == 1000 for o in outcomes)
    # One origin fetch; two requests coalesced onto it.
    assert server.requests_handled == 1
    assert parent.upstream_fetches == 1
    assert parent.coalesced_fetches == 2


def test_different_urls_not_coalesced():
    sim, fs, server, parent, children = build()

    def driver(sim, child, client, url):
        yield from child.request(client, url)

    sim.process(driver(sim, children[0], "c0", "/a"))
    sim.process(driver(sim, children[1], "c1", "/b"))
    sim.run()
    assert parent.upstream_fetches == 2
    assert parent.coalesced_fetches == 0


def test_sequential_requests_not_coalesced():
    sim, fs, server, parent, children = build()

    def driver(sim):
        yield from children[0].request("c0", "/a")
        # Second request hits the parent cache, no upstream fetch at all.
        yield from children[1].request("c1", "/a")

    sim.process(driver(sim))
    sim.run()
    assert parent.upstream_fetches == 1
    assert parent.coalesced_fetches == 0
    assert server.requests_handled == 1


def test_coalesced_after_invalidation_refetch():
    sim, fs, server, parent, children = build()

    def seed(sim):
        yield from children[0].request("c0", "/a")
        yield from children[1].request("c1", "/a")

    sim.process(seed(sim))
    sim.run()
    fs.modify("/a", now=sim.now)
    server.check_in("/a")
    sim.run()

    outcomes = []

    def driver(sim, child, client):
        outcome = yield from child.request(client, "/a")
        outcomes.append(outcome)

    sim.process(driver(sim, children[0], "c0"))
    sim.process(driver(sim, children[1], "c1"))
    sim.run()
    # Both were invalidated; the refetch coalesces to one origin hit.
    assert server.requests_handled == 2  # initial + one refetch
    assert all(not o.stale_served for o in outcomes)
