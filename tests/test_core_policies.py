"""Unit tests for the protocol strategy objects themselves."""

import math

import pytest

from repro.core import (
    SERVE,
    VALIDATE,
    AdaptiveTtlPolicy,
    PollEveryTimePolicy,
    adaptive_ttl,
    invalidation,
    lease_invalidation,
    poll_every_time,
    two_tier_lease,
)
from repro.core.invalidation import InvalidationPolicy
from repro.http import make_get, make_reply_200
from repro.proxy import CacheEntry


def entry(lm=0.0, fetched=0.0, expires=math.inf, lease=math.inf):
    e = CacheEntry(
        url="/a", client_id="c", size=10, last_modified=lm, fetched_at=fetched,
        expires=expires,
    )
    e.lease_expires = lease
    return e


def reply(last_modified=0.0, lease_expires=None):
    req = make_get("p", "s", "/a", client_id="c")
    return make_reply_200(req, body_bytes=10, last_modified=last_modified,
                          lease_expires=lease_expires)


class TestAdaptiveTtlPolicy:
    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            AdaptiveTtlPolicy(factor=0)
        with pytest.raises(ValueError):
            AdaptiveTtlPolicy(min_ttl=-1)
        with pytest.raises(ValueError):
            AdaptiveTtlPolicy(min_ttl=100, max_ttl=10)

    def test_ttl_proportional_to_age(self):
        policy = AdaptiveTtlPolicy(factor=0.2, min_ttl=0.0, max_ttl=1e12)
        assert policy.ttl_for_age(1000.0) == pytest.approx(200.0)

    def test_ttl_clamped(self):
        policy = AdaptiveTtlPolicy(factor=0.2, min_ttl=60.0, max_ttl=600.0)
        assert policy.ttl_for_age(1.0) == 60.0
        assert policy.ttl_for_age(1e9) == 600.0

    def test_on_fill_sets_expiry_from_age(self):
        policy = AdaptiveTtlPolicy(factor=0.5, min_ttl=0.0)
        e = entry()
        policy.on_fill(e, reply(last_modified=100.0), now=300.0)
        # age 200 -> ttl 100 -> expires at 400.
        assert e.expires == pytest.approx(400.0)

    def test_on_validated_extends_expiry(self):
        policy = AdaptiveTtlPolicy(factor=0.5, min_ttl=0.0)
        e = entry(lm=0.0)
        policy.on_validated(e, reply(last_modified=0.0), now=1000.0)
        assert e.expires == pytest.approx(1500.0)

    def test_action_follows_expiry(self):
        policy = AdaptiveTtlPolicy()
        assert policy.action(entry(expires=100.0), now=50.0) == SERVE
        assert policy.action(entry(expires=100.0), now=100.0) == VALIDATE

    def test_protocol_bundle(self):
        protocol = adaptive_ttl()
        assert protocol.expired_first_cache
        assert not protocol.strong
        assert not protocol.uses_invalidation


class TestPollEveryTimePolicy:
    def test_always_validates(self):
        policy = PollEveryTimePolicy()
        assert policy.action(entry(), now=0.0) == VALIDATE
        assert policy.action(entry(expires=1e12), now=0.0) == VALIDATE

    def test_protocol_bundle(self):
        protocol = poll_every_time()
        assert protocol.strong
        assert not protocol.uses_invalidation
        assert not protocol.expired_first_cache


class TestInvalidationPolicy:
    def test_serves_while_lease_valid(self):
        policy = InvalidationPolicy()
        assert policy.action(entry(lease=math.inf), now=1e12) == SERVE
        assert policy.action(entry(lease=100.0), now=99.0) == SERVE
        assert policy.action(entry(lease=100.0), now=101.0) == VALIDATE

    def test_lease_flags(self):
        assert not InvalidationPolicy().want_lease_get
        assert InvalidationPolicy(want_leases=True).want_lease_ims

    def test_protocol_bundles(self):
        plain = invalidation()
        assert plain.uses_invalidation
        assert plain.accelerator.blocking_send
        assert not plain.accelerator.grant_leases

        decoupled = invalidation(blocking=False)
        assert not decoupled.accelerator.blocking_send

        leased = lease_invalidation(lease_duration=3600.0)
        assert leased.accelerator.grant_leases
        assert leased.accelerator.lease_get == 3600.0
        assert leased.accelerator.lease_ims == 3600.0
        assert leased.client_policy.want_lease_get

        two_tier = two_tier_lease(lease_duration=3600.0)
        assert two_tier.accelerator.lease_get == 0.0
        assert two_tier.accelerator.lease_ims == 3600.0

    def test_lease_duration_validation(self):
        with pytest.raises(ValueError):
            lease_invalidation(lease_duration=0)
        with pytest.raises(ValueError):
            two_tier_lease(lease_duration=-1)


class TestHitDefinitions:
    """The per-protocol hit accounting of Section 5.2."""

    class FakeOutcome:
        def __init__(self, had=False, served=False):
            self.had_cached_copy = had
            self.served_from_cache = served

    def test_polling_counts_stale_hits(self):
        policy = PollEveryTimePolicy()
        # Found a (stale) copy, got a 200: still a "hit" in the paper.
        assert policy.is_hit(self.FakeOutcome(had=True, served=False))
        assert not policy.is_hit(self.FakeOutcome(had=False))

    def test_ttl_counts_served_from_cache(self):
        policy = AdaptiveTtlPolicy()
        assert policy.is_hit(self.FakeOutcome(had=True, served=True))
        assert not policy.is_hit(self.FakeOutcome(had=True, served=False))

    def test_invalidation_counts_served_from_cache(self):
        policy = InvalidationPolicy()
        assert policy.is_hit(self.FakeOutcome(had=True, served=True))
        assert not policy.is_hit(self.FakeOutcome(had=True, served=False))
