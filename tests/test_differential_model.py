"""Differential testing: analytical model vs full replay on random
workloads.

For any workload, the Section 3 per-pair state machines (summed over
pairs) must agree with the full testbed replay on the wire-level message
rows — exactly for polling up to the lock-step's intra-interval
reordering, and tightly for invalidation.  Randomizing the workload
turns this into a harness that hunts for disagreements anywhere in the
stack (trace handling, caching, protocol logic, wire accounting).
"""

import dataclasses

import pytest

from repro.core import predict_message_counts
from repro.replay import ExperimentConfig, run_experiment
from repro.sim import RngRegistry
from repro.traces import PROFILES, generate_trace
from repro.workload import generate_schedule
from repro.core import invalidation, poll_every_time


def make_workload(seed: int):
    """A small random workload derived from a jittered SDSC profile."""
    rng = RngRegistry(seed)
    jitter = rng.stream("profile-jitter")
    profile = dataclasses.replace(
        PROFILES["SDSC"].scaled(0.015),
        doc_alpha=jitter.uniform(0.5, 1.2),
        client_alpha=jitter.uniform(0.3, 0.9),
        revisit_prob=jitter.uniform(0.0, 0.6),
    )
    trace = generate_trace(profile, rng)
    lifetime = jitter.uniform(0.5, 10.0) * 86400.0
    schedule = generate_schedule(
        sorted(trace.documents),
        trace.duration,
        lifetime,
        RngRegistry(seed).stream("modifications"),
    )
    return trace, schedule, lifetime


@pytest.mark.parametrize("seed", [1, 7, 23, 99, 1234])
def test_polling_model_matches_replay(seed):
    trace, schedule, lifetime = make_workload(seed)
    predicted = predict_message_counts(trace, schedule, "polling")
    measured = run_experiment(
        ExperimentConfig(
            trace=trace,
            protocol=poll_every_time(),
            mean_lifetime=lifetime,
            proxy_cache_bytes=None,
            seed=seed,
        )
    )
    # Identical modification schedules (same seed/stream) -> agreement
    # up to intra-interval reordering at modification boundaries.
    mods = measured.files_modified
    assert predicted.counts.gets == measured.gets
    assert predicted.counts.ims == measured.ims
    assert predicted.counts.replies_304 == pytest.approx(
        measured.replies_304, abs=max(2, mods // 4)
    )
    assert predicted.counts.file_transfers == pytest.approx(
        measured.replies_200, abs=max(2, mods // 4)
    )


@pytest.mark.parametrize("seed", [5, 42, 777])
def test_invalidation_model_matches_replay(seed):
    trace, schedule, lifetime = make_workload(seed)
    predicted = predict_message_counts(trace, schedule, "invalidation")
    measured = run_experiment(
        ExperimentConfig(
            trace=trace,
            protocol=invalidation(),
            mean_lifetime=lifetime,
            proxy_cache_bytes=None,
            seed=seed,
        )
    )
    mods = measured.files_modified
    tolerance = max(3, mods // 3)
    assert predicted.counts.gets == pytest.approx(measured.gets, abs=tolerance)
    assert predicted.counts.file_transfers == pytest.approx(
        measured.replies_200, abs=tolerance
    )
    assert predicted.counts.invalidations == pytest.approx(
        measured.invalidations, abs=tolerance
    )
