"""Multi-level hierarchies: parents chaining to parents.

A :class:`ParentProxy`'s upstream is just an address, so parents compose
into deeper trees without new code: server <- top <- mid <- leaf.  These
tests pin that property (fetch path, per-level interest, invalidation
propagation down the chain, end-to-end strong consistency).
"""

from repro.core import invalidation
from repro.hierarchy import ParentProxy
from repro.net import FixedLatency, Network
from repro.proxy import Cache, ProxyCache
from repro.server import FileStore, ServerSite
from repro.sim import Simulator


def build_chain():
    sim = Simulator()
    net = Network(sim, latency=FixedLatency(0.001), connect_timeout=0.5)
    fs = FileStore.from_catalog({"/a": 1000})
    protocol = invalidation()
    server = ServerSite(sim, net, "server", fs, accel=protocol.accelerator)
    top = ParentProxy(sim, net, "top", "server")
    mid = ParentProxy(sim, net, "mid", "top")
    leaf = ProxyCache(
        sim,
        net,
        "leaf",
        "mid",
        policy=protocol.client_policy,
        cache=Cache(),
        oracle=lambda url: fs.get(url).last_modified,
    )
    return sim, fs, server, top, mid, leaf


def request(sim, proxy, client, url):
    holder = {}

    def driver(sim):
        holder["o"] = yield from proxy.request(client, url)

    sim.process(driver(sim))
    sim.run()
    return holder["o"]


def test_fetch_traverses_all_levels():
    sim, fs, server, top, mid, leaf = build_chain()
    outcome = request(sim, leaf, "c1", "/a")
    assert outcome.transfer and outcome.body_bytes == 1000
    assert mid.upstream_fetches == 1
    assert top.upstream_fetches == 1
    assert server.requests_handled == 1
    # Each level knows only its direct downstream.
    assert server.table.total_entries() == 1  # top
    assert len(top.interest.site_list("/a")) == 1  # mid
    assert len(mid.interest.site_list("/a")) == 1  # c1 via leaf


def test_second_fetch_stops_at_mid():
    sim, fs, server, top, mid, leaf = build_chain()
    request(sim, leaf, "c1", "/a")
    outcome = request(sim, leaf, "c2", "/a")
    assert outcome.transfer
    assert mid.requests_served == 2
    assert top.upstream_fetches == 1  # mid's cache absorbed the miss
    assert server.requests_handled == 1


def test_invalidation_cascades_down_the_chain():
    sim, fs, server, top, mid, leaf = build_chain()
    request(sim, leaf, "c1", "/a")
    fs.modify("/a", now=sim.now)
    server.check_in("/a")
    sim.run()
    assert server.invalidations_sent == 1  # to top
    assert top.invalidations_forwarded == 1  # to mid
    assert mid.invalidations_forwarded == 1  # to c1 at leaf
    assert leaf.invalidations_received == 1
    outcome = request(sim, leaf, "c1", "/a")
    assert outcome.transfer
    assert not outcome.stale_served
    assert not outcome.violation


def test_mid_level_crash_recovery_keeps_consistency():
    sim, fs, server, top, mid, leaf = build_chain()
    request(sim, leaf, "c1", "/a")
    mid.crash()
    fs.modify("/a", now=sim.now + 1)
    server.check_in("/a")
    sim.run(until=sim.now + 5.0)
    recovery = mid.recover()
    sim.run(until=sim.now + 120.0)  # retried invalidation + recovery fan-out
    assert recovery.processed
    outcome = request(sim, leaf, "c1", "/a")
    assert not outcome.stale_served
    assert not outcome.violation
