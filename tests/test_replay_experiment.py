"""Integration tests: full trace replays on scaled-down workloads."""

import pytest

from repro.core import (
    adaptive_ttl,
    invalidation,
    lease_invalidation,
    poll_every_time,
    two_tier_lease,
)
from repro.replay import (
    ExperimentConfig,
    format_comparison_table,
    format_invalidation_costs,
    run_experiment,
    shard_for_client,
    shard_records,
)
from repro.sim import RngRegistry
from repro.traces import PROFILES, generate_trace
from repro.workload import DAYS

SCALE = 0.03
# A 5-day lifetime on the scaled catalog yields ~22 modifications —
# enough invalidation activity to exercise every path while keeping the
# modification/request ratio in the regime the paper studies.
LIFETIME = 5 * DAYS


@pytest.fixture(scope="module")
def small_trace():
    return generate_trace(PROFILES["EPA"].scaled(SCALE), RngRegistry(seed=11))


def run(trace, protocol, **kw):
    config = ExperimentConfig(
        trace=trace, protocol=protocol, mean_lifetime=LIFETIME, **kw
    )
    return run_experiment(config)


@pytest.fixture(scope="module")
def three_results(small_trace):
    return {
        "polling": run(small_trace, poll_every_time()),
        "invalidation": run(small_trace, invalidation()),
        "ttl": run(small_trace, adaptive_ttl()),
    }


class TestSharding:
    def test_shard_stability(self):
        assert shard_for_client("client-1", 4) == shard_for_client("client-1", 4)

    def test_shard_bounds(self):
        assert all(0 <= shard_for_client(f"c{i}", 4) < 4 for i in range(100))
        with pytest.raises(ValueError):
            shard_for_client("c", 0)

    def test_shard_records_partition(self, small_trace):
        shards = shard_records(small_trace.records, 4)
        assert sum(len(s) for s in shards) == len(small_trace.records)
        for shard in shards:
            clients = {r.client for r in shard}
            for other in shards:
                if other is not shard:
                    assert clients.isdisjoint({r.client for r in other})


class TestReplayBasics:
    def test_every_request_replayed(self, small_trace, three_results):
        for result in three_results.values():
            assert result.counters.requests == len(small_trace.records)
            assert result.counters.failed == 0

    def test_modifications_applied(self, three_results):
        expected = three_results["polling"].files_modified
        assert expected > 0
        for result in three_results.values():
            assert result.files_modified == expected

    def test_wire_consistency(self, three_results):
        for result in three_results.values():
            # Every GET/IMS got exactly one reply.
            assert result.gets + result.ims == result.replies_200 + result.replies_304
            assert result.total_messages == (
                result.gets
                + result.ims
                + result.replies_200
                + result.replies_304
                + result.invalidations
            )

    def test_transfers_match_200s(self, three_results):
        for result in three_results.values():
            assert result.counters.transfers == result.replies_200

    def test_wall_time_positive_and_compressed(self, small_trace, three_results):
        for result in three_results.values():
            assert 0 < result.wall_time < small_trace.duration


class TestPaperShape:
    """The qualitative results of Section 5.2 on a scaled workload."""

    def test_strong_protocols_never_violate(self, three_results):
        # Polling validates every serve: structurally no stale data.
        assert three_results["polling"].stale_serves == 0
        assert three_results["polling"].violations == 0
        # Invalidation: never serves a copy whose invalidation was
        # delivered; reads concurrent with in-flight fan-outs are the
        # only (permitted) oracle-stale serves.
        inval = three_results["invalidation"]
        assert inval.violations == 0
        assert inval.stale_serves <= max(3, 0.01 * inval.counters.requests)

    def test_polling_sends_most_messages(self, three_results):
        polling = three_results["polling"].total_messages
        inval = three_results["invalidation"].total_messages
        ttl = three_results["ttl"].total_messages
        assert polling > inval
        assert polling > ttl

    def test_invalidation_messages_not_worse_than_ttl(self, three_results):
        # Paper: invalidation generates similar (within 6%) or fewer
        # messages than adaptive TTL.
        inval = three_results["invalidation"].total_messages
        ttl = three_results["ttl"].total_messages
        assert inval <= ttl * 1.06

    def test_message_bytes_nearly_identical(self, three_results):
        sizes = [r.message_bytes for r in three_results.values()]
        assert max(sizes) <= min(sizes) * 1.05

    def test_polling_min_latency_highest(self, three_results):
        # Contacting the server on every hit costs polling a high
        # minimum latency.
        polling_min = three_results["polling"].min_latency
        assert polling_min > three_results["invalidation"].min_latency
        assert polling_min > three_results["ttl"].min_latency

    def test_polling_highest_server_cpu(self, three_results):
        polling_cpu = three_results["polling"].cpu_utilization
        assert polling_cpu >= three_results["invalidation"].cpu_utilization
        assert polling_cpu >= three_results["ttl"].cpu_utilization

    def test_blocking_invalidation_max_latency_spike(self, three_results):
        # The accelerator blocks during fan-out: worst-case latency is
        # significantly larger than under the other approaches.
        inval = three_results["invalidation"]
        assert inval.invalidations > 0
        assert inval.max_latency > three_results["ttl"].max_latency

    def test_ttl_transfer_savings_equal_stale_intervals(self, three_results):
        # Stale hits are estimated as the polling-vs-TTL transfer gap.
        gap = (
            three_results["polling"].replies_200
            - three_results["ttl"].replies_200
        )
        assert gap >= 0
        # The gap exists only if some stale serving happened.
        if gap > 0:
            assert three_results["ttl"].stale_serves >= gap

    def test_invalidation_table_populated_only_for_invalidation(self, three_results):
        assert three_results["invalidation"].sitelist_entries > 0
        assert three_results["polling"].sitelist_entries == 0
        assert three_results["ttl"].sitelist_entries == 0

    def test_invalidation_costs_measured(self, three_results):
        inval = three_results["invalidation"]
        assert inval.invalidations_sent == inval.invalidations
        assert inval.invalidation_time_max >= inval.invalidation_time_avg > 0
        assert inval.sitelist_storage_bytes == 28 * inval.sitelist_entries


class TestDeterminism:
    def test_same_seed_same_results(self, small_trace):
        a = run(small_trace, invalidation())
        b = run(small_trace, invalidation())
        assert a.total_messages == b.total_messages
        assert a.message_bytes == b.message_bytes
        assert a.avg_latency == b.avg_latency
        assert a.wall_time == b.wall_time

    def test_different_seed_different_wall(self, small_trace):
        a = run(small_trace, invalidation(), seed=1)
        b = run(small_trace, invalidation(), seed=2)
        # Think-time jitter differs; message counts may coincide but
        # timing must not be identical.
        assert a.wall_time != b.wall_time


class TestLeaseProtocols:
    def test_lease_bounds_sitelists(self, small_trace):
        plain = run(small_trace, invalidation())
        leased = run(small_trace, lease_invalidation(lease_duration=120.0))
        # Short (wall-time) leases: expired entries are skipped at
        # modification time, so lists stay much smaller.
        assert leased.sitelist_avg_len <= plain.sitelist_avg_len

    def test_two_tier_reduces_entries_for_extra_ims(self, small_trace):
        plain = run(small_trace, invalidation())
        two_tier = run(small_trace, two_tier_lease(lease_duration=1e9))
        assert two_tier.sitelist_entries < plain.sitelist_entries
        assert two_tier.ims > plain.ims
        assert two_tier.stale_serves == 0

    def test_decoupled_send_lowers_max_latency(self, small_trace):
        blocking = run(small_trace, invalidation(blocking=True))
        decoupled = run(small_trace, invalidation(blocking=False))
        assert decoupled.max_latency < blocking.max_latency
        assert decoupled.invalidations == blocking.invalidations


class TestFormatting:
    def test_comparison_table_renders(self, three_results):
        text = format_comparison_table(list(three_results.values()))
        assert "Total Messages" in text
        assert "poll-every-time" in text
        assert "Disk RW/s" in text

    def test_invalidation_costs_table_renders(self, three_results):
        text = format_invalidation_costs([three_results["invalidation"]])
        assert "Max. SiteList" in text

    def test_empty_results_rejected(self):
        with pytest.raises(ValueError):
            format_comparison_table([])
        with pytest.raises(ValueError):
            format_invalidation_costs([])
