"""Tests for span sinks and the Observation replay hooks (repro.obs)."""

import io
import json

import pytest

from repro.core import invalidation, poll_every_time
from repro.obs import (
    MetricsRegistry,
    Observation,
    Span,
    SpanSink,
    filter_spans,
    format_timeline,
    read_spans,
)
from repro.replay import ExperimentConfig, run_experiment
from repro.replay.serialize import result_to_dict
from repro.sim import RngRegistry
from repro.traces import generate_trace, profile


class TestSpanSink:
    def test_writes_jsonl(self):
        buf = io.StringIO()
        sink = SpanSink(buf)
        assert sink.emit("request", "/a", 1.0, 2.0, action="hit")
        sink.close()
        record = json.loads(buf.getvalue())
        assert record == {
            "kind": "request", "name": "/a", "start": 1.0, "end": 2.0,
            "action": "hit",
        }

    def test_sampling_is_deterministic_and_keeps_first(self):
        def run():
            buf = io.StringIO()
            sink = SpanSink(buf, sample=0.25)
            for i in range(100):
                sink.emit("request", f"/doc/{i}", float(i), float(i) + 1)
            sink.emit("run", "whole", 0.0, 100.0)
            return buf.getvalue(), sink.total_seen, sink.total_written

        first, seen, written = run()
        second, _, _ = run()
        assert first == second
        assert seen == 101
        assert written == 26  # ceil-stride: 25% of 100 + the lone run span
        # The first span of every kind survives any sampling rate.
        names = [json.loads(line)["name"] for line in first.splitlines()]
        assert "/doc/0" in names
        assert "whole" in names

    def test_sample_validation(self):
        with pytest.raises(ValueError):
            SpanSink(io.StringIO(), sample=0.0)
        with pytest.raises(ValueError):
            SpanSink(io.StringIO(), sample=1.5)

    def test_owns_path(self, tmp_path):
        path = tmp_path / "spans.jsonl"
        sink = SpanSink(str(path))
        sink.emit("run", "x", 0.0, 1.0)
        sink.close()
        spans = list(read_spans(str(path)))
        assert len(spans) == 1
        assert spans[0].kind == "run"
        assert spans[0].duration == 1.0


class TestFilterAndFormat:
    def build(self):
        return [
            Span("request", "/a", 1.0, 2.0, {"action": "hit"}),
            Span("request", "/b", 5.0, 9.0, {"action": "miss"}),
            Span("invalidation", "/a", 6.0, 6.5, {"sites": 3}),
        ]

    def test_filter_kind(self):
        spans = filter_spans(self.build(), kind="invalidation")
        assert [s.name for s in spans] == ["/a"]

    def test_filter_contains_matches_name_and_attrs(self):
        spans = self.build()
        assert [s.name for s in filter_spans(spans, contains="/b")] == ["/b"]
        assert [
            s.name for s in filter_spans(spans, contains="action=miss")
        ] == ["/b"]

    def test_filter_window_and_duration(self):
        spans = self.build()
        assert len(filter_spans(spans, since=4.0)) == 2
        assert len(filter_spans(spans, until=4.0)) == 1
        assert len(filter_spans(spans, min_duration=1.0)) == 2

    def test_format_timeline_orders_and_limits(self):
        text = format_timeline(self.build(), limit=2)
        lines = text.splitlines()
        assert "/a" in lines[0]
        assert "more span(s)" in lines[-1]
        assert format_timeline([], limit=5) == "(no spans matched)"


def _trace():
    return generate_trace(profile("EPA").scaled(0.02), RngRegistry(seed=3))


def _config(trace, factory=invalidation, **kwargs):
    return ExperimentConfig(
        trace=trace,
        protocol=factory(),
        mean_lifetime=7 * 86400.0,
        seed=11,
        **kwargs,
    )


def _comparable(result) -> dict:
    data = result_to_dict(result)
    data.pop("wall_seconds", None)
    data.pop("timestamp", None)
    return data


class TestObservationIntegration:
    def test_observed_run_identical_to_unobserved(self):
        trace = _trace()
        plain = _comparable(run_experiment(_config(trace)))
        obs = Observation(sink=SpanSink(io.StringIO()))
        observed = _comparable(
            run_experiment(_config(trace, observation=obs))
        )
        obs.close()
        assert observed == plain

    def test_fast_slow_differential_with_observation(self):
        trace = _trace()
        outputs = {}
        for fast in (False, True):
            obs = Observation()
            outputs[fast] = _comparable(
                run_experiment(
                    _config(trace, observation=obs, fast_path=fast)
                )
            )
            obs.close()
        assert outputs[True] == outputs[False]

    def test_registry_agrees_with_result(self):
        trace = _trace()
        obs = Observation()
        result = run_experiment(_config(trace, observation=obs))
        obs.close()
        reg = obs.registry
        assert reg.total("requests", protocol="invalidation") == (
            result.total_requests
        )
        hits = reg.total(
            "requests", protocol="invalidation", action="hit"
        )
        assert hits == result.hits
        assert reg.value(
            "result_total_messages",
            protocol="invalidation",
            trace=trace.name,
        ) == result.total_messages
        # The per-category wire accounting is folded in too.
        assert reg.total("net_messages") == result.total_messages

    def test_spans_cover_every_request(self):
        trace = _trace()
        sink = SpanSink(io.StringIO())
        obs = Observation(sink=sink)
        result = run_experiment(_config(trace, observation=obs))
        obs.close()
        assert sink.counts["request"] == result.total_requests
        assert sink.counts["run"] == 1
        # One span per fan-out (a fan-out notifies several sites, so the
        # per-site invalidation message count is an upper bound).
        assert 0 < sink.counts["invalidation"] <= result.invalidations_sent
        assert sink.counts["invalidation"] == obs.registry.total(
            "invalidation_fanouts"
        )

    def test_phases_derived_not_scheduled(self):
        trace = _trace()
        buf = io.StringIO()
        obs = Observation(sink=SpanSink(buf))
        run_experiment(_config(trace, observation=obs))
        obs.close()
        buf.seek(0)
        phases = {
            span.attrs["phase"]
            for span in read_spans(buf)
            if span.kind == "request"
        }
        assert "warmup" in phases
        assert "steady" in phases

    def test_polling_run_has_no_fanouts(self):
        trace = _trace()
        obs = Observation()
        run_experiment(_config(trace, factory=poll_every_time,
                               observation=obs))
        obs.close()
        assert obs.registry.total("invalidation_fanouts") == 0

    def test_deep_mode_publishes_kernel_events(self):
        trace = _trace()
        obs = Observation(deep=True)
        plain = _comparable(run_experiment(_config(trace)))
        observed = _comparable(
            run_experiment(_config(trace, observation=obs))
        )
        obs.close()
        # Deep tracing disables the kernel fast paths but must not change
        # the simulation outcome.
        assert observed == plain
        assert obs.tracer is not None
        assert obs.tracer.total > 0
        assert obs.registry.total("sim_events") == obs.tracer.total

    def test_observation_binds_once(self):
        trace = _trace()
        obs = Observation()
        run_experiment(_config(trace, observation=obs))
        with pytest.raises(ValueError):
            run_experiment(_config(trace, observation=obs))
