"""Unit tests for the reliable (TCP + periodic retry) channel."""

import pytest

from repro.net import (
    DeliveryFailed,
    FixedLatency,
    Message,
    Network,
    ReliableChannel,
)
from repro.sim import Simulator


def test_retry_interval_must_be_positive():
    sim = Simulator()
    net = Network(sim)
    with pytest.raises(ValueError):
        ReliableChannel(net, retry_interval=0)


def test_immediate_delivery_single_attempt():
    sim = Simulator()
    net = Network(sim, latency=FixedLatency(1.0))
    net.register("b", lambda m: None)
    channel = ReliableChannel(net, retry_interval=30.0)
    reports = []

    def sender(sim):
        report = yield from channel.deliver(Message(src="a", dst="b", size=10))
        reports.append(report)

    sim.process(sender(sim))
    sim.run()
    assert reports[0].attempts == 1
    assert reports[0].delivered_at == 1.0


def test_retries_until_node_recovers():
    sim = Simulator()
    net = Network(sim, latency=FixedLatency(0.0), connect_timeout=1.0)
    inbox = []
    net.register("b", inbox.append)
    net.set_down("b")
    channel = ReliableChannel(net, retry_interval=10.0)
    reports = []

    def sender(sim):
        report = yield from channel.deliver(Message(src="a", dst="b", size=10))
        reports.append(report)

    sim.process(sender(sim))
    # Recover the destination at t=25; attempts at t=0(fail@1), 11(fail@12),
    # 22(fail@23), 33(ok).
    sim.schedule_callback(25.0, lambda: net.set_up("b"))
    sim.run()
    assert len(inbox) == 1
    assert reports[0].attempts == 4
    assert reports[0].delivered_at == pytest.approx(33.0)


def test_retry_through_partition_heal():
    sim = Simulator()
    net = Network(sim, latency=FixedLatency(0.0), connect_timeout=1.0)
    inbox = []
    net.register("a", lambda m: None)
    net.register("b", inbox.append)
    net.partition({"a"}, {"b"})
    channel = ReliableChannel(net, retry_interval=5.0)

    def sender(sim):
        yield from channel.deliver(Message(src="a", dst="b", size=10))

    sim.process(sender(sim))
    sim.schedule_callback(7.0, net.heal)
    sim.run()
    assert len(inbox) == 1


def test_max_retries_exhaustion_raises():
    sim = Simulator()
    net = Network(sim, latency=FixedLatency(0.0), connect_timeout=1.0)
    net.register("b", lambda m: None)
    net.set_down("b")
    channel = ReliableChannel(net, retry_interval=2.0, max_retries=2)
    failures = []

    def sender(sim):
        try:
            yield from channel.deliver(Message(src="a", dst="b", size=10))
        except DeliveryFailed as exc:
            failures.append(exc.attempts)

    sim.process(sender(sim))
    sim.run()
    assert failures == [3]  # initial attempt + 2 retries
