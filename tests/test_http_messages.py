"""Unit tests for the HTTP message model and wire-size accounting."""

import pytest

from repro.http import (
    CATEGORY_GET,
    CATEGORY_IMS,
    CATEGORY_INVALIDATE,
    CATEGORY_REPLY_200,
    CATEGORY_REPLY_304,
    DEFAULT_WIRE,
    NOT_MODIFIED,
    OK,
    Invalidate,
    WireCosts,
    make_get,
    make_ims,
    make_invalidate_server,
    make_invalidate_url,
    make_reply_200,
    make_reply_304,
)


def test_get_request_fields():
    req = make_get("proxy-1", "server", "/index.html", client_id="c42")
    assert req.category == CATEGORY_GET
    assert req.size == DEFAULT_WIRE.get_request
    assert req.url == "/index.html"
    assert req.client_id == "c42"
    assert not req.is_ims
    assert req.ims_timestamp is None


def test_ims_request_fields():
    req = make_ims("proxy-1", "server", "/a", client_id="c1", ims_timestamp=12.5)
    assert req.category == CATEGORY_IMS
    assert req.size == DEFAULT_WIRE.ims_request
    assert req.is_ims
    assert req.ims_timestamp == 12.5


def test_reply_200_correlates_and_sizes():
    req = make_get("p", "s", "/doc", client_id="c")
    reply = make_reply_200(req, body_bytes=5000, last_modified=99.0)
    assert reply.status == OK
    assert reply.category == CATEGORY_REPLY_200
    assert reply.src == "s" and reply.dst == "p"
    assert reply.reply_to == req.msg_id
    assert reply.size == DEFAULT_WIRE.response_header + 5000
    assert reply.body_bytes == 5000
    assert reply.last_modified == 99.0


def test_reply_304_fields():
    req = make_ims("p", "s", "/doc", client_id="c", ims_timestamp=1.0)
    reply = make_reply_304(req, last_modified=1.0)
    assert reply.status == NOT_MODIFIED
    assert reply.category == CATEGORY_REPLY_304
    assert reply.body_bytes == 0
    assert reply.size == DEFAULT_WIRE.not_modified_reply


def test_lease_expiry_carried_on_replies():
    req = make_get("p", "s", "/doc", client_id="c", want_lease=True)
    assert req.want_lease
    reply = make_reply_200(req, body_bytes=10, last_modified=0.0, lease_expires=500.0)
    assert reply.lease_expires == 500.0


def test_invalidate_by_url():
    inv = make_invalidate_url("server", "proxy-1", "/doc", client_id="c9")
    assert inv.category == CATEGORY_INVALIDATE
    assert inv.url == "/doc"
    assert inv.server is None
    assert inv.client_id == "c9"
    assert inv.size == DEFAULT_WIRE.invalidate


def test_invalidate_by_server():
    inv = make_invalidate_server("server", "proxy-1", server="server")
    assert inv.url is None
    assert inv.server == "server"


def test_invalidate_requires_exactly_one_target():
    with pytest.raises(ValueError):
        Invalidate(src="s", dst="p", size=10)
    with pytest.raises(ValueError):
        Invalidate(src="s", dst="p", size=10, url="/x", server="s")


def test_wire_costs_validation():
    with pytest.raises(ValueError):
        WireCosts(get_request=-1)


def test_custom_wire_costs_flow_through():
    wire = WireCosts(get_request=111, response_header=5)
    req = make_get("p", "s", "/d", client_id="c", wire=wire)
    assert req.size == 111
    reply = make_reply_200(req, body_bytes=20, last_modified=0.0, wire=wire)
    assert reply.size == 25
