"""Tests for the :mod:`repro.api` facade.

The facade is the one front door for building protocols and running
experiments: a name registry with did-you-mean validation, config
validation before any simulation work starts, and deprecation shims
that keep the old import paths alive (warning once per process).
"""

import warnings

import pytest

import repro
import repro.api as api
import repro.cli
from repro.api import (
    MIGRATIONS,
    PROTOCOLS,
    build_protocol,
    protocol_names,
    run_experiment,
    run_sweep,
)
from repro.core import Protocol
from repro.replay.experiment import ExperimentConfig
from repro.sim import RngRegistry
from repro.traces import generate_trace, profile


# -- registry round-trip ---------------------------------------------------


@pytest.mark.parametrize("name", sorted(PROTOCOLS))
def test_every_registered_name_builds(name):
    protocol = build_protocol(name)
    assert isinstance(protocol, Protocol)
    assert protocol.accelerator is not None
    assert protocol.client_policy is not None


def test_protocol_names_sorted_and_complete():
    names = protocol_names()
    assert names == sorted(PROTOCOLS)
    for expected in ("invalidation", "polling", "ttl", "lease", "two-tier"):
        assert expected in names


def test_build_protocol_forwards_options():
    default = build_protocol("lease")
    short = build_protocol("lease", lease_duration=30.0)
    assert short.accelerator.lease_get == 30.0
    assert short.accelerator.lease_get != default.accelerator.lease_get


# -- did-you-mean errors ---------------------------------------------------


def test_unknown_protocol_suggests_closest():
    with pytest.raises(ValueError, match="did you mean 'invalidation'"):
        build_protocol("invalidatoin")


def test_unknown_protocol_lists_choices_when_no_match():
    with pytest.raises(ValueError, match="choose from"):
        build_protocol("zzzz")


def test_unknown_option_suggests_closest():
    with pytest.raises(ValueError, match="did you mean 'retry_interval'"):
        build_protocol("invalidation", retry_intervall=10.0)


def test_option_on_optionless_protocol_errors():
    with pytest.raises(ValueError, match="takes no options"):
        build_protocol("polling", retry_interval=10.0)


# -- config validation through the facade ----------------------------------


def _tiny_config(**overrides):
    trace = generate_trace(profile("EPA").scaled(0.005), RngRegistry(seed=5))
    return ExperimentConfig(
        trace=trace,
        protocol=build_protocol("invalidation"),
        mean_lifetime=7 * 86400.0,
        seed=5,
        **overrides,
    )


def test_run_experiment_validates_and_runs():
    result = run_experiment(_tiny_config())
    assert result.counters.requests > 0
    assert result.counters.violations == 0


def test_run_sweep_runs_points():
    base = _tiny_config()
    swept = run_sweep(base, [("a", {"seed": 5}), ("b", {"seed": 6})])
    assert [item.label for item in swept] == ["a", "b"]
    assert all(item.result.counters.requests > 0 for item in swept)


def test_validate_rejects_detection_typo():
    with pytest.raises(ValueError, match="did you mean 'notify'"):
        _tiny_config(detection="notfy")


def test_validate_rejects_batching_without_shards():
    with pytest.raises(ValueError, match="requires shards > 1"):
        _tiny_config(batch_window=1.0)


def test_validate_rejects_bad_shard_count():
    with pytest.raises(ValueError, match="shards must be at least 1"):
        _tiny_config(shards=0)


def test_validate_rejects_cluster_with_hierarchy():
    with pytest.raises(ValueError, match="hierarchy_parents"):
        _tiny_config(shards=2, hierarchy_parents=1)


def test_validate_rejects_cluster_with_adaptive_lease():
    trace = generate_trace(profile("EPA").scaled(0.005), RngRegistry(seed=5))
    with pytest.raises(ValueError, match="adaptive-lease"):
        ExperimentConfig(
            trace=trace,
            protocol=build_protocol("adaptive-lease"),
            mean_lifetime=7 * 86400.0,
            seed=5,
            shards=2,
        )


# -- deprecation shims -----------------------------------------------------


def test_cli_factories_shim_warns_once():
    repro.cli._warned_factories = False  # other tests may have tripped it
    try:
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            registry = repro.cli.PROTOCOL_FACTORIES
            again = repro.cli.PROTOCOL_FACTORIES
        assert registry is PROTOCOLS
        assert again is PROTOCOLS
        deprecations = [
            w for w in caught if issubclass(w.category, DeprecationWarning)
        ]
        assert len(deprecations) == 1
        assert "repro.api" in str(deprecations[0].message)
    finally:
        repro.cli._warned_factories = True


def test_cli_shim_unknown_attribute_still_raises():
    with pytest.raises(AttributeError):
        repro.cli.NO_SUCH_NAME


# -- package surface -------------------------------------------------------


def test_facade_exported_from_package_root():
    assert repro.build_protocol is build_protocol
    assert repro.PROTOCOLS is PROTOCOLS
    assert repro.run_experiment is run_experiment
    assert repro.run_sweep is run_sweep


def test_migration_table_is_accurate():
    assert MIGRATIONS
    for old, new in MIGRATIONS:
        assert "repro." in old
        # Every "new" column names a real facade attribute.
        attr = new.split("repro.api.", 1)[1].split("(")[0]
        assert hasattr(api, attr)
