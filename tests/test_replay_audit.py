"""Tests for the post-run invariant audit."""

import dataclasses

import pytest

from repro.core import adaptive_ttl, invalidation, poll_every_time, two_tier_lease
from repro.replay import (
    AuditError,
    ExperimentConfig,
    audit_result,
    run_experiment,
)
from repro.sim import RngRegistry
from repro.traces import PROFILES, generate_trace
from repro.workload import DAYS


@pytest.fixture(scope="module")
def small_trace():
    return generate_trace(PROFILES["SDSC"].scaled(0.03), RngRegistry(seed=5))


@pytest.mark.parametrize(
    "factory",
    [poll_every_time, invalidation, adaptive_ttl, two_tier_lease],
    ids=["polling", "invalidation", "ttl", "two-tier"],
)
def test_all_protocol_replays_audit_clean(small_trace, factory):
    result = run_experiment(
        ExperimentConfig(
            trace=small_trace, protocol=factory(), mean_lifetime=3 * DAYS
        )
    )
    checks = audit_result(result)
    assert "zero-violations" in checks
    assert "one-reply-per-request" in checks


def test_hierarchical_replay_audits_with_flag(small_trace):
    result = run_experiment(
        ExperimentConfig(
            trace=small_trace,
            protocol=invalidation(),
            mean_lifetime=3 * DAYS,
            hierarchy_parents=2,
        )
    )
    checks = audit_result(result, hierarchical=True)
    # Hop-exact checks skipped for hierarchies.
    assert "one-reply-per-request" not in checks
    assert "zero-violations" in checks


def test_audit_detects_tampering(small_trace):
    result = run_experiment(
        ExperimentConfig(
            trace=small_trace, protocol=poll_every_time(), mean_lifetime=3 * DAYS
        )
    )
    broken = dataclasses.replace(result, replies_200=result.replies_200 + 1)
    with pytest.raises(AuditError):
        audit_result(broken)


def test_audit_detects_violation_count(small_trace):
    result = run_experiment(
        ExperimentConfig(
            trace=small_trace, protocol=invalidation(), mean_lifetime=3 * DAYS
        )
    )
    result.counters.violations = 1
    with pytest.raises(AuditError, match="zero-violations"):
        audit_result(result)
