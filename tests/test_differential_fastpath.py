"""Differential property tests: fast path == slow path, bit for bit.

The fast-path kernel (pooled ``Callback`` entries, ``wait=False`` network
sends, the proxy's ``request_fast`` route) is a pure performance
optimisation: with ``ExperimentConfig.fast_path=False`` every request
flows through the original generator/Event machinery.  These tests prove
the two modes produce *identical* experiment results — message counts,
hit ratios, stale serves, violations and the full latency histogram —
for every protocol family, across randomly drawn seeds.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

import pytest

from repro.core.adaptive_ttl import adaptive_ttl
from repro.core.invalidation import invalidation
from repro.core.leases import lease_invalidation, two_tier_lease
from repro.core.polling import poll_every_time
from repro.replay.experiment import ExperimentConfig, run_experiment
from repro.replay.serialize import result_to_dict
from repro.sim import RngRegistry
from repro.traces import generate_trace, profile

PROTOCOLS = [
    adaptive_ttl,
    poll_every_time,
    invalidation,
    lease_invalidation,
    two_tier_lease,
]

_TRACES = {}


def _trace(trace_seed: int):
    if trace_seed not in _TRACES:
        _TRACES[trace_seed] = generate_trace(
            profile("EPA").scaled(0.02), RngRegistry(seed=trace_seed)
        )
    return _TRACES[trace_seed]


def _replay(factory, seed: int, trace_seed: int, fast: bool) -> dict:
    config = ExperimentConfig(
        trace=_trace(trace_seed),
        protocol=factory(),
        mean_lifetime=7 * 86400.0,
        seed=seed,
        fast_path=fast,
    )
    return result_to_dict(run_experiment(config))


def _comparable(data: dict) -> dict:
    # Everything in the serialized result is deterministic simulation
    # output except wall-clock provenance.
    data.pop("wall_seconds", None)
    data.pop("timestamp", None)
    return data


@pytest.mark.parametrize("factory", PROTOCOLS, ids=lambda f: f.__name__)
def test_fast_path_identical_per_protocol(factory):
    slow = _comparable(_replay(factory, seed=11, trace_seed=3, fast=False))
    fast = _comparable(_replay(factory, seed=11, trace_seed=3, fast=True))
    assert fast == slow


@settings(max_examples=5, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=2**16),
    proto_idx=st.integers(min_value=0, max_value=len(PROTOCOLS) - 1),
)
def test_fast_path_identical_random_seeds(seed, proto_idx):
    factory = PROTOCOLS[proto_idx]
    slow = _comparable(_replay(factory, seed=seed, trace_seed=3, fast=False))
    fast = _comparable(_replay(factory, seed=seed, trace_seed=3, fast=True))
    assert fast == slow


def test_fast_path_hit_latency_histogram_matches():
    # The latency histogram is the most sensitive aggregate: a single
    # request completing at a different simulated time shifts it.
    slow = _replay(invalidation, seed=42, trace_seed=7, fast=False)
    fast = _replay(invalidation, seed=42, trace_seed=7, fast=True)
    assert fast["latency"] == slow["latency"]
    assert fast["counters"] == slow["counters"]
    assert fast["staleness"] == slow["staleness"]


def test_fast_path_actually_engaged():
    # Guard against the differential test passing vacuously because the
    # fast route silently fell back to the general path.
    from repro.proxy.proxy import ProxyCache

    calls = {"fast": 0}
    original = ProxyCache.request_fast

    def counting(self, *args, **kwargs):
        calls["fast"] += 1
        return original(self, *args, **kwargs)

    ProxyCache.request_fast = counting
    try:
        result = _replay(invalidation, seed=11, trace_seed=3, fast=True)
    finally:
        ProxyCache.request_fast = original
    assert calls["fast"] == result["counters"]["requests"]
    assert calls["fast"] > 0
