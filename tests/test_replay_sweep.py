"""Tests for the parameter-sweep utilities."""

import pytest

from repro.core import invalidation, poll_every_time
from repro.replay import (
    ExperimentConfig,
    SweepPointError,
    derive_point_seed,
    point_config,
    sweep,
    sweep_table,
)
from repro.sim import RngRegistry
from repro.traces import PROFILES, generate_trace
from repro.workload import DAYS


@pytest.fixture(scope="module")
def base_config():
    trace = generate_trace(PROFILES["SDSC"].scaled(0.02), RngRegistry(seed=8))
    return ExperimentConfig(
        trace=trace, protocol=invalidation(), mean_lifetime=3 * DAYS
    )


def test_sweep_runs_each_point(base_config):
    results = sweep(
        base_config,
        [
            ("invalidation", {}),
            ("polling", {"protocol": poll_every_time()}),
        ],
    )
    assert [r.label for r in results] == ["invalidation", "polling"]
    assert results[0].result.protocol == "invalidation"
    assert results[1].result.protocol == "poll-every-time"
    assert results[1].result.total_messages > results[0].result.total_messages


def test_sweep_overrides_config_fields(base_config):
    results = sweep(
        base_config,
        [("tiny-cache", {"proxy_cache_bytes": 1 << 20})],
    )
    assert results[0].config.proxy_cache_bytes == 1 << 20


def test_sweep_runner_injection(base_config):
    calls = []

    def fake_runner(config):
        calls.append(config)
        from repro.replay import ExperimentResult

        return ExperimentResult(
            protocol=config.protocol.name,
            trace_name="t",
            mean_lifetime=config.mean_lifetime,
            total_requests=0,
            files_modified=0,
        )

    results = sweep(base_config, [("a", {}), ("b", {})], runner=fake_runner)
    assert len(calls) == 2
    assert len(results) == 2


def test_sweep_table_formatting(base_config):
    results = sweep(
        base_config,
        [
            ("invalidation", {}),
            ("polling", {"protocol": poll_every_time()}),
        ],
    )
    table = sweep_table(results, ["total_messages", "avg_latency"])
    assert "total_messages" in table
    assert "invalidation" in table and "polling" in table
    assert len(table.splitlines()) == 3


def test_sweep_table_empty_rejected():
    with pytest.raises(ValueError):
        sweep_table([], ["total_messages"])


def test_unknown_override_names_the_point(base_config):
    """Satellite: a typo'd config field must fail with the sweep point's
    label, not a bare dataclasses.replace TypeError."""
    with pytest.raises(SweepPointError) as excinfo:
        sweep(base_config, [("ok", {}), ("typo", {"proxy_cache_byte": 1})])
    message = str(excinfo.value)
    assert "'typo'" in message
    assert "proxy_cache_byte" in message
    assert "proxy_cache_bytes" in message  # valid fields are listed
    assert excinfo.value.label == "typo"


def test_unknown_override_fails_before_any_run(base_config):
    calls = []

    def recording_runner(config):
        calls.append(config)

    with pytest.raises(SweepPointError):
        sweep(
            base_config,
            [("ok", {}), ("bad", {"nope": 1})],
            runner=recording_runner,
        )
    # The serial loop validates the bad point before running it, so at
    # most the points preceding it have executed.
    assert len(calls) <= 1


def test_point_config_applies_overrides(base_config):
    config = point_config(base_config, "p", {"seed": 99})
    assert config.seed == 99
    assert config.trace is base_config.trace


def test_derive_seeds_stable_and_label_dependent(base_config):
    a = derive_point_seed(42, "point-a")
    assert a == derive_point_seed(42, "point-a")  # stable across calls
    assert a != derive_point_seed(42, "point-b")
    assert a != derive_point_seed(43, "point-a")
    config = point_config(base_config, "point-a", {}, derive_seeds=True)
    assert config.seed == a
    # An explicit seed override always wins over derivation.
    pinned = point_config(base_config, "point-a", {"seed": 5}, derive_seeds=True)
    assert pinned.seed == 5
