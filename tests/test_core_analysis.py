"""Tests for the Table 1 analytical message model."""

import random

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core import (
    AdaptiveTtlPolicy,
    simulate_stream,
    symbolic_counts,
    timed_stream_from_ops,
)
from repro.workload import count_r_ri, parse_stream

PAPER_STREAM = "r r r m m m r r m r r r m m r"


class TestSymbolic:
    def test_polling_formulas(self):
        c = symbolic_counts("polling", reads=9, intervals=4)
        assert c.gets == 0
        assert c.ims == 9
        assert c.replies_304 == 5  # R - RI
        assert c.invalidations == 0
        assert c.file_transfers == 4  # RI
        assert c.control_messages == 2 * 9 - 4  # 2R - RI

    def test_invalidation_formulas(self):
        c = symbolic_counts("invalidation", reads=9, intervals=4)
        assert c.gets == 4
        assert c.ims == 0
        assert c.invalidations == 4
        assert c.file_transfers == 4
        assert c.control_messages == 2 * 4  # 2 RI

    def test_ttl_formulas(self):
        c = symbolic_counts(
            "ttl", reads=9, intervals=4, ttl_missed=3, ttl_missed_new_doc=2,
            stale_hits=1,
        )
        assert c.ims == 3
        assert c.replies_304 == 1
        assert c.file_transfers == 3  # RI - stale hits
        assert c.control_messages == 2 * 3 - 2

    def test_validation(self):
        with pytest.raises(ValueError):
            symbolic_counts("polling", reads=2, intervals=5)
        with pytest.raises(ValueError):
            symbolic_counts("ttl", reads=5, intervals=2, ttl_missed=1,
                            ttl_missed_new_doc=2)
        with pytest.raises(ValueError):
            symbolic_counts("bogus", reads=1, intervals=1)

    def test_invalidation_control_at_most_twice_minimum(self):
        # Section 3: invalidation incurs at most twice the minimum (RI).
        for r, ri in [(10, 3), (50, 50), (7, 1)]:
            c = symbolic_counts("invalidation", reads=r, intervals=ri)
            assert c.control_messages == 2 * ri


class TestSimulatedStream:
    def test_paper_example_polling(self):
        ops = parse_stream(PAPER_STREAM)
        counts = count_r_ri(ops)
        sim = simulate_stream(timed_stream_from_ops(ops), "polling")
        # Exact simulation: first access is a GET, not an IMS.
        assert sim.gets == 1
        assert sim.ims == counts.reads - 1
        assert sim.file_transfers == counts.intervals
        assert sim.replies_304 == counts.reads - counts.intervals
        assert sim.total_messages == symbolic_counts(
            "polling", counts.reads, counts.intervals
        ).total_messages + 0  # GET/IMS swap keeps totals equal

    def test_paper_example_invalidation(self):
        ops = parse_stream(PAPER_STREAM)
        counts = count_r_ri(ops)
        sim = simulate_stream(timed_stream_from_ops(ops), "invalidation")
        assert sim.gets == counts.intervals
        assert sim.file_transfers == counts.intervals
        # The stream ends in r: the final interval is never modified, so
        # it sends no invalidation.  Table 1's RI is the upper bound.
        assert sim.invalidations == counts.intervals - 1
        assert sim.invalidations <= counts.intervals
        assert sim.ims == 0

    def test_invalidation_single_message_per_modification_run(self):
        # "m m m" after a read: only the first m sends an invalidation.
        sim = simulate_stream(
            timed_stream_from_ops(parse_stream("r m m m r")), "invalidation"
        )
        assert sim.invalidations == 1
        assert sim.gets == 2

    def test_invalidation_trailing_mods_still_invalidate(self):
        sim = simulate_stream(
            timed_stream_from_ops(parse_stream("r m")), "invalidation"
        )
        assert sim.invalidations == 1
        assert sim.gets == 1

    def test_ttl_stale_hits_counted(self):
        # Long TTL (old doc), modification mid-stream, reads inside TTL.
        policy = AdaptiveTtlPolicy(factor=1.0, min_ttl=0.0)
        events = [(0.0, "r"), (1.0, "m"), (2.0, "r"), (3.0, "r")]
        sim = simulate_stream(events, "ttl", ttl_policy=policy, initial_age=1000.0)
        assert sim.stale_serves == 2  # two user requests saw old data
        assert sim.stale_hits == 1  # one whole interval served stale
        assert sim.file_transfers == 1  # only the initial fetch (RI=2 - 1)

    def test_ttl_expired_validation_paths(self):
        # Tiny TTL: every later read validates.
        policy = AdaptiveTtlPolicy(factor=1e-9, min_ttl=0.0)
        events = timed_stream_from_ops(parse_stream("r r m r"), spacing=10.0)
        sim = simulate_stream(events, "ttl", ttl_policy=policy, initial_age=5.0)
        assert sim.gets == 1
        assert sim.ims == 2
        assert sim.replies_304 == 1
        assert sim.file_transfers == 2
        assert sim.stale_hits == 0

    def test_ttl_zero_stale_when_always_validating(self):
        policy = AdaptiveTtlPolicy(factor=1e-9, min_ttl=0.0)
        ops = parse_stream("r m r m r m r")
        sim = simulate_stream(
            timed_stream_from_ops(ops, spacing=100.0), "ttl", ttl_policy=policy
        )
        assert sim.stale_hits == 0

    def test_events_must_be_ordered(self):
        with pytest.raises(ValueError):
            simulate_stream([(1.0, "r"), (0.5, "r")], "polling")

    def test_unknown_protocol_rejected(self):
        with pytest.raises(ValueError):
            simulate_stream([(0.0, "r")], "nope")

    def test_empty_stream_all_zero(self):
        sim = simulate_stream([], "polling")
        assert sim.total_messages == 0


@given(st.lists(st.sampled_from(["r", "m"]), min_size=1, max_size=120), st.integers(0, 100))
def test_property_strong_protocols_transfer_exactly_ri(ops, seed):
    """Both strong protocols do the minimum number of file transfers (RI)."""
    rng = random.Random(seed)
    times = sorted(rng.uniform(0, 1000) for _ in ops)
    events = list(zip(times, ops))
    counts = count_r_ri(ops)
    for protocol in ("polling", "invalidation"):
        sim = simulate_stream(events, protocol)
        assert sim.file_transfers == counts.intervals
        assert sim.stale_hits == 0


@given(st.lists(st.sampled_from(["r", "m"]), min_size=1, max_size=120))
def test_property_ttl_transfers_plus_stale_equals_ri(ops):
    """Table 1 identity: TTL file transfers == RI - stale hits."""
    events = timed_stream_from_ops(ops, spacing=50.0)
    counts = count_r_ri(ops)
    policy = AdaptiveTtlPolicy(factor=0.5, min_ttl=0.0)
    sim = simulate_stream(events, "ttl", ttl_policy=policy, initial_age=200.0)
    assert sim.file_transfers == counts.intervals - sim.stale_hits


@given(st.lists(st.sampled_from(["r", "m"]), min_size=1, max_size=120))
def test_property_invalidation_control_bounded(ops):
    """Invalidation control messages never exceed 2*RI."""
    events = timed_stream_from_ops(ops)
    counts = count_r_ri(ops)
    sim = simulate_stream(events, "invalidation")
    assert sim.control_messages <= 2 * counts.intervals
    assert sim.gets == counts.intervals
