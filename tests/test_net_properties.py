"""Property-based tests of network and simulator invariants."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.net import FixedLatency, Message, Network
from repro.sim import Simulator


@given(
    st.lists(
        st.tuples(
            st.sampled_from(["a", "b", "c"]),  # src
            st.sampled_from(["a", "b", "c", "ghost"]),  # dst
            st.integers(min_value=0, max_value=10_000),  # size
        ),
        max_size=60,
    ),
    st.sets(st.sampled_from(["a", "b", "c"]), max_size=2),
)
@settings(max_examples=60, deadline=None)
def test_message_conservation(sends, down_nodes):
    """Every send is eventually delivered or dropped — never lost."""
    sim = Simulator()
    net = Network(sim, latency=FixedLatency(0.5), connect_timeout=1.0)
    received = []
    for address in ("a", "b", "c"):
        net.register(address, received.append)
    for address in down_nodes:
        net.set_down(address)
    for src, dst, size in sends:
        net.send(Message(src=src, dst=dst, size=size))
    sim.run()
    assert net.stats.total_messages + net.stats.total_dropped == len(sends)
    assert len(received) == net.stats.total_messages
    # Byte accounting covers exactly the delivered messages.
    assert net.stats.total_bytes == sum(m.size for m in received)


@given(
    st.lists(st.floats(min_value=0.0, max_value=1000.0), min_size=1, max_size=80)
)
@settings(max_examples=60, deadline=None)
def test_events_process_in_time_order(delays):
    """The clock never runs backwards, whatever the schedule order."""
    sim = Simulator()
    seen = []
    for delay in delays:
        sim.schedule_callback(delay, lambda: seen.append(sim.now))
    sim.run()
    assert seen == sorted(seen)
    assert len(seen) == len(delays)
    assert sim.now == max(delays)


@given(st.integers(min_value=1, max_value=30), st.integers(min_value=0, max_value=10**6))
@settings(max_examples=40, deadline=None)
def test_partition_is_symmetric_and_complete(n_pairs, seed):
    """Partitioned pairs drop in both directions; others deliver."""
    import random

    rng = random.Random(seed)
    sim = Simulator()
    net = Network(sim, latency=FixedLatency(0.0), connect_timeout=0.5)
    nodes = [f"n{i}" for i in range(6)]
    for node in nodes:
        net.register(node, lambda m: None)
    group_a = set(rng.sample(nodes, 2))
    group_b = set(rng.sample([n for n in nodes if n not in group_a], 2))
    net.partition(group_a, group_b)
    for _ in range(n_pairs):
        src, dst = rng.sample(nodes, 2)
        cut = (src in group_a and dst in group_b) or (
            src in group_b and dst in group_a
        )
        assert net.is_reachable(src, dst) == (not cut)
        assert net.is_reachable(dst, src) == (not cut)
