"""Randomized failure torture: consistency must survive arbitrary churn.

Drives a server + two proxies with a random interleaving of client
requests, document modifications, proxy crashes/recoveries, server
crashes/recoveries and network partitions/heals — then checks the
paper's guarantee end-to-end:

* **no violation, ever**: no request is served a copy whose own
  invalidation had already been delivered;
* **quiescent convergence**: once everything is healed and every copy
  has been re-requested, every client sees the current version.

Failures may abort individual requests (connection refused / reply
timeout); that is permitted — weak liveness under churn, strong safety
always.
"""

import random

import pytest

from repro.core import invalidation, two_tier_lease
from repro.net import FixedLatency, Network
from repro.proxy import Cache, ProxyCache
from repro.server import FileStore, ServerSite
from repro.sim import Simulator

DOCS = {f"/d{i}": 500 + 100 * i for i in range(6)}
CLIENTS = ["c0", "c1", "c2", "c3"]


class Torture:
    def __init__(self, seed: int, protocol):
        self.rng = random.Random(seed)
        self.sim = Simulator()
        self.net = Network(
            self.sim, latency=FixedLatency(0.002), connect_timeout=0.3
        )
        self.fs = FileStore.from_catalog(dict(DOCS))
        self.server = ServerSite(
            self.sim, self.net, "server", self.fs, accel=protocol.accelerator
        )
        self.proxies = [
            ProxyCache(
                self.sim,
                self.net,
                f"proxy-{i}",
                "server",
                policy=protocol.client_policy,
                cache=Cache(),
                oracle=lambda url: self.fs.get(url).last_modified,
                reply_timeout=2.0,
            )
            for i in range(2)
        ]
        self.outcomes = []
        self.server_down = False
        self.proxy_down = [False, False]
        self.partitioned = False

    def proxy_for(self, client: str) -> ProxyCache:
        return self.proxies[CLIENTS.index(client) % 2]

    def request(self, client: str, url: str):
        proxy = self.proxy_for(client)
        if not proxy.up:
            return None
        holder = {}

        def driver(sim):
            holder["o"] = yield from proxy.request(client, url)

        self.sim.process(driver(self.sim))
        self.sim.run(until=self.sim.now + 5.0)
        outcome = holder.get("o")
        if outcome is not None:
            self.outcomes.append(outcome)
        return outcome

    def step(self) -> None:
        roll = self.rng.random()
        if roll < 0.55:
            self.request(self.rng.choice(CLIENTS), self.rng.choice(list(DOCS)))
        elif roll < 0.75:
            url = self.rng.choice(list(DOCS))
            self.fs.modify(url, now=self.sim.now)
            self.server.check_in(url)
            self.sim.run(until=self.sim.now + self.rng.uniform(0.1, 2.0))
        elif roll < 0.85:
            index = self.rng.randrange(2)
            proxy = self.proxies[index]
            if proxy.up:
                proxy.crash()
            else:
                proxy.recover()
        elif roll < 0.93:
            if self.server.up:
                self.server.crash()
            else:
                self.server.recover()
                self.sim.run(until=self.sim.now + 1.0)
        else:
            if self.partitioned:
                self.net.heal()
                self.partitioned = False
            else:
                self.net.partition(
                    {"server"}, {self.rng.choice(["proxy-0", "proxy-1"])}
                )
                self.partitioned = True

    def heal_everything(self) -> None:
        self.net.heal()
        self.partitioned = False
        if not self.server.up:
            self.server.recover()
        for proxy in self.proxies:
            if not proxy.up:
                proxy.recover()
        # Let retried invalidations and recovery fan-outs drain.
        self.sim.run(until=self.sim.now + 120.0)


@pytest.mark.parametrize("seed", range(8))
def test_invalidation_torture(seed):
    torture = Torture(seed, invalidation(blocking=False, retry_interval=2.0))
    for _ in range(120):
        torture.step()
    torture.heal_everything()

    # Safety held throughout the churn.
    assert all(not o.violation for o in torture.outcomes)

    # Quiescent convergence: every (client, doc) re-read is fresh.
    for client in CLIENTS:
        for url in DOCS:
            outcome = torture.request(client, url)
            assert outcome is not None and not outcome.failed
            assert not outcome.stale_served
            assert not outcome.violation


@pytest.mark.parametrize("seed", [3, 11])
def test_two_tier_torture(seed):
    torture = Torture(
        seed, two_tier_lease(lease_duration=1e6, blocking=False,
                             retry_interval=2.0)
    )
    for _ in range(100):
        torture.step()
    torture.heal_everything()
    assert all(not o.violation for o in torture.outcomes)
    for client in CLIENTS:
        for url in DOCS:
            outcome = torture.request(client, url)
            assert outcome is not None and not outcome.failed
            assert not outcome.stale_served
